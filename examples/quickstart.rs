//! Quickstart: run one RandomCast simulation and print its report.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Simulates a 50-node MANET for two simulated minutes under each of
//! the paper's schemes and prints the headline metrics, demonstrating
//! the library's one-call entry point.

use randomcast::{run_sim, Scheme, SimConfig};

fn main() -> Result<(), String> {
    println!("RandomCast quickstart: 50 nodes, 10 CBR flows, 120 simulated seconds\n");

    for scheme in Scheme::ALL {
        let cfg = SimConfig::smoke(scheme, 7);
        let report = run_sim(cfg)?;
        println!("{}", report.summary());
    }

    println!();
    println!("Things to notice:");
    println!(" * 802.11 burns the most energy (radios never sleep) with zero variance;");
    println!(" * PSM saves little: unconditional overhearing keeps neighborhoods awake;");
    println!(" * PSM-none sleeps a lot but pays in delivery ratio and flooding;");
    println!(" * ODPM sits in between with a lopsided (high-variance) energy profile;");
    println!(" * Rcast gets the low energy AND the balance, at beacon-paced delay.");
    Ok(())
}
