//! Scenario: plotting energy-drain trajectories.
//!
//! ```sh
//! cargo run --release --example drain_curves
//! ```
//!
//! The paper's Figure 5 shows end-of-run energy; operators usually want
//! the trajectory — how fast each scheme drains the network and when
//! the hungriest node would cross a battery limit. This example enables
//! `SimConfig::energy_sampling`, prints an ASCII drain chart of the
//! network total, and reports the average power draw per scheme.

use randomcast::metrics::fmt_f64;
use randomcast::{run_sim, Scheme, SimConfig, SimDuration};

fn main() -> Result<(), String> {
    println!("Energy drain trajectories: 50 nodes, 10 flows, 120 s\n");

    let mut curves = Vec::new();
    for scheme in [Scheme::Dot11, Scheme::Odpm, Scheme::Rcast] {
        let mut cfg = SimConfig::smoke(scheme, 5);
        cfg.energy_sampling = Some(SimDuration::from_secs(5));
        let report = run_sim(cfg)?;
        let series = report.energy_series.clone().expect("sampling enabled");
        println!(
            "{:>7}: average network draw {} W ({} J total)",
            scheme.label(),
            fmt_f64(series.mean_total_slope(), 1),
            fmt_f64(report.energy.total_joules(), 0),
        );
        curves.push((scheme, series));
    }

    // ASCII chart: network total vs time, one row per scheme sample.
    println!("\nnetwork energy consumed (each █ ≈ 150 J):");
    let times = curves[0].1.times().to_vec();
    for (i, t) in times.iter().enumerate().step_by(4) {
        print!("{:>5.0} s |", t.as_secs_f64());
        for (scheme, series) in &curves {
            let total = series.totals()[i];
            let bars = (total / 150.0).round() as usize;
            print!(
                " {:>6} {:<46}",
                scheme.label(),
                "█".repeat(bars.min(46))
            );
        }
        println!();
    }

    println!();
    println!("802.11 drains linearly at full tilt; ODPM tracks it at a");
    println!("discount; Rcast's slope is the shallowest from the start.");
    Ok(())
}
