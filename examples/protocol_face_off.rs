//! Scenario: choosing a routing protocol for a power-saving network.
//!
//! ```sh
//! cargo run --release --example protocol_face_off
//! ```
//!
//! The paper chooses DSR over AODV because AODV's conservative route
//! maintenance (no overhearing, timeouts, hello beacons) fights the
//! power-saving MAC. This example runs the same workload over both
//! protocols under the Rcast scheme, prints the head-to-head, and shows
//! how to archive the loser's configuration as a scenario file for
//! later replay.

use randomcast::metrics::{fmt_f64, TextTable};
use randomcast::{run_sim, RoutingKind, Scheme, SimConfig, SimDuration};

fn main() -> Result<(), String> {
    println!("Protocol face-off: DSR vs AODV under the Rcast scheme\n");

    let mut table = TextTable::new(vec![
        "routing".into(),
        "energy (J)".into(),
        "PDR (%)".into(),
        "control tx".into(),
        "RREQ tx".into(),
        "hellos".into(),
    ]);

    let mut archived = None;
    for routing in [RoutingKind::Dsr, RoutingKind::Aodv] {
        let mut cfg = SimConfig::paper(Scheme::Rcast, 21, 0.4, 300.0);
        cfg.nodes = 60;
        cfg.area = randomcast::mobility::Area::new(1200.0, 300.0);
        cfg.duration = SimDuration::from_secs(240);
        cfg.traffic.flows = 12;
        cfg.routing = routing;
        let report = run_sim(cfg.clone())?;
        let rreq = report.dsr.rreq_originated
            + report.dsr.rreq_forwarded
            + report.aodv.rreq_originated
            + report.aodv.rreq_forwarded;
        table.add_row(vec![
            routing.label().into(),
            fmt_f64(report.energy.total_joules(), 0),
            fmt_f64(report.delivery.delivery_ratio() * 100.0, 1),
            report.delivery.control_transmissions().to_string(),
            rreq.to_string(),
            report.aodv.hello_sent.to_string(),
        ]);
        if routing == RoutingKind::Aodv {
            archived = Some(randomcast::write_scenario(&cfg));
        }
    }
    println!("{}", table.render());

    println!("DSR wins on control traffic and energy: its route caches feed");
    println!("on (randomized) overhearing, while AODV re-floods and beacons.");
    println!();
    println!("The AODV configuration, archived as a replayable scenario file");
    println!("(`rcast scenario <file>` reruns it bit-identically):");
    println!();
    for line in archived.expect("AODV ran").lines() {
        println!("    {line}");
    }
    Ok(())
}
