//! Scenario: a protocol-design lab for the overhearing decision.
//!
//! ```sh
//! cargo run --release --example overhearing_lab
//! ```
//!
//! Uses the lower-level crates directly — the MAC's beacon-interval
//! resolver, a hand-built topology, and the Rcast decider — to show
//! what each overhearing level does to one beacon interval, the way the
//! paper's Figures 1–3 walk through it. This is the example to start
//! from if you want to embed the MAC or the decider in your own
//! simulator.

use randomcast::engine::rng::StreamRng;
use randomcast::engine::{NodeId, SimTime};
use randomcast::mac::{AllPowerSave, MacConfig, MacFrame, MacLayer, OverhearingLevel};
use randomcast::mobility::{Area, NeighborTable, Snapshot, Vec2};
use randomcast::radio::Phy;
use randomcast::{OverhearFactors, RcastDecider};

fn main() {
    // The paper's Fig. 2 topology: a chain S → A → B → C → D with two
    // bystanders X and Y parked next to the middle of the route.
    //            S(0) A(1) B(2) C(3) D(4)    X(5), Y(6) near A–B
    let positions = vec![
        Vec2::new(0.0, 0.0),    // S
        Vec2::new(200.0, 0.0),  // A
        Vec2::new(400.0, 0.0),  // B
        Vec2::new(600.0, 0.0),  // C
        Vec2::new(800.0, 0.0),  // D
        Vec2::new(300.0, 150.0), // X
        Vec2::new(300.0, -150.0), // Y
    ];
    let names = ["S", "A", "B", "C", "D", "X", "Y"];
    let snap = Snapshot::from_positions(positions, Area::new(1000.0, 400.0), SimTime::ZERO);
    let nt = NeighborTable::build(&snap, 250.0);

    println!("Topology: S→A→B→C→D chain; X and Y overhear the A–B segment\n");
    for level in [
        OverhearingLevel::None,
        OverhearingLevel::Unconditional,
        OverhearingLevel::Randomized,
    ] {
        println!("--- A transmits one data frame to B with {level:?} overhearing ---");
        let mut mac: MacLayer<&str> = MacLayer::new(
            7,
            MacConfig::default(),
            Phy::default(),
            StreamRng::from_seed(1),
        );
        mac.enqueue(
            NodeId::new(1),
            MacFrame::unicast(NodeId::new(2), level, 512, "payload"),
            SimTime::ZERO,
        )
        .expect("queue has room");
        // Fixed-answer policy stands in for the Rcast decider here so
        // the randomized case is visible without averaging.
        let mut policy = AllPowerSave {
            overhear_randomized: true,
        };
        let out = mac.run_interval(SimTime::ZERO, &nt, &mut policy);
        let awake: Vec<&str> = (0..7)
            .filter(|&i| out.awake[i])
            .map(|i| names[i])
            .collect();
        let d = &out.deliveries[0];
        let overhearers: Vec<&str> = d
            .fanout
            .overhearers(&out.fanout)
            .iter()
            .map(|o| names[o.index()])
            .collect();
        println!("  awake past the ATIM window: {awake:?}");
        println!("  overheard by: {overhearers:?}\n");
    }

    // And the actual probabilistic decision, as the paper configures it:
    // P_R = 1 / number of neighbors.
    let mut decider = RcastDecider::new(7, OverhearFactors::default(), StreamRng::from_seed(9));
    let x = NodeId::new(5);
    println!(
        "X has {} neighbors, so the paper's rule gives P_R = {:.2}",
        nt.degree(x),
        decider.probability(x, &nt)
    );
    let trials = 10_000;
    let overheard = (0..trials)
        .filter(|_| decider.decide(x, NodeId::new(1), &nt, SimTime::ZERO))
        .count();
    println!(
        "measured over {trials} advertised packets: X overhears {:.1} % of them",
        100.0 * overheard as f64 / trials as f64
    );
}
