//! Scenario: a low-power sensor field reporting to gateways.
//!
//! ```sh
//! cargo run --release --example sensor_field
//! ```
//!
//! The paper motivates Rcast with battery-operated devices whose
//! *network* lifetime hinges on energy balance ("applications without
//! stringent timing constraints can benefit from the Rcast scheme").
//! This example models exactly that deployment:
//!
//! * a dense, mostly-static field of battery-powered nodes
//!   (TR 1000-class motes are quoted in the paper's introduction;
//!   here we keep the WaveLAN profile but give every node a small
//!   battery),
//! * light periodic traffic (0.2 packets/second) toward a few sinks,
//! * no interactive deadlines — beacon-paced delay is acceptable.
//!
//! It compares ODPM and Rcast on time-to-first-death and on how many
//! nodes survive the mission, using the public `SimConfig` +
//! `battery_capacity_j` API.

use randomcast::{run_sim, Scheme, SimConfig, SimDuration};

fn main() -> Result<(), String> {
    println!("Sensor-field scenario: 80 nodes, near-static, 0.2 pkt/s, finite batteries\n");

    let mission = SimDuration::from_secs(600);
    // Battery sized so an always-on radio dies at 55 % of the mission.
    let battery_j = 0.55 * mission.as_secs_f64() * 1.15;
    println!(
        "mission: {} s, per-node battery: {:.0} J (always-on death at ~{:.0} s)\n",
        mission.as_secs_f64(),
        battery_j,
        0.55 * mission.as_secs_f64()
    );

    for scheme in [Scheme::Dot11, Scheme::Odpm, Scheme::Rcast] {
        let mut cfg = SimConfig::paper(scheme, 3, 0.2, 10_000.0);
        cfg.nodes = 80;
        cfg.duration = mission;
        cfg.traffic.flows = 12;
        cfg.battery_capacity_j = Some(battery_j);
        let report = run_sim(cfg)?;

        let first_death = report
            .first_depletion
            .map(|t| format!("{:.0} s", t.as_secs_f64()))
            .unwrap_or_else(|| "none".into());
        println!(
            "{:>7}: first death {:>6} | PDR {:.1} % | mean node energy {:.0} J | hungriest node {:.0} J",
            scheme.label(),
            first_death,
            report.delivery.delivery_ratio() * 100.0,
            report.energy.mean_joules(),
            report.energy.max_joules(),
        );
    }

    println!();
    println!("Rcast's balance keeps the hungriest node far from the battery");
    println!("limit, so the field outlives both baselines.");
    Ok(())
}
