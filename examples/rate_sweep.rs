//! Scenario: a capacity-planning sweep over traffic intensity.
//!
//! ```sh
//! cargo run --release --example rate_sweep
//! ```
//!
//! Answers the operator's question the paper's Figure 7 answers for
//! researchers: *as offered load grows, how do the energy savings and
//! the delivery guarantees of each power-management scheme move?*
//! Sweeps the per-flow packet rate on a mid-sized network and prints an
//! energy-per-delivered-bit frontier.

use randomcast::metrics::{fmt_f64, TextTable};
use randomcast::{run_sim, Scheme, SimConfig, SimDuration};

fn main() -> Result<(), String> {
    println!("Rate sweep: 60 nodes, 12 flows, 240 simulated seconds per point\n");

    let mut table = TextTable::new(vec![
        "rate (pkt/s)".into(),
        "scheme".into(),
        "energy (J)".into(),
        "PDR (%)".into(),
        "EPB (mJ/bit)".into(),
        "delay (ms)".into(),
    ]);

    for rate in [0.2, 0.5, 1.0, 2.0] {
        for scheme in [Scheme::Dot11, Scheme::Odpm, Scheme::Rcast] {
            let mut cfg = SimConfig::paper(scheme, 11, rate, 300.0);
            cfg.nodes = 60;
            cfg.area = randomcast::mobility::Area::new(1200.0, 300.0);
            cfg.duration = SimDuration::from_secs(240);
            cfg.traffic.flows = 12;
            let report = run_sim(cfg)?;
            table.add_row(vec![
                format!("{rate}"),
                report.scheme.label().into(),
                fmt_f64(report.energy.total_joules(), 0),
                fmt_f64(report.delivery.delivery_ratio() * 100.0, 1),
                fmt_f64(report.energy_per_bit(512) * 1e3, 4),
                fmt_f64(report.delivery.mean_delay().as_millis_f64(), 0),
            ]);
        }
    }
    println!("{}", table.render());

    println!("Reading the frontier: Rcast's energy-per-bit stays the lowest");
    println!("across the sweep; the price is delay pinned near the beacon");
    println!("pace (~ hops x 250 ms), which 802.11 and ODPM avoid.");
    Ok(())
}
