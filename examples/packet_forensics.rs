//! Scenario: debugging one packet's journey with the trace journal.
//!
//! ```sh
//! cargo run --release --example packet_forensics
//! ```
//!
//! Enables `SimConfig::trace` and uses the journal to answer the
//! questions an operator asks when a flow misbehaves: which packets
//! died, where the survivors went hop by hop, and how the per-flow
//! latency distribution looks — detail the aggregate report cannot give.

use randomcast::{run_sim, Scheme, SimConfig};

fn main() -> Result<(), String> {
    let mut cfg = SimConfig::smoke(Scheme::Rcast, 12);
    cfg.trace = true;
    let report = run_sim(cfg)?;
    let trace = report.trace.as_ref().expect("tracing enabled");

    println!(
        "run: {} packets originated, {} delivered, {} dropped, {} journal records\n",
        report.delivery.originated(),
        report.delivery.delivered(),
        report.delivery.dropped(),
        trace.len(),
    );

    // Slowest delivery, dissected hop by hop.
    let mut latencies = trace.delivery_latencies();
    latencies.sort_by_key(|&(_, d)| d);
    if let Some(&(worst, latency)) = latencies.last() {
        println!(
            "slowest packet: flow {} seq {} took {latency}",
            worst.0, worst.1
        );
        print!("{}", trace.render_packet(worst));
    }

    // Per-flow latency spread.
    println!("\nper-flow mean latency (ms):");
    let mut per_flow: std::collections::BTreeMap<u32, Vec<f64>> = Default::default();
    for (id, d) in &latencies {
        per_flow.entry(id.0).or_default().push(d.as_millis_f64());
    }
    for (flow, ms) in per_flow {
        let mean = ms.iter().sum::<f64>() / ms.len() as f64;
        println!("  flow {flow:>2}: {mean:>6.0} ms over {} packets", ms.len());
    }

    // Anything unaccounted for at the end of the run?
    let unresolved = trace.unresolved();
    println!(
        "\npackets still queued/in flight at the end of the run: {}",
        unresolved.len()
    );
    Ok(())
}
