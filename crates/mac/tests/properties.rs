//! Property-based tests for the MAC: airtime budgets never oversubscribe
//! any node's channel, queues keep FIFO order, and the interval resolver
//! conserves frames. On the in-tree `rcast-testkit` harness.

use rcast_engine::rng::StreamRng;
use rcast_engine::{NodeId, SimDuration, SimTime};
use rcast_mac::{
    AirtimeBudget, AllPowerSave, MacConfig, MacFrame, MacLayer, OverhearingLevel, TxQueue,
};
use rcast_mobility::{Area, NeighborTable, Snapshot, Vec2};
use rcast_radio::Phy;
use rcast_testkit::{prop_assert, prop_assert_eq, Check};

/// No node's charged airtime ever exceeds the window, for arbitrary
/// reservation sequences.
#[test]
fn budget_never_oversubscribes() {
    Check::new("budget_never_oversubscribes").run(|g| {
        let limit_ms = g.u64_range(1, 50);
        let reservations = g.vec(1, 60, |g| {
            (
                g.vec(1, 6, |g| g.u32_range(0, 20)),
                g.u64_range(1, 20_000),
            )
        });
        let limit = SimDuration::from_millis(limit_ms);
        let mut budget = AirtimeBudget::new(20, limit);
        for (nodes, micros) in reservations {
            let affected: Vec<NodeId> = nodes.into_iter().map(NodeId::new).collect();
            let _ = budget.try_reserve(affected.iter().copied(), SimDuration::from_micros(micros));
        }
        for i in 0..20u32 {
            prop_assert!(budget.used(NodeId::new(i)) <= limit);
        }
        Ok(())
    });
}

/// Accepted reservations end within the window (offset + duration
/// never spills past the limit).
#[test]
fn accepted_reservations_fit() {
    Check::new("accepted_reservations_fit").run(|g| {
        let reservations = g.vec(1, 40, |g| {
            (
                g.vec(1, 4, |g| g.u32_range(0, 10)),
                g.u64_range(1, 30_000),
            )
        });
        let limit = SimDuration::from_millis(20);
        let mut budget = AirtimeBudget::new(10, limit);
        for (nodes, micros) in reservations {
            let dur = SimDuration::from_micros(micros);
            let affected: Vec<NodeId> = nodes.into_iter().map(NodeId::new).collect();
            if let Some(offset) = budget.try_reserve(affected.iter().copied(), dur) {
                prop_assert!(offset + dur <= limit);
            }
        }
        Ok(())
    });
}

/// TxQueue preserves FIFO order per destination under arbitrary
/// push/remove interleavings.
#[test]
fn queue_fifo_per_destination() {
    Check::new("queue_fifo_per_destination").run(|g| {
        let ops = g.vec(1, 60, |g| (g.u32_range(0, 4), g.u64_range(0, 100)));
        let mut q: TxQueue<u64> = TxQueue::new(1_000);
        let mut expected: std::collections::BTreeMap<u32, Vec<u64>> = Default::default();
        for (dest, tag) in ops {
            q.push(
                MacFrame::unicast(NodeId::new(dest), OverhearingLevel::None, 64, tag),
                SimTime::ZERO,
            )
            .expect("capacity is large");
            expected.entry(dest).or_default().push(tag);
        }
        for (dest, tags) in expected {
            let d = rcast_mac::Destination::Unicast(NodeId::new(dest));
            let mut got = Vec::new();
            while let Some(idx) = q.first_for(d) {
                got.push(q.remove(idx).frame.payload);
            }
            prop_assert_eq!(got, tags);
        }
        Ok(())
    });
}

/// Frame conservation: over enough intervals on a connected clique,
/// every enqueued unicast frame is either delivered or still queued —
/// none vanish. (No failures possible: everyone is in range.)
#[test]
fn interval_resolver_conserves_frames() {
    Check::new("interval_resolver_conserves_frames").run(|g| {
        let sends = g.vec(1, 25, |g| (g.u32_range(0, 6), g.u32_range(0, 6)));
        let seed = g.u64();
        let positions: Vec<Vec2> = (0..6).map(|i| Vec2::new(10.0 * i as f64, 0.0)).collect();
        let snap = Snapshot::from_positions(positions, Area::new(100.0, 10.0), SimTime::ZERO);
        let nt = NeighborTable::build(&snap, 250.0);
        let mut mac: MacLayer<usize> = MacLayer::new(
            6,
            MacConfig::default(),
            Phy::default(),
            StreamRng::from_seed(seed),
        );
        let mut enqueued = 0usize;
        for (i, &(from, to)) in sends.iter().enumerate() {
            if from == to {
                continue;
            }
            mac.enqueue(
                NodeId::new(from),
                MacFrame::unicast(NodeId::new(to), OverhearingLevel::None, 256, i),
                SimTime::ZERO,
            )
            .expect("under capacity");
            enqueued += 1;
        }
        let mut delivered = 0usize;
        let mut policy = AllPowerSave {
            overhear_randomized: false,
        };
        for k in 0..20u64 {
            let out = mac.run_interval(SimTime::from_millis(250 * k), &nt, &mut policy);
            prop_assert!(out.failures.is_empty(), "clique cannot break links");
            delivered += out.deliveries.len();
        }
        let still_queued: usize = (0..6).map(|i| mac.queue_len(NodeId::new(i))).sum();
        prop_assert_eq!(delivered + still_queued, enqueued);
        Ok(())
    });
}

/// The committed-awake duration is always within
/// [ATIM window, beacon interval].
#[test]
fn committed_awake_bounds() {
    Check::new("committed_awake_bounds").run(|g| {
        let sends = g.vec(0, 15, |g| (g.u32_range(0, 5), g.u32_range(0, 5)));
        let seed = g.u64();
        let positions: Vec<Vec2> = (0..5).map(|i| Vec2::new(40.0 * i as f64, 0.0)).collect();
        let snap = Snapshot::from_positions(positions, Area::new(400.0, 10.0), SimTime::ZERO);
        let nt = NeighborTable::build(&snap, 250.0);
        let cfg = MacConfig::default();
        let mut mac: MacLayer<usize> =
            MacLayer::new(5, cfg, Phy::default(), StreamRng::from_seed(seed));
        for (i, &(from, to)) in sends.iter().enumerate() {
            if from == to {
                continue;
            }
            let _ = mac.enqueue(
                NodeId::new(from),
                MacFrame::unicast(NodeId::new(to), OverhearingLevel::Randomized, 512, i),
                SimTime::ZERO,
            );
        }
        let mut policy = AllPowerSave {
            overhear_randomized: true,
        };
        let out = mac.run_interval(SimTime::ZERO, &nt, &mut policy);
        for (i, &dur) in out.committed_awake.iter().enumerate() {
            prop_assert!(dur >= cfg.atim_window, "node {i}: {dur}");
            prop_assert!(dur <= cfg.beacon_interval, "node {i}: {dur}");
            if !out.ps_awake[i] {
                prop_assert_eq!(dur, cfg.atim_window);
            }
        }
        Ok(())
    });
}
