//! Beacon-interval resolution: the heart of the PSM MAC.
//!
//! A beacon interval (250 ms) splits into an ATIM window (50 ms) and a
//! data window (200 ms). The resolver performs, in order:
//!
//! 1. **ATIM phase** — every node advertises its queued traffic, one
//!    ATIM per destination, budgeted against the ATIM window's airtime
//!    per neighborhood. A unicast ATIM whose receiver is out of range
//!    gets no acknowledgment; after [`MacConfig::atim_retry_limit`]
//!    silent intervals the link is declared broken and the frames are
//!    returned to the network layer. A broadcast ATIM commits *every*
//!    neighbor to stay awake.
//! 2. **Overhearing decisions** — for each announced unicast, neighbors
//!    that are not the addressee resolve the advertised
//!    [`OverhearingLevel`]: `None` lets them sleep, `Unconditional`
//!    keeps them awake, `Randomized` consults the [`WakePolicy`]
//!    (the Rcast mechanism).
//! 3. **Data phase** — announced transfers execute in announcement
//!    order, budgeted against the data window per neighborhood.
//!    Transfers that do not fit stay queued (and re-advertise next
//!    interval). Each completed unicast is overheard by every node that
//!    is awake and within range of the sender — the radio is
//!    promiscuous, so an awake node hears everything around it
//!    regardless of why it is awake.
//!
//! The resolver reports per-node committed-awake durations so the
//! energy layer can integrate `P_awake × awake + P_sleep × sleep` —
//! exactly the arithmetic the paper uses in Figure 5.

use rcast_engine::pool::ScopedPool;
use rcast_engine::rng::StreamRng;
use rcast_engine::{NodeId, SimDuration, SimTime};
use rcast_mobility::NeighborTable;
use rcast_radio::Phy;

use crate::budget::AirtimeBudget;
use crate::config::MacConfig;
use crate::frame::{Destination, MacFrame, OverhearingLevel};
use crate::observe::{MacObserver, NullMacObserver};
use crate::queue::TxQueue;
use crate::wake::{PowerMode, WakePolicy};

/// Where a delivery's receivers live inside the interval's shared
/// fanout buffer ([`IntervalOutcome::fanout`], or the caller-supplied
/// buffer for the immediate path): `recipients` node ids starting at
/// `start`, immediately followed by `overhearers` node ids.
///
/// Keeping ranges instead of per-delivery `Vec`s removes two heap
/// allocations per delivered frame from the hot loop and lets the
/// sharded post-pass assemble all fanouts into one flat buffer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Fanout {
    /// First index of this delivery's span in the fanout buffer.
    pub start: u32,
    /// Number of recipients (broadcast receivers, or 1 for unicast).
    pub recipients: u32,
    /// Number of overhearers (awake in-range non-addressees; unicast
    /// only — broadcasts have none, every awake neighbor receives).
    pub overhearers: u32,
}

impl Fanout {
    /// The recipient slice within `buf`.
    pub fn recipients<'a>(&self, buf: &'a [NodeId]) -> &'a [NodeId] {
        let s = self.start as usize;
        &buf[s..s + self.recipients as usize]
    }

    /// The overhearer slice within `buf`.
    pub fn overhearers<'a>(&self, buf: &'a [NodeId]) -> &'a [NodeId] {
        let s = self.start as usize + self.recipients as usize;
        &buf[s..s + self.overhearers as usize]
    }
}

/// A frame the MAC delivered during an interval (or immediately).
#[derive(Debug, Clone)]
pub struct Delivery<P> {
    /// Transmitting node.
    pub sender: NodeId,
    /// Addressed receiver; `None` for broadcast.
    pub receiver: Option<NodeId>,
    /// Recipient/overhearer ranges into the interval's fanout buffer.
    pub fanout: Fanout,
    /// When the exchange completed on the air.
    pub at: SimTime,
    /// When the frame entered the MAC queue (for delay accounting).
    pub enqueued_at: SimTime,
    /// The delivered frame.
    pub frame: MacFrame<P>,
}

/// A frame the MAC gave up on: the ATIM advertisement went
/// unacknowledged for the configured number of intervals, i.e. the link
/// to the next hop broke.
#[derive(Debug, Clone)]
pub struct LinkFailure<P> {
    /// The node that was trying to transmit.
    pub sender: NodeId,
    /// The unreachable next hop.
    pub receiver: NodeId,
    /// When the MAC gave up.
    pub at: SimTime,
    /// The undeliverable frame, returned to the network layer.
    pub frame: MacFrame<P>,
}

/// Everything that happened during one resolved beacon interval.
///
/// [`MacLayer::run_interval_into`] refills a caller-owned outcome in
/// place, so the per-node vectors and the delivery/failure lists keep
/// their allocations across intervals.
#[derive(Debug, Clone)]
pub struct IntervalOutcome<P> {
    /// Start of the interval.
    pub start: SimTime,
    /// Completed transfers, in on-air order.
    pub deliveries: Vec<Delivery<P>>,
    /// Shared recipient/overhearer buffer the deliveries' [`Fanout`]
    /// ranges index into, in on-air delivery order.
    pub fanout: Vec<NodeId>,
    /// Broken-link frames returned to the network layer.
    pub failures: Vec<LinkFailure<P>>,
    /// Per node: was the radio on past the ATIM window for any reason?
    /// (AM nodes are always `true`.)
    pub awake: Vec<bool>,
    /// Per node: did a PSM commitment (sending, receiving, a broadcast,
    /// or an overhearing decision) keep it awake past the ATIM window?
    /// Unlike [`awake`](Self::awake), this excludes baseline AM-ness —
    /// the ODPM energy integrator needs the distinction.
    pub ps_awake: Vec<bool>,
    /// Per node: radio-on time attributable to PSM commitments, in
    /// `[atim_window, beacon_interval]`, *ignoring* AM mode. With
    /// [`MacConfig::doze_after_transfer`] enabled, a node committed to
    /// specific unicast transfers is charged only until its last
    /// transfer completes; unbounded commitments (broadcasts,
    /// unconditional overhearing, deferred/lost transfers) are charged
    /// the whole interval.
    pub committed_awake: Vec<SimDuration>,
}

impl<P> Default for IntervalOutcome<P> {
    fn default() -> Self {
        IntervalOutcome {
            start: SimTime::ZERO,
            deliveries: Vec::new(),
            fanout: Vec::new(),
            failures: Vec::new(),
            awake: Vec::new(),
            ps_awake: Vec::new(),
            committed_awake: Vec::new(),
        }
    }
}

/// Cumulative MAC statistics across a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MacCounters {
    /// Unicast ATIM advertisements acknowledged.
    pub atim_unicast: u64,
    /// Broadcast ATIM advertisements sent.
    pub atim_broadcast: u64,
    /// Advertisements deferred for lack of ATIM-window airtime.
    pub atim_deferred: u64,
    /// Unicast advertisements that drew no acknowledgment
    /// (receiver out of range).
    pub atim_no_ack: u64,
    /// Unicast frames delivered through the data window.
    pub data_delivered: u64,
    /// Broadcast frames delivered through the data window.
    pub broadcast_delivered: u64,
    /// Announced frames that did not fit the data window.
    pub data_deferred: u64,
    /// Frames destroyed by injected channel loss (retried next interval).
    pub data_lost: u64,
    /// Links declared broken after repeated silent ATIMs.
    pub link_failures: u64,
    /// Frames rejected by full transmit queues.
    pub queue_drops: u64,
}

/// The PSM MAC for the whole network: per-node queues plus the
/// beacon-interval resolver.
///
/// `P` is the opaque network-layer payload type.
///
/// # Example
///
/// ```
/// use rcast_engine::{NodeId, SimTime, rng::StreamRng};
/// use rcast_mac::{AllPowerSave, MacConfig, MacFrame, MacLayer, OverhearingLevel};
/// use rcast_mobility::{Area, NeighborTable, Snapshot, Vec2};
/// use rcast_radio::Phy;
///
/// let snap = Snapshot::from_positions(
///     vec![Vec2::new(0.0, 0.0), Vec2::new(100.0, 0.0)],
///     Area::new(1000.0, 10.0), SimTime::ZERO);
/// let nt = NeighborTable::build(&snap, 250.0);
/// let mut mac: MacLayer<&str> = MacLayer::new(
///     2, MacConfig::default(), Phy::default(), StreamRng::from_seed(0));
/// mac.enqueue(NodeId::new(0),
///     MacFrame::unicast(NodeId::new(1), OverhearingLevel::None, 512, "hello"),
///     SimTime::ZERO);
/// let out = mac.run_interval(SimTime::ZERO, &nt,
///     &mut AllPowerSave { overhear_randomized: false });
/// assert_eq!(out.deliveries.len(), 1);
/// assert_eq!(out.deliveries[0].frame.payload, "hello");
/// ```
#[derive(Debug, Clone)]
pub struct MacLayer<P> {
    cfg: MacConfig,
    phy: Phy,
    queues: Vec<TxQueue<P>>,
    /// Pending-traffic lane: `pending[i]` is false only when node `i`'s
    /// queue is known empty. Maintained at every queue mutation site
    /// (enqueue, purge, phase-1 evictions, phase-3 removals) so the
    /// ATIM prepass can skip idle nodes without touching their queue at
    /// all — at large n most nodes are idle in any given interval, and
    /// an empty queue emits no candidates anyway, so the skip is
    /// byte-identical. A stale `true` is harmless (the prepass just
    /// reads an empty queue); a stale `false` would drop traffic, hence
    /// the conservative refresh-after-mutation discipline.
    pending: Vec<bool>,
    rng: StreamRng,
    counters: MacCounters,
    scratch: IntervalScratch,
    pool: ScopedPool,
}

/// One announced (acknowledged) advertisement awaiting its data phase.
#[derive(Debug, Clone, Copy)]
struct Announcement {
    sender: NodeId,
    dest: Destination,
    level: OverhearingLevel,
}

/// Per-interval working state, kept on the layer so the resolver reuses
/// its allocations every interval instead of rebuilding them (the MAC
/// runs once per 250 ms of simulated time — these buffers dominated the
/// allocator profile before they were hoisted).
#[derive(Debug, Clone, Default)]
struct IntervalScratch {
    awake: Vec<bool>,
    committed: Vec<bool>,
    full_wake: Vec<bool>,
    doze_at: Vec<SimTime>,
    accepted: Vec<Vec<NodeId>>,
    announcements: Vec<Announcement>,
    atim_budget: AirtimeBudget,
    data_budget: AirtimeBudget,
    affected: Vec<NodeId>,
    prepass: Vec<PrepassLane>,
    merge: Vec<MergeLane>,
}

/// One shard's output of the ATIM prepass: the per-node destination
/// lists and advertised levels, read off the queues before phase 1
/// mutates them. Both are pure queue reads, so shards can scan node
/// ranges concurrently; phase 1 then consumes the lanes in shard order,
/// which is node order for contiguous chunks.
#[derive(Debug, Clone, Default)]
struct PrepassLane {
    /// Per-node scratch for `destinations_into`.
    dests: Vec<Destination>,
    /// `(sender, dest, strongest advertised level)` candidates.
    out: Vec<(NodeId, Destination, Option<OverhearingLevel>)>,
}

/// One shard's output of the fanout/energy post-pass: concatenated
/// recipient+overhearer ids with per-delivery counts for a contiguous
/// delivery range, plus committed-awake durations for a contiguous node
/// range. Everything here is a pure function of post-phase-2 `awake`
/// and post-phase-3 doze bookkeeping, so shards run concurrently and
/// the serial merge reassembles canonical order.
#[derive(Debug, Clone, Default)]
struct MergeLane {
    fanout: Vec<NodeId>,
    counts: Vec<(u32, u32)>,
    committed: Vec<SimDuration>,
}

/// Appends `d`'s recipients-then-overhearers to `buf`; returns the
/// `(recipients, overhearers)` counts. Pure in `awake`, which is final
/// once phase 2 ends — phase 3 only advances doze bookkeeping — so the
/// fanout can be resolved after the data phase, serially or sharded,
/// with identical bytes.
fn delivery_fanout<P>(
    d: &Delivery<P>,
    nt: &NeighborTable,
    awake: &[bool],
    buf: &mut Vec<NodeId>,
) -> (u32, u32) {
    match d.receiver {
        Some(r) => {
            buf.push(r);
            let mut ovh = 0u32;
            for &x in nt.neighbors(d.sender) {
                if x != r && awake[x.index()] {
                    buf.push(x);
                    ovh += 1;
                }
            }
            (1, ovh)
        }
        None => {
            // Only awake neighbors receive: with the randomized-
            // broadcast extension some may have chosen to sleep.
            let mut rec = 0u32;
            for &x in nt.neighbors(d.sender) {
                if awake[x.index()] {
                    buf.push(x);
                    rec += 1;
                }
            }
            (rec, 0)
        }
    }
}

/// Node `i`'s PSM-committed radio-on time for the interval — the
/// doze-bookkeeping integration, pure in the final phase-3 state.
#[allow(clippy::too_many_arguments)]
fn committed_duration(
    i: usize,
    committed: &[bool],
    full_wake: &[bool],
    doze_at: &[SimTime],
    start: SimTime,
    aw: SimDuration,
    bi: SimDuration,
    doze_after_transfer: bool,
) -> SimDuration {
    if !committed[i] {
        aw
    } else if full_wake[i] || !doze_after_transfer {
        bi
    } else {
        (doze_at[i] - start).max(aw).min(bi)
    }
}

impl<P> MacLayer<P> {
    /// Creates the MAC for `n` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`MacConfig::validate`].
    pub fn new(n: usize, cfg: MacConfig, phy: Phy, rng: StreamRng) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid MAC config: {e}");
        }
        MacLayer {
            cfg,
            phy,
            queues: (0..n).map(|_| TxQueue::new(cfg.queue_capacity)).collect(),
            pending: vec![false; n],
            rng,
            counters: MacCounters::default(),
            scratch: IntervalScratch::default(),
            pool: ScopedPool::new(1),
        }
    }

    /// Sets how many shards interval resolution splits its node-indexed
    /// prepass and fanout post-pass into (and up to as many worker
    /// threads). Width 1 — the default — is the fully serial,
    /// zero-allocation path; any width produces byte-identical
    /// outcomes, so this is purely a throughput knob and deliberately
    /// *not* part of [`MacConfig`] (scenario hashing must not see it).
    pub fn set_shard_width(&mut self, width: usize) {
        self.pool = ScopedPool::new(width);
    }

    /// The configured shard width.
    pub fn shard_width(&self) -> usize {
        self.pool.threads()
    }

    /// The MAC configuration.
    pub fn config(&self) -> &MacConfig {
        &self.cfg
    }

    /// The PHY in use.
    pub fn phy(&self) -> &Phy {
        &self.phy
    }

    /// Cumulative statistics.
    pub fn counters(&self) -> MacCounters {
        self.counters
    }

    /// Queue length of a node.
    pub fn queue_len(&self, node: NodeId) -> usize {
        self.queues[node.index()].len()
    }

    /// Replaces the injected frame-loss probability. Fault injection
    /// raises this during corruption bursts and restores the configured
    /// baseline afterwards.
    ///
    /// # Panics
    ///
    /// Panics unless `p` is a probability.
    pub fn set_frame_loss_prob(&mut self, p: f64) {
        assert!(
            p.is_finite() && (0.0..=1.0).contains(&p),
            "invalid loss probability {p}"
        );
        self.cfg.frame_loss_prob = p;
    }

    /// Empties a node's transmit queue, returning the abandoned frames —
    /// what a crash does to buffered traffic. The frames are not counted
    /// as queue-full drops; the caller owns their accounting.
    pub fn purge_node(&mut self, node: NodeId) -> Vec<crate::queue::Queued<P>> {
        self.pending[node.index()] = false;
        self.queues[node.index()].drain_all()
    }

    /// Hands a frame to the MAC for transmission via the PSM path.
    /// Returns the frame when the queue is full.
    pub fn enqueue(
        &mut self,
        from: NodeId,
        frame: MacFrame<P>,
        now: SimTime,
    ) -> Result<(), MacFrame<P>> {
        match self.queues[from.index()].push(frame, now) {
            Ok(()) => {
                self.pending[from.index()] = true;
                Ok(())
            }
            Err(f) => {
                self.counters.queue_drops += 1;
                Err(f)
            }
        }
    }

    /// Airtime of a unicast ATIM/ACK handshake.
    fn atim_unicast_time(&self) -> SimDuration {
        self.phy
            .unicast_exchange_time(self.cfg.atim_bytes, self.cfg.ack_bytes)
    }

    /// Airtime of a broadcast ATIM.
    fn atim_broadcast_time(&self) -> SimDuration {
        self.phy.broadcast_time(self.cfg.atim_bytes)
    }

    /// Airtime of a unicast data/ACK exchange for `payload_bytes`.
    fn data_unicast_time(&self, payload_bytes: usize) -> SimDuration {
        self.phy.unicast_exchange_time(
            payload_bytes + self.cfg.mac_header_bytes,
            self.cfg.ack_bytes,
        )
    }

    /// Airtime of a broadcast data frame for `payload_bytes`.
    fn data_broadcast_time(&self, payload_bytes: usize) -> SimDuration {
        self.phy
            .broadcast_time(payload_bytes + self.cfg.mac_header_bytes)
    }

    /// Fills `out` with the nodes whose channel an `s → r` exchange
    /// occupies.
    fn affected_unicast_into(nt: &NeighborTable, s: NodeId, r: NodeId, out: &mut Vec<NodeId>) {
        out.clear();
        out.push(s);
        out.push(r);
        out.extend_from_slice(nt.neighbors(s));
        out.extend_from_slice(nt.neighbors(r));
        // The sender and receiver neighbor slices overlap; the budget
        // charges duplicates once, so deduplicating only trims the
        // per-reservation scan.
        out.sort_unstable();
        out.dedup();
    }

    /// Fills `out` with the nodes whose channel a broadcast from `s`
    /// occupies.
    fn affected_broadcast_into(nt: &NeighborTable, s: NodeId, out: &mut Vec<NodeId>) {
        out.clear();
        out.push(s);
        out.extend_from_slice(nt.neighbors(s));
    }

    /// Resolves one beacon interval starting at `start`, returning a
    /// freshly allocated outcome. Convenience wrapper over
    /// [`run_interval_into`](Self::run_interval_into) — the simulator's
    /// hot loop uses the latter with a reused outcome.
    pub fn run_interval(
        &mut self,
        start: SimTime,
        nt: &NeighborTable,
        policy: &mut dyn WakePolicy,
    ) -> IntervalOutcome<P>
    where
        P: Sync,
    {
        let mut out = IntervalOutcome::default();
        self.run_interval_into(start, nt, policy, &mut out);
        out
    }

    /// Resolves one beacon interval starting at `start` into a
    /// caller-owned outcome, clearing and refilling every field so the
    /// outcome's allocations survive across intervals.
    ///
    /// `nt` must describe node positions at `start`; `policy` supplies
    /// per-node power modes and randomized-overhearing decisions.
    pub fn run_interval_into(
        &mut self,
        start: SimTime,
        nt: &NeighborTable,
        policy: &mut dyn WakePolicy,
        out: &mut IntervalOutcome<P>,
    ) where
        P: Sync,
    {
        self.run_interval_observed(start, nt, policy, out, &mut NullMacObserver);
    }

    /// Like [`run_interval_into`](Self::run_interval_into), but reports
    /// each per-node decision to `obs` as it is made. The resolution
    /// itself is byte-identical with or without an observer — the tap
    /// is strictly read-only.
    pub fn run_interval_observed(
        &mut self,
        start: SimTime,
        nt: &NeighborTable,
        policy: &mut dyn WakePolicy,
        out: &mut IntervalOutcome<P>,
        obs: &mut dyn MacObserver,
    ) where
        P: Sync,
    {
        let n = self.queues.len();
        debug_assert_eq!(nt.len(), n, "neighbor table size mismatch");

        out.start = start;
        let deliveries = &mut out.deliveries;
        let failures = &mut out.failures;
        deliveries.clear();
        failures.clear();

        // Shard geometry: the prepass and post-pass chunk nodes (and
        // deliveries) into `shards` contiguous ascending ranges, so
        // consuming lanes in shard order is index order and the result
        // is byte-identical for every width.
        let shards = self.pool.threads().min(n.max(1));
        let node_chunk = n.div_ceil(shards.max(1)).max(1);

        // Working state lives on `self` between intervals; detach it so
        // the resolver can borrow queues/counters/rng freely.
        let mut scr = std::mem::take(&mut self.scratch);

        // AM nodes are awake regardless of traffic; PSM commitments are
        // tracked separately in `committed`.
        let awake = &mut scr.awake;
        awake.clear();
        awake.extend((0..n).map(|i| policy.mode(NodeId::new(i as u32)) == PowerMode::Active));
        let committed = &mut scr.committed;
        committed.clear();
        committed.resize(n, false);
        // Doze bookkeeping: `full_wake` marks unbounded commitments;
        // `doze_at` tracks when a bounded commitment lets the node doze.
        let full_wake = &mut scr.full_wake;
        full_wake.clear();
        full_wake.resize(n, false);
        let doze_at = &mut scr.doze_at;
        doze_at.clear();
        doze_at.resize(n, start + self.cfg.atim_window);
        // Which randomized overhearers accepted which sender's ATIM.
        // Inner vectors are cleared, not dropped, to keep their storage.
        let accepted = &mut scr.accepted;
        // det: hot-ok — resize pads with empty (allocation-free) vecs
        // once; steady state reuses the cleared inner storage below.
        accepted.resize(n, Vec::new());
        for a in accepted.iter_mut() {
            a.clear();
        }
        let affected = &mut scr.affected;

        // ---- Prepass: per-node advertisement candidates (sharded) ------
        // `destinations_into` and `strongest_level_for` are pure reads
        // of one node's queue; phase 1 only mutates the queue of the
        // node it is processing, and evicting one destination's frames
        // never changes another destination's strongest level. So the
        // candidate lists can be read off the queues up front, shard-
        // parallel, without changing a byte of phase 1's behavior.
        scr.prepass.resize_with(shards, PrepassLane::default);
        {
            let queues = &self.queues;
            let pending = &self.pending;
            self.pool.map_shards(&mut scr.prepass, |s, lane| {
                lane.out.clear();
                let lo = (s * node_chunk).min(n);
                let hi = ((s + 1) * node_chunk).min(n);
                for (i, q) in queues[lo..hi].iter().enumerate() {
                    // Idle nodes emit no candidates; the pending lane
                    // lets the scan skip them without touching the
                    // queue's storage at all.
                    if !pending[lo + i] {
                        continue;
                    }
                    let sender = NodeId::new((lo + i) as u32);
                    q.destinations_into(&mut lane.dests);
                    for &dest in lane.dests.iter() {
                        lane.out.push((sender, dest, q.strongest_level_for(dest)));
                    }
                }
            });
        }

        // ---- Phase 1: ATIM window -------------------------------------
        let atim_budget = &mut scr.atim_budget;
        atim_budget.reset(n, self.cfg.atim_window);
        let atim_uni = self.atim_unicast_time();
        let atim_bc = self.atim_broadcast_time();
        let announcements = &mut scr.announcements;
        announcements.clear();

        for lane in scr.prepass.iter() {
            for &(sender, dest, advertised) in lane.out.iter() {
                let i = sender.index();
                match dest {
                    Destination::Broadcast => {
                        Self::affected_broadcast_into(nt, sender, affected);
                        if atim_budget
                            .try_reserve(affected.iter().copied(), atim_bc)
                            .is_some()
                        {
                            self.counters.atim_broadcast += 1;
                            obs.atim_broadcast(start, sender);
                            awake[i] = true;
                            committed[i] = true;
                            full_wake[i] = true;
                            let level = advertised.unwrap_or(OverhearingLevel::Unconditional);
                            for &x in nt.neighbors(sender) {
                                // Standard PSM commits every neighbor to
                                // the broadcast; the randomized level is
                                // the paper's broadcast-Rcast extension.
                                if level == OverhearingLevel::Randomized {
                                    if !awake[x.index()]
                                        && policy.overhear_broadcast(x, sender, nt)
                                    {
                                        awake[x.index()] = true;
                                        committed[x.index()] = true;
                                        full_wake[x.index()] = true;
                                    }
                                } else {
                                    awake[x.index()] = true;
                                    committed[x.index()] = true;
                                    full_wake[x.index()] = true;
                                }
                            }
                            announcements.push(Announcement {
                                sender,
                                dest,
                                level,
                            });
                        } else {
                            self.counters.atim_deferred += 1;
                            obs.atim_deferred(start, sender);
                        }
                    }
                    Destination::Unicast(r) => {
                        if !nt.are_neighbors(sender, r) {
                            // No ATIM-ACK: the receiver moved away.
                            self.counters.atim_no_ack += 1;
                            obs.atim_no_ack(start, sender, r);
                            let attempts = self.queues[i].bump_attempts_for(dest);
                            if attempts >= self.cfg.atim_retry_limit {
                                self.counters.link_failures += 1;
                                let fail_at = start + self.cfg.atim_window;
                                obs.link_broken(fail_at, sender, r);
                                self.queues[i].remove_all_for_with(dest, |q| {
                                    failures.push(LinkFailure {
                                        sender,
                                        receiver: r,
                                        at: fail_at,
                                        frame: q.frame,
                                    });
                                });
                                self.pending[i] = !self.queues[i].is_empty();
                            }
                            continue;
                        }
                        Self::affected_unicast_into(nt, sender, r, affected);
                        if atim_budget
                            .try_reserve(affected.iter().copied(), atim_uni)
                            .is_some()
                        {
                            self.counters.atim_unicast += 1;
                            obs.atim_unicast(start, sender, r);
                            awake[i] = true;
                            committed[i] = true;
                            awake[r.index()] = true;
                            committed[r.index()] = true;
                            self.queues[i].reset_attempts_for(dest);
                            let level = advertised.unwrap_or(OverhearingLevel::None);
                            announcements.push(Announcement {
                                sender,
                                dest,
                                level,
                            });
                        } else {
                            self.counters.atim_deferred += 1;
                            obs.atim_deferred(start, sender);
                        }
                    }
                }
            }
        }

        // ---- Phase 2: overhearing decisions ----------------------------
        for a in announcements.iter() {
            let Destination::Unicast(r) = a.dest else {
                continue; // broadcast already woke everyone in range
            };
            match a.level {
                OverhearingLevel::None => {}
                OverhearingLevel::Unconditional => {
                    // Promiscuous listening has no announced end: the
                    // whole interval is committed.
                    for &x in nt.neighbors(a.sender) {
                        if x != r {
                            awake[x.index()] = true;
                            committed[x.index()] = true;
                            full_wake[x.index()] = true;
                        }
                    }
                }
                OverhearingLevel::Randomized => {
                    for &x in nt.neighbors(a.sender) {
                        if x != r
                            && !awake[x.index()]
                            && policy.overhear(x, a.sender, a.level, nt)
                        {
                            awake[x.index()] = true;
                            committed[x.index()] = true;
                            accepted[a.sender.index()].push(x);
                            obs.overhear_commit(start, x, a.sender);
                        }
                    }
                }
            }
        }

        // ---- Phase 3: data window --------------------------------------
        let data_start = start + self.cfg.atim_window;
        let data_budget = &mut scr.data_budget;
        data_budget.reset(n, self.cfg.data_window());

        for a in announcements.iter() {
            let qi = a.sender.index();
            match a.dest {
                Destination::Broadcast => {
                    while let Some(idx) = self.queues[qi].first_for(Destination::Broadcast) {
                        let bytes = self.queues[qi].get(idx).expect("valid index").frame.bytes;
                        let dur = self.data_broadcast_time(bytes);
                        Self::affected_broadcast_into(nt, a.sender, affected);
                        match data_budget.try_reserve(affected.iter().copied(), dur) {
                            Some(offset) => {
                                obs.airtime_reserved(data_start + offset, a.sender, dur);
                                let q = self.queues[qi].remove(idx);
                                self.counters.broadcast_delivered += 1;
                                // Recipients are resolved in the fanout
                                // post-pass: `awake` is final by now.
                                deliveries.push(Delivery {
                                    sender: a.sender,
                                    receiver: None,
                                    fanout: Fanout::default(),
                                    at: data_start + offset + dur,
                                    enqueued_at: q.enqueued_at,
                                    frame: q.frame,
                                });
                            }
                            None => {
                                self.counters.data_deferred += 1;
                                obs.data_deferred(data_start, a.sender);
                                full_wake[qi] = true;
                                break;
                            }
                        }
                    }
                }
                Destination::Unicast(r) => {
                    while let Some(idx) = self.queues[qi].first_for(a.dest) {
                        let bytes = self.queues[qi].get(idx).expect("valid index").frame.bytes;
                        let dur = self.data_unicast_time(bytes);
                        Self::affected_unicast_into(nt, a.sender, r, affected);
                        match data_budget.try_reserve(affected.iter().copied(), dur) {
                            Some(offset) => {
                                obs.airtime_reserved(data_start + offset, a.sender, dur);
                                if self.cfg.frame_loss_prob > 0.0
                                    && self.rng.chance(self.cfg.frame_loss_prob)
                                {
                                    // Lost on the air: the sender retries
                                    // next interval (frame stays queued);
                                    // both ends keep waiting.
                                    self.counters.data_lost += 1;
                                    obs.data_lost(data_start + offset + dur, a.sender, r);
                                    full_wake[qi] = true;
                                    full_wake[r.index()] = true;
                                    break;
                                }
                                let q = self.queues[qi].remove(idx);
                                self.counters.data_delivered += 1;
                                let end = data_start + offset + dur;
                                for x in [a.sender, r]
                                    .into_iter()
                                    .chain(accepted[qi].iter().copied())
                                {
                                    if doze_at[x.index()] < end {
                                        doze_at[x.index()] = end;
                                    }
                                }
                                deliveries.push(Delivery {
                                    sender: a.sender,
                                    receiver: Some(r),
                                    fanout: Fanout::default(),
                                    at: data_start + offset + dur,
                                    enqueued_at: q.enqueued_at,
                                    frame: q.frame,
                                });
                            }
                            None => {
                                // The pair waits out the window hoping
                                // for airtime that never comes.
                                self.counters.data_deferred += 1;
                                obs.data_deferred(data_start, a.sender);
                                full_wake[qi] = true;
                                full_wake[r.index()] = true;
                                break;
                            }
                        }
                    }
                }
            }
            // Phase 3 removed frames for this sender; refresh its
            // pending-traffic flag for the next interval's prepass.
            self.pending[qi] = !self.queues[qi].is_empty();
        }

        // Keep on-air ordering for downstream consumers. Sorting
        // happens *before* fanout resolution so the fanout buffer is
        // laid out in on-air order for every shard width.
        deliveries.sort_by_key(|d| d.at);

        // ---- Post-pass: fanout + committed-awake (sharded) -------------
        // Both are pure functions of the settled phase-2 `awake` and
        // phase-3 doze state, computed per delivery / per node.
        let bi = self.cfg.beacon_interval;
        let aw = self.cfg.atim_window;
        let doze_after = self.cfg.doze_after_transfer;
        let nd = deliveries.len();
        out.fanout.clear();
        out.committed_awake.clear();
        let awake_r: &[bool] = awake;
        let committed_r: &[bool] = committed;
        let full_wake_r: &[bool] = full_wake;
        let doze_at_r: &[SimTime] = doze_at;
        if shards <= 1 {
            // Serial fast path: write straight into the outcome, no
            // lanes, no allocations.
            for d in deliveries.iter_mut() {
                let first = out.fanout.len() as u32;
                let (rec, ovh) = delivery_fanout(d, nt, awake_r, &mut out.fanout);
                d.fanout = Fanout {
                    start: first,
                    recipients: rec,
                    overhearers: ovh,
                };
            }
            out.committed_awake.extend((0..n).map(|i| {
                committed_duration(
                    i, committed_r, full_wake_r, doze_at_r, start, aw, bi, doze_after,
                )
            }));
        } else {
            scr.merge.resize_with(shards, MergeLane::default);
            let delivery_chunk = nd.div_ceil(shards).max(1);
            let deliveries_r: &[Delivery<P>] = deliveries;
            self.pool.map_shards(&mut scr.merge, |s, lane| {
                lane.fanout.clear();
                lane.counts.clear();
                lane.committed.clear();
                let lo = (s * delivery_chunk).min(nd);
                let hi = ((s + 1) * delivery_chunk).min(nd);
                for d in &deliveries_r[lo..hi] {
                    lane.counts.push(delivery_fanout(d, nt, awake_r, &mut lane.fanout));
                }
                let nlo = (s * node_chunk).min(n);
                let nhi = ((s + 1) * node_chunk).min(n);
                for i in nlo..nhi {
                    lane.committed.push(committed_duration(
                        i, committed_r, full_wake_r, doze_at_r, start, aw, bi, doze_after,
                    ));
                }
            });
            // Serial merge in shard order = delivery/node index order.
            let mut di = 0usize;
            for lane in scr.merge.iter() {
                let mut off = out.fanout.len() as u32;
                out.fanout.extend_from_slice(&lane.fanout);
                for &(rec, ovh) in lane.counts.iter() {
                    deliveries[di].fanout = Fanout {
                        start: off,
                        recipients: rec,
                        overhearers: ovh,
                    };
                    off += rec + ovh;
                    di += 1;
                }
                out.committed_awake.extend_from_slice(&lane.committed);
            }
            debug_assert_eq!(di, nd, "every delivery got its fanout");
        }

        out.awake.clear();
        out.awake.extend_from_slice(awake);
        out.ps_awake.clear();
        out.ps_awake.extend_from_slice(committed);

        self.scratch = scr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wake::AllPowerSave;
    use rcast_mobility::{Area, Snapshot, Vec2};

    type Mac = MacLayer<&'static str>;

    fn line_topology(xs: &[f64]) -> NeighborTable {
        let snap = Snapshot::from_positions(
            xs.iter().map(|&x| Vec2::new(x, 0.0)).collect(),
            Area::new(10_000.0, 10.0),
            SimTime::ZERO,
        );
        NeighborTable::build(&snap, 250.0)
    }

    fn mac(n: usize) -> Mac {
        MacLayer::new(
            n,
            MacConfig::default(),
            Phy::default(),
            StreamRng::from_seed(7),
        )
    }

    fn ps(overhear: bool) -> AllPowerSave {
        AllPowerSave {
            overhear_randomized: overhear,
        }
    }

    #[test]
    fn unicast_delivery_with_no_overhearing() {
        // 0 -- 1 -- 2: node 2 hears node 1's ATIM but not the data for
        // level None, so it sleeps.
        let nt = line_topology(&[0.0, 200.0, 400.0]);
        let mut m = mac(3);
        m.enqueue(
            NodeId::new(1),
            MacFrame::unicast(NodeId::new(0), OverhearingLevel::None, 512, "d"),
            SimTime::ZERO,
        )
        .unwrap();
        let out = m.run_interval(SimTime::ZERO, &nt, &mut ps(false));
        assert_eq!(out.deliveries.len(), 1);
        let d = &out.deliveries[0];
        assert_eq!(d.sender, NodeId::new(1));
        assert_eq!(d.receiver, Some(NodeId::new(0)));
        assert!(d.fanout.overhearers(&out.fanout).is_empty());
        assert_eq!(out.awake, vec![true, true, false]);
        assert!(d.at > SimTime::ZERO + MacConfig::default().atim_window);
        assert_eq!(m.counters().data_delivered, 1);
    }

    #[test]
    fn unconditional_overhearing_wakes_all_neighbors() {
        let nt = line_topology(&[0.0, 200.0, 400.0]);
        let mut m = mac(3);
        m.enqueue(
            NodeId::new(1),
            MacFrame::unicast(NodeId::new(0), OverhearingLevel::Unconditional, 512, "d"),
            SimTime::ZERO,
        )
        .unwrap();
        let out = m.run_interval(SimTime::ZERO, &nt, &mut ps(false));
        assert_eq!(out.awake, vec![true, true, true]);
        assert_eq!(
            out.deliveries[0].fanout.overhearers(&out.fanout),
            [NodeId::new(2)]
        );
    }

    #[test]
    fn randomized_overhearing_consults_policy() {
        let nt = line_topology(&[0.0, 200.0, 400.0]);
        for (ans, expect_awake) in [(false, false), (true, true)] {
            let mut m = mac(3);
            m.enqueue(
                NodeId::new(1),
                MacFrame::unicast(NodeId::new(0), OverhearingLevel::Randomized, 512, "d"),
                SimTime::ZERO,
            )
            .unwrap();
            let out = m.run_interval(SimTime::ZERO, &nt, &mut ps(ans));
            assert_eq!(out.awake[2], expect_awake, "policy answer {ans}");
        }
    }

    #[test]
    fn broadcast_reaches_all_neighbors() {
        let nt = line_topology(&[0.0, 200.0, 400.0]);
        let mut m = mac(3);
        m.enqueue(NodeId::new(1), MacFrame::broadcast(64, "rreq"), SimTime::ZERO)
            .unwrap();
        let out = m.run_interval(SimTime::ZERO, &nt, &mut ps(false));
        assert_eq!(out.deliveries.len(), 1);
        let d = &out.deliveries[0];
        assert_eq!(d.receiver, None);
        assert_eq!(
            d.fanout.recipients(&out.fanout),
            [NodeId::new(0), NodeId::new(2)]
        );
        // Everyone who must receive the broadcast stays awake.
        assert_eq!(out.awake, vec![true, true, true]);
        assert_eq!(m.counters().broadcast_delivered, 1);
    }

    #[test]
    fn randomized_broadcast_lets_neighbors_sleep() {
        struct NeverReceive;
        impl crate::wake::WakePolicy for NeverReceive {
            fn mode(&self, _n: NodeId) -> crate::wake::PowerMode {
                crate::wake::PowerMode::PowerSave
            }
            fn overhear(
                &mut self,
                _o: NodeId,
                _s: NodeId,
                _l: OverhearingLevel,
                _nt: &NeighborTable,
            ) -> bool {
                false
            }
            fn overhear_broadcast(
                &mut self,
                _o: NodeId,
                _s: NodeId,
                _nt: &NeighborTable,
            ) -> bool {
                false
            }
        }
        let nt = line_topology(&[0.0, 200.0, 400.0]);
        let mut m = mac(3);
        m.enqueue(
            NodeId::new(1),
            MacFrame::broadcast_with_level(OverhearingLevel::Randomized, 64, "rreq"),
            SimTime::ZERO,
        )
        .unwrap();
        let out = m.run_interval(SimTime::ZERO, &nt, &mut NeverReceive);
        assert_eq!(out.deliveries.len(), 1);
        assert!(
            out.deliveries[0].fanout.recipients(&out.fanout).is_empty(),
            "all neighbors elected to sleep through the broadcast"
        );
        assert_eq!(out.awake, vec![false, true, false]);
    }

    #[test]
    fn out_of_range_receiver_breaks_link_after_retries() {
        let nt = line_topology(&[0.0, 1000.0]);
        let mut m = mac(2);
        m.enqueue(
            NodeId::new(0),
            MacFrame::unicast(NodeId::new(1), OverhearingLevel::None, 512, "d"),
            SimTime::ZERO,
        )
        .unwrap();
        let limit = MacConfig::default().atim_retry_limit;
        let mut failures = Vec::new();
        for k in 0..limit {
            let out = m.run_interval(
                SimTime::from_millis(250 * k as u64),
                &nt,
                &mut ps(false),
            );
            assert!(out.deliveries.is_empty());
            failures.extend(out.failures);
        }
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].receiver, NodeId::new(1));
        assert_eq!(failures[0].frame.payload, "d");
        assert_eq!(m.counters().link_failures, 1);
        assert_eq!(m.queue_len(NodeId::new(0)), 0);
    }

    #[test]
    fn receiver_back_in_range_resets_attempts() {
        let far = line_topology(&[0.0, 1000.0]);
        let near = line_topology(&[0.0, 100.0]);
        let mut m = mac(2);
        m.enqueue(
            NodeId::new(0),
            MacFrame::unicast(NodeId::new(1), OverhearingLevel::None, 512, "d"),
            SimTime::ZERO,
        )
        .unwrap();
        // Two silent intervals (limit is 3), then the receiver returns.
        for k in 0..2 {
            let out = m.run_interval(SimTime::from_millis(250 * k), &far, &mut ps(false));
            assert!(out.failures.is_empty());
        }
        let out = m.run_interval(SimTime::from_millis(500), &near, &mut ps(false));
        assert_eq!(out.deliveries.len(), 1);
        assert!(out.failures.is_empty());
    }

    #[test]
    fn data_window_capacity_defers_excess_traffic() {
        // One sender, one receiver, queue far more than 200 ms of data.
        let nt = line_topology(&[0.0, 100.0]);
        let mut m = mac(2);
        // 512 B + 28 B header at 2 Mbps ≈ 2.7 ms per exchange;
        // 200 ms fits ~70 frames. Queue 50 (capacity) — all fit.
        // Use 12 000-byte frames instead: ~48.8 ms each, only 4 fit.
        for _ in 0..10 {
            m.enqueue(
                NodeId::new(0),
                MacFrame::unicast(NodeId::new(1), OverhearingLevel::None, 12_000, "big"),
                SimTime::ZERO,
            )
            .unwrap();
        }
        let out = m.run_interval(SimTime::ZERO, &nt, &mut ps(false));
        assert!(out.deliveries.len() < 10, "{}", out.deliveries.len());
        assert!(!out.deliveries.is_empty());
        assert_eq!(
            m.queue_len(NodeId::new(0)),
            10 - out.deliveries.len()
        );
        assert!(m.counters().data_deferred > 0);
    }

    #[test]
    fn spatially_separated_pairs_transmit_in_parallel() {
        // Two pairs far apart: both fully drain in one interval even
        // with frames that would exceed the window if serialized.
        let nt = line_topology(&[0.0, 100.0, 5000.0, 5100.0]);
        let mut m = mac(4);
        for _ in 0..4 {
            m.enqueue(
                NodeId::new(0),
                MacFrame::unicast(NodeId::new(1), OverhearingLevel::None, 12_000, "a"),
                SimTime::ZERO,
            )
            .unwrap();
            m.enqueue(
                NodeId::new(2),
                MacFrame::unicast(NodeId::new(3), OverhearingLevel::None, 12_000, "b"),
                SimTime::ZERO,
            )
            .unwrap();
        }
        let out = m.run_interval(SimTime::ZERO, &nt, &mut ps(false));
        assert_eq!(out.deliveries.len(), 8);
    }

    #[test]
    fn active_nodes_always_awake_and_overhear() {
        let nt = line_topology(&[0.0, 200.0, 400.0]);
        let mut m = mac(3);
        m.enqueue(
            NodeId::new(1),
            MacFrame::unicast(NodeId::new(0), OverhearingLevel::None, 512, "d"),
            SimTime::ZERO,
        )
        .unwrap();
        let mut policy = crate::wake::AllActive;
        let out = m.run_interval(SimTime::ZERO, &nt, &mut policy);
        assert_eq!(out.awake, vec![true, true, true]);
        // Node 2 is awake (AM), so it physically overhears even though
        // the sender requested no overhearing.
        assert_eq!(
            out.deliveries[0].fanout.overhearers(&out.fanout),
            [NodeId::new(2)]
        );
    }

    #[test]
    fn injected_loss_keeps_frame_queued() {
        let nt = line_topology(&[0.0, 100.0]);
        let cfg = MacConfig {
            frame_loss_prob: 1.0, // always lose
            ..MacConfig::default()
        };
        let mut m: Mac = MacLayer::new(2, cfg, Phy::default(), StreamRng::from_seed(1));
        m.enqueue(
            NodeId::new(0),
            MacFrame::unicast(NodeId::new(1), OverhearingLevel::None, 512, "d"),
            SimTime::ZERO,
        )
        .unwrap();
        let out = m.run_interval(SimTime::ZERO, &nt, &mut ps(false));
        assert!(out.deliveries.is_empty());
        assert_eq!(m.queue_len(NodeId::new(0)), 1);
        assert_eq!(m.counters().data_lost, 1);
    }

    #[test]
    fn loss_prob_override_and_purge() {
        let nt = line_topology(&[0.0, 100.0]);
        let mut m = mac(2);
        m.enqueue(
            NodeId::new(0),
            MacFrame::unicast(NodeId::new(1), OverhearingLevel::None, 512, "d"),
            SimTime::ZERO,
        )
        .unwrap();
        // A full-loss burst keeps the frame queued…
        m.set_frame_loss_prob(1.0);
        let out = m.run_interval(SimTime::ZERO, &nt, &mut ps(false));
        assert!(out.deliveries.is_empty());
        assert_eq!(m.queue_len(NodeId::new(0)), 1);
        // …then a crash purges it without touching drop counters.
        let purged = m.purge_node(NodeId::new(0));
        assert_eq!(purged.len(), 1);
        assert_eq!(purged[0].frame.payload, "d");
        assert_eq!(m.queue_len(NodeId::new(0)), 0);
        assert_eq!(m.counters().queue_drops, 0);
        // Restoring the baseline lets traffic flow again.
        m.set_frame_loss_prob(0.0);
        m.enqueue(
            NodeId::new(0),
            MacFrame::unicast(NodeId::new(1), OverhearingLevel::None, 512, "e"),
            SimTime::from_millis(250),
        )
        .unwrap();
        let out = m.run_interval(SimTime::from_millis(250), &nt, &mut ps(false));
        assert_eq!(out.deliveries.len(), 1);
    }

    #[test]
    fn deliveries_are_time_ordered() {
        let nt = line_topology(&[0.0, 100.0, 5000.0, 5100.0]);
        let mut m = mac(4);
        for i in 0..3 {
            m.enqueue(
                NodeId::new(0),
                MacFrame::unicast(NodeId::new(1), OverhearingLevel::None, 512 + i, "a"),
                SimTime::ZERO,
            )
            .unwrap();
            m.enqueue(
                NodeId::new(2),
                MacFrame::unicast(NodeId::new(3), OverhearingLevel::None, 512 + i, "b"),
                SimTime::ZERO,
            )
            .unwrap();
        }
        let out = m.run_interval(SimTime::ZERO, &nt, &mut ps(false));
        assert!(out.deliveries.windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn queue_overflow_counted() {
        let nt = line_topology(&[0.0, 100.0]);
        let mut m = mac(2);
        let cap = MacConfig::default().queue_capacity;
        for _ in 0..cap {
            m.enqueue(
                NodeId::new(0),
                MacFrame::unicast(NodeId::new(1), OverhearingLevel::None, 512, "d"),
                SimTime::ZERO,
            )
            .unwrap();
        }
        assert!(m
            .enqueue(
                NodeId::new(0),
                MacFrame::unicast(NodeId::new(1), OverhearingLevel::None, 512, "x"),
                SimTime::ZERO,
            )
            .is_err());
        assert_eq!(m.counters().queue_drops, 1);
        let _ = nt;
    }
}
