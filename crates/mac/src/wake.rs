//! Power-management modes and the wake/overhear policy interface.

use rcast_engine::NodeId;
use rcast_mobility::NeighborTable;

use crate::frame::OverhearingLevel;

/// A node's 802.11 power-management mode during a beacon interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PowerMode {
    /// Active mode (AM): radio on for the whole interval.
    Active,
    /// Power-save mode (PS): awake for the ATIM window, then asleep
    /// unless committed to a transfer or an overhearing decision.
    PowerSave,
}

/// The scheme-specific policy consulted by the MAC while resolving a
/// beacon interval.
///
/// The four schemes of the paper differ exactly here:
///
/// * **802.11** — every node reports [`PowerMode::Active`];
///   `overhear` is never reached (nothing goes through ATIM).
/// * **PSM** — every node reports [`PowerMode::PowerSave`] and frames
///   carry [`OverhearingLevel::Unconditional`], so `overhear` is never
///   consulted either.
/// * **ODPM** — `mode` reflects the event-driven AM/PS timeout machine;
///   PS nodes never overhear.
/// * **Rcast** — every node is PS and `overhear` implements the
///   randomized decision (`P_R = 1/#neighbors` plus optional factors).
pub trait WakePolicy {
    /// The node's mode for the interval being resolved.
    fn mode(&self, node: NodeId) -> PowerMode;

    /// Whether `observer` (a PS node that would otherwise sleep) elects
    /// to stay awake for a transmission advertised by `sender` with
    /// [`OverhearingLevel::Randomized`]. Only called for the randomized
    /// level — `None` and `Unconditional` are resolved by the MAC.
    fn overhear(
        &mut self,
        observer: NodeId,
        sender: NodeId,
        level: OverhearingLevel,
        neighbors: &NeighborTable,
    ) -> bool;

    /// Whether `observer` elects to stay awake for a **broadcast**
    /// advertised with [`OverhearingLevel::Randomized`] — the paper's
    /// proposed extension of Rcast to broadcast traffic (randomized
    /// *receiving* to curb redundant rebroadcasts). The default keeps
    /// the standard-conformant behaviour: every neighbor receives every
    /// broadcast.
    fn overhear_broadcast(
        &mut self,
        _observer: NodeId,
        _sender: NodeId,
        _neighbors: &NeighborTable,
    ) -> bool {
        true
    }
}

/// Every node always active — the 802.11-without-PSM baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct AllActive;

impl WakePolicy for AllActive {
    fn mode(&self, _node: NodeId) -> PowerMode {
        PowerMode::Active
    }

    fn overhear(
        &mut self,
        _observer: NodeId,
        _sender: NodeId,
        _level: OverhearingLevel,
        _neighbors: &NeighborTable,
    ) -> bool {
        true
    }
}

/// Every node in PS mode with a fixed answer to randomized-overhearing
/// requests — handy for MAC-level tests.
#[derive(Debug, Clone, Copy)]
pub struct AllPowerSave {
    /// The fixed answer to randomized-overhearing consultations.
    pub overhear_randomized: bool,
}

impl WakePolicy for AllPowerSave {
    fn mode(&self, _node: NodeId) -> PowerMode {
        PowerMode::PowerSave
    }

    fn overhear(
        &mut self,
        _observer: NodeId,
        _sender: NodeId,
        _level: OverhearingLevel,
        _neighbors: &NeighborTable,
    ) -> bool {
        self.overhear_randomized
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcast_engine::SimTime;
    use rcast_mobility::{Area, Snapshot};

    fn table() -> NeighborTable {
        let snap = Snapshot::from_positions(vec![], Area::new(1.0, 1.0), SimTime::ZERO);
        NeighborTable::build(&snap, 1.0)
    }

    #[test]
    fn all_active_reports_active() {
        let p = AllActive;
        assert_eq!(p.mode(NodeId::new(0)), PowerMode::Active);
        assert_eq!(p.mode(NodeId::new(99)), PowerMode::Active);
    }

    #[test]
    fn all_power_save_fixed_answer() {
        let mut yes = AllPowerSave {
            overhear_randomized: true,
        };
        let mut no = AllPowerSave {
            overhear_randomized: false,
        };
        let nt = table();
        assert_eq!(yes.mode(NodeId::new(0)), PowerMode::PowerSave);
        assert!(yes.overhear(
            NodeId::new(0),
            NodeId::new(1),
            OverhearingLevel::Randomized,
            &nt
        ));
        assert!(!no.overhear(
            NodeId::new(0),
            NodeId::new(1),
            OverhearingLevel::Randomized,
            &nt
        ));
    }
}
