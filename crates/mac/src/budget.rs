//! Per-neighborhood airtime budgeting.
//!
//! The simulator resolves each beacon interval's ATIM window and data
//! window by *budgeting* airtime instead of micro-simulating CSMA slots:
//! a transmission occupies the channel for every node that can hear the
//! sender or the receiver (carrier sense), so the sum of exchange times
//! charged against any single node may not exceed the window length.
//! This keeps spatial reuse along the paper's 1500 × 300 m strip (far
//! apart transmissions proceed in parallel) while honoring the hard
//! capacity of a shared 2 Mbps channel.

use rcast_engine::{NodeId, SimDuration};

/// Airtime accounting for one window (ATIM or data) of one interval.
#[derive(Debug, Clone, Default)]
pub struct AirtimeBudget {
    limit: SimDuration,
    used: Vec<SimDuration>,
}

impl AirtimeBudget {
    /// A fresh budget for `n` nodes and a window of length `limit`.
    pub fn new(n: usize, limit: SimDuration) -> Self {
        AirtimeBudget {
            limit,
            used: vec![SimDuration::ZERO; n],
        }
    }

    /// Re-arms the budget in place for a new window — equivalent to
    /// `*self = AirtimeBudget::new(n, limit)` without discarding the
    /// `used` allocation.
    pub fn reset(&mut self, n: usize, limit: SimDuration) {
        self.limit = limit;
        self.used.clear();
        self.used.resize(n, SimDuration::ZERO);
    }

    /// The window length.
    pub fn limit(&self) -> SimDuration {
        self.limit
    }

    /// Airtime already charged against `node`.
    pub fn used(&self, node: NodeId) -> SimDuration {
        self.used[node.index()]
    }

    /// Attempts to reserve `dur` of airtime against every node in
    /// `affected`. On success, returns the transmission's start offset
    /// within the window (the latest busy time among affected nodes,
    /// modelling deferral behind ongoing traffic) and charges all
    /// affected nodes through `offset + dur`. Returns `None` (charging
    /// nothing) when the transmission cannot finish inside the window.
    ///
    /// `affected` may contain duplicates; they are charged once.
    pub fn try_reserve(
        &mut self,
        affected: impl IntoIterator<Item = NodeId> + Clone,
        dur: SimDuration,
    ) -> Option<SimDuration> {
        let offset = affected
            // det: hot-ok — clones the borrowing iterator (a few words
            // on the stack), not a collection; no heap traffic.
            .clone()
            .into_iter()
            .map(|n| self.used[n.index()])
            .max()
            .unwrap_or(SimDuration::ZERO);
        let end = offset + dur;
        if end > self.limit {
            return None;
        }
        for n in affected {
            // Carrier sense: everyone who hears the exchange is busy
            // until it ends, even if they were idle before it started.
            if self.used[n.index()] < end {
                self.used[n.index()] = end;
            }
        }
        Some(offset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u32]) -> Vec<NodeId> {
        v.iter().copied().map(NodeId::new).collect()
    }

    #[test]
    fn sequential_reservations_stack() {
        let mut b = AirtimeBudget::new(3, SimDuration::from_millis(10));
        let d = SimDuration::from_millis(3);
        assert_eq!(b.try_reserve(ids(&[0, 1]), d), Some(SimDuration::ZERO));
        assert_eq!(b.try_reserve(ids(&[0, 1]), d), Some(SimDuration::from_millis(3)));
        assert_eq!(b.try_reserve(ids(&[0, 1]), d), Some(SimDuration::from_millis(6)));
        // Fourth would end at 12 ms > 10 ms.
        assert_eq!(b.try_reserve(ids(&[0, 1]), d), None);
        assert_eq!(b.used(NodeId::new(0)), SimDuration::from_millis(9));
    }

    #[test]
    fn disjoint_neighborhoods_reuse_spatially() {
        let mut b = AirtimeBudget::new(4, SimDuration::from_millis(10));
        let d = SimDuration::from_millis(8);
        // Nodes {0,1} and {2,3} are far apart: both reserve the full slot.
        assert_eq!(b.try_reserve(ids(&[0, 1]), d), Some(SimDuration::ZERO));
        assert_eq!(b.try_reserve(ids(&[2, 3]), d), Some(SimDuration::ZERO));
        assert_eq!(b.used(NodeId::new(2)), SimDuration::from_millis(8));
    }

    #[test]
    fn overlap_defers_behind_busy_node() {
        let mut b = AirtimeBudget::new(3, SimDuration::from_millis(10));
        let d = SimDuration::from_millis(4);
        assert_eq!(b.try_reserve(ids(&[0, 1]), d), Some(SimDuration::ZERO));
        // Node 1 is busy until 4 ms, so a 1↔2 exchange starts there.
        assert_eq!(b.try_reserve(ids(&[1, 2]), d), Some(SimDuration::from_millis(4)));
        // And node 2 is now busy until 8 ms too.
        assert_eq!(b.used(NodeId::new(2)), SimDuration::from_millis(8));
    }

    #[test]
    fn failed_reservation_charges_nothing() {
        let mut b = AirtimeBudget::new(2, SimDuration::from_millis(5));
        assert!(b
            .try_reserve(ids(&[0, 1]), SimDuration::from_millis(6))
            .is_none());
        assert_eq!(b.used(NodeId::new(0)), SimDuration::ZERO);
        assert_eq!(b.used(NodeId::new(1)), SimDuration::ZERO);
    }

    #[test]
    fn duplicates_in_affected_are_harmless() {
        let mut b = AirtimeBudget::new(2, SimDuration::from_millis(10));
        let d = SimDuration::from_millis(5);
        assert_eq!(
            b.try_reserve(ids(&[0, 0, 1, 1]), d),
            Some(SimDuration::ZERO)
        );
        assert_eq!(b.used(NodeId::new(0)), d);
    }

    #[test]
    fn empty_affected_reserves_at_zero() {
        let mut b = AirtimeBudget::new(1, SimDuration::from_millis(1));
        assert_eq!(
            b.try_reserve(ids(&[]), SimDuration::from_millis(1)),
            Some(SimDuration::ZERO)
        );
    }

    #[test]
    fn exact_fit_is_allowed() {
        let mut b = AirtimeBudget::new(1, SimDuration::from_millis(10));
        assert!(b
            .try_reserve(ids(&[0]), SimDuration::from_millis(10))
            .is_some());
        assert!(b
            .try_reserve(ids(&[0]), SimDuration::from_nanos(1))
            .is_none());
    }
}
