//! The immediate (active-mode) transmission path.
//!
//! Nodes in 802.11 without PSM — and ODPM nodes whose next hop is known
//! to be in AM — transmit as soon as a frame arrives instead of waiting
//! for the next beacon interval. [`Channel`] models that path with
//! carrier-sense deferral (per-node busy-until timelines), random
//! backoff, ACK/retry, and promiscuous overhearing by awake neighbors.

use rcast_engine::rng::StreamRng;
use rcast_engine::{NodeId, SimDuration, SimTime};
use rcast_mobility::NeighborTable;
use rcast_radio::Phy;

use crate::config::MacConfig;
use crate::frame::{Destination, MacFrame};
use crate::interval::{Delivery, Fanout, LinkFailure};

/// Maximum random backoff, in slots (802.11 CWmin).
const CW_MIN_SLOTS: u64 = 31;
/// Retry limit for immediate unicast (802.11 short retry limit).
const SHORT_RETRY_LIMIT: u32 = 7;

/// The outcome of an immediate transmission attempt.
#[derive(Debug, Clone)]
pub enum ImmediateResult<P> {
    /// Frame delivered (and possibly overheard).
    Delivered(Delivery<P>),
    /// Frame undeliverable: receiver out of range or retries exhausted.
    Failed(LinkFailure<P>),
}

/// Shared-medium state for the always-on transmission path.
///
/// # Example
///
/// ```
/// use rcast_engine::{NodeId, SimTime, rng::StreamRng};
/// use rcast_mac::{Channel, ImmediateResult, MacConfig, MacFrame, OverhearingLevel};
/// use rcast_mobility::{Area, NeighborTable, Snapshot, Vec2};
/// use rcast_radio::Phy;
///
/// let snap = Snapshot::from_positions(
///     vec![Vec2::new(0.0, 0.0), Vec2::new(100.0, 0.0)],
///     Area::new(1000.0, 10.0), SimTime::ZERO);
/// let nt = NeighborTable::build(&snap, 250.0);
/// let mut ch = Channel::new(2, MacConfig::default(), Phy::default(), StreamRng::from_seed(3));
/// let frame = MacFrame::unicast(NodeId::new(1), OverhearingLevel::None, 512, "pkt");
/// let mut fanout = Vec::new();
/// match ch.transmit(SimTime::ZERO, NodeId::new(0), frame, &nt, |_| true, &mut fanout) {
///     ImmediateResult::Delivered(d) => {
///         assert_eq!(d.receiver, Some(NodeId::new(1)));
///         assert_eq!(d.fanout.recipients(&fanout), [NodeId::new(1)]);
///     }
///     ImmediateResult::Failed(_) => unreachable!(),
/// }
/// ```
#[derive(Debug, Clone)]
pub struct Channel {
    cfg: MacConfig,
    phy: Phy,
    busy_until: Vec<SimTime>,
    rng: StreamRng,
    /// Reused per-transmit scratch for the occupied-node set.
    affected: Vec<NodeId>,
}

impl Channel {
    /// Creates the channel state for `n` nodes.
    pub fn new(n: usize, cfg: MacConfig, phy: Phy, rng: StreamRng) -> Self {
        Channel {
            cfg,
            phy,
            busy_until: vec![SimTime::ZERO; n],
            rng,
            affected: Vec::new(),
        }
    }

    /// When `node`'s channel becomes free.
    pub fn busy_until(&self, node: NodeId) -> SimTime {
        self.busy_until[node.index()]
    }

    /// Replaces the injected frame-loss probability (see
    /// [`MacLayer::set_frame_loss_prob`](crate::MacLayer::set_frame_loss_prob)).
    ///
    /// # Panics
    ///
    /// Panics unless `p` is a probability.
    pub fn set_frame_loss_prob(&mut self, p: f64) {
        assert!(
            p.is_finite() && (0.0..=1.0).contains(&p),
            "invalid loss probability {p}"
        );
        self.cfg.frame_loss_prob = p;
    }

    fn backoff(&mut self) -> SimDuration {
        self.phy.timings.slot * self.rng.below(CW_MIN_SLOTS + 1)
    }

    fn channel_free_at(busy_until: &[SimTime], nodes: &[NodeId], now: SimTime) -> SimTime {
        let mut t = now;
        for &n in nodes {
            t = t.max(busy_until[n.index()]);
        }
        t
    }

    fn occupy(busy_until: &mut [SimTime], nodes: &[NodeId], until: SimTime) {
        for &n in nodes {
            if busy_until[n.index()] < until {
                busy_until[n.index()] = until;
            }
        }
    }

    /// Transmits `frame` from `sender` right now (AM path).
    ///
    /// `is_awake` reports whether a node's radio is on at this moment —
    /// it gates both reception (broadcast) and overhearing. The
    /// addressed receiver of a unicast must be awake, otherwise the
    /// transmission fails after the retry limit.
    ///
    /// On delivery, `fanout` is cleared and refilled with the
    /// recipients-then-overhearers the returned delivery's
    /// [`Fanout`] ranges index (starting at 0 — the buffer holds one
    /// transmission at a time, unlike the interval outcome's shared
    /// buffer).
    pub fn transmit<P>(
        &mut self,
        now: SimTime,
        sender: NodeId,
        frame: MacFrame<P>,
        nt: &NeighborTable,
        is_awake: impl Fn(NodeId) -> bool,
        fanout: &mut Vec<NodeId>,
    ) -> ImmediateResult<P> {
        match frame.to {
            Destination::Broadcast => {
                let dur = self
                    .phy
                    .broadcast_time(frame.bytes + self.cfg.mac_header_bytes);
                self.affected.clear();
                self.affected.push(sender);
                self.affected.extend_from_slice(nt.neighbors(sender));
                let start =
                    Self::channel_free_at(&self.busy_until, &self.affected, now) + self.backoff();
                let end = start + dur;
                Self::occupy(&mut self.busy_until, &self.affected, end);
                fanout.clear();
                let mut rec = 0u32;
                for &x in nt.neighbors(sender) {
                    if is_awake(x) {
                        fanout.push(x);
                        rec += 1;
                    }
                }
                ImmediateResult::Delivered(Delivery {
                    sender,
                    receiver: None,
                    fanout: Fanout {
                        start: 0,
                        recipients: rec,
                        overhearers: 0,
                    },
                    at: end,
                    enqueued_at: now,
                    frame,
                })
            }
            Destination::Unicast(r) => {
                let reachable = nt.are_neighbors(sender, r) && is_awake(r);
                let dur = self
                    .phy
                    .unicast_exchange_time(frame.bytes + self.cfg.mac_header_bytes, self.cfg.ack_bytes);
                self.affected.clear();
                self.affected.push(sender);
                self.affected.push(r);
                self.affected.extend_from_slice(nt.neighbors(sender));
                self.affected.extend_from_slice(nt.neighbors(r));
                // The two neighbor slices overlap in dense topologies (and
                // contain s/r themselves); `channel_free_at` is a max-fold
                // and `occupy` an idempotent max-write, so deduplicating
                // here only removes redundant busy-table visits.
                self.affected.sort_unstable();
                self.affected.dedup();

                let mut t = now;
                for _attempt in 0..SHORT_RETRY_LIMIT {
                    let start =
                        Self::channel_free_at(&self.busy_until, &self.affected, t) + self.backoff();
                    let end = start + dur;
                    Self::occupy(&mut self.busy_until, &self.affected, end);
                    if !reachable {
                        // Attempt burns airtime, then times out.
                        t = end;
                        continue;
                    }
                    if self.cfg.frame_loss_prob > 0.0 && self.rng.chance(self.cfg.frame_loss_prob)
                    {
                        t = end;
                        continue;
                    }
                    fanout.clear();
                    fanout.push(r);
                    let mut ovh = 0u32;
                    for &x in nt.neighbors(sender) {
                        if x != r && is_awake(x) {
                            fanout.push(x);
                            ovh += 1;
                        }
                    }
                    return ImmediateResult::Delivered(Delivery {
                        sender,
                        receiver: Some(r),
                        fanout: Fanout {
                            start: 0,
                            recipients: 1,
                            overhearers: ovh,
                        },
                        at: end,
                        enqueued_at: now,
                        frame,
                    });
                }
                ImmediateResult::Failed(LinkFailure {
                    sender,
                    receiver: r,
                    at: t,
                    frame,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::OverhearingLevel;
    use rcast_mobility::{Area, Snapshot, Vec2};

    fn topology(xs: &[f64]) -> NeighborTable {
        let snap = Snapshot::from_positions(
            xs.iter().map(|&x| Vec2::new(x, 0.0)).collect(),
            Area::new(10_000.0, 10.0),
            SimTime::ZERO,
        );
        NeighborTable::build(&snap, 250.0)
    }

    fn channel(n: usize) -> Channel {
        Channel::new(n, MacConfig::default(), Phy::default(), StreamRng::from_seed(5))
    }

    fn uni(to: u32) -> MacFrame<&'static str> {
        MacFrame::unicast(NodeId::new(to), OverhearingLevel::None, 512, "pkt")
    }

    #[test]
    fn unicast_delivers_quickly() {
        let nt = topology(&[0.0, 100.0]);
        let mut ch = channel(2);
        let mut buf = Vec::new();
        match ch.transmit(SimTime::ZERO, NodeId::new(0), uni(1), &nt, |_| true, &mut buf) {
            ImmediateResult::Delivered(d) => {
                assert_eq!(d.receiver, Some(NodeId::new(1)));
                // Immediate path: milliseconds, not beacon intervals.
                assert!(d.at < SimTime::from_millis(10), "{}", d.at);
            }
            ImmediateResult::Failed(_) => panic!("should deliver"),
        }
    }

    #[test]
    fn out_of_range_fails_after_retries() {
        let nt = topology(&[0.0, 1000.0]);
        let mut ch = channel(2);
        let mut buf = Vec::new();
        match ch.transmit(SimTime::ZERO, NodeId::new(0), uni(1), &nt, |_| true, &mut buf) {
            ImmediateResult::Failed(f) => {
                assert_eq!(f.receiver, NodeId::new(1));
                assert!(f.at > SimTime::ZERO);
            }
            ImmediateResult::Delivered(_) => panic!("should fail"),
        }
    }

    #[test]
    fn sleeping_receiver_fails() {
        let nt = topology(&[0.0, 100.0]);
        let mut ch = channel(2);
        let asleep = |x: NodeId| x != NodeId::new(1);
        let mut buf = Vec::new();
        match ch.transmit(SimTime::ZERO, NodeId::new(0), uni(1), &nt, asleep, &mut buf) {
            ImmediateResult::Failed(f) => assert_eq!(f.receiver, NodeId::new(1)),
            ImmediateResult::Delivered(_) => panic!("receiver is asleep"),
        }
    }

    #[test]
    fn awake_neighbors_overhear() {
        let nt = topology(&[0.0, 100.0, 200.0]);
        let mut ch = channel(3);
        let mut buf = Vec::new();
        match ch.transmit(SimTime::ZERO, NodeId::new(0), uni(1), &nt, |_| true, &mut buf) {
            ImmediateResult::Delivered(d) => {
                assert_eq!(d.fanout.recipients(&buf), [NodeId::new(1)]);
                assert_eq!(d.fanout.overhearers(&buf), [NodeId::new(2)]);
            }
            ImmediateResult::Failed(_) => panic!(),
        }
    }

    #[test]
    fn broadcast_reaches_awake_neighbors_only() {
        let nt = topology(&[0.0, 100.0, 200.0]);
        let mut ch = channel(3);
        let only_node_1 = |x: NodeId| x == NodeId::new(1);
        let mut buf = Vec::new();
        match ch.transmit(
            SimTime::ZERO,
            NodeId::new(0),
            MacFrame::broadcast(64, "rreq"),
            &nt,
            only_node_1,
            &mut buf,
        ) {
            ImmediateResult::Delivered(d) => {
                assert_eq!(d.fanout.recipients(&buf), [NodeId::new(1)]);
                assert!(d.fanout.overhearers(&buf).is_empty());
                assert_eq!(d.receiver, None);
            }
            ImmediateResult::Failed(_) => panic!(),
        }
    }

    #[test]
    fn back_to_back_transmissions_serialize() {
        let nt = topology(&[0.0, 100.0]);
        let mut ch = channel(2);
        let mut buf = Vec::new();
        let d1 = match ch.transmit(SimTime::ZERO, NodeId::new(0), uni(1), &nt, |_| true, &mut buf) {
            ImmediateResult::Delivered(d) => d.at,
            _ => panic!(),
        };
        let d2 = match ch.transmit(SimTime::ZERO, NodeId::new(0), uni(1), &nt, |_| true, &mut buf) {
            ImmediateResult::Delivered(d) => d.at,
            _ => panic!(),
        };
        assert!(d2 > d1, "second exchange defers behind the first");
        assert!(ch.busy_until(NodeId::new(1)) >= d2);
    }

    #[test]
    fn distant_transmissions_do_not_interfere() {
        let nt = topology(&[0.0, 100.0, 5000.0, 5100.0]);
        let mut ch = channel(4);
        let mut buf = Vec::new();
        let a = match ch.transmit(SimTime::ZERO, NodeId::new(0), uni(1), &nt, |_| true, &mut buf) {
            ImmediateResult::Delivered(d) => d.at,
            _ => panic!(),
        };
        let b = match ch.transmit(SimTime::ZERO, NodeId::new(2), uni(3), &nt, |_| true, &mut buf) {
            ImmediateResult::Delivered(d) => d.at,
            _ => panic!(),
        };
        // Both complete within one exchange time of each other: parallel.
        let gap = if a > b { a - b } else { b - a };
        assert!(gap < SimDuration::from_millis(1), "gap {gap}");
    }

    #[test]
    fn loss_injection_consumes_retries_then_delivers_or_fails() {
        let nt = topology(&[0.0, 100.0]);
        let cfg = MacConfig {
            frame_loss_prob: 1.0,
            ..MacConfig::default()
        };
        let mut ch = Channel::new(2, cfg, Phy::default(), StreamRng::from_seed(2));
        let mut buf = Vec::new();
        match ch.transmit(SimTime::ZERO, NodeId::new(0), uni(1), &nt, |_| true, &mut buf) {
            ImmediateResult::Failed(f) => assert!(f.at > SimTime::ZERO),
            ImmediateResult::Delivered(_) => panic!("loss prob 1.0 must fail"),
        }
    }
}
