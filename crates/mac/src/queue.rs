//! Bounded per-node transmit queues.

use std::collections::VecDeque;

use rcast_engine::SimTime;

use crate::frame::{Destination, MacFrame};

/// A frame waiting in a node's transmit queue.
#[derive(Debug, Clone)]
pub struct Queued<P> {
    /// The frame itself.
    pub frame: MacFrame<P>,
    /// When the network layer handed the frame down (for delay metrics).
    pub enqueued_at: SimTime,
    /// Consecutive beacon intervals in which the ATIM advertisement for
    /// this frame's destination went unacknowledged.
    pub atim_attempts: u32,
}

/// A bounded FIFO transmit queue for one node.
///
/// Mirrors ns-2's 50-packet interface queue: pushes beyond capacity are
/// rejected (and counted) so congestion manifests as drops, exactly as
/// in the paper's high-rate scenarios.
#[derive(Debug, Clone)]
pub struct TxQueue<P> {
    items: VecDeque<Queued<P>>,
    capacity: usize,
    drops: u64,
}

impl<P> TxQueue<P> {
    /// An empty queue with the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        TxQueue {
            items: VecDeque::new(),
            capacity,
            drops: 0,
        }
    }

    /// Appends a frame.
    ///
    /// # Errors
    ///
    /// Returns the frame back when the queue is full (the caller decides
    /// whether to count the drop at a higher layer; the queue counts it
    /// too via [`drop_count`](Self::drop_count)).
    pub fn push(&mut self, frame: MacFrame<P>, now: SimTime) -> Result<(), MacFrame<P>> {
        if self.items.len() >= self.capacity {
            self.drops += 1;
            return Err(frame);
        }
        self.items.push_back(Queued {
            frame,
            enqueued_at: now,
            atim_attempts: 0,
        });
        Ok(())
    }

    /// Number of queued frames.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Frames rejected because the queue was full.
    pub fn drop_count(&self) -> u64 {
        self.drops
    }

    /// Distinct destinations present, in order of their first queued
    /// frame (the order ATIMs are sent in).
    pub fn destinations(&self) -> Vec<Destination> {
        let mut seen = Vec::new();
        self.destinations_into(&mut seen);
        seen
    }

    /// Fills `out` with the distinct destinations present, in order of
    /// their first queued frame — [`destinations`](Self::destinations)
    /// against a reusable buffer.
    pub fn destinations_into(&self, out: &mut Vec<Destination>) {
        out.clear();
        for q in &self.items {
            if !out.contains(&q.frame.to) {
                out.push(q.frame.to);
            }
        }
    }

    /// Index of the first frame bound for `dest`.
    pub fn first_for(&self, dest: Destination) -> Option<usize> {
        self.items.iter().position(|q| q.frame.to == dest)
    }

    /// Index of the first frame bound for `dest` at or after `from`.
    pub fn next_for(&self, dest: Destination, from: usize) -> Option<usize> {
        self.items
            .iter()
            .skip(from)
            .position(|q| q.frame.to == dest)
            .map(|p| p + from)
    }

    /// Borrow a queued frame by index.
    pub fn get(&self, idx: usize) -> Option<&Queued<P>> {
        self.items.get(idx)
    }

    /// Removes and returns the frame at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    pub fn remove(&mut self, idx: usize) -> Queued<P> {
        self.items.remove(idx).expect("index validated by caller")
    }

    /// Removes every frame bound for `dest`, preserving FIFO order.
    // det: hot-ok — convenience wrapper for tests; the resolver uses the
    // allocation-free remove_all_for_with
    pub fn remove_all_for(&mut self, dest: Destination) -> Vec<Queued<P>> {
        let mut out = Vec::new();
        self.remove_all_for_with(dest, |q| out.push(q));
        out
    }

    /// Removes every frame bound for `dest` in FIFO order, handing each
    /// to `f` — the in-place, allocation-free form of
    /// [`remove_all_for`](Self::remove_all_for) the interval resolver
    /// uses on link failure.
    pub fn remove_all_for_with(&mut self, dest: Destination, mut f: impl FnMut(Queued<P>)) {
        let mut i = 0;
        while i < self.items.len() {
            if self.items[i].frame.to == dest {
                f(self.items.remove(i).expect("index in bounds"));
            } else {
                i += 1;
            }
        }
    }

    /// Removes and returns every queued frame, preserving FIFO order —
    /// what happens to a node's queue when it crashes.
    pub fn drain_all(&mut self) -> Vec<Queued<P>> {
        self.items.drain(..).collect()
    }

    /// Increments the ATIM attempt counter on every frame bound for
    /// `dest`; returns the new maximum.
    pub fn bump_attempts_for(&mut self, dest: Destination) -> u32 {
        let mut max = 0;
        for q in self.items.iter_mut().filter(|q| q.frame.to == dest) {
            q.atim_attempts += 1;
            max = max.max(q.atim_attempts);
        }
        max
    }

    /// Clears the ATIM attempt counter on every frame bound for `dest`
    /// (called when the destination acknowledged an advertisement).
    pub fn reset_attempts_for(&mut self, dest: Destination) {
        for q in self.items.iter_mut().filter(|q| q.frame.to == dest) {
            q.atim_attempts = 0;
        }
    }

    /// The strongest overhearing level among frames bound for `dest`
    /// (the ATIM frame advertises one subtype per destination, so the
    /// most permissive request wins).
    pub fn strongest_level_for(&self, dest: Destination) -> Option<crate::OverhearingLevel> {
        use crate::OverhearingLevel::*;
        self.items
            .iter()
            .filter(|q| q.frame.to == dest)
            .map(|q| q.frame.level)
            .max_by_key(|l| match l {
                None => 0,
                Randomized => 1,
                Unconditional => 2,
            })
    }

    /// Iterates over queued frames in FIFO order.
    pub fn iter(&self) -> impl Iterator<Item = &Queued<P>> {
        self.items.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::OverhearingLevel;
    use rcast_engine::NodeId;

    fn uni(to: u32, level: OverhearingLevel, tag: &'static str) -> MacFrame<&'static str> {
        MacFrame::unicast(NodeId::new(to), level, 512, tag)
    }

    #[test]
    fn fifo_and_capacity() {
        let mut q = TxQueue::new(2);
        assert!(q.push(uni(1, OverhearingLevel::None, "a"), SimTime::ZERO).is_ok());
        assert!(q.push(uni(1, OverhearingLevel::None, "b"), SimTime::ZERO).is_ok());
        let back = q.push(uni(1, OverhearingLevel::None, "c"), SimTime::ZERO);
        assert_eq!(back.unwrap_err().payload, "c");
        assert_eq!(q.drop_count(), 1);
        assert_eq!(q.len(), 2);
        assert_eq!(q.remove(0).frame.payload, "a");
        assert_eq!(q.remove(0).frame.payload, "b");
        assert!(q.is_empty());
    }

    #[test]
    fn destinations_in_first_seen_order() {
        let mut q = TxQueue::new(10);
        q.push(uni(2, OverhearingLevel::None, "x"), SimTime::ZERO).unwrap();
        q.push(uni(1, OverhearingLevel::None, "y"), SimTime::ZERO).unwrap();
        q.push(uni(2, OverhearingLevel::None, "z"), SimTime::ZERO).unwrap();
        q.push(MacFrame::broadcast(64, "b"), SimTime::ZERO).unwrap();
        assert_eq!(
            q.destinations(),
            vec![
                Destination::Unicast(NodeId::new(2)),
                Destination::Unicast(NodeId::new(1)),
                Destination::Broadcast
            ]
        );
    }

    #[test]
    fn first_and_next_for() {
        let mut q = TxQueue::new(10);
        q.push(uni(1, OverhearingLevel::None, "a"), SimTime::ZERO).unwrap();
        q.push(uni(2, OverhearingLevel::None, "b"), SimTime::ZERO).unwrap();
        q.push(uni(1, OverhearingLevel::None, "c"), SimTime::ZERO).unwrap();
        let d1 = Destination::Unicast(NodeId::new(1));
        assert_eq!(q.first_for(d1), Some(0));
        assert_eq!(q.next_for(d1, 1), Some(2));
        assert_eq!(q.next_for(d1, 3), None);
        assert_eq!(q.first_for(Destination::Broadcast), None);
    }

    #[test]
    fn remove_all_preserves_other_frames() {
        let mut q = TxQueue::new(10);
        q.push(uni(1, OverhearingLevel::None, "a"), SimTime::ZERO).unwrap();
        q.push(uni(2, OverhearingLevel::None, "b"), SimTime::ZERO).unwrap();
        q.push(uni(1, OverhearingLevel::None, "c"), SimTime::ZERO).unwrap();
        let removed = q.remove_all_for(Destination::Unicast(NodeId::new(1)));
        assert_eq!(
            removed.iter().map(|r| r.frame.payload).collect::<Vec<_>>(),
            vec!["a", "c"]
        );
        assert_eq!(q.len(), 1);
        assert_eq!(q.get(0).unwrap().frame.payload, "b");
    }

    #[test]
    fn drain_all_empties_in_fifo_order() {
        let mut q = TxQueue::new(10);
        q.push(uni(1, OverhearingLevel::None, "a"), SimTime::ZERO).unwrap();
        q.push(uni(2, OverhearingLevel::None, "b"), SimTime::ZERO).unwrap();
        let drained = q.drain_all();
        assert_eq!(
            drained.iter().map(|d| d.frame.payload).collect::<Vec<_>>(),
            vec!["a", "b"]
        );
        assert!(q.is_empty());
        assert_eq!(q.drop_count(), 0, "draining is not a queue-full drop");
    }

    #[test]
    fn attempts_bump_and_reset() {
        let mut q = TxQueue::new(10);
        let d = Destination::Unicast(NodeId::new(1));
        q.push(uni(1, OverhearingLevel::None, "a"), SimTime::ZERO).unwrap();
        assert_eq!(q.bump_attempts_for(d), 1);
        q.push(uni(1, OverhearingLevel::None, "b"), SimTime::ZERO).unwrap();
        // Frame "a" has 1 attempt, "b" has 0; bump makes them 2 and 1.
        assert_eq!(q.bump_attempts_for(d), 2);
        q.reset_attempts_for(d);
        assert_eq!(q.get(0).unwrap().atim_attempts, 0);
        assert_eq!(q.get(1).unwrap().atim_attempts, 0);
    }

    #[test]
    fn strongest_level_wins() {
        let mut q = TxQueue::new(10);
        let d = Destination::Unicast(NodeId::new(1));
        q.push(uni(1, OverhearingLevel::None, "a"), SimTime::ZERO).unwrap();
        assert_eq!(q.strongest_level_for(d), Some(OverhearingLevel::None));
        q.push(uni(1, OverhearingLevel::Randomized, "b"), SimTime::ZERO).unwrap();
        assert_eq!(q.strongest_level_for(d), Some(OverhearingLevel::Randomized));
        q.push(uni(1, OverhearingLevel::Unconditional, "c"), SimTime::ZERO).unwrap();
        assert_eq!(q.strongest_level_for(d), Some(OverhearingLevel::Unconditional));
        assert_eq!(q.strongest_level_for(Destination::Broadcast), None);
    }

    #[test]
    #[should_panic]
    fn zero_capacity_panics() {
        let _: TxQueue<()> = TxQueue::new(0);
    }
}
