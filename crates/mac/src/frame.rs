//! MAC frame types and the Rcast ATIM-subtype extension.

use std::fmt;

use rcast_engine::NodeId;

/// The overhearing level a sender requests for a unicast frame.
///
/// This is the paper's core abstraction (Section 3.1): with PSM, packet
/// advertisement is decoupled from transmission, so neighbors that are
/// not the addressee get a *choice* about staying awake. The sender
/// encodes its wish in the ATIM frame subtype (see [`AtimSubtype`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum OverhearingLevel {
    /// Only the addressed receiver stays awake (standard 802.11 PSM).
    #[default]
    None,
    /// Each non-addressed neighbor decides probabilistically
    /// (the RandomCast mechanism).
    Randomized,
    /// Every neighbor that heard the advertisement stays awake
    /// (the DSR assumption in always-on networks).
    Unconditional,
}

/// The 4-bit management-frame subtype carried in the 802.11 frame
/// control field, per the paper's Figure 4 encoding.
///
/// * `1001₂` — standard ATIM (interpreted as *no overhearing*),
/// * `1110₂` — reserved subtype claimed for *randomized* overhearing,
/// * `1111₂` — reserved subtype claimed for *unconditional* overhearing.
///
/// # Example
///
/// ```
/// use rcast_mac::{AtimSubtype, OverhearingLevel};
///
/// let st = AtimSubtype::from_level(OverhearingLevel::Randomized);
/// assert_eq!(st.bits(), 0b1110);
/// assert_eq!(AtimSubtype::from_bits(0b1001).unwrap().level(), OverhearingLevel::None);
/// assert!(AtimSubtype::from_bits(0b0000).is_none());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AtimSubtype(u8);

impl AtimSubtype {
    /// Standard ATIM subtype bits (no overhearing).
    pub const STANDARD: AtimSubtype = AtimSubtype(0b1001);
    /// Reserved subtype claimed for randomized overhearing.
    pub const RANDOMIZED: AtimSubtype = AtimSubtype(0b1110);
    /// Reserved subtype claimed for unconditional overhearing.
    pub const UNCONDITIONAL: AtimSubtype = AtimSubtype(0b1111);

    /// Encodes an overhearing level as a subtype.
    pub fn from_level(level: OverhearingLevel) -> Self {
        match level {
            OverhearingLevel::None => Self::STANDARD,
            OverhearingLevel::Randomized => Self::RANDOMIZED,
            OverhearingLevel::Unconditional => Self::UNCONDITIONAL,
        }
    }

    /// Decodes subtype bits; `None` for bits that are not an ATIM
    /// subtype in this scheme.
    pub fn from_bits(bits: u8) -> Option<Self> {
        match bits {
            0b1001 | 0b1110 | 0b1111 => Some(AtimSubtype(bits)),
            _ => None,
        }
    }

    /// The raw subtype bits.
    pub fn bits(self) -> u8 {
        self.0
    }

    /// The overhearing level this subtype encodes.
    pub fn level(self) -> OverhearingLevel {
        match self.0 {
            0b1110 => OverhearingLevel::Randomized,
            0b1111 => OverhearingLevel::Unconditional,
            _ => OverhearingLevel::None,
        }
    }
}

impl fmt::Display for AtimSubtype {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04b}", self.0)
    }
}

/// Where a frame is headed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Destination {
    /// A single addressed receiver (acknowledged).
    Unicast(NodeId),
    /// All neighbors (unacknowledged).
    Broadcast,
}

impl Destination {
    /// The addressed receiver, if unicast.
    pub fn receiver(self) -> Option<NodeId> {
        match self {
            Destination::Unicast(r) => Some(r),
            Destination::Broadcast => None,
        }
    }

    /// `true` for broadcast destinations.
    pub fn is_broadcast(self) -> bool {
        matches!(self, Destination::Broadcast)
    }
}

/// An outgoing layer-2 frame handed to the MAC by the network layer.
///
/// `P` is the opaque upper-layer payload (the simulator passes DSR
/// packets). `bytes` is the on-air payload size used for airtime
/// computation — the MAC adds its own header overhead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MacFrame<P> {
    /// Receiver (or broadcast).
    pub to: Destination,
    /// The overhearing level advertised in the ATIM frame.
    pub level: OverhearingLevel,
    /// Upper-layer payload size in bytes.
    pub bytes: usize,
    /// Opaque upper-layer payload.
    pub payload: P,
}

impl<P> MacFrame<P> {
    /// A unicast frame.
    pub fn unicast(to: NodeId, level: OverhearingLevel, bytes: usize, payload: P) -> Self {
        MacFrame {
            to: Destination::Unicast(to),
            level,
            bytes,
            payload,
        }
    }

    /// A broadcast frame with standard (unconditional) receiving.
    pub fn broadcast(bytes: usize, payload: P) -> Self {
        MacFrame {
            to: Destination::Broadcast,
            level: OverhearingLevel::Unconditional,
            bytes,
            payload,
        }
    }

    /// A broadcast frame with an explicit receiving level —
    /// [`OverhearingLevel::Randomized`] enables the paper's
    /// randomized-rebroadcast extension.
    pub fn broadcast_with_level(level: OverhearingLevel, bytes: usize, payload: P) -> Self {
        MacFrame {
            to: Destination::Broadcast,
            level,
            bytes,
            payload,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subtype_round_trip() {
        for level in [
            OverhearingLevel::None,
            OverhearingLevel::Randomized,
            OverhearingLevel::Unconditional,
        ] {
            let st = AtimSubtype::from_level(level);
            assert_eq!(st.level(), level);
            assert_eq!(AtimSubtype::from_bits(st.bits()), Some(st));
        }
    }

    #[test]
    fn subtype_bits_match_paper_figure4() {
        assert_eq!(AtimSubtype::STANDARD.bits(), 0b1001);
        assert_eq!(AtimSubtype::RANDOMIZED.bits(), 0b1110);
        assert_eq!(AtimSubtype::UNCONDITIONAL.bits(), 0b1111);
        assert_eq!(AtimSubtype::RANDOMIZED.to_string(), "1110");
    }

    #[test]
    fn non_atim_bits_rejected() {
        for bits in 0..16u8 {
            let parsed = AtimSubtype::from_bits(bits);
            if [0b1001, 0b1110, 0b1111].contains(&bits) {
                assert!(parsed.is_some());
            } else {
                assert!(parsed.is_none(), "bits {bits:04b}");
            }
        }
    }

    #[test]
    fn destination_helpers() {
        let u = Destination::Unicast(NodeId::new(3));
        assert_eq!(u.receiver(), Some(NodeId::new(3)));
        assert!(!u.is_broadcast());
        assert_eq!(Destination::Broadcast.receiver(), None);
        assert!(Destination::Broadcast.is_broadcast());
    }

    #[test]
    fn frame_constructors() {
        let f = MacFrame::unicast(NodeId::new(1), OverhearingLevel::Randomized, 512, "pkt");
        assert_eq!(f.to, Destination::Unicast(NodeId::new(1)));
        assert_eq!(f.level, OverhearingLevel::Randomized);
        let b = MacFrame::broadcast(64, "rreq");
        assert!(b.to.is_broadcast());
        assert_eq!(b.level, OverhearingLevel::Unconditional);
    }
}
