//! MAC-layer configuration.

use rcast_engine::SimDuration;

/// Tunables of the 802.11 PSM MAC.
///
/// Defaults reproduce the paper's testbed: a 250 ms beacon interval with
/// a 50 ms ATIM window (the paper quotes an average per-hop wait of half
/// a beacon interval = 125 ms, and its idle-PS-node energy arithmetic
/// implies ATIM windows occupy 225 s of the 1125 s run = 20 %).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MacConfig {
    /// Beacon interval length (paper: 250 ms).
    pub beacon_interval: SimDuration,
    /// ATIM window length at the start of each interval (paper: 50 ms).
    pub atim_window: SimDuration,
    /// Per-node transmit queue capacity (ns-2 IFQ default: 50).
    pub queue_capacity: usize,
    /// Consecutive beacon intervals an ATIM may go unacknowledged before
    /// the link is declared broken.
    pub atim_retry_limit: u32,
    /// Independent per-frame loss probability during the data phase
    /// (failure injection; 0 reproduces the paper's clean channel).
    pub frame_loss_prob: f64,
    /// ATIM management frame length, octets (paper Figure 4: 28).
    pub atim_bytes: usize,
    /// MAC ACK frame length, octets (802.11: 14).
    pub ack_bytes: usize,
    /// MAC data-frame header + FCS overhead added to payloads, octets.
    pub mac_header_bytes: usize,
    /// When `true` (default), a PS node that committed to *specific
    /// announced unicast transfers* returns to doze as soon as its last
    /// committed transfer completes. Commitments with no known end —
    /// broadcasts and unconditional overhearing — still hold the radio
    /// on for the whole interval, which is precisely the asymmetry the
    /// paper exploits ("unconditional overhearing is not freely
    /// available with PSM"). Set `false` for the strict-1999-standard
    /// semantics where any ATIM commitment costs the full interval.
    pub doze_after_transfer: bool,
}

impl Default for MacConfig {
    fn default() -> Self {
        MacConfig {
            beacon_interval: SimDuration::from_millis(250),
            atim_window: SimDuration::from_millis(50),
            queue_capacity: 50,
            atim_retry_limit: 4,
            frame_loss_prob: 0.0,
            atim_bytes: 28,
            ack_bytes: 14,
            mac_header_bytes: 28,
            doze_after_transfer: true,
        }
    }
}

impl MacConfig {
    /// The data-transfer window: beacon interval minus ATIM window.
    pub fn data_window(&self) -> SimDuration {
        self.beacon_interval - self.atim_window
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.beacon_interval.is_zero() {
            return Err("beacon interval must be positive".into());
        }
        if self.atim_window.is_zero() || self.atim_window >= self.beacon_interval {
            return Err(format!(
                "ATIM window {} must be positive and shorter than the beacon interval {}",
                self.atim_window, self.beacon_interval
            ));
        }
        if self.queue_capacity == 0 {
            return Err("queue capacity must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.frame_loss_prob) {
            return Err(format!(
                "loss probability {} outside [0,1]",
                self.frame_loss_prob
            ));
        }
        if self.atim_retry_limit == 0 {
            return Err("ATIM retry limit must be at least 1".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = MacConfig::default();
        assert_eq!(c.beacon_interval, SimDuration::from_millis(250));
        assert_eq!(c.atim_window, SimDuration::from_millis(50));
        assert_eq!(c.data_window(), SimDuration::from_millis(200));
        assert_eq!(c.queue_capacity, 50);
        assert_eq!(c.atim_retry_limit, 4);
        assert!(c.validate().is_ok());
        // ATIM fraction of the interval = 20 %, matching the paper's
        // 225 s / 1125 s idle-node arithmetic.
        let frac = c.atim_window.as_secs_f64() / c.beacon_interval.as_secs_f64();
        assert!((frac - 0.2).abs() < 1e-12);
    }

    #[test]
    fn validation_catches_bad_configs() {
        let mut c = MacConfig::default();
        c.atim_window = c.beacon_interval;
        assert!(c.validate().is_err());

        let c = MacConfig { queue_capacity: 0, ..MacConfig::default() };
        assert!(c.validate().is_err());

        let c = MacConfig { frame_loss_prob: 1.5, ..MacConfig::default() };
        assert!(c.validate().is_err());

        let c = MacConfig { atim_retry_limit: 0, ..MacConfig::default() };
        assert!(c.validate().is_err());

        let c = MacConfig {
            beacon_interval: SimDuration::ZERO,
            ..MacConfig::default()
        };
        assert!(c.validate().is_err());
    }
}
