//! Interval-resolution observer: a tap on the MAC's per-interval
//! decisions for structured tracing.
//!
//! The resolver already *counts* everything in
//! [`MacCounters`](crate::MacCounters); an observer additionally sees
//! *which* node did what, *when*. Every hook has a no-op default so the
//! hot path pays one virtual call per recorded decision and nothing
//! else — [`NullMacObserver`] is what
//! [`MacLayer::run_interval_into`](crate::MacLayer::run_interval_into)
//! passes when nobody is listening.
//!
//! Implementations must not allocate per call if they are driven from
//! the simulation hot loop (DESIGN.md §10); the event ledger records
//! into pre-sized buffers.

use rcast_engine::{NodeId, SimDuration, SimTime};

/// Receives one callback per MAC decision during interval resolution.
///
/// `at` arguments are exact simulated instants: ATIM-phase decisions
/// carry the interval start, data-phase decisions carry the scheduled
/// on-air time.
pub trait MacObserver {
    /// A unicast ATIM from `sender` to `to` was acknowledged.
    fn atim_unicast(&mut self, _at: SimTime, _sender: NodeId, _to: NodeId) {}

    /// A broadcast ATIM from `sender` went out.
    fn atim_broadcast(&mut self, _at: SimTime, _sender: NodeId) {}

    /// A unicast ATIM from `sender` to `to` drew no acknowledgment.
    fn atim_no_ack(&mut self, _at: SimTime, _sender: NodeId, _to: NodeId) {}

    /// An advertisement by `sender` was deferred for lack of
    /// ATIM-window airtime.
    fn atim_deferred(&mut self, _at: SimTime, _sender: NodeId) {}

    /// `sender` declared its link to `to` broken after repeated silent
    /// ATIMs; the queued frames go back to the network layer.
    fn link_broken(&mut self, _at: SimTime, _sender: NodeId, _to: NodeId) {}

    /// Randomized overhearer `node` elected to stay awake for
    /// `sender`'s announced transfer — the Rcast coin flip came up
    /// heads.
    fn overhear_commit(&mut self, _at: SimTime, _node: NodeId, _sender: NodeId) {}

    /// `sender` was granted `dur` of data-window airtime starting at
    /// `at`. Fired for every granted reservation, including transfers
    /// subsequently destroyed by injected loss — the airtime is spent
    /// either way.
    fn airtime_reserved(&mut self, _at: SimTime, _sender: NodeId, _dur: SimDuration) {}

    /// A granted transfer from `sender` to `to` was destroyed by
    /// injected channel loss; the frame stays queued.
    fn data_lost(&mut self, _at: SimTime, _sender: NodeId, _to: NodeId) {}

    /// An announced transfer by `sender` did not fit the data window.
    fn data_deferred(&mut self, _at: SimTime, _sender: NodeId) {}
}

/// The observer that observes nothing. Every hook keeps its no-op
/// default, so the optimizer erases the calls entirely.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullMacObserver;

impl MacObserver for NullMacObserver {}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Tally {
        calls: usize,
    }

    impl MacObserver for Tally {
        fn atim_unicast(&mut self, _at: SimTime, _s: NodeId, _t: NodeId) {
            self.calls += 1;
        }
    }

    #[test]
    fn defaults_are_no_ops_and_overrides_fire() {
        let mut null = NullMacObserver;
        null.atim_unicast(SimTime::ZERO, NodeId::new(0), NodeId::new(1));
        null.data_deferred(SimTime::ZERO, NodeId::new(0));

        let mut tally = Tally::default();
        tally.atim_unicast(SimTime::ZERO, NodeId::new(0), NodeId::new(1));
        tally.atim_deferred(SimTime::ZERO, NodeId::new(0)); // default no-op
        assert_eq!(tally.calls, 1);
    }
}
