//! IEEE 802.11 DCF + power-saving MAC for the RandomCast reproduction.
//!
//! The paper's mechanism lives at this layer: with the 802.11 power
//! saving mode (PSM), every beacon interval opens with an **ATIM
//! window** in which senders advertise buffered traffic; nodes that are
//! neither addressed nor interested may sleep through the remaining
//! **data window**. Rcast extends the ATIM frame with two reserved
//! subtypes so a sender can request *no*, *randomized*, or
//! *unconditional* overhearing ([`AtimSubtype`], [`OverhearingLevel`]).
//!
//! Two transmission paths are modelled:
//!
//! * [`MacLayer::run_interval`] — the PSM path: queued frames advertised
//!   and delivered at beacon-interval granularity, with per-neighborhood
//!   airtime budgeting, link-break detection via missing ATIM-ACKs, and
//!   explicit overhearing resolution.
//! * [`Channel::transmit`] — the active-mode path used by 802.11 without
//!   PSM and by ODPM's AM fast path: immediate CSMA transmission with
//!   carrier-sense deferral, backoff, and retries.
//!
//! Scheme-specific behaviour (who is in AM, who overhears) is injected
//! through the [`WakePolicy`] trait, implemented by `rcast-core` for
//! each of the paper's schemes.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod budget;
mod channel;
mod config;
mod frame;
mod interval;
mod observe;
mod queue;
mod wake;

pub use budget::AirtimeBudget;
pub use channel::{Channel, ImmediateResult};
pub use config::MacConfig;
pub use frame::{AtimSubtype, Destination, MacFrame, OverhearingLevel};
pub use interval::{Delivery, IntervalOutcome, LinkFailure, MacCounters, MacLayer};
pub use observe::{MacObserver, NullMacObserver};
pub use queue::{Queued, TxQueue};
pub use wake::{AllActive, AllPowerSave, PowerMode, WakePolicy};
