//! Regression gate for DESIGN.md §10: the steady-state interval loop
//! performs **zero heap allocations** once the reusable scratch storage
//! has warmed up.
//!
//! This integration test installs [`rcast_bench::AllocProbe`] as its
//! process's global allocator, warms a quiet-but-realistic simulation
//! past its high-water marks, then steps the remaining intervals and
//! asserts the process-wide allocation counter did not move. Any
//! reintroduced `Vec::new`/`clone`/`to_vec` on the hot path fails this
//! test with an exact count (the lint rule D007 catches the same class
//! statically by call-graph reachability; this is the dynamic proof).

use rcast_bench::alloc_probe;
use rcast_core::{Scheme, SimConfig, Simulation};

#[global_allocator]
static PROBE: rcast_bench::AllocProbe = rcast_bench::AllocProbe::new();

/// A quiet steady state: static nodes (a pause longer than the run) and
/// one almost-silent flow (traffic validation requires >= 1 flow, and a
/// 0.001 pps rate means the flow's first packet falls outside the run),
/// so intervals exercise the full PSM/beacon/energy machinery without
/// data traffic forcing route discoveries mid-measurement.
fn quiet_config() -> SimConfig {
    let mut cfg = SimConfig::smoke(Scheme::Rcast, 3);
    cfg.waypoint.pause_secs = 1e9;
    cfg.traffic.flows = 1;
    cfg.traffic.rate_pps = 0.001;
    cfg
}

/// Runs the second half of a quiet simulation under the probe and
/// returns the allocation count over those steady-state intervals.
fn steady_state_allocs(cfg: SimConfig) -> u64 {
    let mut sim = Simulation::new(cfg).expect("valid config");
    let total = 480u64; // 120 s at 250 ms beacons.

    // Warm-up: let every scratch buffer, queue and table reach its
    // high-water capacity.
    for _ in 0..total / 2 {
        assert!(sim.step_interval());
    }

    assert!(
        alloc_probe::is_installed(),
        "the probe must be this process's global allocator"
    );
    let before = alloc_probe::allocations();
    let mut stepped = 0u64;
    while sim.step_interval() {
        stepped += 1;
    }
    let after = alloc_probe::allocations();
    assert_eq!(stepped, total - total / 2, "ran to the configured end");
    after - before
}

#[test]
fn steady_state_interval_loop_does_not_allocate() {
    assert!(
        !alloc_probe::is_installed() || alloc_probe::allocations() > 0,
        "sanity: flag only flips once counting starts"
    );

    let allocs = steady_state_allocs(quiet_config());
    assert_eq!(
        allocs, 0,
        "steady-state intervals must not touch the heap \
         ({allocs} allocations)",
    );
}

/// The *loaded* steady state: the full smoke testbed — moving nodes,
/// real CBR traffic, route discoveries and repairs — may allocate only
/// where genuinely new route state is stored. This pins a hard mean
/// per-interval budget so traffic-path regressions (packet clones,
/// per-arrival route materialization, per-interval `Vec` rebuilds)
/// fail loudly instead of hiding behind the quiet-state zero gate.
/// The run is seeded and deterministic, so the measured count is exact;
/// the budget leaves headroom only for allocator-library drift.
#[test]
fn loaded_steady_state_stays_within_the_allocation_budget() {
    const BUDGET_PER_INTERVAL: f64 = 60.0;
    let allocs = steady_state_allocs(SimConfig::smoke(Scheme::Rcast, 3));
    let intervals = 240.0; // the measured second half of the run
    let per_interval = allocs as f64 / intervals;
    assert!(
        per_interval <= BUDGET_PER_INTERVAL,
        "loaded steady-state allocations {per_interval:.2}/interval \
         exceed the {BUDGET_PER_INTERVAL}/interval budget \
         ({allocs} over {intervals} intervals)",
    );
}

/// DESIGN.md §11: turning the event ledger on must not reintroduce
/// steady-state allocations — every ring buffer, span lane and series
/// row is pre-sized at construction, and overflow increments a counter
/// instead of growing.
#[test]
fn steady_state_with_ledger_enabled_does_not_allocate() {
    let mut cfg = quiet_config();
    cfg.obs = true;
    let allocs = steady_state_allocs(cfg);
    assert_eq!(
        allocs, 0,
        "ledger-on steady-state intervals must not touch the heap \
         ({allocs} allocations)",
    );
}
