//! Criterion benches that exercise every figure/table regeneration path
//! at reduced scale, so `cargo bench` touches the same code the `fig5`…
//! `fig9` and `table1` binaries run at full scale.

use criterion::{criterion_group, criterion_main, Criterion};
use rcast_core::{run_sim, Scheme, SimConfig};
use rcast_engine::SimDuration;
use rcast_metrics::RunningStats;

fn tiny(scheme: Scheme, rate: f64, pause: f64) -> SimConfig {
    let mut cfg = SimConfig::paper(scheme, 1, rate, pause);
    cfg.nodes = 50;
    cfg.duration = SimDuration::from_secs(30);
    cfg.traffic.flows = 10;
    cfg
}

fn bench_table1(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures/table1_point");
    g.sample_size(10);
    g.bench_function("three_schemes", |b| {
        b.iter(|| {
            Scheme::PAPER_FIGURES
                .into_iter()
                .map(|s| {
                    run_sim(tiny(s, 0.4, 600.0))
                        .expect("valid")
                        .energy
                        .total_joules()
                })
                .sum::<f64>()
        })
    });
    g.finish();
}

fn bench_fig5_curve(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures/fig5_sorted_curve");
    g.sample_size(10);
    g.bench_function("rcast", |b| {
        b.iter(|| {
            run_sim(tiny(Scheme::Rcast, 2.0, 600.0))
                .expect("valid")
                .energy
                .sorted_joules()
        })
    });
    g.finish();
}

fn bench_fig6_variance(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures/fig6_variance_point");
    g.sample_size(10);
    g.bench_function("odpm_vs_rcast", |b| {
        b.iter(|| {
            let o = run_sim(tiny(Scheme::Odpm, 0.4, 600.0)).expect("valid");
            let r = run_sim(tiny(Scheme::Rcast, 0.4, 600.0)).expect("valid");
            o.energy.variance() / r.energy.variance().max(1e-9)
        })
    });
    g.finish();
}

fn bench_fig7_metrics(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures/fig7_energy_pdr_epb");
    g.sample_size(10);
    g.bench_function("rcast_point", |b| {
        b.iter(|| {
            let r = run_sim(tiny(Scheme::Rcast, 1.0, 600.0)).expect("valid");
            (
                r.energy.total_joules(),
                r.delivery.delivery_ratio(),
                r.energy_per_bit(512),
            )
        })
    });
    g.finish();
}

fn bench_fig8_metrics(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures/fig8_delay_overhead");
    g.sample_size(10);
    g.bench_function("rcast_point", |b| {
        b.iter(|| {
            let r = run_sim(tiny(Scheme::Rcast, 0.4, 600.0)).expect("valid");
            (
                r.delivery.mean_delay(),
                r.delivery.normalized_routing_overhead(),
            )
        })
    });
    g.finish();
}

fn bench_fig9_roles(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures/fig9_role_numbers");
    g.sample_size(10);
    g.bench_function("rcast_point", |b| {
        b.iter(|| {
            let r = run_sim(tiny(Scheme::Rcast, 2.0, 600.0)).expect("valid");
            RunningStats::from_slice(&r.roles.as_f64()).max()
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_table1,
    bench_fig5_curve,
    bench_fig6_variance,
    bench_fig7_metrics,
    bench_fig8_metrics,
    bench_fig9_roles
);
criterion_main!(benches);
