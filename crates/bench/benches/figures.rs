//! Benches that exercise every figure/table regeneration path at
//! reduced scale, so `cargo bench` touches the same code the `fig5`…
//! `fig9` and `table1` binaries run at full scale. Runs on the in-tree
//! std-only harness (`rcast_bench::timing`) so it works fully offline.

use rcast_bench::timing::Harness;
use rcast_core::{run_sim, Scheme, SimConfig};
use rcast_engine::SimDuration;
use rcast_metrics::RunningStats;

fn tiny(scheme: Scheme, rate: f64, pause: f64) -> SimConfig {
    let mut cfg = SimConfig::paper(scheme, 1, rate, pause);
    cfg.nodes = 50;
    cfg.duration = SimDuration::from_secs(30);
    cfg.traffic.flows = 10;
    cfg
}

fn main() {
    let h = Harness {
        max_iters: 10,
        ..Harness::from_args()
    };
    println!("figure regeneration paths (std-only harness; pass --quick for a smoke run)\n");

    h.bench("figures/table1_point/three_schemes", || {
        Scheme::PAPER_FIGURES
            .into_iter()
            .map(|s| {
                run_sim(tiny(s, 0.4, 600.0))
                    .expect("valid")
                    .energy
                    .total_joules()
            })
            .sum::<f64>()
    });

    h.bench("figures/fig5_sorted_curve/rcast", || {
        run_sim(tiny(Scheme::Rcast, 2.0, 600.0))
            .expect("valid")
            .energy
            .sorted_joules()
    });

    h.bench("figures/fig6_variance_point/odpm_vs_rcast", || {
        let o = run_sim(tiny(Scheme::Odpm, 0.4, 600.0)).expect("valid");
        let r = run_sim(tiny(Scheme::Rcast, 0.4, 600.0)).expect("valid");
        o.energy.variance() / r.energy.variance().max(1e-9)
    });

    h.bench("figures/fig7_energy_pdr_epb/rcast_point", || {
        let r = run_sim(tiny(Scheme::Rcast, 1.0, 600.0)).expect("valid");
        (
            r.energy.total_joules(),
            r.delivery.delivery_ratio(),
            r.energy_per_bit(512),
        )
    });

    h.bench("figures/fig8_delay_overhead/rcast_point", || {
        let r = run_sim(tiny(Scheme::Rcast, 0.4, 600.0)).expect("valid");
        (
            r.delivery.mean_delay(),
            r.delivery.normalized_routing_overhead(),
        )
    });

    h.bench("figures/fig9_role_numbers/rcast_point", || {
        let r = run_sim(tiny(Scheme::Rcast, 2.0, 600.0)).expect("valid");
        RunningStats::from_slice(&r.roles.as_f64()).max()
    });
}
