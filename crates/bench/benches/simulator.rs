//! Criterion performance benchmarks of the simulator's hot paths:
//! the event queue, the neighbor index, beacon-interval resolution and
//! a full simulated second per scheme.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rcast_core::{Scheme, SimConfig, Simulation};
use rcast_engine::rng::StreamRng;
use rcast_engine::{EventQueue, SimDuration, SimTime};
use rcast_mobility::{Area, MobilityField, NeighborTable, WaypointConfig};

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("engine/event_queue_push_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..10_000u64 {
                q.schedule(SimTime::from_micros((i * 7919) % 100_000), i);
            }
            let mut acc = 0u64;
            while let Some((_, e)) = q.pop() {
                acc = acc.wrapping_add(e);
            }
            acc
        })
    });
}

fn bench_neighbor_table(c: &mut Criterion) {
    let mut field = MobilityField::random_waypoint(
        100,
        Area::paper_default(),
        WaypointConfig::default(),
        StreamRng::from_seed(1),
    );
    let snap = field.snapshot(SimTime::from_secs(10));
    c.bench_function("mobility/neighbor_table_100_nodes", |b| {
        b.iter(|| NeighborTable::build(&snap, 250.0))
    });
}

fn bench_simulated_second(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim/one_simulated_minute");
    group.sample_size(10);
    for scheme in [Scheme::Dot11, Scheme::Odpm, Scheme::Rcast] {
        group.bench_function(scheme.label(), |b| {
            b.iter_batched(
                || {
                    let mut cfg = SimConfig::paper(scheme, 1, 0.4, 600.0);
                    cfg.duration = SimDuration::from_secs(60);
                    Simulation::new(cfg).expect("valid config")
                },
                |sim| sim.run(),
                BatchSize::PerIteration,
            )
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_neighbor_table,
    bench_simulated_second
);
criterion_main!(benches);
