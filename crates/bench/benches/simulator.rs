//! Performance benchmarks of the simulator's hot paths: the event
//! queue, the neighbor index, and a full simulated minute per scheme.
//! Runs on the in-tree std-only harness (`rcast_bench::timing`) so
//! `cargo bench` works fully offline.

use rcast_bench::timing::Harness;
use rcast_core::{Scheme, SimConfig, Simulation};
use rcast_engine::rng::StreamRng;
use rcast_engine::{EventQueue, SimDuration, SimTime};
use rcast_mobility::{Area, MobilityField, NeighborTable, WaypointConfig};
use std::time::Duration;

fn bench_event_queue(h: &Harness) {
    h.bench("engine/event_queue_push_pop_10k", || {
        let mut q = EventQueue::new();
        for i in 0..10_000u64 {
            q.schedule(SimTime::from_micros((i * 7919) % 100_000), i);
        }
        let mut acc = 0u64;
        while let Some((_, e)) = q.pop() {
            acc = acc.wrapping_add(e);
        }
        acc
    });
}

fn bench_neighbor_table(h: &Harness) {
    let mut field = MobilityField::random_waypoint(
        100,
        Area::paper_default(),
        WaypointConfig::default(),
        StreamRng::from_seed(1),
    );
    let snap = field.snapshot(SimTime::from_secs(10));
    h.bench("mobility/neighbor_table_100_nodes", || {
        NeighborTable::build(&snap, 250.0)
    });
}

fn bench_simulated_minute(h: &Harness) {
    // Long-running benches: a handful of iterations is plenty.
    let slow = Harness {
        max_iters: 10,
        ..*h
    };
    for scheme in [Scheme::Dot11, Scheme::Odpm, Scheme::Rcast] {
        slow.bench(&format!("sim/one_simulated_minute/{}", scheme.label()), || {
            let mut cfg = SimConfig::paper(scheme, 1, 0.4, 600.0);
            cfg.duration = SimDuration::from_secs(60);
            Simulation::new(cfg).expect("valid config").run()
        });
    }
}

fn bench_parallel_fanout(h: &Harness) {
    // Serial vs parallel seed fan-out on a smoke-scale config.
    let slow = Harness {
        max_iters: 10,
        budget: Duration::from_secs(4),
        ..*h
    };
    let cfg = SimConfig::smoke(Scheme::Rcast, 0);
    let seeds: Vec<u64> = (1..=4).collect();
    let mut widths = vec![1usize, rcast_engine::pool::available_threads()];
    widths.dedup();
    for threads in widths {
        slow.bench(&format!("sim/fanout_4_seeds/{threads}_threads"), || {
            rcast_core::run_seeds_parallel(&cfg, seeds.iter().copied(), threads).expect("valid")
        });
    }
}

fn main() {
    let h = Harness::from_args();
    println!("simulator hot paths (std-only harness; pass --quick for a smoke run)\n");
    bench_event_queue(&h);
    bench_neighbor_table(&h);
    bench_simulated_minute(&h);
    bench_parallel_fanout(&h);
}
