//! Shared harness for the figure/table regeneration binaries.
//!
//! Every table and figure of the paper's evaluation (Section 4) has a
//! binary in `src/bin/` that reruns the corresponding experiment and
//! prints the same rows/series:
//!
//! | binary | reproduces |
//! |---|---|
//! | `table1` | Table 1 — qualitative scheme behaviour |
//! | `fig5`   | Fig. 5 — per-node energy, sorted |
//! | `fig6`   | Fig. 6 — variance of per-node energy vs rate |
//! | `fig7`   | Fig. 7 — total energy, PDR, energy-per-bit vs rate |
//! | `fig8`   | Fig. 8 — average delay & normalized routing overhead |
//! | `fig9`   | Fig. 9 — role number vs energy scatter |
//! | `ablation_factors` | Rcast decision factors (Section 3.2 / future work) |
//! | `ablation_broadcast` | randomized RREQ rebroadcast extension |
//! | `ablation_cache` | route-cache capacity & timeout sensitivity |
//! | `ablation_odpm` | ODPM timeout sensitivity |
//! | `lifetime` | network-lifetime extension (finite batteries) |
//!
//! All binaries accept `--full` (paper-scale: 1125 s, 10 seeds, dense
//! rate sweep) and default to a quick mode (375 s, 3 seeds, sparse
//! sweep) so the whole suite finishes in minutes. Every binary fans its
//! seeds across cores with [`rcast_core::run_seeds_parallel`]; pass
//! `--threads N` to pin the worker count (results are byte-identical at
//! any width — see the determinism contract in `rcast_engine::pool`).

// det: unsafe-ok — deny (not forbid) so alloc_probe can carve out the
// single GlobalAlloc impl this workspace needs; everything else in the
// crate still refuses unsafe at compile time.
#![deny(unsafe_code)]
#![deny(missing_docs)]

use rcast_core::{AggregateReport, Scheme, SimConfig, SimReport};
use rcast_engine::SimDuration;

pub mod alloc_probe;
pub mod perf;
pub mod timing;

pub use alloc_probe::AllocProbe;

/// How big an experiment to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// 375 simulated seconds, 3 seeds, sparse rate sweep.
    Quick,
    /// The paper's testbed: 1125 s, 10 seeds, dense sweep.
    Full,
}

impl Scale {
    /// Parses `--full` from the process arguments.
    pub fn from_args() -> Scale {
        if std::env::args().any(|a| a == "--full") {
            Scale::Full
        } else {
            Scale::Quick
        }
    }

    /// Simulated duration at this scale.
    pub fn duration(self) -> SimDuration {
        match self {
            Scale::Quick => SimDuration::from_secs(375),
            Scale::Full => SimDuration::from_secs(1125),
        }
    }

    /// Seeds averaged per data point (the paper repeats ten times).
    pub fn seeds(self) -> Vec<u64> {
        match self {
            Scale::Quick => vec![1, 2, 3],
            Scale::Full => (1..=10).collect(),
        }
    }

    /// The packet-rate sweep (packets/second per flow).
    pub fn rates(self) -> Vec<f64> {
        match self {
            Scale::Quick => vec![0.2, 0.4, 1.0, 2.0],
            Scale::Full => vec![0.2, 0.4, 0.6, 0.8, 1.0, 1.2, 1.4, 1.6, 1.8, 2.0],
        }
    }

    /// The pause times of the paper's two scenario families:
    /// mobile (600 s) and static (1125 s).
    pub fn pauses(self) -> [f64; 2] {
        [600.0, 1125.0]
    }
}

/// The paper's testbed configuration at a given scale.
///
/// Pause times scale with the duration (ns-2 setdest nodes pause
/// *before* their first trip, so an unscaled 600 s pause would leave a
/// 375 s quick run entirely static and erase the paper's mobile/static
/// distinction).
pub fn config(scheme: Scheme, rate_pps: f64, pause_secs: f64, scale: Scale) -> SimConfig {
    let ratio = scale.duration().as_secs_f64() / 1125.0;
    let mut cfg = SimConfig::paper(scheme, 0, rate_pps, pause_secs * ratio);
    cfg.duration = scale.duration();
    cfg
}

/// Worker threads for the parallel seed fan-out: `--threads N` (or
/// `--threads=N`) from the process arguments, else the machine width.
pub fn threads_from_args() -> usize {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--threads" {
            if let Some(n) = args.next().and_then(|v| v.parse().ok()) {
                return n;
            }
        } else if let Some(n) = a
            .strip_prefix("--threads=")
            .and_then(|v| v.parse().ok())
        {
            return n;
        }
    }
    rcast_engine::pool::available_threads()
}

/// Runs the scale's seeds for `cfg` in parallel; reports come back in
/// seed order, byte-identical to a serial loop.
///
/// # Panics
///
/// Panics if the configuration is invalid (a bug in the harness).
pub fn run_reports(cfg: &SimConfig, scale: Scale) -> Vec<SimReport> {
    rcast_core::run_seeds_parallel(cfg, scale.seeds(), threads_from_args())
        .expect("valid harness config")
}

/// Runs one parameter point across the scale's seeds (in parallel) and
/// aggregates.
///
/// # Panics
///
/// Panics if the configuration is invalid (a bug in the harness).
pub fn run_point(scheme: Scheme, rate_pps: f64, pause_secs: f64, scale: Scale) -> AggregateReport {
    let cfg = config(scheme, rate_pps, pause_secs, scale);
    AggregateReport::from_parallel(&cfg, &scale.seeds(), threads_from_args())
        .expect("valid harness config")
}

/// Prints a standard experiment banner.
pub fn banner(what: &str, scale: Scale) {
    println!("=== {what} ===");
    println!(
        "scale: {:?} ({} s simulated, {} seeds; pass --full for the paper-scale run)",
        scale,
        scale.duration().as_secs_f64(),
        scale.seeds().len()
    );
    println!(
        "threads: {} (pass --threads N to change; results are identical at any width)",
        threads_from_args()
    );
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_differ_sensibly() {
        assert!(Scale::Quick.duration() < Scale::Full.duration());
        assert!(Scale::Quick.seeds().len() < Scale::Full.seeds().len());
        assert!(Scale::Quick.rates().len() < Scale::Full.rates().len());
        assert_eq!(Scale::Full.seeds().len(), 10, "the paper averages 10 runs");
    }

    #[test]
    fn config_respects_scale() {
        let c = config(Scheme::Rcast, 0.4, 600.0, Scale::Quick);
        assert_eq!(c.duration, SimDuration::from_secs(375));
        assert_eq!(c.traffic.rate_pps, 0.4);
        // Pause scales with duration: 600 x 375/1125 = 200 s.
        assert_eq!(c.waypoint.pause_secs, 200.0);
        assert!(c.validate().is_ok());
        let full = config(Scheme::Rcast, 0.4, 600.0, Scale::Full);
        assert_eq!(full.waypoint.pause_secs, 600.0);
    }

    #[test]
    fn run_point_aggregates_seeds() {
        let cfg = SimConfig::smoke(Scheme::Rcast, 0);
        let reports = rcast_core::run_seeds_parallel(&cfg, [1, 2], 2).unwrap();
        let agg = AggregateReport::from_runs(&reports, cfg.traffic.packet_bytes);
        assert_eq!(agg.runs, 2);
        assert!(agg.mean_total_energy_j > 0.0);
    }

    #[test]
    fn threads_default_is_positive() {
        assert!(threads_from_args() >= 1);
    }
}
