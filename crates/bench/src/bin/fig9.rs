//! Reproduces **Figure 9** of the paper: scatter of role number vs
//! energy consumption per node, for 802.11 / ODPM / Rcast at
//! R_pkt ∈ {0.4, 2.0}, T_pause = 600.
//!
//! The role number measures how often a node appears as an intermediate
//! in route caches — its packet-forwarding influence. Expected shapes:
//! 802.11's energy axis is degenerate (all nodes equal); Rcast's maximum
//! role number is clearly below ODPM's at high rate (the paper reads
//! ~300 vs ~500), i.e. randomization counteracts preferential
//! attachment.

use rcast_bench::{banner, run_point, Scale};
use rcast_core::Scheme;
use rcast_metrics::{fmt_f64, RunningStats, TextTable};

fn main() {
    let scale = Scale::from_args();
    banner("Figure 9: role number vs energy consumption", scale);

    for (rate, panels) in [(0.4, "(a)(c)(e)"), (2.0, "(b)(d)(f)")] {
        println!("Fig. 9 {panels}: R_pkt = {rate}, T_pause = 600");
        let mut table = TextTable::new(vec![
            "scheme".into(),
            "max role".into(),
            "mean role".into(),
            "role p90".into(),
            "energy spread (J)".into(),
        ]);
        let mut maxima = Vec::new();
        for scheme in Scheme::PAPER_FIGURES {
            let agg = run_point(scheme, rate, 600.0, scale);
            let roles = agg.roles.as_f64();
            let stats = RunningStats::from_slice(&roles);
            let mut sorted = roles.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            let p90 = sorted[(sorted.len() * 9 / 10).min(sorted.len() - 1)];
            let e = RunningStats::from_slice(&agg.mean_per_node_energy_j);
            maxima.push((scheme, stats.max()));
            table.add_row(vec![
                scheme.label().into(),
                fmt_f64(stats.max(), 0),
                fmt_f64(stats.mean(), 1),
                fmt_f64(p90, 0),
                format!("{}..{}", fmt_f64(e.min(), 0), fmt_f64(e.max(), 0)),
            ]);
        }
        println!("{}", table.render());

        // Per-node scatter sample for the two PSM-era schemes.
        for scheme in [Scheme::Odpm, Scheme::Rcast] {
            let agg = run_point(scheme, rate, 600.0, scale);
            let mut pairs: Vec<(f64, f64)> = agg
                .roles
                .as_f64()
                .into_iter()
                .zip(agg.mean_per_node_energy_j.iter().copied())
                .collect();
            pairs.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite"));
            let head: Vec<String> = pairs
                .iter()
                .take(8)
                .map(|(r, e)| format!("({}, {} J)", fmt_f64(*r, 0), fmt_f64(*e, 0)))
                .collect();
            println!("  {} top (role, energy): {}", scheme.label(), head.join(" "));
        }

        let odpm_max = maxima
            .iter()
            .find(|(s, _)| *s == Scheme::Odpm)
            .expect("present")
            .1;
        let rcast_max = maxima
            .iter()
            .find(|(s, _)| *s == Scheme::Rcast)
            .expect("present")
            .1;
        println!(
            "  Rcast max role ({}) below ODPM max role ({}): {}\n",
            fmt_f64(rcast_max, 0),
            fmt_f64(odpm_max, 0),
            if rcast_max < odpm_max { "ok" } else { "MISMATCH" }
        );
    }
}
