//! Reproduces **Figure 8** of the paper: average end-to-end delay
//! (a/c) and normalized routing overhead (b/d) vs packet rate, for
//! T_pause = 600 and 1125.
//!
//! Expected shapes: delay is smallest for 802.11 and ODPM (immediate
//! transmissions) and largest for Rcast (each hop waits on average half
//! a beacon interval, 125 ms); overhead is much larger in the mobile
//! scenario than the static one, smallest for 802.11, with ODPM and
//! Rcast behaving similarly — Rcast "performs at par" despite limited
//! overhearing.

use rcast_bench::{banner, config, run_point, Scale};
use rcast_core::{AggregateReport, Scheme};
use rcast_metrics::{fmt_f64, TextTable};

fn main() {
    let scale = Scale::from_args();
    banner("Figure 8: average delay and normalized routing overhead", scale);

    let mut mobile_overhead = 0.0;
    let mut static_overhead = 0.0;
    for (tags, pause) in [("(a)-(b)", 600.0), ("(c)-(d)", 1125.0)] {
        println!("Fig. 8{tags}: T_pause = {pause}");
        let mut delay = TextTable::new(header("delay (ms)"));
        let mut overhead = TextTable::new(header("overhead"));
        let mut rcast_delay_largest = true;
        for rate in scale.rates() {
            let points: Vec<(Scheme, AggregateReport)> = Scheme::PAPER_FIGURES
                .into_iter()
                .map(|s| (s, run_point(s, rate, pause, scale)))
                .collect();
            let d: Vec<f64> = points.iter().map(|(_, a)| a.mean_delay_s * 1e3).collect();
            let o: Vec<f64> = points.iter().map(|(_, a)| a.mean_overhead).collect();
            delay.add_row(row3(rate, &d, 0));
            overhead.add_row(row3(rate, &o, 2));
            rcast_delay_largest &= d[2] > d[0] && d[2] > d[1];
            let sum = o.iter().sum::<f64>();
            if pause == 600.0 {
                mobile_overhead += sum;
            } else {
                static_overhead += sum;
            }
        }
        println!("{}", delay.render());
        println!("{}", overhead.render());
        println!(
            "  Rcast has the largest delay at every rate: {}",
            if rcast_delay_largest { "ok" } else { "MISMATCH" }
        );
        // Beyond the paper: tail latency at the middle rate — means hide
        // the beacon-paced tail.
        let mut cfg = config(Scheme::Rcast, 0.4, pause, scale);
        cfg.seed = 1;
        if let Ok(r) = rcast_core::run_sim(cfg) {
            println!(
                "  Rcast delay distribution at 0.4 pkt/s: p50 {} ms, p95 {} ms, p99 {} ms",
                fmt_f64(r.delivery.delay_percentile(50.0).as_millis_f64(), 0),
                fmt_f64(r.delivery.delay_percentile(95.0).as_millis_f64(), 0),
                fmt_f64(r.delivery.delay_percentile(99.0).as_millis_f64(), 0),
            );
        }
        println!();
    }
    println!(
        "  mobile overhead exceeds static overhead overall: {}",
        if mobile_overhead > static_overhead {
            "ok"
        } else {
            "MISMATCH"
        }
    );
    println!(
        "  (summed overhead: mobile {} vs static {})",
        fmt_f64(mobile_overhead, 2),
        fmt_f64(static_overhead, 2)
    );
}

fn header(metric: &str) -> Vec<String> {
    vec![
        format!("rate \\ {metric}"),
        "802.11".into(),
        "ODPM".into(),
        "Rcast".into(),
    ]
}

fn row3(rate: f64, values: &[f64], decimals: usize) -> Vec<String> {
    vec![
        format!("{rate}"),
        fmt_f64(values[0], decimals),
        fmt_f64(values[1], decimals),
        fmt_f64(values[2], decimals),
    ]
}
