//! Ablation: ODPM keep-alive timeout sensitivity.
//!
//! The paper criticizes ODPM for depending on fine-tuned timeout values
//! ("its performance greatly depends on timeout values, which need fine
//! tuning with the underlying routing protocol as well as traffic
//! conditions"). This sweep varies the RREP and data timeouts around
//! the suggested 5 s / 2 s and shows the energy–PDR trade moving under
//! the same workload — evidence for the claim.

use rcast_bench::{banner, config, run_reports, Scale};
use rcast_core::{AggregateReport, Scheme};
use rcast_engine::SimDuration;
use rcast_metrics::{fmt_f64, TextTable};

fn main() {
    let scale = Scale::from_args();
    banner("Ablation: ODPM timeout sensitivity", scale);

    let variants: Vec<(String, u64, u64)> = vec![
        ("rrep 1 s / data 0.5 s".into(), 1_000, 500),
        ("rrep 2 s / data 1 s".into(), 2_000, 1_000),
        ("rrep 5 s / data 2 s (paper)".into(), 5_000, 2_000),
        ("rrep 10 s / data 5 s".into(), 10_000, 5_000),
        ("rrep 20 s / data 10 s".into(), 20_000, 10_000),
    ];

    for rate in [0.4, 2.0] {
        println!("R_pkt = {rate}, T_pause = 600");
        let mut table = TextTable::new(vec![
            "timeouts".into(),
            "energy (J)".into(),
            "PDR (%)".into(),
            "delay (ms)".into(),
            "variance".into(),
        ]);
        for (name, rrep_ms, data_ms) in &variants {
            let mut cfg = config(Scheme::Odpm, rate, 600.0, scale);
            cfg.odpm.rrep_timeout = SimDuration::from_millis(*rrep_ms);
            cfg.odpm.data_timeout = SimDuration::from_millis(*data_ms);
            let packet_bytes = cfg.traffic.packet_bytes;
            let reports = run_reports(&cfg, scale);
            let agg = AggregateReport::from_runs(&reports, packet_bytes);
            table.add_row(vec![
                name.clone(),
                fmt_f64(agg.mean_total_energy_j, 0),
                fmt_f64(agg.mean_pdr * 100.0, 1),
                fmt_f64(agg.mean_delay_s * 1e3, 0),
                fmt_f64(agg.mean_energy_variance, 0),
            ]);
        }
        println!("{}", table.render());
    }
    println!("reading: at low rates the timeouts trade energy directly for");
    println!("delay; at high rates keep-alives saturate and the knobs stop");
    println!("mattering — the tuning burden the paper criticizes.");
}
