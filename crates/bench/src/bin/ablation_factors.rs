//! Ablation: the four Rcast overhearing-decision factors (Section 3.2).
//!
//! The paper evaluates only the neighbor-count factor
//! (`P_R = 1/#neighbors`) and lists sender-ID, mobility and remaining
//! battery as future work. This experiment runs each factor combination
//! on the paper's mobile testbed and reports energy / PDR / overhead so
//! the trade-offs the paper speculates about become measurable.

use rcast_bench::{banner, config, run_reports, Scale};
use rcast_core::{AggregateReport, OverhearFactors, Scheme};
use rcast_metrics::{fmt_f64, TextTable};

fn main() {
    let scale = Scale::from_args();
    banner("Ablation: Rcast overhearing decision factors", scale);

    let variants: Vec<(&str, OverhearFactors)> = vec![
        ("neighbors (paper)", OverhearFactors::default()),
        (
            "+sender-id",
            OverhearFactors {
                sender_id: true,
                ..OverhearFactors::default()
            },
        ),
        (
            "+mobility",
            OverhearFactors {
                mobility: true,
                ..OverhearFactors::default()
            },
        ),
        (
            "+battery",
            OverhearFactors {
                battery: true,
                ..OverhearFactors::default()
            },
        ),
        (
            "all four",
            OverhearFactors {
                sender_id: true,
                mobility: true,
                battery: true,
                ..OverhearFactors::default()
            },
        ),
    ];

    for rate in [0.4, 2.0] {
        println!("R_pkt = {rate}, T_pause = 600");
        let mut table = TextTable::new(vec![
            "factors".into(),
            "energy (J)".into(),
            "PDR (%)".into(),
            "overhead".into(),
            "variance".into(),
        ]);
        for (name, factors) in &variants {
            let mut cfg = config(Scheme::Rcast, rate, 600.0, scale);
            cfg.factors = *factors;
            // The battery factor needs finite batteries to read.
            if factors.battery {
                cfg.battery_capacity_j = Some(1500.0);
            }
            let packet_bytes = cfg.traffic.packet_bytes;
            let reports = run_reports(&cfg, scale);
            let agg = AggregateReport::from_runs(&reports, packet_bytes);
            table.add_row(vec![
                (*name).into(),
                fmt_f64(agg.mean_total_energy_j, 0),
                fmt_f64(agg.mean_pdr * 100.0, 1),
                fmt_f64(agg.mean_overhead, 2),
                fmt_f64(agg.mean_energy_variance, 0),
            ]);
        }
        println!("{}", table.render());
    }
}
