//! Reproduces **Figure 6** of the paper: variance of per-node energy
//! consumption vs packet rate, for T_pause = 600 (a) and 1125 (b).
//!
//! Expected shape: 802.11 shows no variance (every node burns the same);
//! ODPM's variance is the largest (a few overloaded AM nodes); Rcast's
//! is several times smaller — the paper quotes a 243 %–400 % improvement
//! ("four times less variance").

use rcast_bench::{banner, run_point, Scale};
use rcast_core::Scheme;
use rcast_metrics::{fmt_f64, TextTable};

fn main() {
    let scale = Scale::from_args();
    banner("Figure 6: variance of per-node energy consumption", scale);

    for (tag, pause) in [("(a)", 600.0), ("(b)", 1125.0)] {
        println!("Fig. 6{tag}: T_pause = {pause}");
        let mut table = TextTable::new(vec![
            "rate (pkt/s)".into(),
            "802.11".into(),
            "ODPM".into(),
            "Rcast".into(),
            "ODPM/Rcast".into(),
        ]);
        let mut ratios = Vec::new();
        for rate in scale.rates() {
            let v: Vec<f64> = Scheme::PAPER_FIGURES
                .into_iter()
                .map(|s| run_point(s, rate, pause, scale).mean_energy_variance)
                .collect();
            let ratio = v[1] / v[2].max(1e-9);
            ratios.push(ratio);
            table.add_row(vec![
                format!("{rate}"),
                fmt_f64(v[0], 0),
                fmt_f64(v[1], 0),
                fmt_f64(v[2], 0),
                fmt_f64(ratio, 1),
            ]);
        }
        println!("{}", table.render());
        let all_above = ratios.iter().all(|&r| r > 1.0);
        println!(
            "  ODPM variance exceeds Rcast's at every rate: {}",
            if all_above { "ok" } else { "MISMATCH" }
        );
        let min = ratios.iter().cloned().fold(f64::INFINITY, f64::min);
        println!(
            "  smallest ODPM/Rcast variance ratio: {} (paper: ~4x)\n",
            fmt_f64(min, 1)
        );
    }
}
