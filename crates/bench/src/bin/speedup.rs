//! Demonstrates the parallel seed runner: times the same 8-seed batch
//! serially and at several widths, checks the reports are byte-identical
//! at every width, and prints the speedup.
//!
//! ```text
//! cargo run --release -p rcast-bench --bin speedup [--full] [--threads N]
//! ```
//!
//! The speedup is bounded by the machine's core count (printed below);
//! on a single-core host every width degenerates to ~1.0×, but the
//! byte-identity check still exercises the determinism contract.

use rcast_bench::{threads_from_args, timing::fmt_duration, Scale};
use rcast_core::{run_seeds_parallel, Scheme, SimConfig};
use rcast_engine::pool::available_threads;
use rcast_engine::SimDuration;
use std::time::Instant;

fn main() {
    let scale = Scale::from_args();
    let seeds: Vec<u64> = (1..=8).collect();
    let mut cfg = SimConfig::paper(Scheme::Rcast, 0, 0.4, 600.0);
    cfg.duration = match scale {
        Scale::Quick => SimDuration::from_secs(60),
        Scale::Full => SimDuration::from_secs(375),
    };

    println!("=== parallel seed runner: speedup & determinism ===");
    println!(
        "machine cores: {}   seeds: {}   simulated: {} s ({:?} scale)",
        available_threads(),
        seeds.len(),
        cfg.duration.as_secs_f64(),
        scale
    );
    println!();

    let t0 = Instant::now();
    let serial = run_seeds_parallel(&cfg, seeds.iter().copied(), 1).expect("valid config");
    let serial_time = t0.elapsed();
    let baseline: Vec<String> = serial.iter().map(|r| format!("{r:?}")).collect();
    println!(
        "{:>2} thread(s): {:>10}   speedup 1.00x   reports byte-identical: baseline",
        1,
        fmt_duration(serial_time)
    );

    let mut widths = vec![2, 4, 8];
    let requested = threads_from_args();
    if !widths.contains(&requested) && requested > 1 {
        widths.push(requested);
        widths.sort_unstable();
    }
    for threads in widths {
        let t0 = Instant::now();
        let parallel = run_seeds_parallel(&cfg, seeds.iter().copied(), threads).expect("valid");
        let elapsed = t0.elapsed();
        let identical = parallel
            .iter()
            .zip(&baseline)
            .all(|(r, b)| format!("{r:?}") == *b)
            && parallel.len() == baseline.len();
        println!(
            "{:>2} thread(s): {:>10}   speedup {:.2}x   reports byte-identical: {}",
            threads,
            fmt_duration(elapsed),
            serial_time.as_secs_f64() / elapsed.as_secs_f64(),
            if identical { "yes" } else { "NO (BUG)" }
        );
        assert!(identical, "determinism contract violated at {threads} threads");
    }

    println!();
    println!("every width produced byte-identical SimReports (Debug round-trip).");
    if available_threads() == 1 {
        println!("note: single-core machine — speedup is bounded at ~1.0x here;");
        println!("on an N-core machine expect close to min(N, 8)x for 8 seeds.");
    }
}
