//! Extension experiment: DSR vs AODV under power saving.
//!
//! The paper chooses DSR "because other MANET routing algorithms
//! usually employ periodic broadcasts of routing-related control
//! messages ... and thus tend to consume more energy with IEEE 802.11
//! PSM" (Section 1), and its footnote 1 quotes Das et al.: 90 % of
//! AODV's routing overhead is RREQ traffic. This experiment measures
//! both claims on the same testbed: each routing protocol under the
//! Rcast scheme (and 802.11 as the always-on control).

use rcast_bench::{banner, config, run_reports, Scale};
use rcast_core::{AggregateReport, RoutingKind, Scheme};
use rcast_metrics::{fmt_f64, TextTable};

fn main() {
    let scale = Scale::from_args();
    banner("Extension: DSR vs AODV under PSM-based power saving", scale);

    for rate in [0.4, 2.0] {
        println!("R_pkt = {rate}, T_pause = 600");
        let mut table = TextTable::new(vec![
            "stack".into(),
            "energy (J)".into(),
            "PDR (%)".into(),
            "overhead".into(),
            "RREQ tx".into(),
            "RREQ share".into(),
            "hellos".into(),
        ]);
        for (scheme, routing) in [
            (Scheme::Rcast, RoutingKind::Dsr),
            (Scheme::Rcast, RoutingKind::Aodv),
            (Scheme::Psm, RoutingKind::Aodv),
            (Scheme::Dot11, RoutingKind::Dsr),
            (Scheme::Dot11, RoutingKind::Aodv),
        ] {
            let mut cfg = config(scheme, rate, 600.0, scale);
            cfg.routing = routing;
            let packet_bytes = cfg.traffic.packet_bytes;
            let mut rreq_tx = 0u64;
            let mut ctrl_tx = 0u64;
            let mut hellos = 0u64;
            let reports = run_reports(&cfg, scale);
            for r in &reports {
                rreq_tx += r.dsr.rreq_originated
                    + r.dsr.rreq_forwarded
                    + r.aodv.rreq_originated
                    + r.aodv.rreq_forwarded;
                ctrl_tx += r.delivery.control_transmissions();
                hellos += r.aodv.hello_sent;
            }
            let agg = AggregateReport::from_runs(&reports, packet_bytes);
            let share = if ctrl_tx == 0 {
                0.0
            } else {
                rreq_tx as f64 / ctrl_tx as f64
            };
            table.add_row(vec![
                format!("{}+{}", scheme.label(), routing.label()),
                fmt_f64(agg.mean_total_energy_j, 0),
                fmt_f64(agg.mean_pdr * 100.0, 1),
                fmt_f64(agg.mean_overhead, 2),
                format!("{rreq_tx}"),
                fmt_f64(share * 100.0, 0) + "%",
                format!("{hellos}"),
            ]);
        }
        println!("{}", table.render());
    }
    println!("expected: AODV floods far more RREQs than DSR (footnote 1 of");
    println!("the paper quotes ~90 % of AODV overhead being RREQ traffic),");
    println!("and AODV's hello beacons erase part of the PSM savings.");
}
