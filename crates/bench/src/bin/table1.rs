//! Reproduces **Table 1** of the paper: the qualitative behaviour of
//! 802.11, ODPM and Rcast.
//!
//! The paper's table predicts, per scheme:
//!
//! * 802.11 — best PDR and delay, most energy;
//! * ODPM — less delay than Rcast (some packets go immediately),
//!   more energy than Rcast (some nodes linger in AM);
//! * Rcast — least energy and best energy balance.
//!
//! This binary measures all three at the two traffic corners and prints
//! the measured ordering next to the paper's prediction.

use rcast_bench::{banner, run_point, Scale};
use rcast_core::Scheme;
use rcast_metrics::{fmt_f64, TextTable};

fn main() {
    let scale = Scale::from_args();
    banner("Table 1: protocol behaviour of the three schemes", scale);

    for (rate, pause) in [(0.4, 600.0), (2.0, 600.0)] {
        println!("R_pkt = {rate} pkt/s, T_pause = {pause} s");
        let mut table = TextTable::new(vec![
            "scheme".into(),
            "energy (J)".into(),
            "PDR (%)".into(),
            "delay (ms)".into(),
            "variance".into(),
        ]);
        let mut rows = Vec::new();
        for scheme in Scheme::PAPER_FIGURES {
            let agg = run_point(scheme, rate, pause, scale);
            rows.push((scheme, agg));
        }
        for (scheme, agg) in &rows {
            table.add_row(vec![
                scheme.label().into(),
                fmt_f64(agg.mean_total_energy_j, 0),
                fmt_f64(agg.mean_pdr * 100.0, 1),
                fmt_f64(agg.mean_delay_s * 1000.0, 0),
                fmt_f64(agg.mean_energy_variance, 0),
            ]);
        }
        println!("{}", table.render());

        let by = |s: Scheme| rows.iter().find(|(x, _)| *x == s).expect("present");
        let (_, dot11) = by(Scheme::Dot11);
        let (_, odpm) = by(Scheme::Odpm);
        let (_, rcast) = by(Scheme::Rcast);
        check(
            "802.11 has the best PDR",
            dot11.mean_pdr >= odpm.mean_pdr - 0.01 && dot11.mean_pdr >= rcast.mean_pdr - 0.01,
        );
        check(
            "802.11 consumes the most energy",
            dot11.mean_total_energy_j >= odpm.mean_total_energy_j
                && dot11.mean_total_energy_j >= rcast.mean_total_energy_j,
        );
        check(
            "ODPM has less delay than Rcast",
            odpm.mean_delay_s < rcast.mean_delay_s,
        );
        check(
            "Rcast consumes less energy than ODPM",
            rcast.mean_total_energy_j < odpm.mean_total_energy_j,
        );
        check(
            "Rcast has better energy balance than ODPM",
            rcast.mean_energy_variance < odpm.mean_energy_variance,
        );
        println!();
    }
}

fn check(claim: &str, holds: bool) {
    println!("  [{}] {claim}", if holds { "ok" } else { "MISMATCH" });
}
