//! Reproduces **Figure 5** of the paper: per-node energy consumption,
//! drawn in increasing order, for 802.11 / ODPM / Rcast under four
//! scenarios — (a) R=0.4 T=600, (b) R=2.0 T=600, (c) R=0.4 T=1125,
//! (d) R=2.0 T=1125.
//!
//! Expected shape: 802.11 is a flat line at `1.15 W × duration`; ODPM is
//! a two-level curve (on-route nodes near the 802.11 line, the rest near
//! the PS baseline); Rcast sits below ODPM with a much flatter profile.

use rcast_bench::{banner, run_point, Scale};
use rcast_core::Scheme;
use rcast_metrics::{fmt_f64, TextTable};

fn main() {
    let scale = Scale::from_args();
    banner("Figure 5: per-node energy consumption (sorted ascending)", scale);

    let panels = [
        ("(a)", 0.4, 600.0),
        ("(b)", 2.0, 600.0),
        ("(c)", 0.4, 1125.0),
        ("(d)", 2.0, 1125.0),
    ];
    for (tag, rate, pause) in panels {
        println!("Fig. 5{tag}: R_pkt = {rate}, T_pause = {pause}");
        let curves: Vec<(Scheme, Vec<f64>)> = Scheme::PAPER_FIGURES
            .into_iter()
            .map(|s| (s, run_point(s, rate, pause, scale).sorted_per_node_energy()))
            .collect();
        let n = curves[0].1.len();
        let mut table = TextTable::new(
            std::iter::once("node".to_string())
                .chain(curves.iter().map(|(s, _)| s.label().to_string()))
                .collect(),
        );
        // Print every 10th node of the sorted curve plus the extremes.
        let mut picks: Vec<usize> = (0..n).step_by(10).collect();
        if picks.last() != Some(&(n - 1)) {
            picks.push(n - 1);
        }
        for idx in picks {
            table.add_row(
                std::iter::once(format!("{idx}"))
                    .chain(curves.iter().map(|(_, c)| fmt_f64(c[idx], 1)))
                    .collect(),
            );
        }
        println!("{}", table.render());

        let max_dot11 = curves[0].1.last().copied().unwrap_or(0.0);
        let flat = curves[0].1.first().copied().unwrap_or(0.0);
        println!(
            "  802.11 flat: min {} J = max {} J: {}",
            fmt_f64(flat, 1),
            fmt_f64(max_dot11, 1),
            if (max_dot11 - flat).abs() < 1e-6 { "ok" } else { "MISMATCH" }
        );
        let odpm = &curves[1].1;
        let rcast = &curves[2].1;
        let below = odpm
            .iter()
            .zip(rcast.iter())
            .filter(|(o, r)| r <= o)
            .count();
        println!(
            "  Rcast curve at or below ODPM for {below}/{n} sorted positions\n"
        );
    }
}
