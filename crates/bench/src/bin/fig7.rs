//! Reproduces **Figure 7** of the paper: total energy consumption
//! (a/d), packet delivery ratio (b/e) and energy per delivered bit
//! (c/f) vs packet rate, for T_pause = 600 (top row) and 1125 (bottom).
//!
//! Expected shapes: 802.11 burns the most energy at every rate; Rcast
//! burns the least of the three; all schemes deliver > 90 % of packets;
//! Rcast needs the least energy per delivered bit (the paper quotes up
//! to 75 % less than 802.11).

use rcast_bench::{banner, run_point, Scale};
use rcast_core::{AggregateReport, Scheme};
use rcast_metrics::{fmt_f64, TextTable};

fn main() {
    let scale = Scale::from_args();
    banner(
        "Figure 7: total energy, PDR and energy-per-bit vs packet rate",
        scale,
    );

    for (row, pause) in [("(a)-(c)", 600.0), ("(d)-(f)", 1125.0)] {
        println!("Fig. 7{row}: T_pause = {pause}");
        let mut energy = TextTable::new(header("total energy (J)"));
        let mut pdr = TextTable::new(header("PDR (%)"));
        let mut epb = TextTable::new(header("energy/bit (mJ/bit)"));
        let mut orderings_hold = true;
        let mut pdr_floor = 1.0f64;
        for rate in scale.rates() {
            let points: Vec<(Scheme, AggregateReport)> = Scheme::PAPER_FIGURES
                .into_iter()
                .map(|s| (s, run_point(s, rate, pause, scale)))
                .collect();
            let e: Vec<f64> = points.iter().map(|(_, a)| a.mean_total_energy_j).collect();
            let p: Vec<f64> = points.iter().map(|(_, a)| a.mean_pdr).collect();
            let b: Vec<f64> = points.iter().map(|(_, a)| a.mean_epb * 1e3).collect();
            energy.add_row(row3(rate, &e, 0));
            pdr.add_row(row3(rate, &p.iter().map(|x| x * 100.0).collect::<Vec<_>>(), 1));
            epb.add_row(row3(rate, &b, 4));
            orderings_hold &= e[0] > e[1] && e[1] > e[2];
            pdr_floor = pdr_floor.min(p.iter().cloned().fold(1.0, f64::min));
        }
        println!("{}", energy.render());
        println!("{}", pdr.render());
        println!("{}", epb.render());
        println!(
            "  energy ordering 802.11 > ODPM > Rcast at every rate: {}",
            if orderings_hold { "ok" } else { "MISMATCH" }
        );
        println!(
            "  minimum PDR across schemes and rates: {} % (paper: > 90 %)\n",
            fmt_f64(pdr_floor * 100.0, 1)
        );
    }
}

fn header(metric: &str) -> Vec<String> {
    vec![
        format!("rate \\ {metric}"),
        "802.11".into(),
        "ODPM".into(),
        "Rcast".into(),
    ]
}

fn row3(rate: f64, values: &[f64], decimals: usize) -> Vec<String> {
    vec![
        format!("{rate}"),
        fmt_f64(values[0], decimals),
        fmt_f64(values[1], decimals),
        fmt_f64(values[2], decimals),
    ]
}
