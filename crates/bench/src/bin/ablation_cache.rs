//! Ablation: route-cache capacity and timeout (the Hu & Johnson caching
//! strategies the paper's Section 2.1.2 discusses).
//!
//! The paper's open question: with limited overhearing, do conventional
//! caching strategies still maintain a rich enough route set? This
//! experiment sweeps capacity and adds the timeout eviction Hu & Johnson
//! recommend against stale routes, under Rcast.

use rcast_bench::{banner, config, run_reports, Scale};
use rcast_core::{AggregateReport, Scheme};
use rcast_dsr::CacheStrategy;
use rcast_engine::SimDuration;
use rcast_metrics::{fmt_f64, TextTable};

fn main() {
    let scale = Scale::from_args();
    banner("Ablation: DSR route-cache capacity and timeout under Rcast", scale);

    let variants: Vec<(String, usize, Option<SimDuration>, CacheStrategy)> = vec![
        ("path, capacity 8".into(), 8, None, CacheStrategy::Path),
        ("path, capacity 16".into(), 16, None, CacheStrategy::Path),
        ("path, capacity 64 (default)".into(), 64, None, CacheStrategy::Path),
        ("path, capacity 256".into(), 256, None, CacheStrategy::Path),
        (
            "path, capacity 64, 30 s timeout".into(),
            64,
            Some(SimDuration::from_secs(30)),
            CacheStrategy::Path,
        ),
        (
            "path, capacity 64, 120 s timeout".into(),
            64,
            Some(SimDuration::from_secs(120)),
            CacheStrategy::Path,
        ),
        (
            "link, capacity 128 links".into(),
            128,
            None,
            CacheStrategy::Link,
        ),
        (
            "link, 128 links, 30 s timeout".into(),
            128,
            Some(SimDuration::from_secs(30)),
            CacheStrategy::Link,
        ),
    ];

    for rate in [0.4, 2.0] {
        println!("R_pkt = {rate}, T_pause = 600");
        let mut table = TextTable::new(vec![
            "cache".into(),
            "energy (J)".into(),
            "PDR (%)".into(),
            "overhead".into(),
        ]);
        for (name, capacity, timeout, strategy) in &variants {
            let mut cfg = config(Scheme::Rcast, rate, 600.0, scale);
            cfg.dsr.cache.capacity = *capacity;
            cfg.dsr.cache.timeout = *timeout;
            cfg.dsr.cache.strategy = *strategy;
            let packet_bytes = cfg.traffic.packet_bytes;
            let reports = run_reports(&cfg, scale);
            let agg = AggregateReport::from_runs(&reports, packet_bytes);
            table.add_row(vec![
                name.clone(),
                fmt_f64(agg.mean_total_energy_j, 0),
                fmt_f64(agg.mean_pdr * 100.0, 1),
                fmt_f64(agg.mean_overhead, 2),
            ]);
        }
        println!("{}", table.render());
    }
}
