//! Extension experiment: **network lifetime** under finite batteries.
//!
//! The paper argues (Sections 1 and 4.2) that energy balance matters
//! because overloaded nodes die first and take the network's routing
//! fabric with them, and claims Rcast "increases the network lifetime".
//! The paper never plots lifetime directly; this experiment adds the
//! missing measurement: give every node the same finite battery and
//! report when the first node dies under each scheme.

use rcast_bench::{banner, config, run_reports, Scale};
use rcast_core::Scheme;
use rcast_metrics::{fmt_f64, TextTable};

fn main() {
    let scale = Scale::from_args();
    banner("Extension: network lifetime (first battery depletion)", scale);

    // A battery sized so the hungriest schemes kill nodes mid-run:
    // always-awake consumption is 1.15 W, so 0.6 × duration × 1.15 J
    // dies at 60 % of the run for an always-on node.
    let capacity = 0.6 * scale.duration().as_secs_f64() * 1.15;
    println!("per-node battery: {} J\n", fmt_f64(capacity, 0));

    for rate in [0.4, 2.0] {
        println!("R_pkt = {rate}, T_pause = 600");
        let mut table = TextTable::new(vec![
            "scheme".into(),
            "first death (s)".into(),
            "survived run".into(),
        ]);
        for scheme in Scheme::PAPER_FIGURES {
            let mut cfg = config(scheme, rate, 600.0, scale);
            cfg.battery_capacity_j = Some(capacity);
            let first_deaths: Vec<_> = run_reports(&cfg, scale)
                .into_iter()
                .map(|report| report.first_depletion)
                .collect();
            let deaths: Vec<f64> = first_deaths
                .iter()
                .filter_map(|d| d.map(|t| t.as_secs_f64()))
                .collect();
            let survived = first_deaths.iter().filter(|d| d.is_none()).count();
            let mean_death = if deaths.is_empty() {
                "-".to_string()
            } else {
                fmt_f64(deaths.iter().sum::<f64>() / deaths.len() as f64, 0)
            };
            table.add_row(vec![
                scheme.label().into(),
                mean_death,
                format!("{survived}/{}", first_deaths.len()),
            ]);
        }
        println!("{}", table.render());
    }
    println!("expected: 802.11 nodes die first (always on); ODPM's overloaded");
    println!("relays die next; Rcast postpones the first death the longest.");
}
