//! Ablation: the paper's proposed extension of Rcast to **broadcast**
//! messages — randomized *receiving* of RREQ rebroadcasts to curb the
//! broadcast-storm cost (Section 3.3 / conclusions).
//!
//! The receiving probability must stay conservative so route requests
//! still propagate; this sweep shows the energy / reachability trade.

use rcast_bench::{banner, config, run_reports, Scale};
use rcast_core::{AggregateReport, Scheme};
use rcast_metrics::{fmt_f64, TextTable};

fn main() {
    let scale = Scale::from_args();
    banner("Ablation: randomized broadcast receiving (RREQ Rcast)", scale);

    for rate in [0.4, 2.0] {
        println!("R_pkt = {rate}, T_pause = 600");
        let mut table = TextTable::new(vec![
            "P(receive broadcast)".into(),
            "energy (J)".into(),
            "PDR (%)".into(),
            "overhead".into(),
            "delay (ms)".into(),
        ]);
        for p in [1.0, 0.9, 0.75, 0.5] {
            let mut cfg = config(Scheme::Rcast, rate, 600.0, scale);
            cfg.factors.broadcast_probability = p;
            let packet_bytes = cfg.traffic.packet_bytes;
            let reports = run_reports(&cfg, scale);
            let agg = AggregateReport::from_runs(&reports, packet_bytes);
            table.add_row(vec![
                format!("{p}"),
                fmt_f64(agg.mean_total_energy_j, 0),
                fmt_f64(agg.mean_pdr * 100.0, 1),
                fmt_f64(agg.mean_overhead, 2),
                fmt_f64(agg.mean_delay_s * 1e3, 0),
            ]);
        }
        println!("{}", table.render());
    }
    println!("reading: at the paper's density RREQ floods are redundant");
    println!("enough that probabilities down to ~0.5 leave both energy and");
    println!("PDR within noise; pushing lower starts costing reachability.");
}
