//! The tracked simulator-throughput benchmark behind `rcast bench`.
//!
//! Unlike the figure binaries (which reproduce the *paper's* numbers),
//! this suite tracks the *simulator's* own performance so hot-path
//! regressions show up in review: wall time per simulated second,
//! beacon intervals per second, and — when the [`alloc_probe`] is the
//! process's global allocator — heap allocations per steady-state
//! interval. Results are emitted as a stable, hand-rolled JSON document
//! (`rcast-bench/v1`) checked in as `BENCH_rcast.json`; timing fields
//! vary with the host, the schema and workloads do not.
//!
//! [`alloc_probe`]: crate::alloc_probe

use std::time::Instant;

use rcast_core::{Scheme, SimConfig, Simulation};
use rcast_engine::SimDuration;
use rcast_mobility::Area;

use crate::alloc_probe;

/// Intervals stepped before allocation counting starts: long enough for
/// every reusable buffer to reach its high-water capacity.
const WARMUP_INTERVALS: u64 = 120;

/// One measured workload cell.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Workload name (`small`, `medium`).
    pub workload: &'static str,
    /// Scheme label as the paper prints it (`802.11`, `PSM`, `Rcast`).
    pub scheme: &'static str,
    /// Node count.
    pub nodes: u32,
    /// Simulated seconds.
    pub sim_seconds: f64,
    /// Beacon intervals executed.
    pub intervals: u64,
    /// Wall-clock seconds for the full run.
    pub wall_seconds: f64,
    /// Beacon intervals per wall-clock second.
    pub intervals_per_sec: f64,
    /// Wall-clock milliseconds per simulated second.
    pub ms_per_sim_second: f64,
    /// Mean heap allocations per post-warm-up interval; `None` when no
    /// [`alloc_probe`] is installed as the global allocator.
    pub allocs_per_interval: Option<f64>,
}

/// A named workload: `(name, configure)`.
type Workload = (&'static str, fn(Scheme) -> SimConfig);

/// The benchmark workloads. `small` is the `SimConfig::smoke` testbed;
/// `medium` triples it in every dimension.
fn workloads(smoke: bool) -> Vec<Workload> {
    fn small(scheme: Scheme) -> SimConfig {
        SimConfig::smoke(scheme, 1)
    }
    fn medium(scheme: Scheme) -> SimConfig {
        let mut cfg = SimConfig::paper(scheme, 1, 0.4, 60.0);
        cfg.nodes = 150;
        cfg.area = Area::new(1800.0, 360.0);
        cfg.duration = SimDuration::from_secs(240);
        cfg.traffic.flows = 30;
        cfg
    }
    if smoke {
        vec![("small", small)]
    } else {
        vec![("small", small), ("medium", medium)]
    }
}

/// The `large` scaling tier: node counts double at constant density
/// (the medium tier's 150 nodes / 648 000 m²) and constant offered
/// load (30 flows), so the per-interval wall-time ratio between
/// consecutive points isolates per-node infrastructure cost — the
/// near-linearity claim the scaling gate checks. Rcast-only: the hot
/// paths under test (neighbor maintenance, churn scan, ATIM prepass,
/// wake draws) are scheme-independent, and one scheme keeps the tier
/// cheap enough to run in CI.
fn large_workloads(smoke: bool) -> Vec<Workload> {
    fn large600(scheme: Scheme) -> SimConfig {
        large_cfg(scheme, 600, 3600.0, 720.0, 60)
    }
    fn large1200(scheme: Scheme) -> SimConfig {
        large_cfg(scheme, 1200, 7200.0, 720.0, 60)
    }
    fn large600_smoke(scheme: Scheme) -> SimConfig {
        large_cfg(scheme, 600, 3600.0, 720.0, 45)
    }
    fn large1200_smoke(scheme: Scheme) -> SimConfig {
        large_cfg(scheme, 1200, 7200.0, 720.0, 45)
    }
    if smoke {
        vec![
            ("large-600", large600_smoke as fn(Scheme) -> SimConfig),
            ("large-1200", large1200_smoke),
        ]
    } else {
        vec![("large-600", large600), ("large-1200", large1200)]
    }
}

/// One large-tier configuration. Durations stay past
/// [`WARMUP_INTERVALS`] so the allocation figure is measured, not
/// `None`.
fn large_cfg(scheme: Scheme, nodes: u32, w_m: f64, h_m: f64, secs: u64) -> SimConfig {
    let mut cfg = SimConfig::paper(scheme, 1, 0.4, 60.0);
    cfg.nodes = nodes;
    cfg.area = Area::new(w_m, h_m);
    cfg.duration = SimDuration::from_secs(secs);
    cfg.traffic.flows = 30;
    cfg
}

/// The schemes tracked: the always-on ceiling, the PSM baseline, and
/// the paper's contribution.
const SCHEMES: &[Scheme] = &[Scheme::Dot11, Scheme::Psm, Scheme::Rcast];

/// Wall-clock noise on a shared host dwarfs real regressions for the
/// sub-second cells, so every tracked point reports the best
/// (minimum-wall) of this many runs. Allocation counts are
/// deterministic — every repeat measures the same figure — so the
/// first run's count is kept regardless of which repeat was fastest.
const BENCH_REPS: usize = 3;

/// Runs one workload cell [`BENCH_REPS`] times and keeps the fastest.
fn run_cell(workload: &'static str, cfg: SimConfig) -> BenchResult {
    let mut best = run_cell_once(workload, cfg.clone());
    let allocs = best.allocs_per_interval;
    for _ in 1..BENCH_REPS {
        let rerun = run_cell_once(workload, cfg.clone());
        if rerun.wall_seconds < best.wall_seconds {
            best = rerun;
        }
    }
    best.allocs_per_interval = allocs;
    best
}

/// Runs one workload cell: step the whole run, timing it, and count
/// allocations over the post-warm-up intervals.
fn run_cell_once(workload: &'static str, cfg: SimConfig) -> BenchResult {
    let scheme = cfg.scheme.label();
    let nodes = cfg.nodes;
    let sim_seconds = cfg.duration.as_secs_f64();
    let mut sim = Simulation::new(cfg).expect("valid bench config");
    let started = Instant::now();
    let mut intervals = 0u64;
    let mut allocs_at_warmup = None;
    loop {
        if intervals == WARMUP_INTERVALS {
            allocs_at_warmup = Some(alloc_probe::allocations());
        }
        if !sim.step_interval() {
            break;
        }
        intervals += 1;
    }
    let wall_seconds = started.elapsed().as_secs_f64();
    std::hint::black_box(sim.finish());
    let allocs_per_interval = match allocs_at_warmup {
        Some(base) if alloc_probe::is_installed() && intervals > WARMUP_INTERVALS => Some(
            (alloc_probe::allocations() - base) as f64 / (intervals - WARMUP_INTERVALS) as f64,
        ),
        _ => None,
    };
    BenchResult {
        workload,
        scheme,
        nodes,
        sim_seconds,
        intervals,
        wall_seconds,
        intervals_per_sec: intervals as f64 / wall_seconds,
        ms_per_sim_second: wall_seconds * 1e3 / sim_seconds,
        allocs_per_interval,
    }
}

/// Runs the suite: every scheme at every workload (smoke = the small
/// workload only), plus one [`sweep_point`] tracking campaign-engine
/// throughput. The per-scheme cells are serial on purpose — each
/// measures single-run latency, which thread contention would pollute;
/// the sweep point deliberately runs machine-wide, because cross-cell
/// scaling is exactly what it tracks.
pub fn run_suite(smoke: bool) -> Vec<BenchResult> {
    run_suite_with(smoke, false)
}

/// [`run_suite`] with the optional `large` scaling tier appended
/// (before the sweep point, which stays last): the Rcast 600- and
/// 1200-node cells feeding [`scaling_failures`].
pub fn run_suite_with(smoke: bool, large: bool) -> Vec<BenchResult> {
    let mut out = Vec::new();
    for (name, build) in workloads(smoke) {
        for &scheme in SCHEMES {
            out.push(run_cell(name, build(scheme)));
        }
    }
    if large {
        for (name, build) in large_workloads(smoke) {
            out.push(run_cell(name, build(Scheme::Rcast)));
        }
    }
    out.push(sweep_point());
    out
}

/// Maximum per-interval wall-time growth allowed when node count
/// doubles 600 → 1200 on the `large` tier. Strict linearity would be
/// 2.0×; the slack absorbs longer routes (network diameter grows with
/// the constant-density area) and cache effects, while still failing
/// any reintroduced O(n²) scan, which would score ≈ 4×.
pub const SCALING_MAX_RATIO: f64 = 2.5;

/// Steady-state allocation budget per interval for the large tier —
/// generous against the measured figure, tight against any per-node
/// allocation creeping into the interval loop (which would scale the
/// count with n, not with traffic).
pub const LARGE_ALLOC_BUDGET: f64 = 2000.0;

/// The per-interval wall cost of one point, milliseconds.
fn ms_per_interval(r: &BenchResult) -> f64 {
    r.wall_seconds * 1e3 / r.intervals.max(1) as f64
}

/// Renders the nodes-doubling scaling table over the Rcast medium +
/// large points present in `results` (medium is the 150-node anchor;
/// the smoke suite omits it and the table simply starts at 600).
pub fn scaling_table(results: &[BenchResult]) -> String {
    let mut s = String::from(
        "nodes-doubling scaling (Rcast):\n  workload     nodes  int/s      ms/interval  ratio\n",
    );
    let mut prev: Option<&BenchResult> = None;
    for name in ["medium", "large-600", "large-1200"] {
        let Some(r) = results
            .iter()
            .find(|r| r.workload == name && r.scheme == "Rcast")
        else {
            continue;
        };
        let ratio = match prev {
            Some(p) => format!(
                "{:.2}x over {} nodes",
                ms_per_interval(r) / ms_per_interval(p),
                p.nodes
            ),
            None => "-".to_string(),
        };
        s.push_str(&format!(
            "  {:<11}  {:<5}  {:<9.1}  {:<11.3}  {}\n",
            r.workload,
            r.nodes,
            r.intervals_per_sec,
            ms_per_interval(r),
            ratio
        ));
        prev = Some(r);
    }
    s
}

/// The `large` tier's CI gate: the 600- and 1200-node Rcast points
/// must both be present, their per-interval wall-time ratio must stay
/// under [`SCALING_MAX_RATIO`], and neither may exceed
/// [`LARGE_ALLOC_BUDGET`] steady-state allocations per interval.
/// Returns the failure messages; empty means the gate passed.
pub fn scaling_failures(results: &[BenchResult]) -> Vec<String> {
    let mut failures = Vec::new();
    let find = |name: &str| {
        results
            .iter()
            .find(|r| r.workload == name && r.scheme == "Rcast")
    };
    let (Some(lo), Some(hi)) = (find("large-600"), find("large-1200")) else {
        failures.push("scaling gate needs the large-600 and large-1200 Rcast points".into());
        return failures;
    };
    let ratio = ms_per_interval(hi) / ms_per_interval(lo);
    if ratio > SCALING_MAX_RATIO {
        failures.push(format!(
            "600 -> 1200 nodes: {:.3} -> {:.3} ms/interval is {ratio:.2}x \
(budget {SCALING_MAX_RATIO}x)",
            ms_per_interval(lo),
            ms_per_interval(hi),
        ));
    }
    for r in [lo, hi] {
        if let Some(a) = r.allocs_per_interval {
            if a > LARGE_ALLOC_BUDGET {
                failures.push(format!(
                    "{}: {a:.2} allocs/interval exceeds the {LARGE_ALLOC_BUDGET} budget",
                    r.workload,
                ));
            }
        }
    }
    failures
}

/// One sweep-campaign throughput point: the `fig7` CI smoke grid
/// (3 schemes × 2 rates × 2 pauses × 2 seeds = 24 runs) executed at
/// machine width through `rcast_sweep::run_spec`. Tracks the
/// cell × seed work-stealing path end to end. The allocation probe is
/// process-global, so the reported figure is the campaign-wide mean —
/// every allocation on every worker (including per-run construction;
/// there is no warm-up window to subtract across runs) divided by the
/// total intervals executed. Like the workload cells, the wall figure
/// is the best of [`BENCH_REPS`] runs with the first run's allocation
/// count.
fn sweep_point() -> BenchResult {
    let mut best = sweep_point_once();
    let allocs = best.allocs_per_interval;
    for _ in 1..BENCH_REPS {
        let rerun = sweep_point_once();
        if rerun.wall_seconds < best.wall_seconds {
            best = rerun;
        }
    }
    best.allocs_per_interval = allocs;
    best
}

fn sweep_point_once() -> BenchResult {
    let spec = rcast_sweep::preset("fig7")
        .expect("built-in preset")
        .smoke();
    let threads = rcast_engine::pool::available_threads();
    let allocs_before = alloc_probe::allocations();
    let started = Instant::now();
    let report = rcast_sweep::run_spec(&spec, threads).expect("smoke grid runs");
    let wall_seconds = started.elapsed().as_secs_f64();
    let allocs_per_interval = if alloc_probe::is_installed() && report.total_intervals > 0 {
        Some((alloc_probe::allocations() - allocs_before) as f64 / report.total_intervals as f64)
    } else {
        None
    };
    BenchResult {
        workload: "sweep",
        scheme: "mixed",
        nodes: report.spec.nodes[0],
        sim_seconds: report.total_sim_seconds,
        intervals: report.total_intervals,
        wall_seconds,
        intervals_per_sec: report.total_intervals as f64 / wall_seconds,
        ms_per_sim_second: wall_seconds * 1e3 / report.total_sim_seconds,
        allocs_per_interval,
    }
}

/// Paired ledger-overhead measurement behind the `rcast bench --smoke`
/// CI gate (DESIGN.md §11): with the event ledger off, the steady state
/// must not allocate (the §10 guarantee is untouched); with it on, the
/// steady state must *still* not allocate (storage is pre-sized) and
/// the wall-clock cost must stay under 10%.
#[derive(Debug, Clone, Copy)]
pub struct LedgerOverhead {
    /// Best-round wall nanoseconds per steady-state interval, ledger off.
    pub off_nanos_per_interval: u64,
    /// Best-round wall nanoseconds per steady-state interval, ledger on.
    pub on_nanos_per_interval: u64,
    /// Worst-round steady-state allocation count, ledger off (0 when no
    /// probe is installed).
    pub off_allocs: u64,
    /// Worst-round steady-state allocation count, ledger on.
    pub on_allocs: u64,
}

impl LedgerOverhead {
    /// Fractional wall-clock overhead of the ledger:
    /// `(on − off) / off`, clamped at zero when the ledger run was not
    /// slower.
    pub fn overhead_fraction(&self) -> f64 {
        if self.on_nanos_per_interval <= self.off_nanos_per_interval {
            0.0
        } else {
            (self.on_nanos_per_interval - self.off_nanos_per_interval) as f64
                / self.off_nanos_per_interval as f64
        }
    }
}

/// One ledger-overhead run: warm `cfg` past its high-water marks, then
/// time and allocation-count the remaining intervals.
fn ledger_cell(mut cfg: SimConfig, obs: bool) -> (u64, u64) {
    cfg.obs = obs;
    let mut sim = Simulation::new(cfg).expect("valid ledger bench config");
    for _ in 0..WARMUP_INTERVALS {
        assert!(sim.step_interval(), "warm-up must fit in the run");
    }
    let allocs_before = alloc_probe::allocations();
    let started = Instant::now();
    let mut stepped = 0u64;
    while sim.step_interval() {
        stepped += 1;
    }
    let wall_nanos = started.elapsed().as_nanos() as u64;
    let allocs = alloc_probe::allocations() - allocs_before;
    std::hint::black_box(sim.finish());
    (wall_nanos / stepped.max(1), allocs)
}

/// The zero-alloc contract workload (static nodes, one near-silent
/// flow) — the same quiet steady state `tests/zero_alloc.rs` pins.
fn quiet_config() -> SimConfig {
    let mut cfg = SimConfig::smoke(Scheme::Rcast, 3);
    cfg.waypoint.pause_secs = 1e9;
    cfg.traffic.flows = 1;
    cfg.traffic.rate_pps = 0.001;
    cfg
}

/// The wall-overhead workload: the realistic `small` testbed (real
/// traffic — the representative hot path), lengthened so each timed
/// half is tens of milliseconds and scheduler noise amortizes.
fn timing_config() -> SimConfig {
    let mut cfg = SimConfig::smoke(Scheme::Rcast, 3);
    cfg.duration = SimDuration::from_secs(240);
    cfg
}

/// Measures the ledger's cost.
///
/// *Wall overhead* comes from `rounds` interleaved off/on pairs of
/// [`timing_config`], keeping the pair with the smallest on/off ratio:
/// the two halves of a pair run back-to-back, so machine-load drift
/// between rounds cancels instead of counting against the budget,
/// while a real regression shows up in every round — including the
/// minimum. *Allocations* come from one off/on pair of the quiet
/// zero-alloc workload, where the steady-state count must be exactly
/// zero both ways; a single pair suffices because allocation counts
/// are deterministic.
pub fn ledger_overhead_rounds(rounds: usize) -> LedgerOverhead {
    let (_, off_allocs) = ledger_cell(quiet_config(), false);
    let (_, on_allocs) = ledger_cell(quiet_config(), true);
    let mut best: Option<(u64, u64)> = None;
    for _ in 0..rounds.max(1) {
        let (off, _) = ledger_cell(timing_config(), false);
        let (on, _) = ledger_cell(timing_config(), true);
        let better = match best {
            None => true,
            // on/off < best_on/best_off, cross-multiplied to stay exact.
            Some((b_off, b_on)) => (on as u128) * (b_off as u128) < (b_on as u128) * (off as u128),
        };
        if better {
            best = Some((off, on));
        }
    }
    let (off_nanos_per_interval, on_nanos_per_interval) = best.expect("at least one round");
    LedgerOverhead {
        off_nanos_per_interval,
        on_nanos_per_interval,
        off_allocs,
        on_allocs,
    }
}

/// The CI-gate measurement: five interleaved off/on rounds.
pub fn ledger_overhead() -> LedgerOverhead {
    ledger_overhead_rounds(5)
}

/// Renders the `rcast-bench/v1` JSON document. Hand-rolled and stable:
/// fixed key order, fixed precision, no timestamps or host fields, so
/// diffs of the checked-in file show only performance movement.
pub fn to_json(results: &[BenchResult]) -> String {
    let mut s = String::from("{\n  \"schema\": \"rcast-bench/v1\",\n  \"points\": [\n");
    for (i, r) in results.iter().enumerate() {
        let allocs = match r.allocs_per_interval {
            Some(a) => format!("{a:.2}"),
            None => "null".to_string(),
        };
        s.push_str(&format!(
            "    {{\"workload\": \"{}\", \"scheme\": \"{}\", \"nodes\": {}, \
\"sim_seconds\": {:.0}, \"intervals\": {}, \"wall_seconds\": {:.3}, \
\"intervals_per_sec\": {:.1}, \"ms_per_sim_second\": {:.3}, \
\"allocs_per_interval\": {}}}{}\n",
            r.workload,
            r.scheme,
            r.nodes,
            r.sim_seconds,
            r.intervals,
            r.wall_seconds,
            r.intervals_per_sec,
            r.ms_per_sim_second,
            allocs,
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// One point of a parsed `rcast-bench/v1` baseline document — the
/// fields `--check` compares.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselinePoint {
    /// Workload name.
    pub workload: String,
    /// Scheme label.
    pub scheme: String,
    /// Baseline throughput.
    pub intervals_per_sec: f64,
    /// Baseline allocation rate (`None` when the document says `null`).
    pub allocs_per_interval: Option<f64>,
}

/// Allowed `intervals_per_sec` regression before `--check` fails:
/// wall-clock noise is real, a quarter of the throughput is not.
pub const CHECK_SPEED_TOLERANCE: f64 = 0.25;

/// Slack absorbing the baseline document's two-decimal formatting when
/// comparing `allocs_per_interval` (which is otherwise deterministic —
/// any real increase fails).
const CHECK_ALLOC_EPSILON: f64 = 0.005;

/// Parses the points of an `rcast-bench/v1` document. The format is
/// this crate's own hand-rolled [`to_json`] output — one point per
/// line, fixed key order — so a line scan is exact, not heuristic.
///
/// # Errors
///
/// Returns a message naming the first malformed line, or the missing
/// schema header.
pub fn parse_baseline(json: &str) -> Result<Vec<BaselinePoint>, String> {
    if !json.contains("\"schema\": \"rcast-bench/v1\"") {
        return Err("baseline is not an rcast-bench/v1 document".into());
    }
    fn str_field(line: &str, name: &str) -> Option<String> {
        let tail = line.split_once(&format!("\"{name}\": \""))?.1;
        Some(tail.split_once('"')?.0.to_string())
    }
    fn raw_field(line: &str, name: &str) -> Option<String> {
        let tail = line.split_once(&format!("\"{name}\": "))?.1;
        Some(
            tail.split_once([',', '}'])
                .map_or(tail, |(head, _)| head)
                .trim()
                .to_string(),
        )
    }
    let mut out = Vec::new();
    for line in json.lines().filter(|l| l.contains("\"workload\"")) {
        let point = (|| {
            let workload = str_field(line, "workload")?;
            let scheme = str_field(line, "scheme")?;
            let ips: f64 = raw_field(line, "intervals_per_sec")?.parse().ok()?;
            let allocs = match raw_field(line, "allocs_per_interval")?.as_str() {
                "null" => None,
                n => Some(n.parse().ok()?),
            };
            Some(BaselinePoint {
                workload,
                scheme,
                intervals_per_sec: ips,
                allocs_per_interval: allocs,
            })
        })();
        match point {
            Some(p) => out.push(p),
            None => return Err(format!("malformed baseline point: {}", line.trim())),
        }
    }
    if out.is_empty() {
        return Err("baseline has no points".into());
    }
    Ok(out)
}

/// Diffs `current` against a parsed baseline: every current point with
/// a matching `(workload, scheme)` baseline point must not regress more
/// than [`CHECK_SPEED_TOLERANCE`] in `intervals_per_sec`, and must not
/// increase `allocs_per_interval` at all. Points present on only one
/// side are skipped (a `--smoke` run checks against a full baseline).
/// Returns the failure messages; empty means the check passed.
pub fn check_against(current: &[BenchResult], baseline: &[BaselinePoint]) -> Vec<String> {
    check_against_with_tolerance(current, baseline, CHECK_SPEED_TOLERANCE)
}

/// [`check_against`] with the speed tolerance as a parameter — the
/// `rcast bench --check --tolerance <pct>` path. `tolerance` is a
/// fraction (0.25 = 25 %). The allocation rule is not relaxed: any
/// increase beyond rounding still fails regardless of tolerance.
pub fn check_against_with_tolerance(
    current: &[BenchResult],
    baseline: &[BaselinePoint],
    tolerance: f64,
) -> Vec<String> {
    let mut failures = Vec::new();
    for r in current {
        let Some(b) = baseline
            .iter()
            .find(|b| b.workload == r.workload && b.scheme == r.scheme)
        else {
            continue;
        };
        let floor = (1.0 - tolerance) * b.intervals_per_sec;
        if r.intervals_per_sec < floor {
            failures.push(format!(
                "{}/{}: intervals_per_sec {:.1} is below {:.1} \
(baseline {:.1} − {:.0}% tolerance)",
                r.workload,
                r.scheme,
                r.intervals_per_sec,
                floor,
                b.intervals_per_sec,
                tolerance * 100.0,
            ));
        }
        if let (Some(cur), Some(base)) = (r.allocs_per_interval, b.allocs_per_interval) {
            if cur > base + CHECK_ALLOC_EPSILON {
                failures.push(format!(
                    "{}/{}: allocs_per_interval rose {:.2} → {:.2} \
(any increase fails)",
                    r.workload, r.scheme, base, cur,
                ));
            }
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(workload: &'static str, scheme: &'static str, ips: f64, allocs: Option<f64>) -> BenchResult {
        BenchResult {
            workload,
            scheme,
            nodes: 50,
            sim_seconds: 120.0,
            intervals: 480,
            wall_seconds: 480.0 / ips,
            intervals_per_sec: ips,
            ms_per_sim_second: 1.0,
            allocs_per_interval: allocs,
        }
    }

    #[test]
    fn baseline_round_trips_through_to_json() {
        let results = vec![
            point("small", "Rcast", 9704.4, Some(47.71)),
            point("sweep", "mixed", 170004.1, None),
        ];
        let parsed = parse_baseline(&to_json(&results)).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].workload, "small");
        assert_eq!(parsed[0].scheme, "Rcast");
        assert!((parsed[0].intervals_per_sec - 9704.4).abs() < 1e-9);
        assert_eq!(parsed[0].allocs_per_interval, Some(47.71));
        assert_eq!(parsed[1].allocs_per_interval, None);
    }

    #[test]
    fn baseline_rejects_junk() {
        assert!(parse_baseline("{}").is_err(), "missing schema");
        assert!(
            parse_baseline("{\"schema\": \"rcast-bench/v1\", \"points\": []}").is_err(),
            "no points"
        );
        let bad = "{\n  \"schema\": \"rcast-bench/v1\",\n  \
{\"workload\": \"small\", \"scheme\": \"Rcast\"}\n}";
        assert!(parse_baseline(bad).is_err(), "point missing fields");
    }

    #[test]
    fn check_flags_regressions_and_tolerates_noise() {
        let baseline =
            parse_baseline(&to_json(&[point("small", "Rcast", 1000.0, Some(50.0))])).unwrap();
        // Within tolerance, allocs flat: clean.
        assert!(check_against(&[point("small", "Rcast", 800.0, Some(50.0))], &baseline)
            .is_empty());
        // Faster and fewer allocs: clean.
        assert!(check_against(&[point("small", "Rcast", 2000.0, Some(10.0))], &baseline)
            .is_empty());
        // >25% slower: fails.
        let f = check_against(&[point("small", "Rcast", 700.0, Some(50.0))], &baseline);
        assert_eq!(f.len(), 1);
        assert!(f[0].contains("intervals_per_sec"), "{f:?}");
        // Any alloc increase: fails.
        let f = check_against(&[point("small", "Rcast", 1000.0, Some(50.1))], &baseline);
        assert_eq!(f.len(), 1);
        assert!(f[0].contains("allocs_per_interval"), "{f:?}");
        // Unmatched points are skipped both ways.
        assert!(check_against(&[point("medium", "Rcast", 1.0, Some(9e9))], &baseline)
            .is_empty());
    }

    #[test]
    fn smoke_suite_runs_and_renders() {
        let results = run_suite(true);
        assert_eq!(
            results.len(),
            SCHEMES.len() + 1,
            "one cell per scheme plus the sweep point"
        );
        let (sweep, singles) = results.split_last().expect("non-empty");
        for r in singles {
            assert_eq!(r.workload, "small");
            assert_eq!(r.intervals, 480, "120 s at 250 ms");
            assert!(r.wall_seconds > 0.0);
            assert!(r.intervals_per_sec > 0.0);
            // No assertion on allocs_per_interval: the probe is not this
            // test binary's allocator, but a sibling unit test exercising
            // the pass-through may have flipped the shared INSTALLED flag.
        }
        assert_eq!(sweep.workload, "sweep");
        assert_eq!(sweep.scheme, "mixed");
        // 12 cells × 2 seeds × (60 s / 250 ms) intervals.
        assert_eq!(sweep.intervals, 24 * 240);
        // allocs_per_interval is None unless the probe is installed —
        // which a sibling unit test may have flipped; accept both.
        if let Some(a) = sweep.allocs_per_interval {
            assert!(a.is_finite() && a >= 0.0);
        }
        let json = to_json(&results);
        assert!(json.starts_with("{\n  \"schema\": \"rcast-bench/v1\""));
        assert_eq!(json.matches("\"workload\"").count(), results.len());
        assert!(json.contains("\"allocs_per_interval\": "));
        assert!(json.ends_with("  ]\n}\n"));
    }

    #[test]
    fn ledger_overhead_fraction_math() {
        let mut o = LedgerOverhead {
            off_nanos_per_interval: 1000,
            on_nanos_per_interval: 1050,
            off_allocs: 0,
            on_allocs: 0,
        };
        assert!((o.overhead_fraction() - 0.05).abs() < 1e-12);
        o.on_nanos_per_interval = 900;
        assert_eq!(o.overhead_fraction(), 0.0, "faster-with-ledger clamps");
    }

    #[test]
    fn ledger_overhead_measures_one_round() {
        let o = ledger_overhead_rounds(1);
        assert!(o.off_nanos_per_interval > 0);
        assert!(o.on_nanos_per_interval > 0);
        assert!(o.off_nanos_per_interval < u64::MAX);
        // No alloc assertion here: the probe is not this test binary's
        // global allocator, so counts are meaningful only in the `rcast`
        // binary and the zero_alloc integration test.
    }

    #[test]
    fn medium_workload_matches_the_tracked_shape() {
        let cfgs = workloads(false);
        assert_eq!(cfgs.len(), 2);
        let medium = (cfgs[1].1)(Scheme::Rcast);
        assert_eq!(medium.nodes, 150);
        assert_eq!(medium.duration, SimDuration::from_secs(240));
        assert_eq!(medium.traffic.flows, 30);
        assert!(medium.validate().is_ok());
    }

    #[test]
    fn large_tier_holds_density_and_load_constant() {
        // Medium's density is the anchor the tier doubles from.
        let medium = (workloads(false)[1].1)(Scheme::Rcast);
        let anchor = medium.nodes as f64 / (medium.area.width() * medium.area.height());
        for smoke in [false, true] {
            let cfgs = large_workloads(smoke);
            assert_eq!(cfgs.len(), 2);
            let (lo, hi) = ((cfgs[0].1)(Scheme::Rcast), (cfgs[1].1)(Scheme::Rcast));
            assert_eq!((lo.nodes, hi.nodes), (600, 1200));
            for cfg in [&lo, &hi] {
                let density = cfg.nodes as f64 / (cfg.area.width() * cfg.area.height());
                assert!((density - anchor).abs() / anchor < 1e-9);
                assert_eq!(cfg.traffic.flows, medium.traffic.flows);
                // Allocation counting needs post-warm-up intervals.
                assert!(cfg.duration.as_secs_f64() > WARMUP_INTERVALS as f64 * 0.25);
                assert!(cfg.validate().is_ok());
            }
        }
    }

    fn scaled_point(
        workload: &'static str,
        nodes: u32,
        intervals: u64,
        wall_seconds: f64,
        allocs: Option<f64>,
    ) -> BenchResult {
        BenchResult {
            workload,
            scheme: "Rcast",
            nodes,
            sim_seconds: intervals as f64 * 0.25,
            intervals,
            wall_seconds,
            intervals_per_sec: intervals as f64 / wall_seconds,
            ms_per_sim_second: 1.0,
            allocs_per_interval: allocs,
        }
    }

    #[test]
    fn scaling_gate_passes_near_linear_and_fails_quadratic() {
        // 2.0x per doubling: linear, passes.
        let linear = vec![
            scaled_point("large-600", 600, 180, 0.9, Some(300.0)),
            scaled_point("large-1200", 1200, 180, 1.8, Some(310.0)),
        ];
        assert!(scaling_failures(&linear).is_empty());

        // 4.0x per doubling: a reintroduced pairwise scan, fails.
        let quadratic = vec![
            scaled_point("large-600", 600, 180, 0.9, Some(300.0)),
            scaled_point("large-1200", 1200, 180, 3.6, Some(310.0)),
        ];
        let failures = scaling_failures(&quadratic);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("4.00x"), "{failures:?}");

        // Alloc budget breach fails even when timing is linear.
        let leaky = vec![
            scaled_point("large-600", 600, 180, 0.9, Some(300.0)),
            scaled_point("large-1200", 1200, 180, 1.8, Some(LARGE_ALLOC_BUDGET + 1.0)),
        ];
        let failures = scaling_failures(&leaky);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("budget"), "{failures:?}");

        // Missing points are a failure, not a silent pass.
        assert_eq!(scaling_failures(&linear[..1]).len(), 1);
    }

    #[test]
    fn scaling_table_lists_points_with_doubling_ratios() {
        let results = vec![
            point("medium", "Rcast", 1400.0, Some(324.0)),
            scaled_point("large-600", 600, 180, 0.9, Some(300.0)),
            scaled_point("large-1200", 1200, 180, 1.98, Some(310.0)),
        ];
        let table = scaling_table(&results);
        assert!(table.contains("medium"), "{table}");
        assert!(table.contains("large-600"), "{table}");
        assert!(table.contains("2.20x over 600 nodes"), "{table}");
        // Absent points are simply omitted — the smoke tier has no medium.
        let partial = scaling_table(&results[1..]);
        assert!(!partial.contains("medium"), "{partial}");
    }

    #[test]
    fn tolerance_parameter_widens_the_speed_floor() {
        let baseline = parse_baseline(&to_json(&[point("small", "Rcast", 1000.0, None)]))
            .unwrap();
        let current = vec![point("small", "Rcast", 600.0, None)];
        // 40 % below baseline: fails at the default 25 %...
        assert_eq!(check_against(&current, &baseline).len(), 1);
        // ...and at an explicit 30 %...
        assert_eq!(
            check_against_with_tolerance(&current, &baseline, 0.30).len(),
            1
        );
        // ...but passes once the tolerance covers the drop.
        assert!(check_against_with_tolerance(&current, &baseline, 0.45).is_empty());
    }
}
