//! The tracked simulator-throughput benchmark behind `rcast bench`.
//!
//! Unlike the figure binaries (which reproduce the *paper's* numbers),
//! this suite tracks the *simulator's* own performance so hot-path
//! regressions show up in review: wall time per simulated second,
//! beacon intervals per second, and — when the [`alloc_probe`] is the
//! process's global allocator — heap allocations per steady-state
//! interval. Results are emitted as a stable, hand-rolled JSON document
//! (`rcast-bench/v1`) checked in as `BENCH_rcast.json`; timing fields
//! vary with the host, the schema and workloads do not.
//!
//! [`alloc_probe`]: crate::alloc_probe

use std::time::Instant;

use rcast_core::{Scheme, SimConfig, Simulation};
use rcast_engine::SimDuration;
use rcast_mobility::Area;

use crate::alloc_probe;

/// Intervals stepped before allocation counting starts: long enough for
/// every reusable buffer to reach its high-water capacity.
const WARMUP_INTERVALS: u64 = 120;

/// One measured workload cell.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Workload name (`small`, `medium`).
    pub workload: &'static str,
    /// Scheme label as the paper prints it (`802.11`, `PSM`, `Rcast`).
    pub scheme: &'static str,
    /// Node count.
    pub nodes: u32,
    /// Simulated seconds.
    pub sim_seconds: f64,
    /// Beacon intervals executed.
    pub intervals: u64,
    /// Wall-clock seconds for the full run.
    pub wall_seconds: f64,
    /// Beacon intervals per wall-clock second.
    pub intervals_per_sec: f64,
    /// Wall-clock milliseconds per simulated second.
    pub ms_per_sim_second: f64,
    /// Mean heap allocations per post-warm-up interval; `None` when no
    /// [`alloc_probe`] is installed as the global allocator.
    pub allocs_per_interval: Option<f64>,
}

/// A named workload: `(name, configure)`.
type Workload = (&'static str, fn(Scheme) -> SimConfig);

/// The benchmark workloads. `small` is the `SimConfig::smoke` testbed;
/// `medium` triples it in every dimension.
fn workloads(smoke: bool) -> Vec<Workload> {
    fn small(scheme: Scheme) -> SimConfig {
        SimConfig::smoke(scheme, 1)
    }
    fn medium(scheme: Scheme) -> SimConfig {
        let mut cfg = SimConfig::paper(scheme, 1, 0.4, 60.0);
        cfg.nodes = 150;
        cfg.area = Area::new(1800.0, 360.0);
        cfg.duration = SimDuration::from_secs(240);
        cfg.traffic.flows = 30;
        cfg
    }
    if smoke {
        vec![("small", small)]
    } else {
        vec![("small", small), ("medium", medium)]
    }
}

/// The schemes tracked: the always-on ceiling, the PSM baseline, and
/// the paper's contribution.
const SCHEMES: &[Scheme] = &[Scheme::Dot11, Scheme::Psm, Scheme::Rcast];

/// Runs one workload cell: step the whole run, timing it, and count
/// allocations over the post-warm-up intervals.
fn run_cell(workload: &'static str, cfg: SimConfig) -> BenchResult {
    let scheme = cfg.scheme.label();
    let nodes = cfg.nodes;
    let sim_seconds = cfg.duration.as_secs_f64();
    let mut sim = Simulation::new(cfg).expect("valid bench config");
    let started = Instant::now();
    let mut intervals = 0u64;
    let mut allocs_at_warmup = None;
    loop {
        if intervals == WARMUP_INTERVALS {
            allocs_at_warmup = Some(alloc_probe::allocations());
        }
        if !sim.step_interval() {
            break;
        }
        intervals += 1;
    }
    let wall_seconds = started.elapsed().as_secs_f64();
    std::hint::black_box(sim.finish());
    let allocs_per_interval = match allocs_at_warmup {
        Some(base) if alloc_probe::is_installed() && intervals > WARMUP_INTERVALS => Some(
            (alloc_probe::allocations() - base) as f64 / (intervals - WARMUP_INTERVALS) as f64,
        ),
        _ => None,
    };
    BenchResult {
        workload,
        scheme,
        nodes,
        sim_seconds,
        intervals,
        wall_seconds,
        intervals_per_sec: intervals as f64 / wall_seconds,
        ms_per_sim_second: wall_seconds * 1e3 / sim_seconds,
        allocs_per_interval,
    }
}

/// Runs the suite: every scheme at every workload (smoke = the small
/// workload only). Serial on purpose — each cell measures single-run
/// latency, which thread contention would pollute.
pub fn run_suite(smoke: bool) -> Vec<BenchResult> {
    let mut out = Vec::new();
    for (name, build) in workloads(smoke) {
        for &scheme in SCHEMES {
            out.push(run_cell(name, build(scheme)));
        }
    }
    out
}

/// Renders the `rcast-bench/v1` JSON document. Hand-rolled and stable:
/// fixed key order, fixed precision, no timestamps or host fields, so
/// diffs of the checked-in file show only performance movement.
pub fn to_json(results: &[BenchResult]) -> String {
    let mut s = String::from("{\n  \"schema\": \"rcast-bench/v1\",\n  \"points\": [\n");
    for (i, r) in results.iter().enumerate() {
        let allocs = match r.allocs_per_interval {
            Some(a) => format!("{a:.2}"),
            None => "null".to_string(),
        };
        s.push_str(&format!(
            "    {{\"workload\": \"{}\", \"scheme\": \"{}\", \"nodes\": {}, \
\"sim_seconds\": {:.0}, \"intervals\": {}, \"wall_seconds\": {:.3}, \
\"intervals_per_sec\": {:.1}, \"ms_per_sim_second\": {:.3}, \
\"allocs_per_interval\": {}}}{}\n",
            r.workload,
            r.scheme,
            r.nodes,
            r.sim_seconds,
            r.intervals,
            r.wall_seconds,
            r.intervals_per_sec,
            r.ms_per_sim_second,
            allocs,
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_suite_runs_and_renders() {
        let results = run_suite(true);
        assert_eq!(results.len(), SCHEMES.len(), "one cell per scheme");
        for r in &results {
            assert_eq!(r.workload, "small");
            assert_eq!(r.intervals, 480, "120 s at 250 ms");
            assert!(r.wall_seconds > 0.0);
            assert!(r.intervals_per_sec > 0.0);
            // No assertion on allocs_per_interval: the probe is not this
            // test binary's allocator, but a sibling unit test exercising
            // the pass-through may have flipped the shared INSTALLED flag.
        }
        let json = to_json(&results);
        assert!(json.starts_with("{\n  \"schema\": \"rcast-bench/v1\""));
        assert_eq!(json.matches("\"workload\"").count(), results.len());
        assert!(json.contains("\"allocs_per_interval\": "));
        assert!(json.ends_with("  ]\n}\n"));
    }

    #[test]
    fn medium_workload_matches_the_tracked_shape() {
        let cfgs = workloads(false);
        assert_eq!(cfgs.len(), 2);
        let medium = (cfgs[1].1)(Scheme::Rcast);
        assert_eq!(medium.nodes, 150);
        assert_eq!(medium.duration, SimDuration::from_secs(240));
        assert_eq!(medium.traffic.flows, 30);
        assert!(medium.validate().is_ok());
    }
}
