//! A minimal std-only timing harness for the `cargo bench` targets.
//!
//! The workspace builds fully offline, so the bench targets cannot pull
//! in an external statistics framework. This harness covers what the
//! figure/simulator benches actually need: warm up, repeat a closure
//! until a time budget is spent, and report mean/median/min wall time
//! per iteration. Invoke with `cargo bench`; pass `--quick` through to
//! shrink the per-bench budget during smoke runs.

use std::time::{Duration, Instant};

/// Per-bench measurement budget and iteration bounds.
#[derive(Debug, Clone, Copy)]
pub struct Harness {
    /// Wall-clock budget spent measuring each bench.
    pub budget: Duration,
    /// Lower bound on measured iterations, whatever the budget.
    pub min_iters: u32,
    /// Upper bound on measured iterations (keeps fast benches bounded).
    pub max_iters: u32,
}

impl Default for Harness {
    fn default() -> Self {
        Harness {
            budget: Duration::from_secs(2),
            min_iters: 5,
            max_iters: 10_000,
        }
    }
}

impl Harness {
    /// A harness honouring `--quick` in the process arguments
    /// (quarter-second budget instead of two seconds).
    pub fn from_args() -> Harness {
        let mut h = Harness::default();
        if std::env::args().any(|a| a == "--quick") {
            h.budget = Duration::from_millis(250);
        }
        h
    }

    /// Measures `f` and prints one result line. The closure's output is
    /// passed through [`std::hint::black_box`] so the work is not
    /// optimised away.
    pub fn bench<R>(&self, name: &str, mut f: impl FnMut() -> R) {
        // One untimed warm-up iteration (page in code and data).
        std::hint::black_box(f());
        let mut samples: Vec<Duration> = Vec::new();
        let started = Instant::now();
        while (samples.len() as u32) < self.max_iters
            && ((samples.len() as u32) < self.min_iters || started.elapsed() < self.budget)
        {
            let t0 = Instant::now();
            std::hint::black_box(f());
            samples.push(t0.elapsed());
        }
        samples.sort_unstable();
        let n = samples.len();
        let mean = samples.iter().sum::<Duration>() / n as u32;
        let median = samples[n / 2];
        println!(
            "{name:<44} {n:>6} iters   mean {:>10}   median {:>10}   min {:>10}",
            fmt_duration(mean),
            fmt_duration(median),
            fmt_duration(samples[0]),
        );
    }
}

/// Formats a duration with an adaptive unit (ns / µs / ms / s).
pub fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_at_least_min_iters() {
        let h = Harness {
            budget: Duration::from_millis(1),
            min_iters: 5,
            max_iters: 100,
        };
        let mut count = 0u32;
        h.bench("counter", || count += 1);
        // min_iters measured + 1 warm-up.
        assert!(count >= 6);
        assert!(count <= 101);
    }

    #[test]
    fn duration_formatting_scales() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(fmt_duration(Duration::from_micros(12)), "12.00 µs");
        assert_eq!(fmt_duration(Duration::from_millis(12)), "12.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(12)), "12.00 s");
    }
}
