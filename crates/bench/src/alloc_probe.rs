//! A counting global allocator for steady-state allocation regression
//! tests and the `rcast bench` report.
//!
//! [`AllocProbe`] wraps [`System`] and counts every allocation into a
//! process-wide relaxed atomic. Install it with `#[global_allocator]`
//! in a binary or integration test, then read [`allocations`] deltas
//! around the region under measurement. The probe adds one relaxed
//! `fetch_add` per allocation — noise-level overhead, and the hot path
//! under test allocates nothing at all, which is exactly the property
//! being pinned (DESIGN.md §10).
//!
//! Counting is the only side effect: sizes, frees and failures are
//! passed straight through to [`System`], so behaviour under the probe
//! is indistinguishable from running without it.

// This module is the one place in the workspace allowed to use
// `unsafe`: implementing `GlobalAlloc` requires it, and the impl only
// forwards to `System`. The lint rule D004 exempts lines carrying the
// `det: unsafe-ok` pragma.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Allocations observed process-wide since start (or the last
/// [`reset`]). Shared by every probe instance: `#[global_allocator]`
/// statics are unit values, so the count lives here.
static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// Set by the first allocation routed through a probe — i.e. exactly
/// when a probe is installed as the global allocator (Rust allocates
/// before `main`).
static INSTALLED: AtomicBool = AtomicBool::new(false);

/// The counting allocator. See the [module docs](self).
pub struct AllocProbe;

impl AllocProbe {
    /// A probe, for the `#[global_allocator]` static.
    pub const fn new() -> Self {
        AllocProbe
    }
}

impl Default for AllocProbe {
    fn default() -> Self {
        AllocProbe::new()
    }
}

/// Total allocations counted so far.
pub fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Zeroes the counter (the absolute value rarely matters; deltas do).
pub fn reset() {
    ALLOCATIONS.store(0, Ordering::Relaxed);
}

/// `true` when an [`AllocProbe`] is this process's global allocator —
/// the counter is meaningless otherwise.
pub fn is_installed() -> bool {
    INSTALLED.load(Ordering::Relaxed)
}

fn count() {
    INSTALLED.store(true, Ordering::Relaxed);
    ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
}

// det: unsafe-ok — GlobalAlloc is an unsafe trait; the impl forwards
// every call to std's System allocator unchanged and only bumps an
// atomic counter, so System's safety contract carries over verbatim.
unsafe impl GlobalAlloc for AllocProbe {
    // det: unsafe-ok — GlobalAlloc method; body forwards to System
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count();
        System.alloc(layout) // det: unsafe-ok — delegated to System
    }

    // det: unsafe-ok — GlobalAlloc method; body forwards to System
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout) // det: unsafe-ok — delegated to System
    }

    // det: unsafe-ok — GlobalAlloc method; body forwards to System
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        count();
        System.alloc_zeroed(layout) // det: unsafe-ok — delegated to System
    }

    // det: unsafe-ok — GlobalAlloc method; body forwards to System
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count();
        System.realloc(ptr, layout, new_size) // det: unsafe-ok — delegated to System
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The probe is NOT installed as this test binary's allocator, so
    // only the pass-through plumbing is checked here; counting under
    // installation is exercised by `tests/zero_alloc.rs`.
    #[test]
    fn probe_forwards_and_counts() {
        let probe = AllocProbe::new();
        let before = allocations();
        let layout = Layout::from_size_align(64, 8).unwrap();
        // det: unsafe-ok — test exercises the GlobalAlloc pass-through
        unsafe {
            let p = probe.alloc(layout);
            assert!(!p.is_null());
            let p = probe.realloc(p, layout, 128);
            assert!(!p.is_null());
            probe.dealloc(p, Layout::from_size_align(128, 8).unwrap());
        }
        assert_eq!(allocations() - before, 2, "alloc + realloc count");
        assert!(is_installed(), "counting marks the probe live");
    }
}
