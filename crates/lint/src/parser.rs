//! Item-level parsing over the token stream.
//!
//! The semantic rules (D007–D009) need one step more structure than the
//! lexer gives: *which function does this token belong to*, and *what
//! does that function call*. This module extracts exactly that — `fn`
//! items with their enclosing `impl`/`trait` context and body spans —
//! from the token stream, std-only and without a full grammar. It is
//! deliberately not a Rust parser: generics, patterns and expressions
//! are skipped with bracket matching, which is all the call-graph
//! construction needs. The soundness limits this implies are documented
//! in DESIGN.md §13.

use crate::lexer::{Token, TokenKind};

/// One `fn` item with a body, as extracted from a file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// 1-based line of the name token.
    pub line: u32,
    /// 1-based column of the name token.
    pub col: u32,
    /// The enclosing `impl` block's self type (last path segment, e.g.
    /// `Simulation` for `impl Simulation` or `impl Display for
    /// Simulation`), `None` for free functions and trait declarations.
    pub self_type: Option<String>,
    /// The implemented trait's name (last path segment) for
    /// `impl Trait for Type` blocks, or the trait's own name for
    /// default methods declared inside `trait Name { … }`.
    pub trait_name: Option<String>,
    /// `true` when the parameter list carries a `self` receiver.
    pub has_self: bool,
    /// Half-open range of **code-token indices** (see
    /// [`code_indices`]) spanning the body, braces included.
    pub body: (usize, usize),
}

/// Indices of the non-comment tokens in `tokens` — the shared "code
/// view" every semantic pass works on, so body spans recorded by the
/// parser line up with the rules' own scans.
pub fn code_indices(tokens: &[Token]) -> Vec<usize> {
    tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| t.kind != TokenKind::Comment)
        .map(|(i, _)| i)
        .collect()
}

/// The keywords that can directly precede `(` without being calls, plus
/// everything that must never be treated as a callee name.
pub const KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "false", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move",
    "mut", "pub", "ref", "return", "static", "struct", "super", "trait", "true", "type", "unsafe",
    "use", "where", "while", "yield",
];

/// One `impl`/`trait` block on the context stack while scanning.
#[derive(Debug, Clone)]
struct BlockCtx {
    self_type: Option<String>,
    trait_name: Option<String>,
    /// Brace depth *after* the block's `{` was pushed; a `}` returning
    /// the depth below this value pops the context.
    depth: usize,
}

/// Extracts every `fn` item with a body from `tokens`. `code` must be
/// [`code_indices`]`(tokens)`; body ranges index into it.
pub fn parse_fns(tokens: &[Token], code: &[usize]) -> Vec<FnItem> {
    let tok = |i: usize| -> &Token { &tokens[code[i]] };
    let n = code.len();
    let mut out = Vec::new();
    let mut ctx: Vec<BlockCtx> = Vec::new();
    let mut depth = 0usize;
    let mut i = 0usize;
    while i < n {
        let t = tok(i);
        if t.is_punct('{') {
            depth += 1;
            i += 1;
            continue;
        }
        if t.is_punct('}') {
            depth = depth.saturating_sub(1);
            while ctx.last().is_some_and(|c| depth < c.depth) {
                ctx.pop();
            }
            i += 1;
            continue;
        }
        if t.is_word("impl") || t.is_word("trait") {
            if let Some((block, open)) = parse_block_header(tokens, code, i) {
                ctx.push(BlockCtx { depth: depth + 1, ..block });
                depth += 1;
                i = open + 1;
                continue;
            }
            i += 1;
            continue;
        }
        if t.is_word("fn") {
            if let Some(item) = parse_fn(tokens, code, i, ctx.last()) {
                let next = item.body.0 + 1; // descend into the body
                let skip_to = if item.body.1 > item.body.0 { next } else { i + 1 };
                depth += 1; // the body `{` we are stepping over
                out.push(item);
                i = skip_to;
                continue;
            }
            i += 1;
            continue;
        }
        i += 1;
    }
    out
}

/// Parses the header of an `impl`/`trait` block starting at `start`
/// (the keyword token). Returns the context and the code index of the
/// opening `{`, or `None` for headerless forms (`impl Trait + …` in
/// type position, a `trait` bound alias, or a bodiless declaration).
fn parse_block_header(
    tokens: &[Token],
    code: &[usize],
    start: usize,
) -> Option<(BlockCtx, usize)> {
    let tok = |i: usize| -> &Token { &tokens[code[i]] };
    let is_trait = tok(start).is_word("trait");
    let mut angle = 0i32;
    let mut paren = 0i32;
    // Idents seen at angle-depth 0, split around a top-level `for`.
    let mut before_for: Option<String> = None;
    let mut after_for: Option<String> = None;
    let mut saw_for = false;
    let mut i = start + 1;
    while i < code.len() {
        let t = tok(i);
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') {
            angle -= 1;
        } else if t.is_punct('(') {
            paren += 1;
        } else if t.is_punct(')') {
            paren -= 1;
        } else if t.is_punct('{') && angle <= 0 && paren == 0 {
            let (self_type, trait_name) = if is_trait {
                (None, before_for.clone())
            } else if saw_for {
                (after_for.clone(), before_for.clone())
            } else {
                (before_for.clone(), None)
            };
            return Some((BlockCtx { self_type, trait_name, depth: 0 }, i));
        } else if t.is_punct(';') || t.is_punct('=') {
            return None; // `trait Alias = …;`, bodiless forms
        } else if angle <= 0 && paren == 0 {
            if t.is_word("for") {
                saw_for = true;
            } else if t.kind == TokenKind::Ident && !KEYWORDS.contains(&t.text.as_str()) {
                let slot = if saw_for { &mut after_for } else { &mut before_for };
                *slot = Some(t.text.clone());
            }
        }
        i += 1;
    }
    None
}

/// Parses one `fn` item starting at `start` (the `fn` keyword).
/// Returns `None` for bodiless signatures (trait method declarations,
/// `extern` blocks).
fn parse_fn(
    tokens: &[Token],
    code: &[usize],
    start: usize,
    ctx: Option<&BlockCtx>,
) -> Option<FnItem> {
    let tok = |i: usize| -> &Token { &tokens[code[i]] };
    let name_tok = tok(start + 1);
    if name_tok.kind != TokenKind::Ident && name_tok.kind != TokenKind::RawIdent {
        return None;
    }
    let name = name_tok.text.clone();
    let (line, col) = (name_tok.line, name_tok.col);
    // Find the parameter list: the first `(` at angle-depth 0 (generic
    // parameter lists may contain `Fn(…)` bounds, hence the tracking).
    let mut i = start + 2;
    let mut angle = 0i32;
    while i < code.len() {
        let t = tok(i);
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') {
            angle -= 1;
        } else if t.is_punct('(') && angle <= 0 {
            break;
        } else if t.is_punct(';') || t.is_punct('{') {
            return None; // malformed; bail before misattributing a body
        }
        i += 1;
    }
    if i >= code.len() {
        return None;
    }
    // Scan the parameter list for a `self` receiver at paren-depth 1.
    let mut paren = 0i32;
    let mut has_self = false;
    while i < code.len() {
        let t = tok(i);
        if t.is_punct('(') {
            paren += 1;
        } else if t.is_punct(')') {
            paren -= 1;
            if paren == 0 {
                break;
            }
        } else if paren == 1 && t.is_word("self") {
            has_self = true;
        }
        i += 1;
    }
    // Return type / where clause up to the body `{` or a `;`.
    let mut angle = 0i32;
    i += 1;
    while i < code.len() {
        let t = tok(i);
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') {
            angle -= 1;
        } else if t.is_punct(';') && angle <= 0 {
            return None; // bodiless signature
        } else if t.is_punct('{') && angle <= 0 {
            break;
        }
        i += 1;
    }
    if i >= code.len() {
        return None;
    }
    let open = i;
    let mut depth = 0i32;
    while i < code.len() {
        let t = tok(i);
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return Some(FnItem {
                    name,
                    line,
                    col,
                    self_type: ctx.and_then(|c| c.self_type.clone()),
                    trait_name: ctx.and_then(|c| c.trait_name.clone()),
                    has_self,
                    body: (open, i + 1),
                });
            }
        }
        i += 1;
    }
    // Unterminated body (truncated input): span to end of file.
    Some(FnItem {
        name,
        line,
        col,
        self_type: ctx.and_then(|c| c.self_type.clone()),
        trait_name: ctx.and_then(|c| c.trait_name.clone()),
        has_self,
        body: (open, code.len()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> Vec<FnItem> {
        let tokens = lex(src);
        let code = code_indices(&tokens);
        parse_fns(&tokens, &code)
    }

    #[test]
    fn free_fns_and_methods_are_distinguished() {
        let items = parse(
            "fn free(x: u32) -> u32 { x }\n\
             struct S;\n\
             impl S {\n\
                 fn method(&mut self) {}\n\
                 fn assoc() -> S { S }\n\
             }\n",
        );
        assert_eq!(items.len(), 3);
        assert_eq!((items[0].name.as_str(), items[0].has_self, items[0].self_type.clone()), ("free", false, None));
        assert_eq!((items[1].name.as_str(), items[1].has_self), ("method", true));
        assert_eq!(items[1].self_type.as_deref(), Some("S"));
        assert_eq!((items[2].name.as_str(), items[2].has_self), ("assoc", false));
        assert_eq!(items[2].self_type.as_deref(), Some("S"));
    }

    #[test]
    fn trait_impls_carry_both_names() {
        let items = parse(
            "impl std::fmt::Display for Report {\n\
                 fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result { Ok(()) }\n\
             }\n",
        );
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].self_type.as_deref(), Some("Report"));
        assert_eq!(items[0].trait_name.as_deref(), Some("Display"));
        assert!(items[0].has_self);
    }

    #[test]
    fn trait_declarations_keep_default_bodies_only() {
        let items = parse(
            "trait Tick {\n\
                 fn required(&self);\n\
                 fn defaulted(&self) -> u32 { 1 }\n\
             }\n",
        );
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].name, "defaulted");
        assert_eq!(items[0].trait_name.as_deref(), Some("Tick"));
        assert_eq!(items[0].self_type, None);
    }

    #[test]
    fn generic_headers_and_fn_bounds_do_not_confuse_the_scan() {
        let items = parse(
            "impl<'a, T: Clone> Holder<'a, T> {\n\
                 fn apply<F: Fn(u32) -> u32>(&self, f: F) -> u32 { f(1) }\n\
             }\n",
        );
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].name, "apply");
        assert_eq!(items[0].self_type.as_deref(), Some("Holder"));
        assert!(items[0].has_self);
    }

    #[test]
    fn nested_fns_are_extracted_with_outer_bodies_intact() {
        let items = parse(
            "fn outer() -> u32 {\n\
                 fn inner(x: u32) -> u32 { x + 1 }\n\
                 inner(2)\n\
             }\n",
        );
        let names: Vec<_> = items.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["outer", "inner"]);
        // The outer body must span past the inner fn to its own brace.
        assert!(items[0].body.1 > items[1].body.1);
    }

    #[test]
    fn impl_context_pops_at_the_closing_brace() {
        let items = parse(
            "impl A { fn ma(&self) {} }\n\
             fn free_after() {}\n",
        );
        assert_eq!(items[0].self_type.as_deref(), Some("A"));
        assert_eq!(items[1].self_type, None);
    }

    #[test]
    fn self_in_body_is_not_a_receiver() {
        let items = parse("fn helper(report: &Report) -> u32 { report.count(self_like()) }\n");
        assert!(!items.is_empty());
        assert!(!items[0].has_self);
    }
}
