//! Workspace call-graph construction and hot-path reachability.
//!
//! D007 replaces PR 4's hand-maintained hot-function name list with a
//! computed property: a function is *hot* when it is reachable, through
//! the call graph, from one of the declared steady-state entry points
//! ([`HOT_ENTRY_POINTS`]). The graph is built from the item parser's
//! `fn` inventory over every simulation-crate library file, with
//! **name-based dispatch resolution**:
//!
//! * `callee(…)` and `module::callee(…)` resolve to every workspace
//!   function named `callee` that takes no `self` receiver;
//! * `recv.method(…)` resolves to every workspace function named
//!   `method` that *does* take `self` — which over-approximates trait
//!   dispatch (every impl of a same-named method is an edge) and
//!   under-approximates nothing the workspace defines;
//! * `Type::method(…)` resolves within the impls of `Type` when the
//!   workspace has any, and to **no** edge otherwise (an uppercase
//!   qualifier the workspace never implements is a std/external type:
//!   `Vec::new`, `Arc::clone`); `Self::method(…)` uses the enclosing
//!   impl's type.
//!
//! Over-approximation is the sound direction for this rule: a false
//! edge can only *add* audited allocation sites (escaped case by case
//! with `// det: hot-ok — <reason>`), never hide one. The limits are
//! spelled out in DESIGN.md §13.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{Token, TokenKind};
use crate::parser::{code_indices, parse_fns, FnItem, KEYWORDS};
use crate::project::{classify, FileKind};

/// The declared steady-state entry points: the per-interval drivers the
/// simulation, observability and sweep layers expose. Everything they
/// transitively call is hot; nothing else needs registering by hand.
/// Keep in sync with DESIGN.md §13.
pub const HOT_ENTRY_POINTS: &[&str] = &[
    "run_cell_seed",
    "run_interval_into",
    "run_interval_observed",
    "step_interval",
];

/// One function node in the workspace call graph.
#[derive(Debug, Clone)]
pub struct FnNode {
    /// Workspace-relative `/`-separated path of the defining file.
    pub path: String,
    /// The parsed item.
    pub item: FnItem,
    /// Index of the defining file in [`CallGraph::files`].
    pub file: usize,
}

/// One parsed simulation-library file, kept so rules can rescan bodies.
#[derive(Debug)]
pub struct GraphFile {
    /// Workspace-relative path.
    pub path: String,
    /// All tokens, comments included.
    pub tokens: Vec<Token>,
    /// Indices of the non-comment tokens into `tokens`.
    pub code: Vec<usize>,
}

/// The workspace call graph over simulation-crate library code.
#[derive(Debug)]
pub struct CallGraph {
    /// Parsed files, in sorted path order.
    pub files: Vec<GraphFile>,
    /// Function nodes, in (file, body-start) order.
    pub nodes: Vec<FnNode>,
    /// Callee node ids per node.
    pub edges: Vec<BTreeSet<usize>>,
}

/// The result of a reachability query: the reachable node set plus one
/// shortest witness chain per node, for diagnostics.
#[derive(Debug)]
pub struct Reachability {
    /// Reachable node ids.
    pub reached: BTreeSet<usize>,
    /// BFS parent per reached node (`None` for roots).
    pub parent: BTreeMap<usize, Option<usize>>,
}

impl CallGraph {
    /// Builds the graph from `(path, source)` pairs. Files that are not
    /// simulation-crate library code are ignored — the hot path never
    /// leaves the sim crates, and tests/binaries allocate freely.
    pub fn build(sources: &[(String, String)]) -> CallGraph {
        let mut files = Vec::new();
        let mut nodes = Vec::new();
        for (path, source) in sources {
            let class = classify(path);
            if !class.is_sim_crate() || class.kind != FileKind::Lib {
                continue;
            }
            let tokens = crate::lexer::lex(source);
            let code = code_indices(&tokens);
            let fns = parse_fns(&tokens, &code);
            let file_idx = files.len();
            for item in fns {
                nodes.push(FnNode { path: path.clone(), item, file: file_idx });
            }
            files.push(GraphFile { path: path.clone(), tokens, code });
        }

        // Resolution indices. BTreeMap keeps edge construction (and so
        // every downstream report) independent of input order.
        let mut by_name_self: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut by_name_free: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut by_type_name: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        let mut impl_types: BTreeSet<&str> = BTreeSet::new();
        for (id, node) in nodes.iter().enumerate() {
            let name = node.item.name.as_str();
            if node.item.has_self {
                by_name_self.entry(name).or_default().push(id);
            } else {
                by_name_free.entry(name).or_default().push(id);
            }
            if let Some(ty) = node.item.self_type.as_deref() {
                impl_types.insert(ty);
                by_type_name.entry((ty, name)).or_default().push(id);
            }
        }

        let mut edges: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); nodes.len()];
        for (id, node) in nodes.iter().enumerate() {
            let file = &files[node.file];
            let tok = |i: usize| -> &Token { &file.tokens[file.code[i]] };
            let (start, end) = node.item.body;
            for i in start..end.min(file.code.len()) {
                let t = tok(i);
                let callable =
                    t.kind == TokenKind::Ident && !KEYWORDS.contains(&t.text.as_str());
                if !callable || !call_follows(file, i, end) {
                    continue;
                }
                let name = t.text.as_str();
                let targets: Vec<usize> = if i >= 1 && tok(i - 1).is_punct('.') {
                    // `recv.method(…)` — every self-taking `method`.
                    by_name_self.get(name).cloned().unwrap_or_default()
                } else if i >= 2 && tok(i - 1).is_punct(':') && tok(i - 2).is_punct(':') {
                    let qualifier = (i >= 3).then(|| tok(i - 3)).filter(|q| {
                        q.kind == TokenKind::Ident || q.is_word("Self")
                    });
                    match qualifier {
                        Some(q) if q.is_word("Self") => node
                            .item
                            .self_type
                            .as_deref()
                            .and_then(|ty| by_type_name.get(&(ty, name)).cloned())
                            .unwrap_or_default(),
                        Some(q) if q.text.chars().next().is_some_and(char::is_uppercase) => {
                            if impl_types.contains(q.text.as_str()) {
                                by_type_name.get(&(q.text.as_str(), name)).cloned().unwrap_or_default()
                            } else {
                                Vec::new() // std/external type: no edge
                            }
                        }
                        // `module::callee(…)` or an unreadable qualifier.
                        _ => by_name_free.get(name).cloned().unwrap_or_default(),
                    }
                } else if i >= 1 && tok(i - 1).is_word("fn") {
                    continue; // a declaration, not a call
                } else {
                    by_name_free.get(name).cloned().unwrap_or_default()
                };
                for target in targets {
                    if target != id {
                        edges[id].insert(target);
                    }
                }
            }
        }
        CallGraph { files, nodes, edges }
    }

    /// Node ids whose function name is in `names`.
    pub fn nodes_named(&self, names: &[&str]) -> Vec<usize> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| names.contains(&n.item.name.as_str()))
            .map(|(id, _)| id)
            .collect()
    }

    /// BFS from every node whose name is in `roots`, in deterministic
    /// (node-id) order. Roots are themselves reachable.
    pub fn reachable_from(&self, roots: &[&str]) -> Reachability {
        self.reachable_from_excluding(roots, &BTreeSet::new())
    }

    /// Like [`reachable_from`](Self::reachable_from), but never enters a
    /// node in `cold` — the mechanism behind the `// det: cold — <reason>`
    /// boundary pragma: a function declared cold (construction, teardown,
    /// rare lifecycle events like a fault-rejoin reboot) is cut out of
    /// the steady-state closure together with everything only reachable
    /// through it.
    pub fn reachable_from_excluding(&self, roots: &[&str], cold: &BTreeSet<usize>) -> Reachability {
        let mut reached = BTreeSet::new();
        let mut parent = BTreeMap::new();
        let mut queue = std::collections::VecDeque::new();
        for id in self.nodes_named(roots) {
            if !cold.contains(&id) && reached.insert(id) {
                parent.insert(id, None);
                queue.push_back(id);
            }
        }
        while let Some(id) = queue.pop_front() {
            for &callee in &self.edges[id] {
                if !cold.contains(&callee) && reached.insert(callee) {
                    parent.insert(callee, Some(id));
                    queue.push_back(callee);
                }
            }
        }
        Reachability { reached, parent }
    }

    /// The names of every function reachable from [`HOT_ENTRY_POINTS`],
    /// sorted and deduplicated — the computed successor of the old D006
    /// name list, exposed for the differential test.
    pub fn hot_function_names(&self) -> Vec<String> {
        let reach = self.reachable_from(HOT_ENTRY_POINTS);
        let mut names: Vec<String> = reach
            .reached
            .iter()
            .map(|&id| self.nodes[id].item.name.clone())
            .collect();
        names.sort();
        names.dedup();
        names
    }

    /// One shortest call chain `root → … → node`, rendered for
    /// diagnostics (`step_interval → dispatch → send_broadcast`).
    pub fn witness_chain(&self, reach: &Reachability, node: usize) -> String {
        let mut chain = Vec::new();
        let mut cur = Some(node);
        while let Some(id) = cur {
            chain.push(self.nodes[id].item.name.clone());
            cur = reach.parent.get(&id).copied().flatten();
        }
        chain.reverse();
        chain.join(" → ")
    }
}

/// `true` when code-token `i` of `file` is followed by a call's opening
/// paren, allowing one turbofish (`sum::<f64>(…)`) in between.
fn call_follows(file: &GraphFile, i: usize, end: usize) -> bool {
    let tok = |j: usize| -> &Token { &file.tokens[file.code[j]] };
    let n = end.min(file.code.len());
    if i + 1 < n && tok(i + 1).is_punct('(') {
        return true;
    }
    // `name::<T, …>(…)`
    if i + 3 < n && tok(i + 1).is_punct(':') && tok(i + 2).is_punct(':') && tok(i + 3).is_punct('<')
    {
        let mut depth = 0i32;
        let mut j = i + 3;
        while j < n {
            let t = tok(j);
            if t.is_punct('<') {
                depth += 1;
            } else if t.is_punct('>') {
                depth -= 1;
                if depth == 0 {
                    return j + 1 < n && tok(j + 1).is_punct('(');
                }
            } else if t.is_punct(';') || t.is_punct('{') {
                return false;
            }
            j += 1;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(files: &[(&str, &str)]) -> CallGraph {
        let owned: Vec<(String, String)> = files
            .iter()
            .map(|(p, s)| (p.to_string(), s.to_string()))
            .collect();
        CallGraph::build(&owned)
    }

    #[test]
    fn direct_and_method_calls_produce_edges() {
        let g = graph(&[(
            "crates/mac/src/lib.rs",
            "pub fn step_interval(q: &Queue) { helper(); q.drain_front(); }\n\
             fn helper() {}\n\
             pub struct Queue;\n\
             impl Queue { pub fn drain_front(&self) {} }\n",
        )]);
        let names = g.hot_function_names();
        assert_eq!(names, ["drain_front", "helper", "step_interval"]);
    }

    #[test]
    fn std_typed_calls_produce_no_edges() {
        let g = graph(&[(
            "crates/mac/src/lib.rs",
            "pub fn step_interval() { let v = Vec::new(); let _ = v.len(); }\n\
             pub fn new() -> u32 { 0 }\n",
        )]);
        // `Vec::new` must not resolve to the workspace's free `fn new`.
        assert_eq!(g.hot_function_names(), ["step_interval"]);
    }

    #[test]
    fn self_calls_resolve_within_the_impl() {
        let g = graph(&[(
            "crates/core/src/sim.rs",
            "pub struct Sim;\n\
             impl Sim {\n\
                 pub fn step_interval(&mut self) { Self::tick_all(); }\n\
                 fn tick_all() {}\n\
             }\n\
             pub struct Other;\n\
             impl Other { pub fn tick_all() {} }\n",
        )]);
        let reach = g.reachable_from(HOT_ENTRY_POINTS);
        let reached: Vec<&str> = reach
            .reached
            .iter()
            .map(|&id| g.nodes[id].item.name.as_str())
            .collect();
        assert_eq!(reached, ["step_interval", "tick_all"]);
        // The Other::tick_all impl is NOT reached (typed resolution).
        let other_id = g
            .nodes
            .iter()
            .position(|n| n.item.self_type.as_deref() == Some("Other"))
            .unwrap();
        assert!(!reach.reached.contains(&other_id));
    }

    #[test]
    fn witness_chain_names_the_entry_point_first() {
        let g = graph(&[(
            "crates/mac/src/lib.rs",
            "pub fn run_interval_into() { middle(); }\n\
             fn middle() { leaf(); }\n\
             fn leaf() {}\n",
        )]);
        let reach = g.reachable_from(HOT_ENTRY_POINTS);
        let leaf = g.nodes.iter().position(|n| n.item.name == "leaf").unwrap();
        assert_eq!(g.witness_chain(&reach, leaf), "run_interval_into → middle → leaf");
    }

    #[test]
    fn non_sim_files_contribute_no_nodes() {
        let g = graph(&[
            ("crates/bench/src/lib.rs", "pub fn step_interval() { helper(); }\nfn helper() {}\n"),
            ("crates/mac/tests/t.rs", "fn step_interval() {}\n"),
        ]);
        assert!(g.nodes.is_empty());
    }
}
