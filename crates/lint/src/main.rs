//! The standalone `rcast-lint` binary.
//!
//! ```sh
//! cargo run -p rcast-lint              # lint the enclosing workspace
//! cargo run -p rcast-lint -- --json    # machine-readable report
//! cargo run -p rcast-lint -- --sarif   # SARIF 2.1.0 for CI annotation
//! cargo run -p rcast-lint -- --baseline lint.baseline
//! cargo run -p rcast-lint -- --root /path/to/workspace
//! ```
//!
//! Exit codes: `0` clean, `1` findings, `2` usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use rcast_lint::{
    apply_baseline, find_workspace_root, lint_workspace, parse_baseline, render_json,
    render_sarif, render_text, RULES,
};

const USAGE: &str = "\
rcast-lint — determinism & hygiene static analyzer for the RandomCast workspace

USAGE:
    rcast-lint [--root <dir>] [--json | --sarif] [--baseline <file>]
    rcast-lint --rules
    rcast-lint --help

OPTIONS:
    --root <dir>       workspace root to lint [nearest [workspace] Cargo.toml]
    --json             machine-readable report (stable ordering)
    --sarif            SARIF 2.1.0 report (stable ordering)
    --baseline <file>  suppression file (`RULE path` per line); stale
                       entries are reported on stderr
    --rules            list the rule ids and what they protect
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json = false;
    let mut sarif = false;
    let mut root: Option<PathBuf> = None;
    let mut baseline_path: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = true,
            "--sarif" => sarif = true,
            "--root" => match it.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("error: --root needs a directory\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--baseline" => match it.next() {
                Some(file) => baseline_path = Some(PathBuf::from(file)),
                None => {
                    eprintln!("error: --baseline needs a file\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--rules" => {
                for (id, what) in RULES {
                    println!("{id}  {what}");
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("error: unknown option '{other}'\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    if json && sarif {
        eprintln!("error: --json and --sarif are mutually exclusive\n{USAGE}");
        return ExitCode::from(2);
    }
    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("error: cannot determine current directory: {e}");
                    return ExitCode::from(2);
                }
            };
            match find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("error: no workspace Cargo.toml above {}", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };
    let baseline = match &baseline_path {
        None => Vec::new(),
        Some(p) => {
            let text = match std::fs::read_to_string(p) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("error: cannot read baseline {}: {e}", p.display());
                    return ExitCode::from(2);
                }
            };
            match parse_baseline(&text) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::from(2);
                }
            }
        }
    };
    match lint_workspace(&root) {
        Ok(findings) => {
            let (findings, stale) = apply_baseline(findings, &baseline);
            for s in &stale {
                eprintln!(
                    "rcast-lint: stale baseline entry `{} {}` matched nothing — delete it",
                    s.rule, s.path
                );
            }
            if json {
                print!("{}", render_json(&findings));
            } else if sarif {
                print!("{}", render_sarif(&findings));
            } else {
                print!("{}", render_text(&findings));
                if findings.is_empty() {
                    eprintln!("rcast-lint: clean ({})", root.display());
                } else {
                    eprintln!("rcast-lint: {} finding(s)", findings.len());
                }
            }
            if findings.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}
