//! The standalone `rcast-lint` binary.
//!
//! ```sh
//! cargo run -p rcast-lint              # lint the enclosing workspace
//! cargo run -p rcast-lint -- --json    # machine-readable report
//! cargo run -p rcast-lint -- --root /path/to/workspace
//! ```
//!
//! Exit codes: `0` clean, `1` findings, `2` usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use rcast_lint::{find_workspace_root, lint_workspace, render_json, render_text, RULES};

const USAGE: &str = "\
rcast-lint — determinism & hygiene static analyzer for the RandomCast workspace

USAGE:
    rcast-lint [--root <dir>] [--json]
    rcast-lint --rules
    rcast-lint --help

OPTIONS:
    --root <dir>   workspace root to lint [nearest [workspace] Cargo.toml]
    --json         machine-readable report (stable ordering)
    --rules        list the rule ids and what they protect
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = true,
            "--root" => match it.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("error: --root needs a directory\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--rules" => {
                for (id, what) in RULES {
                    println!("{id}  {what}");
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("error: unknown option '{other}'\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("error: cannot determine current directory: {e}");
                    return ExitCode::from(2);
                }
            };
            match find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("error: no workspace Cargo.toml above {}", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };
    match lint_workspace(&root) {
        Ok(findings) => {
            if json {
                print!("{}", render_json(&findings));
            } else {
                print!("{}", render_text(&findings));
                if findings.is_empty() {
                    eprintln!("rcast-lint: clean ({})", root.display());
                } else {
                    eprintln!("rcast-lint: {} finding(s)", findings.len());
                }
            }
            if findings.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}
