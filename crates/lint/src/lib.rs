//! `rcast-lint`: the RandomCast workspace's determinism & hygiene
//! static analyzer.
//!
//! The simulator's headline property — byte-identical results for a
//! given `(config, seed)` at any `--threads` width, even under fault
//! injection — is easy to break silently: one `HashMap` iteration, one
//! wall-clock read, one environment-seeded hasher, and every figure
//! reproduced from the paper is invalid without any test necessarily
//! noticing. This crate enforces those invariants mechanically instead
//! of by code review. It is std-only and offline, lexing every `.rs`
//! file in the workspace with a small hand-rolled tokenizer (no parser
//! dependencies) and applying the project ruleset described in
//! [`rules`] (D001–D005, H001–H002) and DESIGN.md §9.
//!
//! Two entry points ship: the standalone binary
//! (`cargo run -p rcast-lint`) and the `rcast lint` CLI subcommand; CI
//! runs the gate before any test step.
//!
//! # Example
//!
//! ```
//! use rcast_lint::{check_file, FileClass, FileKind};
//!
//! let class = FileClass {
//!     crate_name: "dsr".into(),
//!     kind: FileKind::Lib,
//!     is_crate_root: false,
//! };
//! let bad = "fn f(m: &std::collections::HashMap<u32, u32>) -> Vec<u32> {
//!     m.keys().copied().collect()
//! }";
//! let findings = rcast_lint::check_file("demo.rs", bad, &class);
//! assert_eq!(findings.len(), 1);
//! assert_eq!(findings[0].rule, "D002");
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod lexer;
pub mod project;
pub mod rules;

use std::io;
use std::path::Path;

pub use project::{classify, collect_rust_files, find_workspace_root, FileClass, FileKind};
pub use rules::{check_file, sort_findings, Finding, RULES};

/// Lints every `.rs` file under `root` (a workspace root) and returns
/// the findings in stable report order (path, line, column, rule).
///
/// # Errors
///
/// Propagates I/O failures from walking or reading the tree.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let files = collect_rust_files(root)?;
    let mut findings = Vec::new();
    for rel in files {
        let source = std::fs::read_to_string(root.join(&rel))?;
        let class = classify(&rel);
        findings.extend(check_file(&rel, &source, &class));
    }
    sort_findings(&mut findings);
    Ok(findings)
}

/// Renders findings as `file:line:col [RULE] message` lines, one per
/// finding, matching compiler-style diagnostics.
pub fn render_text(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&format!(
            "{}:{}:{} [{}] {}\n",
            f.path, f.line, f.col, f.rule, f.message
        ));
    }
    out
}

/// Renders findings as a JSON document with stable field and element
/// order, suitable for machine consumption and golden tests.
pub fn render_json(findings: &[Finding]) -> String {
    let mut out = String::from("{\n  \"version\": 1,\n  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"path\": {}, \"line\": {}, \"col\": {}, \"rule\": {}, \"message\": {}}}",
            json_string(&f.path),
            f.line,
            f.col,
            json_string(f.rule),
            json_string(&f.message),
        ));
    }
    if !findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str(&format!("],\n  \"count\": {}\n}}\n", findings.len()));
    out
}

/// Escapes `s` as a JSON string literal.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping_is_sound() {
        assert_eq!(json_string("a\"b\\c\nd"), r#""a\"b\\c\nd""#);
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn empty_report_renders_cleanly() {
        assert_eq!(render_text(&[]), "");
        let json = render_json(&[]);
        assert!(json.contains("\"findings\": []"));
        assert!(json.contains("\"count\": 0"));
    }
}
