//! `rcast-lint`: the RandomCast workspace's determinism & hygiene
//! static analyzer.
//!
//! The simulator's headline property — byte-identical results for a
//! given `(config, seed)` at any `--threads` width, even under fault
//! injection — is easy to break silently: one `HashMap` iteration, one
//! wall-clock read, one environment-seeded hasher, and every figure
//! reproduced from the paper is invalid without any test necessarily
//! noticing. This crate enforces those invariants mechanically instead
//! of by code review. It is std-only and offline: a small hand-rolled
//! tokenizer ([`lexer`]) feeds both the per-file rules and an
//! item-level parser ([`parser`]) that extracts `fn` items with their
//! `impl`/`trait` context, from which a name-resolved workspace call
//! graph ([`callgraph`]) is built. The ruleset ([`rules`],
//! DESIGN.md §9 and §13) spans token-level checks (D001–D005,
//! H001–H002) and semantic checks over the graph: D007
//! allocation-reachability from the steady-state entry points, D008
//! parallel-closure race surface, D009 float-reduction ordering.
//!
//! Two entry points ship: the standalone binary
//! (`cargo run -p rcast-lint`) and the `rcast lint` CLI subcommand; CI
//! runs the gate before any test step and diffs the `--sarif` output
//! against a golden.
//!
//! # Example
//!
//! ```
//! use rcast_lint::{check_file, FileClass, FileKind};
//!
//! let class = FileClass {
//!     crate_name: "dsr".into(),
//!     kind: FileKind::Lib,
//!     is_crate_root: false,
//! };
//! let bad = "fn f(m: &std::collections::HashMap<u32, u32>) -> Vec<u32> {
//!     m.keys().copied().collect()
//! }";
//! let findings = rcast_lint::check_file("demo.rs", bad, &class);
//! assert_eq!(findings.len(), 1);
//! assert_eq!(findings[0].rule, "D002");
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod callgraph;
pub mod lexer;
pub mod parser;
pub mod project;
pub mod rules;

use std::io;
use std::path::Path;

pub use callgraph::{CallGraph, HOT_ENTRY_POINTS};
pub use project::{classify, collect_rust_files, find_workspace_root, FileClass, FileKind};
pub use rules::{check_file, check_sources, sort_findings, Finding, RULES};

/// Lints every `.rs` file under `root` (a workspace root) and returns
/// the findings in stable report order (path, line, column, rule).
/// Runs the full ruleset: per-file rules plus the workspace-level
/// call-graph analysis (D007).
///
/// # Errors
///
/// Propagates I/O failures from walking or reading the tree.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let files = collect_rust_files(root)?;
    let mut sources = Vec::with_capacity(files.len());
    for rel in files {
        let source = std::fs::read_to_string(root.join(&rel))?;
        sources.push((rel, source));
    }
    Ok(check_sources(&sources))
}

/// One baseline suppression: a rule id and a workspace-relative path
/// whose findings for that rule are accepted debt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineEntry {
    /// Rule id, e.g. `D007`.
    pub rule: String,
    /// Workspace-relative `/`-separated path the suppression covers.
    pub path: String,
}

/// Parses a `lint.baseline` file: one `RULE path` pair per line, `#`
/// comments and blank lines ignored. The format is deliberately
/// line-per-debt so diffs show suppressions being paid down.
///
/// # Errors
///
/// Returns a message naming the first malformed line (not two
/// whitespace-separated fields, or a rule id not in [`RULES`]).
pub fn parse_baseline(text: &str) -> Result<Vec<BaselineEntry>, String> {
    let mut entries = Vec::new();
    for (n, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(rule), Some(path), None) = (parts.next(), parts.next(), parts.next()) else {
            return Err(format!(
                "baseline line {}: expected `RULE path`, got `{line}`",
                n + 1
            ));
        };
        if !RULES.iter().any(|(id, _)| *id == rule) {
            return Err(format!("baseline line {}: unknown rule `{rule}`", n + 1));
        }
        entries.push(BaselineEntry {
            rule: rule.to_string(),
            path: path.to_string(),
        });
    }
    Ok(entries)
}

/// Drops findings covered by `baseline`, returning the survivors and
/// the entries that matched nothing (stale debt that should be deleted
/// from the file).
pub fn apply_baseline(
    findings: Vec<Finding>,
    baseline: &[BaselineEntry],
) -> (Vec<Finding>, Vec<BaselineEntry>) {
    let mut used = vec![false; baseline.len()];
    let kept = findings
        .into_iter()
        .filter(|f| {
            let hit = baseline
                .iter()
                .position(|b| b.rule == f.rule && b.path == f.path);
            match hit {
                Some(i) => {
                    used[i] = true;
                    false
                }
                None => true,
            }
        })
        .collect();
    let stale = baseline
        .iter()
        .enumerate()
        .filter(|(i, _)| !used[*i])
        .map(|(_, b)| b.clone())
        .collect();
    (kept, stale)
}

/// Renders findings as `file:line:col [RULE] message` lines, one per
/// finding, matching compiler-style diagnostics.
pub fn render_text(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&format!(
            "{}:{}:{} [{}] {}\n",
            f.path, f.line, f.col, f.rule, f.message
        ));
    }
    out
}

/// Renders findings as a JSON document with stable field and element
/// order, suitable for machine consumption and golden tests.
pub fn render_json(findings: &[Finding]) -> String {
    let mut out = String::from("{\n  \"version\": 1,\n  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"path\": {}, \"line\": {}, \"col\": {}, \"rule\": {}, \"message\": {}}}",
            json_string(&f.path),
            f.line,
            f.col,
            json_string(f.rule),
            json_string(&f.message),
        ));
    }
    if !findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str(&format!("],\n  \"count\": {}\n}}\n", findings.len()));
    out
}

/// Renders findings as a SARIF 2.1.0 document with fully stable field
/// and element order (findings in report order, rule metadata in
/// [`RULES`] order, no timestamps or absolute paths), so the output is
/// golden-pinnable exactly like [`render_json`].
pub fn render_sarif(findings: &[Finding]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str("  \"runs\": [\n    {\n");
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"rcast-lint\",\n");
    out.push_str("          \"version\": \"1\",\n");
    out.push_str("          \"rules\": [");
    for (i, (id, what)) in RULES.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n            {{\"id\": {}, \"shortDescription\": {{\"text\": {}}}}}",
            json_string(id),
            json_string(what),
        ));
    }
    out.push_str("\n          ]\n        }\n      },\n");
    out.push_str("      \"results\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n        {{\"ruleId\": {}, \"level\": \"error\", \"message\": {{\"text\": {}}}, \
             \"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": {{\"uri\": {}}}, \
             \"region\": {{\"startLine\": {}, \"startColumn\": {}}}}}}}]}}",
            json_string(f.rule),
            json_string(&f.message),
            json_string(&f.path),
            f.line,
            f.col,
        ));
    }
    if !findings.is_empty() {
        out.push_str("\n      ");
    }
    out.push_str("]\n    }\n  ]\n}\n");
    out
}

/// Escapes `s` as a JSON string literal.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping_is_sound() {
        assert_eq!(json_string("a\"b\\c\nd"), r#""a\"b\\c\nd""#);
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn empty_report_renders_cleanly() {
        assert_eq!(render_text(&[]), "");
        let json = render_json(&[]);
        assert!(json.contains("\"findings\": []"));
        assert!(json.contains("\"count\": 0"));
        let sarif = render_sarif(&[]);
        assert!(sarif.contains("\"results\": []"));
        assert!(sarif.contains("\"version\": \"2.1.0\""));
    }

    #[test]
    fn sarif_lists_every_rule_and_each_finding_once() {
        let findings = vec![Finding {
            path: "crates/x/src/lib.rs".into(),
            line: 3,
            col: 7,
            rule: "D002",
            message: "quote \"here\"".into(),
        }];
        let sarif = render_sarif(&findings);
        for (id, _) in RULES {
            assert!(sarif.contains(&format!("\"id\": \"{id}\"")), "{id} missing");
        }
        assert!(sarif.contains("\"ruleId\": \"D002\""));
        assert!(sarif.contains("\"startLine\": 3, \"startColumn\": 7"));
        assert!(sarif.contains("quote \\\"here\\\""));
    }

    #[test]
    fn baseline_parses_suppresses_and_reports_stale() {
        let text = "# accepted debt\nD002 crates/x/src/lib.rs\nD007 crates/gone.rs # stale\n";
        let entries = parse_baseline(text).unwrap();
        assert_eq!(entries.len(), 2);
        let findings = vec![
            Finding {
                path: "crates/x/src/lib.rs".into(),
                line: 1,
                col: 1,
                rule: "D002",
                message: "m".into(),
            },
            Finding {
                path: "crates/x/src/lib.rs".into(),
                line: 9,
                col: 1,
                rule: "D001",
                message: "m".into(),
            },
        ];
        let (kept, stale) = apply_baseline(findings, &entries);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].rule, "D001");
        assert_eq!(stale.len(), 1);
        assert_eq!(stale[0].path, "crates/gone.rs");
    }

    #[test]
    fn baseline_rejects_malformed_lines() {
        assert!(parse_baseline("D002\n").is_err());
        assert!(parse_baseline("D999 path.rs\n").is_err());
        assert!(parse_baseline("D002 a.rs b.rs\n").is_err());
    }
}
