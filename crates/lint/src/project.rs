//! Workspace discovery and file classification.
//!
//! Rules fire (or not) depending on *where* a file sits: the simulation
//! crates carry the strictest determinism rules, the report/CLI layers
//! are allowed to print, and the bench/testkit crates may read the wall
//! clock. This module turns a path relative to the workspace root into
//! that classification, and walks the tree collecting every `.rs` file
//! in a deterministic (sorted) order.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The crates whose state feeds simulation results: everything here
/// must be a pure function of `(config, seed)`, so the determinism
/// rules (D002, D005) apply in full.
pub const SIM_CRATES: &[&str] = &[
    "aodv", "core", "dsr", "engine", "mac", "metrics", "mobility", "obs", "radio", "sweep",
    "traffic",
];

/// Crates allowed to read the wall clock (D001): the timing harness and
/// the property-test harness (which reports elapsed time per check).
pub const WALL_CLOCK_ALLOWED: &[&str] = &["bench", "testkit"];

/// Directory names never descended into. `fixtures` holds the linter's
/// own deliberately-violating test inputs.
const SKIP_DIRS: &[&str] = &["target", "fixtures", ".git", ".claude"];

/// Which target a file belongs to within its crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library source (`src/**`, minus binaries).
    Lib,
    /// A binary (`src/main.rs`, `src/bin/**`).
    Bin,
    /// An integration test (`tests/**`).
    Test,
    /// A bench target (`benches/**`).
    Bench,
    /// An example (`examples/**`).
    Example,
    /// `build.rs` or anything else.
    Other,
}

/// Where a file sits in the workspace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileClass {
    /// The owning crate's short name (`dsr`, `bench`, … or `randomcast`
    /// for the workspace-root facade crate).
    pub crate_name: String,
    /// The target kind within that crate.
    pub kind: FileKind,
    /// `true` for the crate's library root (`src/lib.rs`), where the
    /// crate-level attribute rules (D004's `forbid(unsafe_code)`, H002)
    /// are checked.
    pub is_crate_root: bool,
}

impl FileClass {
    /// `true` when the crate is one of the simulation crates.
    pub fn is_sim_crate(&self) -> bool {
        SIM_CRATES.contains(&self.crate_name.as_str())
    }
}

/// Classifies `rel`, a `/`-separated path relative to the workspace
/// root (e.g. `crates/dsr/src/node.rs` or `src/cli.rs`).
pub fn classify(rel: &str) -> FileClass {
    let parts: Vec<&str> = rel.split('/').collect();
    let (crate_name, rest): (String, &[&str]) = match parts.as_slice() {
        ["crates", name, rest @ ..] => ((*name).to_string(), rest),
        rest => ("randomcast".to_string(), rest),
    };
    let kind = match rest {
        ["src", "main.rs"] | ["src", "bin", ..] => FileKind::Bin,
        ["src", ..] => FileKind::Lib,
        ["tests", ..] => FileKind::Test,
        ["benches", ..] => FileKind::Bench,
        ["examples", ..] => FileKind::Example,
        _ => FileKind::Other,
    };
    FileClass {
        crate_name,
        kind,
        is_crate_root: rest == ["src", "lib.rs"],
    }
}

/// Walks `root` and returns every `.rs` file as a workspace-relative,
/// `/`-separated path, sorted. Skips [`SKIP_DIRS`] and hidden entries,
/// so the linter's fixture corpus and build artifacts are never linted.
pub fn collect_rust_files(root: &Path) -> io::Result<Vec<String>> {
    let mut out = Vec::new();
    walk(root, root, &mut out)?;
    out.sort();
    Ok(out)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<String>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        let name = match path.file_name().and_then(|n| n.to_str()) {
            Some(n) => n,
            None => continue,
        };
        if path.is_dir() {
            if name.starts_with('.') || SKIP_DIRS.contains(&name) {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .expect("walked paths sit under root")
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            out.push(rel);
        }
    }
    Ok(())
}

/// Finds the workspace root by walking up from `start` looking for a
/// `Cargo.toml` containing a `[workspace]` table.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.lines().any(|l| l.trim() == "[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_covers_the_layout() {
        let c = classify("crates/dsr/src/node.rs");
        assert_eq!(c.crate_name, "dsr");
        assert_eq!(c.kind, FileKind::Lib);
        assert!(!c.is_crate_root);
        assert!(c.is_sim_crate());

        let root = classify("crates/engine/src/lib.rs");
        assert!(root.is_crate_root);

        assert_eq!(classify("crates/bench/src/bin/fig5.rs").kind, FileKind::Bin);
        assert_eq!(classify("crates/mac/tests/properties.rs").kind, FileKind::Test);
        assert_eq!(classify("crates/bench/benches/simulator.rs").kind, FileKind::Bench);

        let facade = classify("src/lib.rs");
        assert_eq!(facade.crate_name, "randomcast");
        assert!(facade.is_crate_root);
        assert!(!facade.is_sim_crate());
        assert_eq!(classify("src/bin/rcast.rs").kind, FileKind::Bin);
        assert_eq!(classify("examples/quickstart.rs").kind, FileKind::Example);
    }
}
