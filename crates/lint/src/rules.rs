//! The ruleset: what each rule protects and how it is detected.
//!
//! Every rule guards one way the simulator's headline property — runs
//! are byte-identical for a given `(config, seed)` at any thread width —
//! can silently rot:
//!
//! * **D001** — wall-clock reads (`std::time::Instant`/`SystemTime`)
//!   make results depend on the host. Only the `bench`/`testkit`
//!   harness crates may time things.
//! * **D002** — iterating a `HashMap`/`HashSet` in a simulation crate
//!   visits entries in `RandomState` order, which differs per process.
//!   Sites that restore order explicitly carry a
//!   `// det: ordered — <reason>` pragma; everything else uses
//!   `BTreeMap`/`BTreeSet`.
//! * **D003** — `RandomState`/`DefaultHasher` seed from the
//!   environment, and external RNGs bypass the labelled
//!   `rcast_engine::rng` streams that make draws replayable.
//! * **D004** — `unsafe` code could break any invariant from under the
//!   checker; every crate root must carry `#![forbid(unsafe_code)]` and
//!   no `unsafe` token may appear anywhere. The single sanctioned
//!   exception is a `GlobalAlloc` shim: a crate root may downgrade to
//!   `#![deny(unsafe_code)]` and individual `unsafe` tokens may appear
//!   when a `// det: unsafe-ok — <reason>` pragma covers the line.
//! * **D005** — `println!`-family output from library code corrupts the
//!   CSV/JSON streams the figure pipeline parses; printing belongs to
//!   the binaries and the bench/report layer.
//! * **D007** — heap allocation (`Vec::new()`, `.to_vec()`, `.clone()`)
//!   anywhere **reachable from the declared steady-state entry points**
//!   through the workspace call graph (see [`crate::callgraph`])
//!   erodes the zero-allocation steady state DESIGN.md §10 pins down.
//!   This is the semantic successor of PR 4's D006, which guarded a
//!   hand-maintained hot-function name list; the list is gone and the
//!   closure is computed. Audited event-path allocations carry a
//!   `// det: hot-ok — <reason>` pragma (on the site or the `fn`
//!   declaration); construction/teardown functions are cut out of the
//!   closure entirely with `// det: cold — <reason>` on the `fn` line.
//! * **D008** — shared mutable state (`Mutex`, `RwLock`, `RefCell`,
//!   `Cell`, `Atomic*`, `static mut`, their order-sensitive methods)
//!   or unordered-map iteration captured inside a closure passed to
//!   `ScopedPool::run`/`map`/`map_grid` makes worker scheduling
//!   observable. Deliberately order-free uses (commutative counters)
//!   carry a `// det: shared-ok — <reason>` pragma.
//! * **D009** — `f64` accumulation (`.sum()`, `.fold()`, `.product()`,
//!   `+=` in loops) over an unordered source, or into an accumulator
//!   captured across the pool seam: float addition is not associative,
//!   so the reduction order silently leaks into `summarize95` and the
//!   sweep artifacts. Canonically-ordered reductions that trip the
//!   detector carry a `// det: reduce-ok — <reason>` pragma.
//! * **H001** — `#[ignore]` without a reason string hides dead tests.
//! * **H002** — crate roots must keep `#![deny(missing_docs)]` (or
//!   carry a `// lint: allow missing_docs — <reason>` pragma).

use crate::callgraph::{CallGraph, HOT_ENTRY_POINTS};
use crate::lexer::{lex, Token, TokenKind};
use crate::project::{FileClass, FileKind, SIM_CRATES, WALL_CLOCK_ALLOWED};

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative `/`-separated path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Rule id (`D001` … `H002`).
    pub rule: &'static str,
    /// Human-readable description of the violation.
    pub message: String,
}

/// Sorts findings into the stable report order: path, then line, then
/// column, then rule id.
pub fn sort_findings(findings: &mut [Finding]) {
    findings.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.rule).cmp(&(b.path.as_str(), b.line, b.col, b.rule))
    });
}

/// Methods that observe a hash container's iteration order. `retain`
/// is included: its closure runs side effects in iteration order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
    "retain",
];

/// Identifiers banned by D003 wherever they appear as code.
const D003_IDENTS: &[&str] = &[
    "RandomState",
    "DefaultHasher",
    "SipHasher",
    "SipHasher13",
    "thread_rng",
    "ThreadRng",
    "OsRng",
    "StdRng",
    "SmallRng",
    "from_entropy",
    "getrandom",
];

/// Macros banned by D005 in simulation-library code.
const PRINT_MACROS: &[&str] = &["println", "eprintln", "print", "eprint", "dbg"];

/// Shared-state *type* names D008 bans inside parallel closures.
const D008_TYPES: &[&str] = &[
    "Mutex", "RwLock", "RefCell", "Cell", "UnsafeCell", "OnceCell", "OnceLock", "LazyCell",
    "LazyLock",
];

/// Order-sensitive *method* names D008 bans inside parallel closures:
/// the atomic RMW family plus lock/borrow acquisition. These catch a
/// captured `AtomicU32`/`Mutex` whose type name only appears at the
/// declaration site outside the closure.
const D008_METHODS: &[&str] = &[
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
    "lock",
    "try_lock",
    "borrow_mut",
];

/// Float-reduction method names D009 watches.
const REDUCE_METHODS: &[&str] = &["sum", "product", "fold"];

/// Pool methods whose argument list is a parallel seam. `map_grid` and
/// `map_shards` are unambiguous; `run` and `map` additionally require a
/// pool-shaped receiver (see [`pool_receiver`]) so iterator `map` stays
/// untouched.
const POOL_METHODS: &[&str] = &["run", "map", "map_grid", "map_shards"];

/// Per-file line facts needed for pragma resolution.
struct LineFacts {
    /// Lines (1-based) holding at least one non-comment token.
    has_code: Vec<bool>,
    /// Lines holding at least one comment token.
    has_comment: Vec<bool>,
    /// Lines holding a well-formed `det: ordered` pragma.
    det_pragma: Vec<bool>,
    /// Lines holding a well-formed `det: unsafe-ok` pragma.
    unsafe_pragma: Vec<bool>,
    /// Lines holding a well-formed `det: hot-ok` pragma.
    hot_pragma: Vec<bool>,
    /// Lines holding a well-formed `det: cold` pragma.
    cold_pragma: Vec<bool>,
    /// Lines holding a well-formed `det: shared-ok` pragma.
    shared_pragma: Vec<bool>,
    /// Lines holding a well-formed `det: reduce-ok` pragma.
    reduce_pragma: Vec<bool>,
    /// Lines holding a well-formed `lint: allow missing_docs` pragma.
    docs_pragma: Vec<bool>,
}

impl LineFacts {
    fn build(tokens: &[Token]) -> Self {
        let last = tokens.iter().map(|t| t.line as usize).max().unwrap_or(0);
        let mut f = LineFacts {
            has_code: vec![false; last + 2],
            has_comment: vec![false; last + 2],
            det_pragma: vec![false; last + 2],
            unsafe_pragma: vec![false; last + 2],
            hot_pragma: vec![false; last + 2],
            cold_pragma: vec![false; last + 2],
            shared_pragma: vec![false; last + 2],
            reduce_pragma: vec![false; last + 2],
            docs_pragma: vec![false; last + 2],
        };
        for t in tokens {
            let l = t.line as usize;
            if t.kind == TokenKind::Comment {
                f.has_comment[l] = true;
                if pragma_reason(&t.text, "det: ordered") {
                    f.det_pragma[l] = true;
                }
                if pragma_reason(&t.text, "det: unsafe-ok") {
                    f.unsafe_pragma[l] = true;
                }
                if pragma_reason(&t.text, "det: hot-ok") {
                    f.hot_pragma[l] = true;
                }
                if pragma_reason(&t.text, "det: cold") {
                    f.cold_pragma[l] = true;
                }
                if pragma_reason(&t.text, "det: shared-ok") {
                    f.shared_pragma[l] = true;
                }
                if pragma_reason(&t.text, "det: reduce-ok") {
                    f.reduce_pragma[l] = true;
                }
                if pragma_reason(&t.text, "lint: allow missing_docs") {
                    f.docs_pragma[l] = true;
                }
            } else {
                f.has_code[l] = true;
            }
        }
        f
    }

    /// `true` when a `det: ordered` pragma covers `line`: on the line
    /// itself (trailing comment) or in the contiguous comment block
    /// directly above it (blank lines break the block).
    fn det_covers(&self, line: u32) -> bool {
        self.covers(&self.det_pragma, line)
    }

    fn unsafe_covers(&self, line: u32) -> bool {
        self.covers(&self.unsafe_pragma, line)
    }

    fn hot_covers(&self, line: u32) -> bool {
        self.covers(&self.hot_pragma, line)
    }

    fn cold_covers(&self, line: u32) -> bool {
        self.covers(&self.cold_pragma, line)
    }

    fn shared_covers(&self, line: u32) -> bool {
        self.covers(&self.shared_pragma, line)
    }

    fn reduce_covers(&self, line: u32) -> bool {
        self.covers(&self.reduce_pragma, line)
    }

    fn docs_covers(&self, line: u32) -> bool {
        self.covers(&self.docs_pragma, line)
    }

    fn covers(&self, pragma: &[bool], line: u32) -> bool {
        let line = line as usize;
        if line >= self.has_code.len() {
            return false;
        }
        if pragma[line] {
            return true;
        }
        let mut l = line.saturating_sub(1);
        while l >= 1 && self.has_comment[l] && !self.has_code[l] {
            if pragma[l] {
                return true;
            }
            l -= 1;
        }
        false
    }
}

/// `true` when `text` is a pragma of the given head *with a non-empty
/// reason* after an em- or ASCII dash. A pragma without a reason is
/// deliberately not honored: the reason is the artifact being enforced.
fn pragma_reason(text: &str, head: &str) -> bool {
    let t = text.trim();
    let Some(rest) = t.strip_prefix(head) else {
        return false;
    };
    let rest = rest.trim_start();
    let reason = rest
        .strip_prefix('—')
        .or_else(|| rest.strip_prefix("--"))
        .or_else(|| rest.strip_prefix('-'))
        .or_else(|| rest.strip_prefix(':'));
    reason.is_some_and(|r| !r.trim().is_empty())
}

/// Runs every per-file rule over one file's source.
///
/// `path` is used only for reporting; `class` decides which rules
/// apply. This is the unit the fixture tests drive directly. The
/// workspace-level D007 (allocation reachability) needs the cross-file
/// call graph and therefore lives in [`check_sources`].
pub fn check_file(path: &str, source: &str, class: &FileClass) -> Vec<Finding> {
    let tokens = lex(source);
    let facts = LineFacts::build(&tokens);
    let mut out = Vec::new();
    d001_wall_clock(path, &tokens, class, &mut out);
    d002_hash_iteration(path, &tokens, class, &facts, &mut out);
    d003_environment_randomness(path, &tokens, &mut out);
    d004_unsafe(path, &tokens, class, &facts, &mut out);
    d005_print(path, &tokens, class, &mut out);
    d008_parallel_closure(path, &tokens, class, &facts, &mut out);
    d009_float_reduction(path, &tokens, class, &facts, &mut out);
    h001_ignore_reason(path, &tokens, &mut out);
    h002_missing_docs(path, &tokens, class, &facts, &mut out);
    sort_findings(&mut out);
    out.dedup();
    out
}

/// Runs the whole ruleset — per-file rules plus the call-graph D007 —
/// over a set of `(workspace-relative path, source)` pairs, returning
/// findings in stable report order. This is what `lint_workspace` and
/// the fixture-workspace tests drive.
pub fn check_sources(sources: &[(String, String)]) -> Vec<Finding> {
    let mut out = Vec::new();
    for (path, source) in sources {
        let class = crate::project::classify(path);
        out.extend(check_file(path, source, &class));
    }
    let graph = CallGraph::build(sources);
    d007_alloc_reachability(&graph, &mut out);
    sort_findings(&mut out);
    out.dedup();
    out
}

fn code_tokens(tokens: &[Token]) -> Vec<&Token> {
    tokens.iter().filter(|t| t.kind != TokenKind::Comment).collect()
}

/// The names declared with a `HashMap`/`HashSet` type in this file:
/// field/binding annotations `name: …HashMap<…>` and inferred
/// `let name = HashMap::…` initializers. Shared by D002/D008/D009.
fn collect_hash_names(code: &[&Token]) -> Vec<String> {
    let mut hash_names: Vec<String> = Vec::new();
    for (i, t) in code.iter().enumerate() {
        if !(t.is_word("HashMap") || t.is_word("HashSet")) {
            continue;
        }
        // Walk back through type-ish tokens (path `::` pairs included)
        // until the annotation colon of `name: …HashMap<…>` or the `=`
        // of an inferred `let name = …HashMap::new()` initializer.
        let mut j = i;
        while j > 0 {
            j -= 1;
            let b = code[j];
            if b.is_punct(':') {
                if j > 0 && code[j - 1].is_punct(':') {
                    j -= 1; // `::` inside a path: still in the type
                    continue;
                }
                if j > 0 && code[j - 1].kind == TokenKind::Ident {
                    hash_names.push(code[j - 1].text.clone());
                }
                break;
            }
            if b.is_punct('=') {
                if j > 0 && code[j - 1].kind == TokenKind::Ident {
                    hash_names.push(code[j - 1].text.clone());
                }
                break;
            }
            let type_ish = b.kind == TokenKind::Ident
                || b.is_punct('<')
                || b.is_punct('>')
                || b.is_punct(',')
                || b.is_punct('(')
                || b.is_punct(')')
                || b.is_punct('&')
                || b.kind == TokenKind::Lifetime;
            if !type_ish {
                break;
            }
        }
    }
    hash_names
}

/// The names in this file with visible floating-point evidence: a
/// `: … f64/f32 …` annotation (including container value types like
/// `HashMap<u32, f64>`) or a float-literal initializer (`= 0.0`,
/// `= 1f64`). D009's accumulation detectors only fire on these —
/// integer counters are exactly associative and must stay silent.
/// Cross-file field types are invisible to this heuristic; that
/// soundness limit is documented in DESIGN.md §13.
fn collect_float_names(code: &[&Token]) -> Vec<String> {
    let mut names: Vec<String> = Vec::new();
    for (i, t) in code.iter().enumerate() {
        let float_type = t.is_word("f64") || t.is_word("f32");
        let float_literal = t.kind == TokenKind::Number
            && (t.text.contains('.') || t.text.ends_with("f64") || t.text.ends_with("f32"));
        if float_type {
            // Walk back through the type to the annotation colon.
            let mut j = i;
            while j > 0 {
                j -= 1;
                let b = code[j];
                if b.is_punct(':') {
                    if j > 0 && code[j - 1].is_punct(':') {
                        j -= 1;
                        continue;
                    }
                    if j > 0 && code[j - 1].kind == TokenKind::Ident {
                        names.push(code[j - 1].text.clone());
                    }
                    break;
                }
                let type_ish = b.kind == TokenKind::Ident
                    || b.is_punct('<')
                    || b.is_punct('>')
                    || b.is_punct(',')
                    || b.is_punct('(')
                    || b.is_punct(')')
                    || b.is_punct('[')
                    || b.is_punct(']')
                    || b.is_punct('&')
                    || b.kind == TokenKind::Lifetime;
                if !type_ish {
                    break;
                }
            }
        } else if float_literal
            && i >= 2
            && code[i - 1].is_punct('=')
            && code[i - 2].kind == TokenKind::Ident
        {
            names.push(code[i - 2].text.clone());
        }
    }
    names
}

fn d001_wall_clock(path: &str, tokens: &[Token], class: &FileClass, out: &mut Vec<Finding>) {
    if WALL_CLOCK_ALLOWED.contains(&class.crate_name.as_str()) {
        return;
    }
    for t in tokens {
        if t.is_word("Instant") || t.is_word("SystemTime") {
            out.push(Finding {
                path: path.to_string(),
                line: t.line,
                col: t.col,
                rule: "D001",
                message: format!(
                    "wall-clock type `{}` outside the allowlisted crates ({}); \
                     simulation results must be a pure function of (config, seed)",
                    t.text,
                    WALL_CLOCK_ALLOWED.join(", "),
                ),
            });
        }
    }
}

/// D002 works in two passes over the code tokens: first it collects the
/// names declared with a `HashMap`/`HashSet` type, then it flags any
/// iteration-order-observing use of those names — `name.iter()`-style
/// calls and `for … in` expressions mentioning the name — that no
/// pragma covers.
fn d002_hash_iteration(
    path: &str,
    tokens: &[Token],
    class: &FileClass,
    facts: &LineFacts,
    out: &mut Vec<Finding>,
) {
    if !class.is_sim_crate() {
        return;
    }
    let code = code_tokens(tokens);
    let hash_names = collect_hash_names(&code);
    if hash_names.is_empty() {
        return;
    }

    let report = |out: &mut Vec<Finding>, t: &Token, name: &str, how: &str| {
        out.push(Finding {
            path: path.to_string(),
            line: t.line,
            col: t.col,
            rule: "D002",
            message: format!(
                "{how} of `HashMap`/`HashSet` value `{name}` in simulation crate \
                 `{}` without a `// det: ordered — <reason>` pragma; iteration \
                 order is per-process random and leaks into results — use \
                 BTreeMap/BTreeSet or restore order explicitly and annotate",
                class.crate_name,
            ),
        });
    };

    // A finding is suppressed when the pragma covers the use site or
    // the first line of the statement it belongs to (multi-line method
    // chains anchor at the statement start).
    let suppressed = |code: &[&Token], idx: usize| {
        let line = code[idx].line;
        if facts.det_covers(line) {
            return true;
        }
        facts.det_covers(code[statement_start(code, idx)].line)
    };

    for (i, t) in code.iter().enumerate() {
        if t.kind != TokenKind::Ident || !hash_names.iter().any(|n| n == &t.text) {
            continue;
        }
        // `name . method (` with an order-observing method.
        if i + 3 < code.len()
            && code[i + 1].is_punct('.')
            && code[i + 2].kind == TokenKind::Ident
            && ITER_METHODS.contains(&code[i + 2].text.as_str())
            && code[i + 3].is_punct('(')
            && !suppressed(&code, i)
        {
            report(out, code[i + 2], &t.text, "order-observing method call");
        }
        // `for … in <expr mentioning name> {`. A following `.` defers
        // to the method-call branch above.
        let method_follows = code.get(i + 1).is_some_and(|n| n.is_punct('.'));
        if !method_follows {
            if let Some(for_idx) = enclosing_for_in(&code, i) {
                if !suppressed(&code, for_idx) && !suppressed(&code, i) {
                    report(out, t, &t.text, "`for` iteration");
                }
            }
        }
    }
}

/// The index of the first token of the statement `code[idx]` belongs
/// to (the token after the previous `;`/`{`/`}`, or 0).
fn statement_start(code: &[&Token], idx: usize) -> usize {
    let mut j = idx;
    while j > 0 {
        let t = code[j - 1];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            break;
        }
        j -= 1;
    }
    j
}

/// If `code[idx]` sits in the header of a `for … in header {` loop,
/// returns the index of the `for` token.
fn enclosing_for_in(code: &[&Token], idx: usize) -> Option<usize> {
    // Walk back to `in` then `for`, refusing to cross statement ends or
    // an opening `{` (which would mean we left the loop header).
    let mut saw_in = None;
    let mut j = idx;
    let mut depth = 0i32;
    while j > 0 {
        j -= 1;
        let t = code[j];
        if t.is_punct(')') || t.is_punct(']') {
            depth += 1;
        } else if t.is_punct('(') || t.is_punct('[') {
            depth -= 1;
            if depth < 0 {
                // The name is inside a call argument like `m.get(&k)`
                // within some larger expression; still fine to keep
                // walking for the `in`, the call parens just nest.
                depth = 0;
            }
        } else if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            return None;
        } else if t.is_word("in") && depth == 0 {
            saw_in = Some(j);
        } else if t.is_word("for") && saw_in.is_some() {
            return Some(j);
        }
    }
    None
}

fn d003_environment_randomness(path: &str, tokens: &[Token], out: &mut Vec<Finding>) {
    let code = code_tokens(tokens);
    for (i, t) in code.iter().enumerate() {
        let banned = D003_IDENTS.contains(&t.text.as_str()) && t.kind == TokenKind::Ident;
        // An external-RNG path: the `rand` crate root used as `rand::`.
        let rand_path = t.is_word("rand")
            && i + 2 < code.len()
            && code[i + 1].is_punct(':')
            && code[i + 2].is_punct(':');
        if banned || rand_path {
            out.push(Finding {
                path: path.to_string(),
                line: t.line,
                col: t.col,
                rule: "D003",
                message: format!(
                    "environment-seeded hashing or external RNG `{}`; all \
                     randomness must flow through the named rcast_engine::rng \
                     streams so draws replay bit-identically",
                    t.text,
                ),
            });
        }
    }
}

fn d004_unsafe(
    path: &str,
    tokens: &[Token],
    class: &FileClass,
    facts: &LineFacts,
    out: &mut Vec<Finding>,
) {
    for t in tokens {
        if t.is_word("unsafe") && !facts.unsafe_covers(t.line) {
            out.push(Finding {
                path: path.to_string(),
                line: t.line,
                col: t.col,
                rule: "D004",
                message: "`unsafe` is banned workspace-wide: no invariant the \
                          determinism rules protect survives undefined behavior \
                          (a GlobalAlloc shim may annotate each line with \
                          `// det: unsafe-ok — <reason>`)"
                    .to_string(),
            });
        }
    }
    if class.is_crate_root && !has_inner_attr(tokens, "forbid", "unsafe_code") {
        // A crate hosting a pragma'd GlobalAlloc shim may downgrade to
        // `deny`, provided the attribute itself carries the pragma.
        let pragma_deny = inner_attr_line(tokens, "deny", "unsafe_code")
            .is_some_and(|line| facts.unsafe_covers(line));
        if !pragma_deny {
            out.push(Finding {
                path: path.to_string(),
                line: 1,
                col: 1,
                rule: "D004",
                message: "crate root is missing `#![forbid(unsafe_code)]` (or a \
                          `// det: unsafe-ok — <reason>`-annotated \
                          `#![deny(unsafe_code)]`)"
                    .to_string(),
            });
        }
    }
}

/// Looks for `attr ( arg )` anywhere in the token stream — i.e.
/// `#![attr(arg)]` once comments are stripped. Lexical matching is
/// enough: these idents only occur in attribute position.
fn has_inner_attr(tokens: &[Token], attr: &str, arg: &str) -> bool {
    inner_attr_line(tokens, attr, arg).is_some()
}

/// Like [`has_inner_attr`], but returns the line the attribute starts
/// on so pragma coverage can be checked against it.
fn inner_attr_line(tokens: &[Token], attr: &str, arg: &str) -> Option<u32> {
    let code = code_tokens(tokens);
    code.windows(4).find_map(|w| {
        (w[0].is_word(attr) && w[1].is_punct('(') && w[2].is_word(arg) && w[3].is_punct(')'))
            .then(|| w[0].line)
    })
}

fn d005_print(path: &str, tokens: &[Token], class: &FileClass, out: &mut Vec<Finding>) {
    let lib_of_sim = class.kind == FileKind::Lib
        && (class.is_sim_crate() || class.crate_name == "testkit");
    if !lib_of_sim {
        return;
    }
    let code = code_tokens(tokens);
    for w in code.windows(2) {
        if w[0].kind == TokenKind::Ident
            && PRINT_MACROS.contains(&w[0].text.as_str())
            && w[1].is_punct('!')
        {
            out.push(Finding {
                path: path.to_string(),
                line: w[0].line,
                col: w[0].col,
                rule: "D005",
                message: format!(
                    "`{}!` in library crate `{}`; stdout/stderr belong to the \
                     report/CLI layer — return data and let binaries print",
                    w[0].text, class.crate_name,
                ),
            });
        }
    }
}

/// D007: allocation reachability over the workspace call graph. Every
/// allocation pattern (`Vec::new(`, `.to_vec(`, `.clone(`) inside a
/// function reachable from [`HOT_ENTRY_POINTS`] is flagged unless a
/// `// det: hot-ok — <reason>` pragma covers the allocation line *or*
/// the function's declaration line (an audited event-path handler).
/// Functions whose declaration carries `// det: cold — <reason>`
/// (construction, teardown, rare lifecycle work) are boundaries the
/// closure never enters. The finding message carries one shortest
/// witness chain from an entry point so the hot-path claim is
/// checkable by eye.
fn d007_alloc_reachability(graph: &CallGraph, out: &mut Vec<Finding>) {
    let facts: Vec<LineFacts> = graph
        .files
        .iter()
        .map(|f| LineFacts::build(&f.tokens))
        .collect();
    let cold: std::collections::BTreeSet<usize> = graph
        .nodes
        .iter()
        .enumerate()
        .filter(|(_, n)| facts[n.file].cold_covers(n.item.line))
        .map(|(id, _)| id)
        .collect();
    let reach = graph.reachable_from_excluding(HOT_ENTRY_POINTS, &cold);
    for &id in &reach.reached {
        let node = &graph.nodes[id];
        if facts[node.file].hot_covers(node.item.line) {
            continue;
        }
        let file = &graph.files[node.file];
        let file_facts = &facts[node.file];
        let tok = |i: usize| -> &Token { &file.tokens[file.code[i]] };
        let (start, end) = node.item.body;
        let end = end.min(file.code.len());
        let chain = graph.witness_chain(&reach, id);
        let mut report = |t: &Token, what: &str| {
            if file_facts.hot_covers(t.line) {
                return;
            }
            out.push(Finding {
                path: file.path.clone(),
                line: t.line,
                col: t.col,
                rule: "D007",
                message: format!(
                    "{what} on the steady-state hot path (`{chain}`); the \
                     per-interval loop must not allocate (DESIGN.md §10) — \
                     reuse cleared scratch storage, or annotate a deliberate \
                     cold/warm-up allocation with `// det: hot-ok — <reason>`",
                ),
            });
        };
        for i in start..end {
            let t = tok(i);
            if t.is_word("Vec")
                && i + 4 < end
                && tok(i + 1).is_punct(':')
                && tok(i + 2).is_punct(':')
                && tok(i + 3).is_word("new")
                && tok(i + 4).is_punct('(')
            {
                report(t, "`Vec::new()`");
            }
            if t.is_punct('.') && i + 2 < end && tok(i + 2).is_punct('(') {
                let m = tok(i + 1);
                if m.is_word("to_vec") {
                    report(m, "`.to_vec()`");
                } else if m.is_word("clone") {
                    report(m, "`.clone()`");
                }
            }
        }
    }
}

/// The parallel-seam arg regions of a file: for every call of a
/// [`POOL_METHODS`] name, the half-open code-token range between its
/// parentheses. `map`/`run` require a pool-shaped receiver.
fn pool_call_regions(code: &[&Token]) -> Vec<(usize, usize, &'static str)> {
    let mut regions = Vec::new();
    for (i, t) in code.iter().enumerate() {
        let Some(&method) = POOL_METHODS.iter().find(|m| t.is_word(m)) else {
            continue;
        };
        if i + 1 >= code.len() || !code[i + 1].is_punct('(') {
            continue;
        }
        let is_method_call = i >= 1 && code[i - 1].is_punct('.');
        if !is_method_call {
            continue;
        }
        if matches!(method, "run" | "map") && !pool_receiver(code, i - 1) {
            continue;
        }
        // Match the call's parentheses.
        let open = i + 1;
        let mut depth = 0i32;
        let mut close = open;
        for (j, u) in code.iter().enumerate().skip(open) {
            if u.is_punct('(') {
                depth += 1;
            } else if u.is_punct(')') {
                depth -= 1;
                if depth == 0 {
                    close = j;
                    break;
                }
            }
        }
        if close > open {
            regions.push((open + 1, close, method));
        }
    }
    regions
}

/// `true` when the receiver ending right before the `.` at `dot` looks
/// like a worker pool: an identifier whose name contains `pool`, or a
/// call chain rooted in `ScopedPool::…` (e.g. `ScopedPool::new(n)`).
fn pool_receiver(code: &[&Token], dot: usize) -> bool {
    if dot == 0 {
        return false;
    }
    let prev = code[dot - 1];
    if prev.kind == TokenKind::Ident {
        return prev.text.to_ascii_lowercase().contains("pool");
    }
    if prev.is_punct(')') {
        // Walk back to the matching `(` and inspect the tokens before
        // it for `ScopedPool :: name`.
        let mut depth = 0i32;
        let mut j = dot - 1;
        loop {
            let t = code[j];
            if t.is_punct(')') {
                depth += 1;
            } else if t.is_punct('(') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            if j == 0 {
                return false;
            }
            j -= 1;
        }
        let lookback = j.saturating_sub(4);
        return code[lookback..j].iter().any(|t| t.is_word("ScopedPool"));
    }
    false
}

/// D008: shared mutable state captured inside a parallel closure. See
/// the module docs for the banned surface; `// det: shared-ok — <reason>`
/// escapes a deliberately order-free use.
fn d008_parallel_closure(
    path: &str,
    tokens: &[Token],
    class: &FileClass,
    facts: &LineFacts,
    out: &mut Vec<Finding>,
) {
    if !class.is_sim_crate() {
        return;
    }
    let code = code_tokens(tokens);
    let hash_names = collect_hash_names(&code);
    let mut report = |t: &Token, what: &str, method: &str| {
        if facts.shared_covers(t.line) {
            return;
        }
        out.push(Finding {
            path: path.to_string(),
            line: t.line,
            col: t.col,
            rule: "D008",
            message: format!(
                "{what} inside a closure passed to the parallel `{method}` seam \
                 in simulation crate `{}`; worker scheduling must stay \
                 unobservable for thread-width byte-identity — make the work \
                 per-item pure, or annotate a provably order-free use with \
                 `// det: shared-ok — <reason>`",
                class.crate_name,
            ),
        });
    };
    for (start, end, method) in pool_call_regions(&code) {
        let mut i = start;
        while i < end {
            let t = code[i];
            if t.kind == TokenKind::Ident {
                if D008_TYPES.contains(&t.text.as_str()) || t.text.starts_with("Atomic") {
                    report(t, &format!("shared-state type `{}`", t.text), method);
                } else if D008_METHODS.contains(&t.text.as_str())
                    && i >= 1
                    && code[i - 1].is_punct('.')
                    && i + 1 < end
                    && code[i + 1].is_punct('(')
                {
                    report(t, &format!("order-sensitive call `.{}()`", t.text), method);
                } else if hash_names.iter().any(|n| n == &t.text)
                    && i + 3 < end
                    && code[i + 1].is_punct('.')
                    && ITER_METHODS.contains(&code[i + 2].text.as_str())
                    && code[i + 3].is_punct('(')
                {
                    report(
                        code[i + 2],
                        &format!("unordered iteration of `HashMap`/`HashSet` value `{}`", t.text),
                        method,
                    );
                }
            } else if t.is_word("static") && i + 1 < end && code[i + 1].is_word("mut") {
                report(t, "`static mut`", method);
            }
            i += 1;
        }
    }
}

/// `true` when `code[i]` (an ident) is called: followed by `(` directly
/// or through one turbofish (`sum::<f64>(…)`).
fn is_called(code: &[&Token], i: usize) -> bool {
    if code.get(i + 1).is_some_and(|t| t.is_punct('(')) {
        return true;
    }
    if code.get(i + 1).is_some_and(|t| t.is_punct(':'))
        && code.get(i + 2).is_some_and(|t| t.is_punct(':'))
        && code.get(i + 3).is_some_and(|t| t.is_punct('<'))
    {
        let mut depth = 0i32;
        let mut j = i + 3;
        while j < code.len() {
            let t = code[j];
            if t.is_punct('<') {
                depth += 1;
            } else if t.is_punct('>') {
                depth -= 1;
                if depth == 0 {
                    return code.get(j + 1).is_some_and(|t| t.is_punct('('));
                }
            } else if t.is_punct(';') || t.is_punct('{') {
                return false;
            }
            j += 1;
        }
    }
    false
}

/// D009: float-reduction ordering. Three detectors, all escaped by
/// `// det: reduce-ok — <reason>`:
///
/// 1. a reduction method (`sum`/`product`/`fold`) in a statement that
///    also mentions a `HashMap`/`HashSet` value earlier in the chain;
/// 2. a compound accumulation (`+=`/`-=`/`*=`/`/=`) inside a `for` loop
///    whose header iterates a `HashMap`/`HashSet` value;
/// 3. a compound accumulation inside a parallel closure whose target is
///    captured (not `let`-bound in the region, not a closure
///    parameter) — accumulation across the pool seam.
///
/// All three require floating-point evidence (see
/// [`collect_float_names`]): integer accumulation is exactly
/// associative and never reported.
fn d009_float_reduction(
    path: &str,
    tokens: &[Token],
    class: &FileClass,
    facts: &LineFacts,
    out: &mut Vec<Finding>,
) {
    if !class.is_sim_crate() {
        return;
    }
    let code = code_tokens(tokens);
    let hash_names = collect_hash_names(&code);
    let float_names = collect_float_names(&code);
    let is_float = |name: &str| float_names.iter().any(|n| n == name);
    let mut report = |t: &Token, what: &str, why: &str| {
        if facts.reduce_covers(t.line) {
            return;
        }
        out.push(Finding {
            path: path.to_string(),
            line: t.line,
            col: t.col,
            rule: "D009",
            message: format!(
                "{what} {why}; float addition is not associative, so the \
                 reduction order would leak into summarize95 and the sweep \
                 artifacts — reduce in canonical order (sorted keys, input \
                 order) or annotate with `// det: reduce-ok — <reason>`",
            ),
        });
    };

    // (1) reductions over a hash-container chain.
    if !hash_names.is_empty() {
        for (i, t) in code.iter().enumerate() {
            let reduces = t.kind == TokenKind::Ident
                && REDUCE_METHODS.contains(&t.text.as_str())
                && i >= 1
                && code[i - 1].is_punct('.')
                && is_called(&code, i);
            if !reduces {
                continue;
            }
            let start = statement_start(&code, i);
            let unordered = code[start..i]
                .iter()
                .any(|u| u.kind == TokenKind::Ident && hash_names.iter().any(|n| n == &u.text));
            // Only float reductions are order-sensitive: require float
            // evidence in the statement — a float-typed name before the
            // call, or an `f64`/`f32` turbofish just after it.
            let floaty = code[start..(i + 6).min(code.len())].iter().any(|u| {
                u.is_word("f64")
                    || u.is_word("f32")
                    || (u.kind == TokenKind::Ident && is_float(&u.text))
            });
            if unordered && floaty {
                report(
                    t,
                    &format!("reduction `.{}()`", t.text),
                    "over a `HashMap`/`HashSet` iteration",
                );
            }
        }
    }

    // (2) compound accumulation in `for` loops over hash containers.
    if !hash_names.is_empty() {
        let mut i = 0usize;
        while i < code.len() {
            if !code[i].is_word("for") {
                i += 1;
                continue;
            }
            // Header: `for <pat> in <expr> {`.
            let mut j = i + 1;
            let mut saw_in = None;
            while j < code.len() && !code[j].is_punct('{') && !code[j].is_punct(';') {
                if code[j].is_word("in") && saw_in.is_none() {
                    saw_in = Some(j);
                }
                j += 1;
            }
            let (Some(in_idx), true) = (saw_in, j < code.len() && code[j].is_punct('{')) else {
                i += 1;
                continue;
            };
            let over_hash = code[in_idx..j]
                .iter()
                .any(|u| u.kind == TokenKind::Ident && hash_names.iter().any(|n| n == &u.text));
            if !over_hash {
                i = j + 1;
                continue;
            }
            // Body: matching braces from `j`.
            let mut depth = 0i32;
            let mut k = j;
            let mut close = j;
            while k < code.len() {
                if code[k].is_punct('{') {
                    depth += 1;
                } else if code[k].is_punct('}') {
                    depth -= 1;
                    if depth == 0 {
                        close = k;
                        break;
                    }
                }
                k += 1;
            }
            for a in compound_assigns(&code, j + 1, close) {
                // Integer counters are exactly associative; only flag
                // accumulators with float evidence.
                let target_is_float = a > 0
                    && code[a - 1].kind == TokenKind::Ident
                    && is_float(&code[a - 1].text);
                if target_is_float {
                    report(
                        code[a],
                        "compound accumulation",
                        "inside a `for` loop over a `HashMap`/`HashSet`",
                    );
                }
            }
            i = j + 1;
        }
    }

    // (3) captured accumulators across the pool seam.
    for (start, end, method) in pool_call_regions(&code) {
        // Closure parameters: the idents between the first `|` pair.
        let mut params: Vec<&str> = Vec::new();
        if let Some(p0) = (start..end).find(|&k| code[k].is_punct('|')) {
            if let Some(p1) = (p0 + 1..end).find(|&k| code[k].is_punct('|')) {
                params = code[p0 + 1..p1]
                    .iter()
                    .filter(|t| t.kind == TokenKind::Ident)
                    .map(|t| t.text.as_str())
                    .collect();
            }
        }
        for a in compound_assigns(&code, start, end) {
            let Some(target) = (a > start)
                .then(|| code[a - 1])
                .filter(|t| t.kind == TokenKind::Ident)
            else {
                continue;
            };
            let local = params.iter().any(|p| *p == target.text)
                || (start..a).any(|k| {
                    code[k].is_word("let")
                        && code[k + 1..a.min(k + 3)]
                            .iter()
                            .any(|t| t.kind == TokenKind::Ident && t.text == target.text)
                });
            if !local && is_float(&target.text) {
                report(
                    target,
                    &format!("captured accumulation `{} {}=`", target.text, code[a].text),
                    &format!("across the parallel `{method}` seam"),
                );
            }
        }
    }
}

/// Indices of compound-assign operators (`+=` `-=` `*=` `/=`) in
/// `code[start..end)`, pointing at the operator's first token.
fn compound_assigns(code: &[&Token], start: usize, end: usize) -> Vec<usize> {
    let mut out = Vec::new();
    let end = end.min(code.len());
    let mut i = start;
    while i + 1 < end {
        let op = &code[i];
        let is_op = op.is_punct('+') || op.is_punct('-') || op.is_punct('*') || op.is_punct('/');
        if is_op && code[i + 1].is_punct('=') {
            // Exclude `==`-family by construction (first token differs)
            // and `->`/`=>` (second token differs). `a + = b` is not
            // valid Rust, so adjacency in the code stream is enough.
            out.push(i);
            i += 2;
            continue;
        }
        i += 1;
    }
    out
}

fn h001_ignore_reason(path: &str, tokens: &[Token], out: &mut Vec<Finding>) {
    let code = code_tokens(tokens);
    for (i, w) in code.windows(3).enumerate() {
        if w[0].is_punct('#') && w[1].is_punct('[') && w[2].is_word("ignore") {
            let reasoned = code.get(i + 3).is_some_and(|t| t.is_punct('='))
                && code.get(i + 4).is_some_and(|t| {
                    t.kind == TokenKind::Str && !t.text.trim().is_empty()
                });
            if !reasoned {
                out.push(Finding {
                    path: path.to_string(),
                    line: w[2].line,
                    col: w[2].col,
                    rule: "H001",
                    message: "`#[ignore]` without a reason string; use \
                              `#[ignore = \"why\"]` so skipped tests stay accounted for"
                        .to_string(),
                });
            }
        }
    }
}

fn h002_missing_docs(
    path: &str,
    tokens: &[Token],
    class: &FileClass,
    facts: &LineFacts,
    out: &mut Vec<Finding>,
) {
    if !class.is_crate_root {
        return;
    }
    if has_inner_attr(tokens, "deny", "missing_docs") || facts.docs_covers(1) {
        return;
    }
    out.push(Finding {
        path: path.to_string(),
        line: 1,
        col: 1,
        rule: "H002",
        message: "crate root is missing `#![deny(missing_docs)]` (document an \
                  exemption with `// lint: allow missing_docs — <reason>` on line 1)"
            .to_string(),
    });
}

/// Rule ids in report order, for `--explain`-style listings, SARIF
/// metadata and tests.
pub const RULES: &[(&str, &str)] = &[
    ("D001", "no wall-clock time sources outside bench/testkit"),
    ("D002", "no unordered HashMap/HashSet iteration in simulation crates"),
    ("D003", "no environment-seeded hashing or external RNGs"),
    ("D004", "forbid(unsafe_code) at every crate root; no unsafe anywhere"),
    ("D005", "no println!-family output from simulation library code"),
    ("D007", "no allocation reachable from the steady-state entry points"),
    ("D008", "no shared state captured inside parallel pool closures"),
    ("D009", "no float reduction over unordered sources or across pool seams"),
    ("H001", "no #[ignore] without a reason string"),
    ("H002", "deny(missing_docs) at every crate root"),
];

/// `SIM_CRATES` re-exported for doc/tests convenience.
pub fn sim_crates() -> &'static [&'static str] {
    SIM_CRATES
}
