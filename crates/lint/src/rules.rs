//! The ruleset: what each rule protects and how it is detected.
//!
//! Every rule guards one way the simulator's headline property — runs
//! are byte-identical for a given `(config, seed)` at any thread width —
//! can silently rot:
//!
//! * **D001** — wall-clock reads (`std::time::Instant`/`SystemTime`)
//!   make results depend on the host. Only the `bench`/`testkit`
//!   harness crates may time things.
//! * **D002** — iterating a `HashMap`/`HashSet` in a simulation crate
//!   visits entries in `RandomState` order, which differs per process.
//!   Sites that restore order explicitly carry a
//!   `// det: ordered — <reason>` pragma; everything else uses
//!   `BTreeMap`/`BTreeSet`.
//! * **D003** — `RandomState`/`DefaultHasher` seed from the
//!   environment, and external RNGs bypass the labelled
//!   `rcast_engine::rng` streams that make draws replayable.
//! * **D004** — `unsafe` code could break any invariant from under the
//!   checker; every crate root must carry `#![forbid(unsafe_code)]` and
//!   no `unsafe` token may appear anywhere. The single sanctioned
//!   exception is a `GlobalAlloc` shim: a crate root may downgrade to
//!   `#![deny(unsafe_code)]` and individual `unsafe` tokens may appear
//!   when a `// det: unsafe-ok — <reason>` pragma covers the line.
//! * **D005** — `println!`-family output from library code corrupts the
//!   CSV/JSON streams the figure pipeline parses; printing belongs to
//!   the binaries and the bench/report layer.
//! * **D006** — heap allocation (`Vec::new()`, `.to_vec()`, `.clone()`)
//!   inside the named per-interval hot functions of simulation crates
//!   erodes the zero-allocation steady state DESIGN.md §10 pins down;
//!   deliberate cold-path or warm-up allocations carry a
//!   `// det: hot-ok — <reason>` pragma.
//! * **H001** — `#[ignore]` without a reason string hides dead tests.
//! * **H002** — crate roots must keep `#![deny(missing_docs)]` (or
//!   carry a `// lint: allow missing_docs — <reason>` pragma).

use crate::lexer::{lex, Token, TokenKind};
use crate::project::{FileClass, FileKind, SIM_CRATES, WALL_CLOCK_ALLOWED};

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative `/`-separated path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Rule id (`D001` … `H002`).
    pub rule: &'static str,
    /// Human-readable description of the violation.
    pub message: String,
}

/// Sorts findings into the stable report order: path, then line, then
/// column, then rule id.
pub fn sort_findings(findings: &mut [Finding]) {
    findings.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.rule).cmp(&(b.path.as_str(), b.line, b.col, b.rule))
    });
}

/// Methods that observe a hash container's iteration order. `retain`
/// is included: its closure runs side effects in iteration order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
    "retain",
];

/// Identifiers banned by D003 wherever they appear as code.
const D003_IDENTS: &[&str] = &[
    "RandomState",
    "DefaultHasher",
    "SipHasher",
    "SipHasher13",
    "thread_rng",
    "ThreadRng",
    "OsRng",
    "StdRng",
    "SmallRng",
    "from_entropy",
    "getrandom",
];

/// Macros banned by D005 in simulation-library code.
const PRINT_MACROS: &[&str] = &["println", "eprintln", "print", "eprint", "dbg"];

/// The per-interval hot functions D006 guards: the steady-state loop in
/// `rcast_core::sim`, the MAC/channel interval machinery, and the
/// routing/mobility helpers they call every beacon interval. Keep in
/// sync with DESIGN.md §10.
const HOT_FUNCTIONS: &[&str] = &[
    "step_interval",
    "run_interval_into",
    "process_delivery",
    "dispatch",
    "send_unicast",
    "send_broadcast",
    "transmit",
    "advance",
    "apply_faults",
    "account_energy",
    "suppress_reply_storm",
    "receive_ref",
    "destinations_into",
    "try_reserve",
    "snapshot_into",
    "run_interval_observed",
    "record_event",
    "record_span",
    "end_interval",
    "run_cell_seed",
];

/// Per-file line facts needed for pragma resolution.
struct LineFacts {
    /// Lines (1-based) holding at least one non-comment token.
    has_code: Vec<bool>,
    /// Lines holding at least one comment token.
    has_comment: Vec<bool>,
    /// Lines holding a well-formed `det: ordered` pragma.
    det_pragma: Vec<bool>,
    /// Lines holding a well-formed `det: unsafe-ok` pragma.
    unsafe_pragma: Vec<bool>,
    /// Lines holding a well-formed `det: hot-ok` pragma.
    hot_pragma: Vec<bool>,
    /// Lines holding a well-formed `lint: allow missing_docs` pragma.
    docs_pragma: Vec<bool>,
}

impl LineFacts {
    fn build(tokens: &[Token]) -> Self {
        let last = tokens.iter().map(|t| t.line as usize).max().unwrap_or(0);
        let mut f = LineFacts {
            has_code: vec![false; last + 2],
            has_comment: vec![false; last + 2],
            det_pragma: vec![false; last + 2],
            unsafe_pragma: vec![false; last + 2],
            hot_pragma: vec![false; last + 2],
            docs_pragma: vec![false; last + 2],
        };
        for t in tokens {
            let l = t.line as usize;
            if t.kind == TokenKind::Comment {
                f.has_comment[l] = true;
                if pragma_reason(&t.text, "det: ordered") {
                    f.det_pragma[l] = true;
                }
                if pragma_reason(&t.text, "det: unsafe-ok") {
                    f.unsafe_pragma[l] = true;
                }
                if pragma_reason(&t.text, "det: hot-ok") {
                    f.hot_pragma[l] = true;
                }
                if pragma_reason(&t.text, "lint: allow missing_docs") {
                    f.docs_pragma[l] = true;
                }
            } else {
                f.has_code[l] = true;
            }
        }
        f
    }

    /// `true` when a `det: ordered` pragma covers `line`: on the line
    /// itself (trailing comment) or in the contiguous comment block
    /// directly above it (blank lines break the block).
    fn det_covers(&self, line: u32) -> bool {
        self.covers(&self.det_pragma, line)
    }

    fn unsafe_covers(&self, line: u32) -> bool {
        self.covers(&self.unsafe_pragma, line)
    }

    fn hot_covers(&self, line: u32) -> bool {
        self.covers(&self.hot_pragma, line)
    }

    fn docs_covers(&self, line: u32) -> bool {
        self.covers(&self.docs_pragma, line)
    }

    fn covers(&self, pragma: &[bool], line: u32) -> bool {
        let line = line as usize;
        if line >= self.has_code.len() {
            return false;
        }
        if pragma[line] {
            return true;
        }
        let mut l = line.saturating_sub(1);
        while l >= 1 && self.has_comment[l] && !self.has_code[l] {
            if pragma[l] {
                return true;
            }
            l -= 1;
        }
        false
    }
}

/// `true` when `text` is a pragma of the given head *with a non-empty
/// reason* after an em- or ASCII dash. A pragma without a reason is
/// deliberately not honored: the reason is the artifact being enforced.
fn pragma_reason(text: &str, head: &str) -> bool {
    let t = text.trim();
    let Some(rest) = t.strip_prefix(head) else {
        return false;
    };
    let rest = rest.trim_start();
    let reason = rest
        .strip_prefix('—')
        .or_else(|| rest.strip_prefix("--"))
        .or_else(|| rest.strip_prefix('-'))
        .or_else(|| rest.strip_prefix(':'));
    reason.is_some_and(|r| !r.trim().is_empty())
}

/// Runs every applicable rule over one file's source.
///
/// `path` is used only for reporting; `class` decides which rules
/// apply. This is the unit the fixture tests drive directly.
pub fn check_file(path: &str, source: &str, class: &FileClass) -> Vec<Finding> {
    let tokens = lex(source);
    let facts = LineFacts::build(&tokens);
    let mut out = Vec::new();
    d001_wall_clock(path, &tokens, class, &mut out);
    d002_hash_iteration(path, &tokens, class, &facts, &mut out);
    d003_environment_randomness(path, &tokens, &mut out);
    d004_unsafe(path, &tokens, class, &facts, &mut out);
    d005_print(path, &tokens, class, &mut out);
    d006_hot_alloc(path, &tokens, class, &facts, &mut out);
    h001_ignore_reason(path, &tokens, &mut out);
    h002_missing_docs(path, &tokens, class, &facts, &mut out);
    sort_findings(&mut out);
    out.dedup();
    out
}

fn code_tokens(tokens: &[Token]) -> Vec<&Token> {
    tokens.iter().filter(|t| t.kind != TokenKind::Comment).collect()
}

fn d001_wall_clock(path: &str, tokens: &[Token], class: &FileClass, out: &mut Vec<Finding>) {
    if WALL_CLOCK_ALLOWED.contains(&class.crate_name.as_str()) {
        return;
    }
    for t in tokens {
        if t.is_word("Instant") || t.is_word("SystemTime") {
            out.push(Finding {
                path: path.to_string(),
                line: t.line,
                col: t.col,
                rule: "D001",
                message: format!(
                    "wall-clock type `{}` outside the allowlisted crates ({}); \
                     simulation results must be a pure function of (config, seed)",
                    t.text,
                    WALL_CLOCK_ALLOWED.join(", "),
                ),
            });
        }
    }
}

/// D002 works in two passes over the code tokens: first it collects the
/// names declared with a `HashMap`/`HashSet` type (field/binding
/// annotations `name: …HashMap<…>` and inferred `let name = HashMap::…`
/// initializers), then it flags any iteration-order-observing use of
/// those names — `name.iter()`-style calls and `for … in` expressions
/// mentioning the name — that no pragma covers.
fn d002_hash_iteration(
    path: &str,
    tokens: &[Token],
    class: &FileClass,
    facts: &LineFacts,
    out: &mut Vec<Finding>,
) {
    if !class.is_sim_crate() {
        return;
    }
    let code = code_tokens(tokens);
    let mut hash_names: Vec<String> = Vec::new();
    for (i, t) in code.iter().enumerate() {
        if !(t.is_word("HashMap") || t.is_word("HashSet")) {
            continue;
        }
        // Walk back through type-ish tokens (path `::` pairs included)
        // until the annotation colon of `name: …HashMap<…>` or the `=`
        // of an inferred `let name = …HashMap::new()` initializer.
        let mut j = i;
        while j > 0 {
            j -= 1;
            let b = code[j];
            if b.is_punct(':') {
                if j > 0 && code[j - 1].is_punct(':') {
                    j -= 1; // `::` inside a path: still in the type
                    continue;
                }
                if j > 0 && code[j - 1].kind == TokenKind::Ident {
                    hash_names.push(code[j - 1].text.clone());
                }
                break;
            }
            if b.is_punct('=') {
                if j > 0 && code[j - 1].kind == TokenKind::Ident {
                    hash_names.push(code[j - 1].text.clone());
                }
                break;
            }
            let type_ish = b.kind == TokenKind::Ident
                || b.is_punct('<')
                || b.is_punct('>')
                || b.is_punct(',')
                || b.is_punct('(')
                || b.is_punct(')')
                || b.is_punct('&')
                || b.kind == TokenKind::Lifetime;
            if !type_ish {
                break;
            }
        }
    }
    if hash_names.is_empty() {
        return;
    }

    let report = |out: &mut Vec<Finding>, t: &Token, name: &str, how: &str| {
        out.push(Finding {
            path: path.to_string(),
            line: t.line,
            col: t.col,
            rule: "D002",
            message: format!(
                "{how} of `HashMap`/`HashSet` value `{name}` in simulation crate \
                 `{}` without a `// det: ordered — <reason>` pragma; iteration \
                 order is per-process random and leaks into results — use \
                 BTreeMap/BTreeSet or restore order explicitly and annotate",
                class.crate_name,
            ),
        });
    };

    // A finding is suppressed when the pragma covers the use site or
    // the first line of the statement it belongs to (multi-line method
    // chains anchor at the statement start).
    let suppressed = |code: &[&Token], idx: usize| {
        let line = code[idx].line;
        if facts.det_covers(line) {
            return true;
        }
        let mut j = idx;
        while j > 0 {
            let t = code[j - 1];
            if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
                break;
            }
            j -= 1;
        }
        facts.det_covers(code[j].line)
    };

    for (i, t) in code.iter().enumerate() {
        if t.kind != TokenKind::Ident || !hash_names.iter().any(|n| n == &t.text) {
            continue;
        }
        // `name . method (` with an order-observing method.
        if i + 3 < code.len()
            && code[i + 1].is_punct('.')
            && code[i + 2].kind == TokenKind::Ident
            && ITER_METHODS.contains(&code[i + 2].text.as_str())
            && code[i + 3].is_punct('(')
            && !suppressed(&code, i)
        {
            report(out, code[i + 2], &t.text, "order-observing method call");
        }
        // `for … in <expr mentioning name> {`. A following `.` defers
        // to the method-call branch above.
        let method_follows = code.get(i + 1).is_some_and(|n| n.is_punct('.'));
        if !method_follows {
            if let Some(for_idx) = enclosing_for_in(&code, i) {
                if !suppressed(&code, for_idx) && !suppressed(&code, i) {
                    report(out, t, &t.text, "`for` iteration");
                }
            }
        }
    }
}

/// If `code[idx]` sits in the header of a `for … in header {` loop,
/// returns the index of the `for` token.
fn enclosing_for_in(code: &[&Token], idx: usize) -> Option<usize> {
    // Walk back to `in` then `for`, refusing to cross statement ends or
    // an opening `{` (which would mean we left the loop header).
    let mut saw_in = None;
    let mut j = idx;
    let mut depth = 0i32;
    while j > 0 {
        j -= 1;
        let t = code[j];
        if t.is_punct(')') || t.is_punct(']') {
            depth += 1;
        } else if t.is_punct('(') || t.is_punct('[') {
            depth -= 1;
            if depth < 0 {
                // The name is inside a call argument like `m.get(&k)`
                // within some larger expression; still fine to keep
                // walking for the `in`, the call parens just nest.
                depth = 0;
            }
        } else if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            return None;
        } else if t.is_word("in") && depth == 0 {
            saw_in = Some(j);
        } else if t.is_word("for") && saw_in.is_some() {
            return Some(j);
        }
    }
    None
}

fn d003_environment_randomness(path: &str, tokens: &[Token], out: &mut Vec<Finding>) {
    let code = code_tokens(tokens);
    for (i, t) in code.iter().enumerate() {
        let banned = D003_IDENTS.contains(&t.text.as_str()) && t.kind == TokenKind::Ident;
        // An external-RNG path: the `rand` crate root used as `rand::`.
        let rand_path = t.is_word("rand")
            && i + 2 < code.len()
            && code[i + 1].is_punct(':')
            && code[i + 2].is_punct(':');
        if banned || rand_path {
            out.push(Finding {
                path: path.to_string(),
                line: t.line,
                col: t.col,
                rule: "D003",
                message: format!(
                    "environment-seeded hashing or external RNG `{}`; all \
                     randomness must flow through the named rcast_engine::rng \
                     streams so draws replay bit-identically",
                    t.text,
                ),
            });
        }
    }
}

fn d004_unsafe(
    path: &str,
    tokens: &[Token],
    class: &FileClass,
    facts: &LineFacts,
    out: &mut Vec<Finding>,
) {
    for t in tokens {
        if t.is_word("unsafe") && !facts.unsafe_covers(t.line) {
            out.push(Finding {
                path: path.to_string(),
                line: t.line,
                col: t.col,
                rule: "D004",
                message: "`unsafe` is banned workspace-wide: no invariant the \
                          determinism rules protect survives undefined behavior \
                          (a GlobalAlloc shim may annotate each line with \
                          `// det: unsafe-ok — <reason>`)"
                    .to_string(),
            });
        }
    }
    if class.is_crate_root && !has_inner_attr(tokens, "forbid", "unsafe_code") {
        // A crate hosting a pragma'd GlobalAlloc shim may downgrade to
        // `deny`, provided the attribute itself carries the pragma.
        let pragma_deny = inner_attr_line(tokens, "deny", "unsafe_code")
            .is_some_and(|line| facts.unsafe_covers(line));
        if !pragma_deny {
            out.push(Finding {
                path: path.to_string(),
                line: 1,
                col: 1,
                rule: "D004",
                message: "crate root is missing `#![forbid(unsafe_code)]` (or a \
                          `// det: unsafe-ok — <reason>`-annotated \
                          `#![deny(unsafe_code)]`)"
                    .to_string(),
            });
        }
    }
}

/// Looks for `attr ( arg )` anywhere in the token stream — i.e.
/// `#![attr(arg)]` once comments are stripped. Lexical matching is
/// enough: these idents only occur in attribute position.
fn has_inner_attr(tokens: &[Token], attr: &str, arg: &str) -> bool {
    inner_attr_line(tokens, attr, arg).is_some()
}

/// Like [`has_inner_attr`], but returns the line the attribute starts
/// on so pragma coverage can be checked against it.
fn inner_attr_line(tokens: &[Token], attr: &str, arg: &str) -> Option<u32> {
    let code = code_tokens(tokens);
    code.windows(4).find_map(|w| {
        (w[0].is_word(attr) && w[1].is_punct('(') && w[2].is_word(arg) && w[3].is_punct(')'))
            .then(|| w[0].line)
    })
}

fn d005_print(path: &str, tokens: &[Token], class: &FileClass, out: &mut Vec<Finding>) {
    let lib_of_sim = class.kind == FileKind::Lib
        && (class.is_sim_crate() || class.crate_name == "testkit");
    if !lib_of_sim {
        return;
    }
    let code = code_tokens(tokens);
    for w in code.windows(2) {
        if w[0].kind == TokenKind::Ident
            && PRINT_MACROS.contains(&w[0].text.as_str())
            && w[1].is_punct('!')
        {
            out.push(Finding {
                path: path.to_string(),
                line: w[0].line,
                col: w[0].col,
                rule: "D005",
                message: format!(
                    "`{}!` in library crate `{}`; stdout/stderr belong to the \
                     report/CLI layer — return data and let binaries print",
                    w[0].text, class.crate_name,
                ),
            });
        }
    }
}

/// D006 tracks the enclosing function with a brace stack: a `fn NAME`
/// arms a pending frame (disarmed by `;`, i.e. a bodyless trait
/// signature), the next `{` pushes it, `}` pops. Code is "hot" while
/// any frame on the stack names a [`HOT_FUNCTIONS`] entry, so closures
/// and nested blocks inside a hot function are covered too. Within hot
/// code, `Vec::new(`, `.to_vec(` and `.clone(` are flagged unless a
/// `// det: hot-ok — <reason>` pragma covers the line.
fn d006_hot_alloc(
    path: &str,
    tokens: &[Token],
    class: &FileClass,
    facts: &LineFacts,
    out: &mut Vec<Finding>,
) {
    if !class.is_sim_crate() || class.kind != FileKind::Lib {
        return;
    }
    let code = code_tokens(tokens);
    let mut report = |t: &Token, what: &str| {
        if facts.hot_covers(t.line) {
            return;
        }
        out.push(Finding {
            path: path.to_string(),
            line: t.line,
            col: t.col,
            rule: "D006",
            message: format!(
                "{what} inside a per-interval hot function; the steady-state \
                 loop must not allocate (DESIGN.md §10) — reuse cleared scratch \
                 storage, or annotate a deliberate cold/warm-up allocation with \
                 `// det: hot-ok — <reason>`",
            ),
        });
    };
    let mut stack: Vec<bool> = Vec::new();
    let mut hot_depth = 0usize;
    let mut pending: Option<bool> = None;
    for (i, t) in code.iter().enumerate() {
        if t.is_word("fn") {
            if let Some(name) = code.get(i + 1) {
                if name.kind == TokenKind::Ident {
                    pending = Some(HOT_FUNCTIONS.contains(&name.text.as_str()));
                }
            }
        } else if t.is_punct(';') {
            pending = None;
        } else if t.is_punct('{') {
            let hot = pending.take().unwrap_or(false);
            stack.push(hot);
            hot_depth += usize::from(hot);
        } else if t.is_punct('}') {
            if let Some(hot) = stack.pop() {
                hot_depth -= usize::from(hot);
            }
        }
        if hot_depth == 0 {
            continue;
        }
        if t.is_word("Vec")
            && code.get(i + 1).is_some_and(|w| w.is_punct(':'))
            && code.get(i + 2).is_some_and(|w| w.is_punct(':'))
            && code.get(i + 3).is_some_and(|w| w.is_word("new"))
            && code.get(i + 4).is_some_and(|w| w.is_punct('('))
        {
            report(t, "`Vec::new()`");
        }
        if t.is_punct('.')
            && code.get(i + 2).is_some_and(|w| w.is_punct('('))
        {
            if let Some(m) = code.get(i + 1) {
                if m.is_word("to_vec") {
                    report(m, "`.to_vec()`");
                } else if m.is_word("clone") {
                    report(m, "`.clone()`");
                }
            }
        }
    }
}

fn h001_ignore_reason(path: &str, tokens: &[Token], out: &mut Vec<Finding>) {
    let code = code_tokens(tokens);
    for (i, w) in code.windows(3).enumerate() {
        if w[0].is_punct('#') && w[1].is_punct('[') && w[2].is_word("ignore") {
            let reasoned = code.get(i + 3).is_some_and(|t| t.is_punct('='))
                && code.get(i + 4).is_some_and(|t| {
                    t.kind == TokenKind::Str && !t.text.trim().is_empty()
                });
            if !reasoned {
                out.push(Finding {
                    path: path.to_string(),
                    line: w[2].line,
                    col: w[2].col,
                    rule: "H001",
                    message: "`#[ignore]` without a reason string; use \
                              `#[ignore = \"why\"]` so skipped tests stay accounted for"
                        .to_string(),
                });
            }
        }
    }
}

fn h002_missing_docs(
    path: &str,
    tokens: &[Token],
    class: &FileClass,
    facts: &LineFacts,
    out: &mut Vec<Finding>,
) {
    if !class.is_crate_root {
        return;
    }
    if has_inner_attr(tokens, "deny", "missing_docs") || facts.docs_covers(1) {
        return;
    }
    out.push(Finding {
        path: path.to_string(),
        line: 1,
        col: 1,
        rule: "H002",
        message: "crate root is missing `#![deny(missing_docs)]` (document an \
                  exemption with `// lint: allow missing_docs — <reason>` on line 1)"
            .to_string(),
    });
}

/// Rule ids in report order, for `--explain`-style listings and tests.
pub const RULES: &[(&str, &str)] = &[
    ("D001", "no wall-clock time sources outside bench/testkit"),
    ("D002", "no unordered HashMap/HashSet iteration in simulation crates"),
    ("D003", "no environment-seeded hashing or external RNGs"),
    ("D004", "forbid(unsafe_code) at every crate root; no unsafe anywhere"),
    ("D005", "no println!-family output from simulation library code"),
    ("D006", "no Vec::new/to_vec/clone inside per-interval hot functions"),
    ("H001", "no #[ignore] without a reason string"),
    ("H002", "deny(missing_docs) at every crate root"),
];

/// `SIM_CRATES` re-exported for doc/tests convenience.
pub fn sim_crates() -> &'static [&'static str] {
    SIM_CRATES
}
