//! A small hand-rolled Rust lexer.
//!
//! The analyzer needs exactly one guarantee from its front end: an
//! identifier reported at `line:col` really is *code*, never text
//! inside a string literal or a comment. A full parser would be
//! overkill (and would drag in a dependency, breaking the hermetic
//! build), so this module tokenizes Rust source with the handful of
//! lexical rules that matter for that guarantee:
//!
//! * line comments (`//`, `///`, `//!`) and **nested** block comments
//!   (`/* /* */ */`) — kept as [`TokenKind::Comment`] tokens because the
//!   `// det: ordered — …` pragma lives in them;
//! * string, byte-string, C-string and **raw** string literals
//!   (`r#"…"#` with any number of hashes), with escape handling;
//! * character literals vs. lifetimes (`'a'` vs. `'a`);
//! * raw identifiers (`r#match`), marked so `r#unsafe` is not mistaken
//!   for the `unsafe` keyword;
//! * identifiers, numbers and single-character punctuation.
//!
//! Everything else (operator gluing, keyword classification) is left to
//! the rules, which work on identifier/punctuation sequences.

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`foo`, `unsafe`, `HashMap`).
    Ident,
    /// A raw identifier (`r#match`); never treated as a keyword.
    RawIdent,
    /// A lifetime (`'a`, `'static`), without the leading quote.
    Lifetime,
    /// A numeric literal, including suffix (`42`, `1.5e3`, `0xFFu32`).
    Number,
    /// A string literal of any flavor; text is the *content only*.
    Str,
    /// A character literal (`'x'`, `'\n'`); text is the content.
    Char,
    /// One punctuation character (`#`, `!`, `.`, `(`, …).
    Punct,
    /// A comment; text is the content after `//` / inside `/* */`.
    Comment,
}

/// One lexed token with its source position (1-based line and column).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Classification.
    pub kind: TokenKind,
    /// Token text (see [`TokenKind`] for what exactly is stored).
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based column (in characters) of the token's first character.
    pub col: u32,
}

impl Token {
    /// `true` for a non-raw identifier equal to `word` — the correct
    /// way to match keywords (`r#unsafe` is *not* the keyword).
    pub fn is_word(&self, word: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == word
    }

    /// `true` for a punctuation token equal to `ch`.
    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == ch.len_utf8() && self.text.starts_with(ch)
    }
}

struct Cursor<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Cursor {
            chars: src.chars().peekable(),
            line: 1,
            col: 1,
        }
    }

    fn peek(&mut self) -> Option<char> {
        self.chars.peek().copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next()?;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `src` into tokens. Never fails: unterminated literals simply
/// run to end of input (the rules only care about well-formed files,
/// which the compiler has already accepted by the time CI lints them).
pub fn lex(src: &str) -> Vec<Token> {
    let mut cur = Cursor::new(src);
    let mut out = Vec::new();
    while let Some(c) = cur.peek() {
        let (line, col) = (cur.line, cur.col);
        if c.is_whitespace() {
            cur.bump();
            continue;
        }
        if c == '/' {
            cur.bump();
            match cur.peek() {
                Some('/') => {
                    cur.bump();
                    let mut text = String::new();
                    while let Some(ch) = cur.peek() {
                        if ch == '\n' {
                            break;
                        }
                        text.push(ch);
                        cur.bump();
                    }
                    out.push(Token { kind: TokenKind::Comment, text, line, col });
                }
                Some('*') => {
                    cur.bump();
                    let mut depth = 1u32;
                    let mut text = String::new();
                    while depth > 0 {
                        match cur.bump() {
                            Some('*') if cur.peek() == Some('/') => {
                                cur.bump();
                                depth -= 1;
                                if depth > 0 {
                                    text.push_str("*/");
                                }
                            }
                            Some('/') if cur.peek() == Some('*') => {
                                cur.bump();
                                depth += 1;
                                text.push_str("/*");
                            }
                            Some(ch) => text.push(ch),
                            None => break,
                        }
                    }
                    out.push(Token { kind: TokenKind::Comment, text, line, col });
                }
                _ => out.push(Token { kind: TokenKind::Punct, text: "/".into(), line, col }),
            }
            continue;
        }
        if c == '"' {
            cur.bump();
            let text = lex_string_body(&mut cur);
            out.push(Token { kind: TokenKind::Str, text, line, col });
            continue;
        }
        if c == '\'' {
            cur.bump();
            lex_quote(&mut cur, &mut out, line, col);
            continue;
        }
        if is_ident_start(c) {
            let mut word = String::new();
            while let Some(ch) = cur.peek() {
                if !is_ident_continue(ch) {
                    break;
                }
                word.push(ch);
                cur.bump();
            }
            // String prefixes and raw identifiers.
            match (word.as_str(), cur.peek()) {
                ("b" | "c", Some('"')) => {
                    cur.bump();
                    let text = lex_string_body(&mut cur);
                    out.push(Token { kind: TokenKind::Str, text, line, col });
                }
                ("b", Some('\'')) => {
                    cur.bump();
                    lex_quote(&mut cur, &mut out, line, col);
                }
                ("r" | "br" | "cr", Some('"' | '#')) => {
                    if !lex_raw(&mut cur, &word, &mut out, line, col) {
                        out.push(Token { kind: TokenKind::Ident, text: word, line, col });
                    }
                }
                _ => out.push(Token { kind: TokenKind::Ident, text: word, line, col }),
            }
            continue;
        }
        if c.is_ascii_digit() {
            let mut text = String::new();
            while let Some(ch) = cur.peek() {
                if is_ident_continue(ch) {
                    text.push(ch);
                    cur.bump();
                    continue;
                }
                // A fraction digit (but not `..`) continues the number,
                // as does an exponent sign right after `e`/`E`.
                let in_fraction = ch == '.' && {
                    let mut ahead = cur.chars.clone();
                    ahead.next();
                    ahead.next().is_some_and(|d| d.is_ascii_digit())
                };
                let in_exponent = (ch == '+' || ch == '-') && text.ends_with(['e', 'E']);
                if in_fraction || in_exponent {
                    text.push(ch);
                    cur.bump();
                    continue;
                }
                break;
            }
            out.push(Token { kind: TokenKind::Number, text, line, col });
            continue;
        }
        cur.bump();
        out.push(Token { kind: TokenKind::Punct, text: c.to_string(), line, col });
    }
    out
}

/// Consumes a (non-raw) string body after the opening `"`, handling
/// escapes; returns the content.
fn lex_string_body(cur: &mut Cursor<'_>) -> String {
    let mut text = String::new();
    while let Some(ch) = cur.bump() {
        match ch {
            '"' => break,
            '\\' => {
                text.push('\\');
                if let Some(esc) = cur.bump() {
                    text.push(esc);
                }
            }
            _ => text.push(ch),
        }
    }
    text
}

/// After a `'`: either a lifetime (`'a`) or a char literal (`'a'`).
fn lex_quote(cur: &mut Cursor<'_>, out: &mut Vec<Token>, line: u32, col: u32) {
    // Lifetime: ident-start followed by anything but a closing quote.
    if cur.peek().is_some_and(is_ident_start) {
        let mut ahead = cur.chars.clone();
        ahead.next();
        if ahead.next() != Some('\'') {
            let mut name = String::new();
            while let Some(ch) = cur.peek() {
                if !is_ident_continue(ch) {
                    break;
                }
                name.push(ch);
                cur.bump();
            }
            out.push(Token { kind: TokenKind::Lifetime, text: name, line, col });
            return;
        }
    }
    // Char literal, with escapes.
    let mut text = String::new();
    while let Some(ch) = cur.bump() {
        match ch {
            '\'' => break,
            '\\' => {
                text.push('\\');
                if let Some(esc) = cur.bump() {
                    text.push(esc);
                }
            }
            _ => text.push(ch),
        }
    }
    out.push(Token { kind: TokenKind::Char, text, line, col });
}

/// After lexing a `r`/`br`/`cr` prefix whose next char is `"` or `#`:
/// tries a raw string (`r#"…"#`) or raw identifier (`r#ident`). Returns
/// `false` when it is neither (the caller emits the plain identifier).
fn lex_raw(cur: &mut Cursor<'_>, prefix: &str, out: &mut Vec<Token>, line: u32, col: u32) -> bool {
    let mut hashes = 0usize;
    while cur.peek() == Some('#') {
        hashes += 1;
        cur.bump();
    }
    if cur.peek() == Some('"') {
        cur.bump();
        let closer: String = std::iter::once('"').chain(std::iter::repeat_n('#', hashes)).collect();
        let mut text = String::new();
        while let Some(ch) = cur.bump() {
            text.push(ch);
            if text.ends_with(&closer) {
                text.truncate(text.len() - closer.len());
                break;
            }
        }
        out.push(Token { kind: TokenKind::Str, text, line, col });
        return true;
    }
    if prefix == "r" && hashes == 1 && cur.peek().is_some_and(is_ident_start) {
        let mut name = String::new();
        while let Some(ch) = cur.peek() {
            if !is_ident_continue(ch) {
                break;
            }
            name.push(ch);
            cur.bump();
        }
        out.push(Token { kind: TokenKind::RawIdent, text: name, line, col });
        return true;
    }
    // `r # =` or similar: emit the hashes we consumed as punctuation so
    // positions stay roughly honest, and let the caller emit `r`.
    for i in 0..hashes {
        out.push(Token {
            kind: TokenKind::Punct,
            text: "#".into(),
            line,
            col: col + prefix.len() as u32 + i as u32,
        });
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_identifiers() {
        let src = r##"
            let a = "unsafe HashMap"; // unsafe in a comment
            /* unsafe /* nested unsafe */ still comment */
            let b = r#"raw "quoted" unsafe"#;
            let c = 'u';
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"unsafe".to_string()), "{ids:?}");
        assert!(!ids.contains(&"HashMap".to_string()));
        assert_eq!(ids, ["let", "a", "let", "b", "let", "c"]);
    }

    #[test]
    fn raw_identifier_is_not_a_keyword() {
        let toks = lex("fn r#unsafe() {}");
        let raw: Vec<_> = toks.iter().filter(|t| t.kind == TokenKind::RawIdent).collect();
        assert_eq!(raw.len(), 1);
        assert_eq!(raw[0].text, "unsafe");
        assert!(!toks.iter().any(|t| t.is_word("unsafe")));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) -> char { 'a' }");
        let lifetimes = toks.iter().filter(|t| t.kind == TokenKind::Lifetime).count();
        let chars: Vec<_> = toks.iter().filter(|t| t.kind == TokenKind::Char).collect();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars.len(), 1);
        assert_eq!(chars[0].text, "a");
    }

    #[test]
    fn escaped_quote_in_char_and_string() {
        let toks = lex(r#"let q = '\''; let s = "a\"b";"#);
        let s: Vec<_> = toks.iter().filter(|t| t.kind == TokenKind::Str).collect();
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].text, r#"a\"b"#);
    }

    #[test]
    fn positions_are_one_based_lines_and_cols() {
        let toks = lex("a\n  bb");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn numbers_do_not_swallow_ranges() {
        let toks = lex("for i in 0..10 { let x = 1.5e-3f64; }");
        let nums: Vec<String> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Number)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(nums, ["0", "10", "1.5e-3f64"]);
    }

    #[test]
    fn byte_and_c_strings_are_strings() {
        let toks = lex(r##"let a = b"bytes"; let b = c"cstr"; let c = br#"raw"#;"##);
        assert_eq!(toks.iter().filter(|t| t.kind == TokenKind::Str).count(), 3);
    }

    #[test]
    fn pragma_comment_text_is_preserved() {
        let toks = lex("x(); // det: ordered — BFS over sorted keys\n");
        let c: Vec<_> = toks.iter().filter(|t| t.kind == TokenKind::Comment).collect();
        assert_eq!(c.len(), 1);
        assert!(c[0].text.contains("det: ordered"));
    }
}
