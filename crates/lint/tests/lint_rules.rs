//! Fixture-driven tests for every lint rule: each rule must fire on its
//! deliberately-violating fixture, honor its pragma/allowlist escape
//! hatches, and stay quiet on compliant code. The fixtures live under
//! `tests/fixtures/`, which the workspace walker never descends into,
//! so the violations can never leak into the self-lint gate.

use std::path::{Path, PathBuf};

use rcast_lint::{
    check_file, find_workspace_root, lint_workspace, render_json, sort_findings, FileClass,
    FileKind, Finding, RULES,
};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// A library file inside a simulation crate — the strictest class.
fn sim_lib() -> FileClass {
    FileClass {
        crate_name: "dsr".to_string(),
        kind: FileKind::Lib,
        is_crate_root: false,
    }
}

fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
    findings.iter().map(|f| f.rule).collect()
}

fn lines_of(findings: &[Finding], rule: &str) -> Vec<u32> {
    findings
        .iter()
        .filter(|f| f.rule == rule)
        .map(|f| f.line)
        .collect()
}

#[test]
fn d001_fires_on_wall_clock_reads() {
    let findings = check_file("fixture.rs", &fixture("d001_wall_clock.rs"), &sim_lib());
    assert!(!findings.is_empty());
    assert!(rules_of(&findings).iter().all(|r| *r == "D001"));
    // `Instant` in the use and the call; `SystemTime` in signature and body.
    assert_eq!(lines_of(&findings, "D001"), vec![3, 6, 10, 11]);
}

#[test]
fn d001_allowlisted_crates_may_read_the_clock() {
    for name in ["bench", "testkit"] {
        let class = FileClass {
            crate_name: name.to_string(),
            kind: FileKind::Lib,
            is_crate_root: false,
        };
        let findings = check_file("fixture.rs", &fixture("d001_wall_clock.rs"), &class);
        assert!(
            lines_of(&findings, "D001").is_empty(),
            "D001 must not fire inside allowlisted crate `{name}`"
        );
    }
}

#[test]
fn d002_fires_on_unordered_iteration_and_honors_the_pragma() {
    let findings = check_file("fixture.rs", &fixture("d002_hash_iteration.rs"), &sim_lib());
    assert!(rules_of(&findings).iter().all(|r| *r == "D002"));
    // Line 8: `.keys()` on an annotated parameter. Line 15: `for … in`
    // over an inferred `HashSet` binding. Line 23 carries the
    // `// det: ordered — …` pragma and must stay silent.
    assert_eq!(lines_of(&findings, "D002"), vec![8, 15]);
}

#[test]
fn d002_only_applies_to_simulation_crates() {
    let class = FileClass {
        crate_name: "report".to_string(),
        kind: FileKind::Lib,
        is_crate_root: false,
    };
    let findings = check_file("fixture.rs", &fixture("d002_hash_iteration.rs"), &class);
    assert!(lines_of(&findings, "D002").is_empty());
}

#[test]
fn d003_fires_on_environment_randomness() {
    let findings = check_file(
        "fixture.rs",
        &fixture("d003_environment_randomness.rs"),
        &sim_lib(),
    );
    assert!(rules_of(&findings).iter().all(|r| *r == "D003"));
    // `RandomState` at the use/signature/constructor, `rand::` path.
    assert_eq!(lines_of(&findings, "D003"), vec![3, 5, 6, 10]);
}

#[test]
fn d004_fires_on_unsafe_and_missing_forbid() {
    let class = FileClass {
        crate_name: "dsr".to_string(),
        kind: FileKind::Lib,
        is_crate_root: true,
    };
    let findings = check_file("fixture.rs", &fixture("d004_unsafe.rs"), &class);
    // Missing `#![forbid(unsafe_code)]` reported at 1:1, the `unsafe`
    // token at its own line.
    assert_eq!(lines_of(&findings, "D004"), vec![1, 5]);
    // The same fixture as a crate root also lacks `deny(missing_docs)`.
    assert_eq!(lines_of(&findings, "H002"), vec![1]);
}

#[test]
fn d004_non_root_files_only_report_the_unsafe_token() {
    let findings = check_file("fixture.rs", &fixture("d004_unsafe.rs"), &sim_lib());
    assert_eq!(lines_of(&findings, "D004"), vec![5]);
    assert!(lines_of(&findings, "H002").is_empty());
}

#[test]
fn d004_pragma_sanctions_a_global_alloc_shim() {
    let class = FileClass {
        crate_name: "bench".to_string(),
        kind: FileKind::Lib,
        is_crate_root: true,
    };
    let findings = check_file("fixture.rs", &fixture("d004_unsafe_pragma.rs"), &class);
    // The pragma'd `deny(unsafe_code)` satisfies the crate-root check
    // and the covered `unsafe` tokens stay silent; only the bare
    // `unsafe fn` on line 9 fires.
    assert_eq!(lines_of(&findings, "D004"), vec![9]);
    assert!(lines_of(&findings, "H002").is_empty());
}

#[test]
fn d005_fires_on_printing_from_library_code() {
    let findings = check_file("fixture.rs", &fixture("d005_print.rs"), &sim_lib());
    assert_eq!(lines_of(&findings, "D005"), vec![4, 5]);
}

#[test]
fn d005_binaries_may_print() {
    let class = FileClass {
        crate_name: "dsr".to_string(),
        kind: FileKind::Bin,
        is_crate_root: false,
    };
    let findings = check_file("fixture.rs", &fixture("d005_print.rs"), &class);
    assert!(lines_of(&findings, "D005").is_empty());
}

#[test]
fn d006_fires_on_hot_path_allocations_and_honors_the_pragma() {
    let findings = check_file("fixture.rs", &fixture("d006_hot_alloc.rs"), &sim_lib());
    assert!(rules_of(&findings).iter().all(|r| *r == "D006"));
    // Lines 4–6: Vec::new/.to_vec/.clone inside `process_delivery`.
    // Line 10: a closure inside the hot function counts too. Lines 8–9
    // carry `det: hot-ok` pragmas and `cold_setup` is not a hot
    // function, so both stay silent.
    assert_eq!(lines_of(&findings, "D006"), vec![4, 5, 6, 10]);
}

#[test]
fn d006_only_applies_to_simulation_library_code() {
    for (name, kind) in [
        ("report", FileKind::Lib),
        ("dsr", FileKind::Test),
        ("dsr", FileKind::Bin),
    ] {
        let class = FileClass {
            crate_name: name.to_string(),
            kind,
            is_crate_root: false,
        };
        let findings = check_file("fixture.rs", &fixture("d006_hot_alloc.rs"), &class);
        assert!(
            lines_of(&findings, "D006").is_empty(),
            "D006 must not fire for {name}/{kind:?}"
        );
    }
}

#[test]
fn h001_fires_on_bare_ignore_but_not_reasoned_ignore() {
    let findings = check_file("fixture.rs", &fixture("h001_ignore.rs"), &sim_lib());
    assert_eq!(lines_of(&findings, "H001"), vec![5]);
}

#[test]
fn clean_fixture_produces_no_findings() {
    let findings = check_file("fixture.rs", &fixture("clean.rs"), &sim_lib());
    assert!(
        findings.is_empty(),
        "clean fixture must lint clean, got: {findings:?}"
    );
}

#[test]
fn json_output_matches_golden() {
    let mut findings = vec![
        Finding {
            path: "crates/dsr/src/node.rs".to_string(),
            line: 10,
            col: 5,
            rule: "D002",
            message: "iteration of `m` without pragma".to_string(),
        },
        Finding {
            path: "crates/core/src/sim.rs".to_string(),
            line: 3,
            col: 1,
            rule: "D001",
            message: "wall-clock `Instant` with a \"quote\"".to_string(),
        },
    ];
    sort_findings(&mut findings);
    let golden = concat!(
        "{\n",
        "  \"version\": 1,\n",
        "  \"findings\": [\n",
        "    {\"path\": \"crates/core/src/sim.rs\", \"line\": 3, \"col\": 1, ",
        "\"rule\": \"D001\", \"message\": \"wall-clock `Instant` with a \\\"quote\\\"\"},\n",
        "    {\"path\": \"crates/dsr/src/node.rs\", \"line\": 10, \"col\": 5, ",
        "\"rule\": \"D002\", \"message\": \"iteration of `m` without pragma\"}\n",
        "  ],\n",
        "  \"count\": 2\n",
        "}\n",
    );
    assert_eq!(render_json(&findings), golden);
}

#[test]
fn report_ordering_is_stable() {
    let mk = |path: &str, line: u32, col: u32, rule: &'static str| Finding {
        path: path.to_string(),
        line,
        col,
        rule,
        message: String::new(),
    };
    let mut findings = vec![
        mk("b.rs", 1, 1, "D001"),
        mk("a.rs", 9, 2, "D005"),
        mk("a.rs", 9, 2, "D002"),
        mk("a.rs", 2, 7, "H001"),
    ];
    sort_findings(&mut findings);
    let keys: Vec<_> = findings
        .iter()
        .map(|f| (f.path.as_str(), f.line, f.col, f.rule))
        .collect();
    assert_eq!(
        keys,
        vec![
            ("a.rs", 2, 7, "H001"),
            ("a.rs", 9, 2, "D002"),
            ("a.rs", 9, 2, "D005"),
            ("b.rs", 1, 1, "D001"),
        ]
    );
}

#[test]
fn every_documented_rule_has_fixture_coverage() {
    // Keep this list in sync with the tests above: adding a rule to
    // RULES without a fixture exercising it fails here.
    let covered = ["D001", "D002", "D003", "D004", "D005", "D006", "H001", "H002"];
    for (rule, _) in RULES {
        assert!(
            covered.contains(rule),
            "rule {rule} has no fixture test exercising it"
        );
    }
}

#[test]
fn the_workspace_itself_lints_clean() {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let root = find_workspace_root(&manifest).expect("workspace root above crates/lint");
    let findings = lint_workspace(&root).expect("lint the real tree");
    assert!(
        findings.is_empty(),
        "the workspace must self-lint clean, got:\n{}",
        rcast_lint::render_text(&findings)
    );
}
