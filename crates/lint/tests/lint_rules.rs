//! Fixture-driven tests for every lint rule: each rule must fire on its
//! deliberately-violating fixture, honor its pragma/allowlist escape
//! hatches, and stay quiet on compliant code. The fixtures live under
//! `tests/fixtures/`, which the workspace walker never descends into,
//! so the violations can never leak into the self-lint gate.

use std::path::{Path, PathBuf};

use rcast_lint::{
    check_file, check_sources, find_workspace_root, lint_workspace, render_json, sort_findings,
    FileClass, FileKind, Finding, RULES,
};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// A library file inside a simulation crate — the strictest class.
fn sim_lib() -> FileClass {
    FileClass {
        crate_name: "dsr".to_string(),
        kind: FileKind::Lib,
        is_crate_root: false,
    }
}

fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
    findings.iter().map(|f| f.rule).collect()
}

fn lines_of(findings: &[Finding], rule: &str) -> Vec<u32> {
    findings
        .iter()
        .filter(|f| f.rule == rule)
        .map(|f| f.line)
        .collect()
}

#[test]
fn d001_fires_on_wall_clock_reads() {
    let findings = check_file("fixture.rs", &fixture("d001_wall_clock.rs"), &sim_lib());
    assert!(!findings.is_empty());
    assert!(rules_of(&findings).iter().all(|r| *r == "D001"));
    // `Instant` in the use and the call; `SystemTime` in signature and body.
    assert_eq!(lines_of(&findings, "D001"), vec![3, 6, 10, 11]);
}

#[test]
fn d001_allowlisted_crates_may_read_the_clock() {
    for name in ["bench", "testkit"] {
        let class = FileClass {
            crate_name: name.to_string(),
            kind: FileKind::Lib,
            is_crate_root: false,
        };
        let findings = check_file("fixture.rs", &fixture("d001_wall_clock.rs"), &class);
        assert!(
            lines_of(&findings, "D001").is_empty(),
            "D001 must not fire inside allowlisted crate `{name}`"
        );
    }
}

#[test]
fn d002_fires_on_unordered_iteration_and_honors_the_pragma() {
    let findings = check_file("fixture.rs", &fixture("d002_hash_iteration.rs"), &sim_lib());
    assert!(rules_of(&findings).iter().all(|r| *r == "D002"));
    // Line 8: `.keys()` on an annotated parameter. Line 15: `for … in`
    // over an inferred `HashSet` binding. Line 23 carries the
    // `// det: ordered — …` pragma and must stay silent.
    assert_eq!(lines_of(&findings, "D002"), vec![8, 15]);
}

#[test]
fn d002_only_applies_to_simulation_crates() {
    let class = FileClass {
        crate_name: "report".to_string(),
        kind: FileKind::Lib,
        is_crate_root: false,
    };
    let findings = check_file("fixture.rs", &fixture("d002_hash_iteration.rs"), &class);
    assert!(lines_of(&findings, "D002").is_empty());
}

#[test]
fn d003_fires_on_environment_randomness() {
    let findings = check_file(
        "fixture.rs",
        &fixture("d003_environment_randomness.rs"),
        &sim_lib(),
    );
    assert!(rules_of(&findings).iter().all(|r| *r == "D003"));
    // `RandomState` at the use/signature/constructor, `rand::` path.
    assert_eq!(lines_of(&findings, "D003"), vec![3, 5, 6, 10]);
}

#[test]
fn d004_fires_on_unsafe_and_missing_forbid() {
    let class = FileClass {
        crate_name: "dsr".to_string(),
        kind: FileKind::Lib,
        is_crate_root: true,
    };
    let findings = check_file("fixture.rs", &fixture("d004_unsafe.rs"), &class);
    // Missing `#![forbid(unsafe_code)]` reported at 1:1, the `unsafe`
    // token at its own line.
    assert_eq!(lines_of(&findings, "D004"), vec![1, 5]);
    // The same fixture as a crate root also lacks `deny(missing_docs)`.
    assert_eq!(lines_of(&findings, "H002"), vec![1]);
}

#[test]
fn d004_non_root_files_only_report_the_unsafe_token() {
    let findings = check_file("fixture.rs", &fixture("d004_unsafe.rs"), &sim_lib());
    assert_eq!(lines_of(&findings, "D004"), vec![5]);
    assert!(lines_of(&findings, "H002").is_empty());
}

#[test]
fn d004_pragma_sanctions_a_global_alloc_shim() {
    let class = FileClass {
        crate_name: "bench".to_string(),
        kind: FileKind::Lib,
        is_crate_root: true,
    };
    let findings = check_file("fixture.rs", &fixture("d004_unsafe_pragma.rs"), &class);
    // The pragma'd `deny(unsafe_code)` satisfies the crate-root check
    // and the covered `unsafe` tokens stay silent; only the bare
    // `unsafe fn` on line 9 fires.
    assert_eq!(lines_of(&findings, "D004"), vec![9]);
    assert!(lines_of(&findings, "H002").is_empty());
}

#[test]
fn d005_fires_on_printing_from_library_code() {
    let findings = check_file("fixture.rs", &fixture("d005_print.rs"), &sim_lib());
    assert_eq!(lines_of(&findings, "D005"), vec![4, 5]);
}

#[test]
fn d005_binaries_may_print() {
    let class = FileClass {
        crate_name: "dsr".to_string(),
        kind: FileKind::Bin,
        is_crate_root: false,
    };
    let findings = check_file("fixture.rs", &fixture("d005_print.rs"), &class);
    assert!(lines_of(&findings, "D005").is_empty());
}

/// Wraps a single in-memory sim-library source for [`check_sources`].
fn sim_sources(source: &str) -> Vec<(String, String)> {
    vec![("crates/core/src/sim.rs".to_string(), source.to_string())]
}

#[test]
fn d007_flags_allocations_transitively_reachable_from_entry_points() {
    let src = "\
pub struct Sim { buf: Vec<u32> }
impl Sim {
    pub fn step_interval(&mut self) {
        self.dispatch();
    }
    fn dispatch(&mut self) {
        let _ = self.buf.clone();
        let _scratch: Vec<u32> = Vec::new();
    }
}
fn cold_setup() -> Vec<u32> {
    vec![1].to_vec()
}
";
    let findings = check_sources(&sim_sources(src));
    // Both sites inside `dispatch` (reached via step_interval) fire;
    // `cold_setup` is unreachable and stays silent.
    assert_eq!(lines_of(&findings, "D007"), vec![7, 8]);
    assert!(findings
        .iter()
        .filter(|f| f.rule == "D007")
        .all(|f| f.message.contains("step_interval → dispatch")));
}

#[test]
fn d007_honors_site_and_fn_level_pragmas_and_the_cold_boundary() {
    let src = "\
impl Sim {
    pub fn step_interval(&mut self) {
        self.audited();
        self.handler();
        self.construct();
    }
    fn audited(&mut self) {
        // det: hot-ok — scratch rebuilt only on topology changes
        let _ = self.buf.clone();
        let _ = self.buf.to_vec();
    }
    // det: hot-ok — event-path handler, quiescent in steady state
    fn handler(&mut self) {
        let _ = self.buf.clone();
    }
    // det: cold — construction helper, runs before the interval loop
    fn construct(&mut self) {
        let _ = self.buf.clone();
        self.deep();
    }
    fn deep(&mut self) {
        let _ = self.buf.clone();
    }
}
";
    let findings = check_sources(&sim_sources(src));
    // Line 9 is covered by the site pragma; line 10 is not. The
    // fn-level pragma silences all of `handler`. The cold boundary cuts
    // `construct` AND everything only reachable through it (`deep`).
    assert_eq!(lines_of(&findings, "D007"), vec![10]);
}

#[test]
fn d007_does_not_scan_unreachable_or_non_sim_code() {
    let sources = vec![
        (
            "crates/report/src/lib.rs".to_string(),
            "pub fn step_interval() { let _ = vec![1].clone(); }\n".to_string(),
        ),
        (
            "crates/core/src/bin/tool.rs".to_string(),
            "fn step_interval() { let _ = vec![1].clone(); }\n".to_string(),
        ),
    ];
    let findings = check_sources(&sources);
    assert!(lines_of(&findings, "D007").is_empty());
}

#[test]
fn d008_fires_on_captured_shared_state_and_honors_the_pragma() {
    let findings = check_file("fixture.rs", &fixture("d008_parallel_closure.rs"), &sim_lib());
    // Line 8: atomic RMW on a captured counter. Line 10: shared-state
    // type constructed in the closure. Line 12: unordered-map iteration
    // (its `det: ordered` escapes D002 but not D008). Line 21: lock
    // acquisition inside `map_grid`. Line 28: atomic RMW inside
    // `map_shards`. The iterator `map` in `fine` and the `shared-ok`
    // site in `excused` stay silent.
    assert_eq!(lines_of(&findings, "D008"), vec![8, 10, 12, 21, 28]);
    assert!(lines_of(&findings, "D002").is_empty());
}

#[test]
fn d008_only_applies_to_simulation_crates() {
    let class = FileClass {
        crate_name: "report".to_string(),
        kind: FileKind::Lib,
        is_crate_root: false,
    };
    let findings = check_file("fixture.rs", &fixture("d008_parallel_closure.rs"), &class);
    assert!(lines_of(&findings, "D008").is_empty());
}

#[test]
fn d009_fires_on_unordered_float_accumulation_and_honors_the_pragma() {
    let findings = check_file("fixture.rs", &fixture("d009_float_reduction.rs"), &sim_lib());
    // Line 8: `.sum()` over a HashMap chain. Line 14: `+=` inside a
    // `for` over a HashMap. Line 22: captured accumulator across the
    // pool seam. Slice-ordered, let-bound-local and pragma'd
    // reductions stay silent.
    assert_eq!(lines_of(&findings, "D009"), vec![8, 14, 22]);
    // D002 still fires on the raw hash iterations (lines 8, 13); the
    // `excused` fn carries both pragmas.
    assert_eq!(lines_of(&findings, "D002"), vec![8, 13]);
}

#[test]
fn lexer_hides_rule_names_inside_byte_and_raw_byte_strings() {
    let source = fixture("lexer_byte_strings.rs");
    let findings = check_file("fixture.rs", &source, &sim_lib());
    assert!(
        findings.is_empty(),
        "names inside byte/raw-byte/C strings must not trip rules, got: {findings:?}"
    );
    // The literals lex as single Str tokens, never identifier + string.
    let tokens = rcast_lint::lexer::lex(&source);
    let strings: Vec<&str> = tokens
        .iter()
        .filter(|t| t.kind == rcast_lint::lexer::TokenKind::Str)
        .map(|t| t.text.as_str())
        .collect();
    assert_eq!(
        strings,
        [
            "Instant SystemTime",
            // Non-raw token text keeps the escape sequences verbatim.
            "quote \\\" and backslash \\\\",
            "HashMap iteration \" with quotes",
            "thread_rng",
            "RandomState",
            "nested \"# hash guards",
        ]
    );
    assert!(
        !tokens.iter().any(|t| {
            t.kind == rcast_lint::lexer::TokenKind::Ident
                && matches!(t.text.as_str(), "b" | "br" | "c")
        }),
        "byte-string prefixes must not leak as identifiers"
    );
}

#[test]
fn h001_fires_on_bare_ignore_but_not_reasoned_ignore() {
    let findings = check_file("fixture.rs", &fixture("h001_ignore.rs"), &sim_lib());
    assert_eq!(lines_of(&findings, "H001"), vec![5]);
}

#[test]
fn clean_fixture_produces_no_findings() {
    let findings = check_file("fixture.rs", &fixture("clean.rs"), &sim_lib());
    assert!(
        findings.is_empty(),
        "clean fixture must lint clean, got: {findings:?}"
    );
}

#[test]
fn json_output_matches_golden() {
    let mut findings = vec![
        Finding {
            path: "crates/dsr/src/node.rs".to_string(),
            line: 10,
            col: 5,
            rule: "D002",
            message: "iteration of `m` without pragma".to_string(),
        },
        Finding {
            path: "crates/core/src/sim.rs".to_string(),
            line: 3,
            col: 1,
            rule: "D001",
            message: "wall-clock `Instant` with a \"quote\"".to_string(),
        },
    ];
    sort_findings(&mut findings);
    let golden = concat!(
        "{\n",
        "  \"version\": 1,\n",
        "  \"findings\": [\n",
        "    {\"path\": \"crates/core/src/sim.rs\", \"line\": 3, \"col\": 1, ",
        "\"rule\": \"D001\", \"message\": \"wall-clock `Instant` with a \\\"quote\\\"\"},\n",
        "    {\"path\": \"crates/dsr/src/node.rs\", \"line\": 10, \"col\": 5, ",
        "\"rule\": \"D002\", \"message\": \"iteration of `m` without pragma\"}\n",
        "  ],\n",
        "  \"count\": 2\n",
        "}\n",
    );
    assert_eq!(render_json(&findings), golden);
}

#[test]
fn report_ordering_is_stable() {
    let mk = |path: &str, line: u32, col: u32, rule: &'static str| Finding {
        path: path.to_string(),
        line,
        col,
        rule,
        message: String::new(),
    };
    let mut findings = vec![
        mk("b.rs", 1, 1, "D001"),
        mk("a.rs", 9, 2, "D005"),
        mk("a.rs", 9, 2, "D002"),
        mk("a.rs", 2, 7, "H001"),
    ];
    sort_findings(&mut findings);
    let keys: Vec<_> = findings
        .iter()
        .map(|f| (f.path.as_str(), f.line, f.col, f.rule))
        .collect();
    assert_eq!(
        keys,
        vec![
            ("a.rs", 2, 7, "H001"),
            ("a.rs", 9, 2, "D002"),
            ("a.rs", 9, 2, "D005"),
            ("b.rs", 1, 1, "D001"),
        ]
    );
}

#[test]
fn every_documented_rule_has_fixture_coverage() {
    // Keep this list in sync with the tests above: adding a rule to
    // RULES without a fixture exercising it fails here.
    let covered = [
        "D001", "D002", "D003", "D004", "D005", "D007", "D008", "D009", "H001", "H002",
    ];
    for (rule, _) in RULES {
        assert!(
            covered.contains(rule),
            "rule {rule} has no fixture test exercising it"
        );
    }
}

#[test]
fn the_workspace_itself_lints_clean_with_zero_baseline_entries() {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let root = find_workspace_root(&manifest).expect("workspace root above crates/lint");
    let findings = lint_workspace(&root).expect("lint the real tree");
    assert!(
        findings.is_empty(),
        "the workspace must self-lint clean under D001–D009/H001–H002 \
         with no baseline, got:\n{}",
        rcast_lint::render_text(&findings)
    );
    // The baseline mechanism exists for incremental adoption elsewhere;
    // this tree carries zero suppressions.
    let baseline = root.join("lint.baseline");
    if baseline.exists() {
        let text = std::fs::read_to_string(&baseline).expect("read lint.baseline");
        let entries = rcast_lint::parse_baseline(&text).expect("well-formed baseline");
        assert!(
            entries.is_empty(),
            "lint.baseline must stay empty, found {} entries",
            entries.len()
        );
    }
}
