//! D003 fixture: environment-seeded hashing and external RNG.

use std::collections::hash_map::RandomState;

fn hasher() -> RandomState {
    RandomState::new()
}

fn draw() -> u64 {
    rand::random()
}
