//! D001 fixture: wall-clock reads in a simulation crate.

use std::time::Instant;

fn elapsed_ms() -> u128 {
    let start = Instant::now();
    start.elapsed().as_millis()
}

fn stamp() -> std::time::SystemTime {
    std::time::SystemTime::now()
}
