//! A fully compliant simulation-crate source file: ordered collections,
//! engine-owned randomness, no printing, no wall clock.

use std::collections::BTreeMap;

/// Sums the routing table's next hops in key order.
pub fn sum_next_hops(routes: &BTreeMap<u32, u32>) -> u64 {
    routes.values().map(|&v| u64::from(v)).sum()
}

/// Strings and comments must never trip keyword scans:
/// "unsafe println! Instant thread_rng" is data, not code.
pub fn decoy() -> &'static str {
    // unsafe Instant SystemTime println! — only a comment
    "unsafe println! Instant thread_rng HashMap .iter()"
}
