//! D008 fixture: shared mutable state captured inside parallel pool
//! closures. Iterator `map` must stay untouched; `// det: shared-ok`
//! escapes an audited order-free site.

fn races(pool: &ScopedPool, h: &std::collections::HashMap<u32, u32>) {
    let hits = AtomicU32::new(0);
    pool.run(|i| {
        hits.fetch_add(1, Ordering::Relaxed);
        // Per-item local, but the rule over-approximates by type name.
        let cell = RefCell::new(i);
        // det: ordered — D002 escape only; D008 must still fire below
        for k in h.keys() {
            let _ = (k, &cell);
        }
    });
}

fn grids(jobs: &[u32]) {
    let total = Mutex::new(0u32);
    ScopedPool::new(2).map_grid(jobs, 3, |_, _, _| {
        *total.lock().unwrap() += 1;
    });
}

fn shards(lanes: &mut [u32]) {
    let merged = AtomicU32::new(0);
    ScopedPool::new(4).map_shards(lanes, |shard, lane| {
        merged.fetch_add(*lane + shard as u32, Ordering::Relaxed);
    });
}

fn fine(xs: &[u32]) -> Vec<u32> {
    // Iterator `map` is not a pool seam: no findings here.
    xs.iter().map(|x| x + 1).collect()
}

fn excused(pool: &ScopedPool) {
    let hits = AtomicU32::new(0);
    pool.run(|_| {
        // det: shared-ok — commutative counter; the caller asserts a total
        hits.fetch_add(1, Ordering::Relaxed);
    });
}
