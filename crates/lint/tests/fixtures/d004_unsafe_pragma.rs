//! D004 pragma fixture: a sanctioned GlobalAlloc-style shim.
#![deny(missing_docs)]
// det: unsafe-ok — GlobalAlloc shim crate; every unsafe line annotated
#![deny(unsafe_code)]

// det: unsafe-ok — forwards straight to the system allocator
unsafe fn covered_by_block() {}

unsafe fn bare() {} // line 9: no pragma, must fire

unsafe fn trailing() {} // det: unsafe-ok — trailing pragma form
