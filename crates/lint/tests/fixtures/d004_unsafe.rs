//! D004 fixture: an `unsafe` block (the fixture is classified as a
//! crate root without `#![forbid(unsafe_code)]`, so that fires too).

fn sneaky(p: *const u32) -> u32 {
    unsafe { *p }
}
