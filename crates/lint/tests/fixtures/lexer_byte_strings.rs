//! Lexer regression fixture: byte / C / raw-byte string literals must
//! lex as single string tokens — never identifier-plus-string — so the
//! rule-triggering names smuggled inside stay invisible to every
//! identifier-based rule.

fn literals() -> usize {
    let plain = b"Instant SystemTime";
    let escaped = b"quote \" and backslash \\";
    let raw = br#"HashMap iteration " with quotes"#;
    let raw_plain = br"thread_rng";
    let c_str = c"RandomState";
    let byte = b'\'';
    let hashes = br##"nested "# hash guards"##;
    plain.len()
        + escaped.len()
        + raw.len()
        + raw_plain.len()
        + c_str.to_bytes().len()
        + (byte as usize)
        + hashes.len()
}
