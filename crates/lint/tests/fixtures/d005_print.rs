//! D005 fixture: printing from library code in a simulation crate.

fn debug_dump(x: u32) {
    println!("x = {x}");
    eprintln!("also x = {x}");
}
