//! D009 fixture: float accumulation over unordered sources and across
//! the pool seam; slice-ordered reductions and pragma'd sites stay
//! silent.

use std::collections::HashMap;

fn unordered_sum(weights: &HashMap<u32, f64>) -> f64 {
    weights.values().sum()
}

fn unordered_fold(weights: &HashMap<u32, f64>) -> f64 {
    let mut total = 0.0;
    for (_k, w) in weights.iter() {
        total += w;
    }
    total
}

fn seam(pool: &ScopedPool, xs: &[f64]) -> f64 {
    let mut grand = 0.0;
    pool.run(|i| {
        grand += xs[i];
    });
    grand
}

fn ordered(xs: &[f64]) -> f64 {
    // Slice iteration order is canonical: no finding.
    xs.iter().sum()
}

fn local_per_item(pool: &ScopedPool, xs: &[f64]) {
    pool.run(|i| {
        // A let-bound accumulator stays inside one worker item: silent.
        let mut acc = 0.0;
        acc += xs[i];
        let _ = acc;
    });
}

fn excused(weights: &HashMap<u32, f64>) -> f64 {
    // det: ordered — values are re-read in sorted-key order upstream
    // det: reduce-ok — reduction runs over a sorted snapshot
    weights.values().sum()
}
