//! D006 fixture: allocations inside per-interval hot functions.

pub fn process_delivery(xs: &[u32]) -> Vec<u32> {
    let grown: Vec<u32> = Vec::new();
    let copied = xs.to_vec();
    let doubled = copied.clone();
    // det: hot-ok — warm-up only; the buffer is reused afterwards
    let warm: Vec<u32> = Vec::new();
    let trailing = xs.to_vec(); // det: hot-ok — cold error branch
    let from_closure = || grown.clone();
    let _ = from_closure();
    let mut out = warm;
    out.extend_from_slice(&doubled);
    out.extend_from_slice(&trailing);
    out
}

pub fn cold_setup(xs: &[u32]) -> Vec<u32> {
    let fine: Vec<u32> = Vec::new();
    let also_fine = xs.to_vec();
    let _ = (fine, also_fine.clone());
    also_fine
}
