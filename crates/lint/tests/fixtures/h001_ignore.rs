//! H001 fixture: one bare `#[ignore]` (violation) and one with a
//! reason string (allowed).

#[test]
#[ignore]
fn flaky() {}

#[test]
#[ignore = "needs a multi-gigabyte trace; run manually"]
fn heavy() {}
