//! D002 fixture: three hash-iteration sites; only the pragma-free two
//! may be reported.

use std::collections::{HashMap, HashSet};

fn annotated(routes: &HashMap<u32, u32>) -> Vec<u32> {
    // Violation: `.keys()` observes hasher-dependent order.
    routes.keys().copied().collect()
}

fn inferred() -> usize {
    let seen = HashSet::<u32>::new();
    let mut n = 0;
    // Violation: `for … in` over a HashSet.
    for _x in seen.iter() {
        n += 1;
    }
    n
}

fn excused(cache: &HashMap<u32, u32>) -> u32 {
    // det: ordered — commutative sum; order cannot affect the result
    cache.values().sum()
}
