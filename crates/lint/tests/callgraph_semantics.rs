//! Call-graph semantics: cross-crate resolution, trait-method dispatch,
//! cycles, deterministic ordering — and the differential test pinning
//! the acceptance criterion for replacing D006: every allocation the
//! old hand-maintained hot-function name list guarded is found by D007
//! reachability, with no list to maintain.

use rcast_lint::callgraph::CallGraph;
use rcast_lint::{check_sources, Finding};

/// PR 4's hand-maintained D006 hot-function list, frozen at the moment
/// of its deletion. D007 must cover every one of these by reachability
/// alone.
const OLD_D006_HOT_FUNCTIONS: &[&str] = &[
    "step_interval",
    "run_interval_into",
    "process_delivery",
    "dispatch",
    "send_unicast",
    "send_broadcast",
    "transmit",
    "advance",
    "apply_faults",
    "account_energy",
    "suppress_reply_storm",
    "receive_ref",
    "destinations_into",
    "try_reserve",
    "snapshot_into",
    "run_interval_observed",
    "record_event",
    "record_span",
    "end_interval",
    "run_cell_seed",
];

/// A fixture workspace mirroring the real hot-path topology across six
/// simulation crates, with one `.clone()` planted in every function the
/// old D006 list guarded.
fn mirror_workspace() -> Vec<(String, String)> {
    let files: &[(&str, &str)] = &[
        (
            "crates/sweep/src/run.rs",
            "pub fn run_cell_seed(sim: &mut Simulation) -> Report {
    let report = sim.step_interval();
    report.clone()
}
",
        ),
        (
            "crates/core/src/sim.rs",
            "impl Simulation {
    pub fn step_interval(&mut self) -> Report {
        self.mobility.snapshot_into();
        self.neighbors.advance();
        self.apply_faults();
        self.traffic.destinations_into();
        self.dispatch();
        self.mac.run_interval_into();
        self.mac.run_interval_observed(&mut self.ledger);
        self.process_delivery();
        self.account_energy();
        self.report.clone()
    }
    fn dispatch(&mut self) {
        self.send_unicast();
        self.send_broadcast();
        let _ = self.work.clone();
    }
    fn send_unicast(&mut self) {
        let _ = self.frame.clone();
    }
    fn send_broadcast(&mut self) {
        let _ = self.frame.clone();
    }
    fn process_delivery(&mut self) {
        self.router.receive_ref();
        let _ = self.delivered.clone();
    }
    fn apply_faults(&mut self) {
        let _ = self.plan.clone();
    }
    fn account_energy(&mut self) {
        let _ = self.meter.clone();
    }
}
",
        ),
        (
            "crates/core/src/routing.rs",
            "impl RouterNode {
    pub fn receive_ref(&mut self) {
        let _ = self.packet.clone();
    }
}
impl PacketArena {
    pub fn try_reserve(&mut self) {
        let _ = self.slab.clone();
    }
}
",
        ),
        (
            "crates/mobility/src/incremental.rs",
            "impl NeighborIndex {
    pub fn advance(&mut self) {
        let _ = self.tables.clone();
    }
    pub fn snapshot_into(&self) {
        let _ = self.grid.clone();
    }
}
",
        ),
        (
            "crates/mac/src/interval.rs",
            "impl MacLayer {
    pub fn run_interval_into(&mut self) {
        self.channel.transmit();
        self.suppress_reply_storm();
        self.arena.try_reserve();
        let _ = self.queues.clone();
    }
    pub fn run_interval_observed(&mut self, l: &mut Ledger) {
        l.record_event();
        l.record_span();
        l.end_interval();
        let _ = self.windows.clone();
    }
    fn suppress_reply_storm(&mut self) {
        let _ = self.batch.clone();
    }
}
impl Channel {
    pub fn transmit(&mut self) {
        let _ = self.loss.clone();
    }
}
",
        ),
        (
            "crates/obs/src/ledger.rs",
            "impl Ledger {
    pub fn record_event(&mut self) {
        let _ = self.events.clone();
    }
    pub fn record_span(&mut self) {
        let _ = self.spans.clone();
    }
    pub fn end_interval(&mut self) {
        let _ = self.series.clone();
    }
}
",
        ),
        (
            "crates/traffic/src/schedule.rs",
            "impl Schedule {
    pub fn destinations_into(&mut self) {
        let _ = self.flows.clone();
    }
}
",
        ),
    ];
    files
        .iter()
        .map(|(p, s)| (p.to_string(), s.to_string()))
        .collect()
}

/// The function a D007 finding's witness chain terminates in — i.e. the
/// function that contains the flagged allocation.
fn chain_terminal(f: &Finding) -> &str {
    let open = f.message.find("(`").expect("witness chain present") + 2;
    let close = f.message[open..].find("`)").expect("chain closes") + open;
    f.message[open..close]
        .split(" → ")
        .last()
        .expect("non-empty chain")
}

#[test]
fn d007_covers_every_function_the_old_d006_list_guarded() {
    let findings = check_sources(&mirror_workspace());
    let d007: Vec<&Finding> = findings.iter().filter(|f| f.rule == "D007").collect();
    // One planted `.clone()` per old hot function, all flagged.
    assert_eq!(d007.len(), OLD_D006_HOT_FUNCTIONS.len());
    for name in OLD_D006_HOT_FUNCTIONS {
        assert!(
            d007.iter().any(|f| chain_terminal(f) == *name),
            "old D006 hot function `{name}` lost its allocation guard"
        );
    }
}

#[test]
fn reachability_is_a_superset_of_the_old_list_in_the_mirror() {
    let graph = CallGraph::build(&mirror_workspace());
    let hot = graph.hot_function_names();
    for name in OLD_D006_HOT_FUNCTIONS {
        assert!(
            hot.iter().any(|h| h == name),
            "`{name}` not reachable from the entry points"
        );
    }
}

#[test]
fn the_real_workspace_closure_still_covers_every_old_hot_function() {
    let manifest = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let root = rcast_lint::find_workspace_root(&manifest).expect("workspace root");
    let files = rcast_lint::collect_rust_files(&root).expect("walk workspace");
    let sources: Vec<(String, String)> = files
        .into_iter()
        .map(|rel| {
            let text = std::fs::read_to_string(root.join(&rel)).expect("read source");
            (rel, text)
        })
        .collect();
    let graph = CallGraph::build(&sources);
    let hot = graph.hot_function_names();
    for name in OLD_D006_HOT_FUNCTIONS {
        assert!(
            hot.iter().any(|h| h == name),
            "real-tree regression: `{name}` fell out of the hot closure"
        );
    }
}

#[test]
fn cross_crate_method_calls_resolve() {
    let graph = CallGraph::build(&mirror_workspace());
    let reach = graph.reachable_from(rcast_lint::HOT_ENTRY_POINTS);
    let transmit = graph
        .nodes
        .iter()
        .position(|n| n.item.name == "transmit")
        .expect("transmit node");
    assert!(reach.reached.contains(&transmit));
    assert_eq!(
        graph.witness_chain(&reach, transmit),
        "run_interval_into → transmit"
    );
}

#[test]
fn trait_method_dispatch_over_approximates_to_every_impl() {
    let sources = vec![(
        "crates/mac/src/power.rs".to_string(),
        "pub trait Power {
    fn doze(&mut self) {
        let _ = self.default_state.clone();
    }
}
impl Power for Psm {
    fn doze(&mut self) {
        let _ = self.psm_state.clone();
    }
}
impl Power for Rcast {
    fn doze(&mut self) {
        let _ = self.rcast_state.clone();
    }
}
pub fn step_interval(node: &mut dyn Power) {
    node.doze();
}
"
        .to_string(),
    )];
    let findings = check_sources(&sources);
    // `.doze()` resolves to the trait default AND both impls: all three
    // bodies are audited (lines 3, 8, 13).
    let lines: Vec<u32> = findings
        .iter()
        .filter(|f| f.rule == "D007")
        .map(|f| f.line)
        .collect();
    assert_eq!(lines, vec![3, 8, 13]);
}

#[test]
fn cycles_terminate_and_stay_reachable() {
    let sources = vec![(
        "crates/dsr/src/node.rs".to_string(),
        "pub fn step_interval() {
    ping();
}
fn ping() {
    pong();
    let _ = [1u32].to_vec();
}
fn pong() {
    ping();
    let _ = [2u32].to_vec();
}
"
        .to_string(),
    )];
    let graph = CallGraph::build(&sources);
    let reach = graph.reachable_from(rcast_lint::HOT_ENTRY_POINTS);
    assert_eq!(reach.reached.len(), 3, "entry + both cycle members");
    let findings = check_sources(&sources);
    assert_eq!(
        findings
            .iter()
            .filter(|f| f.rule == "D007")
            .map(|f| f.line)
            .collect::<Vec<_>>(),
        vec![6, 10]
    );
}

#[test]
fn finding_order_is_deterministic_and_input_order_independent() {
    let forward = mirror_workspace();
    let mut backward = forward.clone();
    backward.reverse();
    let a = check_sources(&forward);
    let b = check_sources(&backward);
    assert_eq!(a, b, "findings must not depend on file discovery order");
    let keys: Vec<(&str, u32, u32, &str)> = a
        .iter()
        .map(|f| (f.path.as_str(), f.line, f.col, f.rule))
        .collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted, "(path, line, col, rule) report order");
}
