//! A minimal, hermetic property-testing harness.
//!
//! The workspace builds with **no registry dependencies**, so `proptest`
//! is out. This crate provides the slice of it the simulator's test
//! suites actually use, in ~200 lines:
//!
//! * [`Gen`] — a seeded generator handle built on
//!   [`rcast_engine::rng::StreamRng`] with a **size dial**: collection
//!   lengths scale with the current size, so early cases are small and
//!   later cases stress harder.
//! * [`Check`] — the case runner. It ramps the size from small to
//!   [`MAX_SIZE`] across cases, and on failure **shrinks by binary
//!   search over the size dial**: the same case seed is replayed at
//!   smaller sizes until the smallest still-failing size is found.
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`] —
//!   drop-in assertion macros returning `Err(String)` so a shrink can
//!   re-run the property without unwinding.
//!
//! Every failure report prints the `(seed, size)` pair that reproduces
//! it; replay with [`Gen::new`] in a unit test to debug.
//!
//! # Example
//!
//! ```
//! use rcast_testkit::{Check, Gen};
//!
//! Check::new("reverse_is_involutive").cases(64).run(|g: &mut Gen| {
//!     let v = g.vec(0, 50, |g| g.u64());
//!     let mut w = v.clone();
//!     w.reverse();
//!     w.reverse();
//!     rcast_testkit::prop_assert_eq!(v, w);
//!     Ok(())
//! });
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use rcast_engine::rng::{label_hash, StreamRng};

/// The largest size the runner ramps up to.
pub const MAX_SIZE: u32 = 100;

/// What a property returns: `Ok(())` or a failure message.
pub type PropResult = Result<(), String>;

/// A seeded draw handle with a size dial. See the [module docs](self).
#[derive(Debug, Clone)]
pub struct Gen {
    rng: StreamRng,
    size: u32,
}

impl Gen {
    /// A generator for `(seed, size)` — the pair every failure report
    /// prints, so any case can be replayed exactly.
    pub fn new(seed: u64, size: u32) -> Self {
        Gen {
            rng: StreamRng::from_seed(seed),
            size: size.min(MAX_SIZE),
        }
    }

    /// The current size in `0..=MAX_SIZE`.
    pub fn size(&self) -> u32 {
        self.size
    }

    /// A uniformly random `u64`.
    pub fn u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// A uniform draw in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn u64_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.rng.below(hi - lo)
    }

    /// A uniform draw in `[lo, hi)` as `u32`.
    pub fn u32_range(&mut self, lo: u32, hi: u32) -> u32 {
        self.u64_range(lo as u64, hi as u64) as u32
    }

    /// A uniform draw in `[lo, hi)` as `usize`.
    pub fn usize_range(&mut self, lo: usize, hi: usize) -> usize {
        self.u64_range(lo as u64, hi as u64) as usize
    }

    /// A uniform draw in `[lo, hi)`.
    pub fn f64_range(&mut self, lo: f64, hi: f64) -> f64 {
        self.rng.range_f64(lo, hi)
    }

    /// A fair coin flip.
    pub fn bool(&mut self) -> bool {
        self.rng.chance(0.5)
    }

    /// A size-scaled length in `[min, max)`: at small sizes the
    /// effective maximum shrinks toward `min`, which is what makes
    /// binary-search shrinking produce small counterexamples.
    ///
    /// # Panics
    ///
    /// Panics if `min >= max`.
    pub fn len(&mut self, min: usize, max: usize) -> usize {
        assert!(min < max, "empty length range {min}..{max}");
        let span = (max - 1 - min) as u64 * self.size as u64 / MAX_SIZE as u64;
        self.usize_range(min, min + span as usize + 1)
    }

    /// A vector with a size-scaled length in `[min, max)`, each element
    /// drawn by `f`.
    pub fn vec<T>(&mut self, min: usize, max: usize, mut f: impl FnMut(&mut Gen) -> T) -> Vec<T> {
        let n = self.len(min, max);
        (0..n).map(|_| f(self)).collect()
    }
}

/// A property-check runner. See the [module docs](self).
#[derive(Debug, Clone)]
pub struct Check {
    name: String,
    cases: u32,
    seed: u64,
}

impl Check {
    /// A runner for the named property. The base seed is derived from
    /// the name (so sibling properties explore independent cases) and
    /// can be overridden with `RCAST_TESTKIT_SEED`; case count with
    /// `RCAST_TESTKIT_CASES`.
    pub fn new(name: &str) -> Self {
        fn env<T: std::str::FromStr>(k: &str) -> Option<T> {
            std::env::var(k).ok().and_then(|v| v.parse().ok())
        }
        Check {
            name: name.to_string(),
            cases: env("RCAST_TESTKIT_CASES").unwrap_or(64),
            seed: env("RCAST_TESTKIT_SEED").unwrap_or_else(|| label_hash(name)),
        }
    }

    /// Overrides the number of cases to run.
    pub fn cases(mut self, n: u32) -> Self {
        self.cases = n.max(1);
        self
    }

    /// Runs the property across all cases, ramping the size from 1 to
    /// [`MAX_SIZE`]. On failure, shrinks and panics with a replayable
    /// `(seed, size)` report.
    ///
    /// # Panics
    ///
    /// Panics (failing the enclosing `#[test]`) when the property fails.
    pub fn run(self, prop: impl Fn(&mut Gen) -> PropResult) {
        let root = StreamRng::from_seed(self.seed);
        for case in 0..self.cases {
            // Ramp: early cases tiny, the last case at full size.
            let size = 1 + case * (MAX_SIZE - 1) / self.cases.max(2).saturating_sub(1);
            let case_seed = root.child_indexed("case", case as u64).next_u64();
            if let Err(err) = prop(&mut Gen::new(case_seed, size)) {
                let (small, small_err) = shrink(&prop, case_seed, size, err);
                panic!(
                    "property '{}' failed (case {case}/{}):\n  {}\n  replay: \
                     Gen::new({case_seed:#018x}, {small}) [first failed at size {size}]",
                    self.name, self.cases, small_err
                );
            }
        }
    }
}

/// Binary-searches the smallest size (for the same seed) at which the
/// property still fails, returning that size and its failure message.
fn shrink(
    prop: &impl Fn(&mut Gen) -> PropResult,
    seed: u64,
    size: u32,
    err: String,
) -> (u32, String) {
    let (mut lo, mut hi) = (0u32, size);
    let mut best = (size, err);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        match prop(&mut Gen::new(seed, mid)) {
            Err(e) => {
                best = (mid, e);
                hi = mid;
            }
            Ok(()) => lo = mid + 1,
        }
    }
    best
}

/// Asserts a condition inside a property, returning `Err` (not
/// panicking) so the shrinker can replay. Usage mirrors `assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {} ({})", stringify!($cond), format!($($fmt)+)
            ));
        }
    };
}

/// `assert_eq!` for properties; returns `Err` with both values.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if a != b {
            return Err(format!(
                "assertion failed: {} == {}\n    left: {a:?}\n   right: {b:?}",
                stringify!($a), stringify!($b)
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if a != b {
            return Err(format!(
                "assertion failed: {} == {} ({})\n    left: {a:?}\n   right: {b:?}",
                stringify!($a), stringify!($b), format!($($fmt)+)
            ));
        }
    }};
}

/// `assert_ne!` for properties; returns `Err` with the shared value.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if a == b {
            return Err(format!(
                "assertion failed: {} != {}\n    both: {a:?}",
                stringify!($a), stringify!($b)
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        let draw = |seed, size| {
            let mut g = Gen::new(seed, size);
            (g.u64(), g.f64_range(0.0, 1.0), g.vec(0, 20, |g| g.bool()))
        };
        assert_eq!(draw(7, 50), draw(7, 50));
        assert_ne!(draw(7, 50).0, draw(8, 50).0);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut g = Gen::new(3, MAX_SIZE);
        for _ in 0..1_000 {
            let x = g.u64_range(10, 20);
            assert!((10..20).contains(&x));
            let f = g.f64_range(-2.0, 2.0);
            assert!((-2.0..2.0).contains(&f));
            let l = g.len(1, 6);
            assert!((1..6).contains(&l));
        }
    }

    #[test]
    fn lengths_scale_with_size() {
        // At size 0, length collapses to the minimum.
        let mut tiny = Gen::new(1, 0);
        for _ in 0..100 {
            assert_eq!(tiny.len(2, 50), 2);
        }
        // At full size the whole range is reachable.
        let mut full = Gen::new(1, MAX_SIZE);
        let seen: std::collections::HashSet<usize> =
            (0..2_000).map(|_| full.len(2, 6)).collect();
        assert_eq!(seen.len(), 4, "{seen:?}");
    }

    #[test]
    fn passing_property_runs_all_cases() {
        let count = std::cell::Cell::new(0u32);
        Check::new("always_passes").cases(25).run(|g| {
            count.set(count.get() + 1);
            prop_assert!(g.vec(0, 10, Gen::u64).len() < 10);
            Ok(())
        });
        assert_eq!(count.get(), 25);
    }

    #[test]
    fn shrinking_finds_a_small_failing_size() {
        // Fails whenever the generated vector has >= 3 elements. The
        // shrinker must walk the size down until the vector is small.
        let prop = |g: &mut Gen| {
            let v = g.vec(0, 80, Gen::u64);
            prop_assert!(v.len() < 3, "len {}", v.len());
            Ok(())
        };
        // Find a failing case the way the runner would.
        let mut failing = None;
        for seed in 0..50u64 {
            if prop(&mut Gen::new(seed, MAX_SIZE)).is_err() {
                failing = Some(seed);
                break;
            }
        }
        let seed = failing.expect("a big vector must appear");
        let err = prop(&mut Gen::new(seed, MAX_SIZE)).unwrap_err();
        let (small, _) = shrink(&prop, seed, MAX_SIZE, err);
        assert!(small < MAX_SIZE, "shrank from {MAX_SIZE} to {small}");
        // The shrunken size still fails (the report is reproducible).
        assert!(prop(&mut Gen::new(seed, small)).is_err());
    }

    #[test]
    #[should_panic(expected = "replay: Gen::new(")]
    fn failing_property_panics_with_replay_line() {
        Check::new("always_fails").cases(5).run(|_| Err("nope".into()));
    }

    #[test]
    fn shrink_reaches_size_zero_when_everything_fails() {
        let prop = |_: &mut Gen| -> PropResult { Err("always".into()) };
        let (small, err) = shrink(&prop, 9, MAX_SIZE, "always".into());
        assert_eq!(small, 0);
        assert_eq!(err, "always");
    }

    #[test]
    fn shrink_keeps_the_original_size_when_nothing_smaller_fails() {
        let prop = |g: &mut Gen| -> PropResult {
            if g.size() == MAX_SIZE {
                Err("edge".into())
            } else {
                Ok(())
            }
        };
        let (small, err) = shrink(&prop, 9, MAX_SIZE, "seen at max".into());
        assert_eq!(small, MAX_SIZE);
        assert_eq!(err, "seen at max", "original error kept when nothing smaller fails");
    }

    #[test]
    fn shrink_from_size_zero_or_one_terminates() {
        // Degenerate starting sizes must not loop or underflow.
        let always = |_: &mut Gen| -> PropResult { Err("tiny".into()) };
        assert_eq!(shrink(&always, 1, 0, "tiny".into()).0, 0);
        assert_eq!(shrink(&always, 1, 1, "tiny".into()).0, 0);
        let only_nonzero = |g: &mut Gen| -> PropResult {
            if g.size() >= 1 {
                Err("one".into())
            } else {
                Ok(())
            }
        };
        assert_eq!(shrink(&only_nonzero, 1, 1, "one".into()).0, 1);
    }

    #[test]
    fn replay_line_round_trips_to_the_same_failure() {
        // The failure report prints `Gen::new(<seed>, <size>)`; parsing
        // that back must reproduce the exact failing case.
        let prop = |g: &mut Gen| -> PropResult {
            let v = g.vec(0, 40, Gen::u64);
            prop_assert!(v.len() < 2, "len {}", v.len());
            Ok(())
        };
        let payload = std::panic::catch_unwind(|| {
            Check::new("replay_round_trip").cases(30).run(prop);
        })
        .expect_err("property must fail within the ramp");
        let msg = payload
            .downcast_ref::<String>()
            .expect("panic carries a String");
        let start = msg.find("Gen::new(").expect("replay line present") + "Gen::new(".len();
        let args = &msg[start..start + msg[start..].find(')').expect("closing paren")];
        let mut parts = args.split(", ");
        let seed = u64::from_str_radix(
            parts.next().unwrap().trim_start_matches("0x"),
            16,
        )
        .expect("hex seed");
        let size: u32 = parts.next().unwrap().parse().expect("decimal size");
        let err = prop(&mut Gen::new(seed, size)).expect_err("replay must fail");
        assert!(err.contains("len "), "{err}");
    }

    #[test]
    fn assertion_macros_produce_errors() {
        fn p(ok: bool) -> PropResult {
            prop_assert!(ok, "flag was {ok}");
            prop_assert_eq!(1 + 1, 2);
            prop_assert_ne!(1, 2);
            Ok(())
        }
        assert!(p(true).is_ok());
        let msg = p(false).unwrap_err();
        assert!(msg.contains("flag was false"), "{msg}");
    }
}
