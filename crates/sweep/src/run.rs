//! Matrix execution: from a [`SweepSpec`] to per-cell statistics.
//!
//! [`run_spec`] expands the spec, fans every `(cell, seed)` run across
//! up to `threads` workers through [`ScopedPool::map_grid`] — workers
//! steal across *cells*, not just within one cell's seeds, so the grid
//! stays balanced even when cells cost wildly different amounts — and
//! reduces each cell's runs to mean/stddev/CI95 summaries per figure
//! metric. Every run is a pure function of `(config, seed)` and the
//! reduction happens in canonical cell × seed order on the caller's
//! thread, so the report (and any artifact rendered from it) is
//! **byte-identical** for any thread count.

use std::sync::Arc;

use rcast_core::{
    AggregateReport, SimConfig, SimReport, Simulation, FIGURE_METRICS,
};
use rcast_engine::pool::ScopedPool;
use rcast_metrics::{summarize95, SampleSummary};

use crate::spec::{SweepCell, SweepSpec};

/// One executed cell: its matrix point plus seed-averaged statistics.
#[derive(Debug, Clone)]
pub struct CellSummary {
    /// The matrix point.
    pub cell: SweepCell,
    /// Runs (seeds) aggregated.
    pub runs: usize,
    /// Per-metric summaries, indexed like
    /// [`FIGURE_METRICS`](rcast_core::FIGURE_METRICS).
    pub metrics: [SampleSummary; FIGURE_METRICS.len()],
    /// Seed-averaged per-node energy sorted ascending (Fig. 5's curve),
    /// when the spec set [`per_node`](SweepSpec::per_node).
    pub per_node_energy_j: Option<Vec<f64>>,
}

impl CellSummary {
    /// The summary for one metric by its
    /// [`FIGURE_METRICS`](rcast_core::FIGURE_METRICS) column name.
    ///
    /// # Panics
    ///
    /// Panics on an unknown metric name.
    pub fn metric(&self, name: &str) -> &SampleSummary {
        let i = FIGURE_METRICS
            .iter()
            .position(|&m| m == name)
            .unwrap_or_else(|| panic!("unknown figure metric '{name}'"));
        &self.metrics[i]
    }
}

/// The result of one campaign: the normalized spec it ran plus every
/// cell's statistics, in canonical matrix order.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// The spec as executed (normalized — axes sorted and deduplicated).
    pub spec: SweepSpec,
    /// Per-cell statistics, in [`SweepSpec::expand`] order.
    pub cells: Vec<CellSummary>,
    /// Total simulation runs executed.
    pub total_runs: usize,
    /// Total beacon intervals simulated, summed over runs — the
    /// throughput denominator the bench suite uses.
    pub total_intervals: u64,
    /// Total simulated seconds, summed over runs.
    pub total_sim_seconds: f64,
}

impl SweepReport {
    /// The cells of one `(scheme)` slice, in matrix order — convenience
    /// for shape assertions ("Rcast's energy curve sits below 802.11's
    /// at every rate point").
    pub fn scheme_cells(
        &self,
        scheme: rcast_core::Scheme,
    ) -> Vec<&CellSummary> {
        self.cells
            .iter()
            .filter(|c| c.cell.scheme == scheme)
            .collect()
    }

    /// The cell at an exact matrix point, if the grid has it.
    pub fn find_cell(
        &self,
        scheme: rcast_core::Scheme,
        rate_pps: f64,
        pause_s: f64,
    ) -> Option<&CellSummary> {
        self.cells.iter().find(|c| {
            c.cell.scheme == scheme
                && c.cell.rate_pps == rate_pps
                && c.cell.pause_s == pause_s
        })
    }
}

/// One simulation run of a sweep cell. Hot: the whole campaign budget is
/// spent inside this call.
fn run_cell_seed(cfg: &Arc<SimConfig>, seed: u64) -> SimReport {
    Simulation::with_seed(Arc::clone(cfg), seed)
        .expect("sweep cell configs are validated by normalization")
        .run()
}

/// Executes a campaign. See the [module docs](self).
///
/// # Errors
///
/// Returns the spec's normalization/validation error, if any, before
/// any simulation starts.
pub fn run_spec(spec: &SweepSpec, threads: usize) -> Result<SweepReport, String> {
    let spec = spec.normalized()?;
    let cells = spec.expand();
    // Per-cell shared config and per-run master seeds, precomputed so
    // the worker closure is pure lookup + simulate.
    let jobs: Vec<(Arc<SimConfig>, Vec<u64>)> = cells
        .iter()
        .map(|c| {
            let seeds = spec
                .seeds
                .iter()
                .map(|&s| c.run_seed(s, spec.pairing))
                .collect();
            (Arc::new(c.config(&spec)), seeds)
        })
        .collect();

    let reports: Vec<Vec<SimReport>> = ScopedPool::new(threads).map_grid(
        &jobs,
        spec.seeds.len(),
        |_, (cfg, seeds), i| run_cell_seed(cfg, seeds[i]),
    );

    let mut out = Vec::with_capacity(cells.len());
    let mut total_intervals = 0u64;
    let mut total_sim_seconds = 0.0;
    for (cell, ((cfg, _), runs)) in
        cells.into_iter().zip(jobs.iter().zip(&reports))
    {
        total_intervals += cfg.beacon_intervals() * runs.len() as u64;
        total_sim_seconds += cfg.duration.as_secs_f64() * runs.len() as f64;
        let packet_bytes = cfg.traffic.packet_bytes;
        let mut samples: [Vec<f64>; FIGURE_METRICS.len()] =
            std::array::from_fn(|_| Vec::with_capacity(runs.len()));
        for r in runs {
            for (col, value) in
                samples.iter_mut().zip(r.figure_metrics(packet_bytes))
            {
                col.push(value);
            }
        }
        let metrics = std::array::from_fn(|j| summarize95(&samples[j]));
        let per_node_energy_j = spec.per_node.then(|| {
            AggregateReport::from_runs(runs, packet_bytes).sorted_per_node_energy()
        });
        out.push(CellSummary {
            cell,
            runs: runs.len(),
            metrics,
            per_node_energy_j,
        });
    }
    let total_runs = out.iter().map(|c| c.runs).sum();
    Ok(SweepReport {
        spec,
        cells: out,
        total_runs,
        total_intervals,
        total_sim_seconds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Pairing;
    use rcast_core::Scheme;
    use rcast_engine::SimDuration;

    /// A seconds-scale grid: 2 schemes × 2 rates × 1 pause on a small
    /// static field, 2 seeds.
    fn tiny_spec() -> SweepSpec {
        let mut spec = SweepSpec::paper_default("tiny");
        spec.base.duration = SimDuration::from_secs(10);
        spec.base.area = rcast_core::Area::new(600.0, 300.0);
        spec.base.traffic.flows = 3;
        spec.schemes = vec![Scheme::Dot11, Scheme::Rcast];
        spec.rates = vec![0.4, 2.0];
        spec.pauses = vec![10.0];
        spec.nodes = vec![12];
        spec.seeds = vec![1, 2];
        spec
    }

    #[test]
    fn runs_the_whole_matrix_and_summarizes() {
        let report = run_spec(&tiny_spec(), 2).expect("runs");
        assert_eq!(report.cells.len(), 4);
        assert_eq!(report.total_runs, 8);
        assert!(report.total_intervals > 0);
        assert!((report.total_sim_seconds - 80.0).abs() < 1e-9);
        for cell in &report.cells {
            assert_eq!(cell.runs, 2);
            assert!(cell.per_node_energy_j.is_none());
            let energy = cell.metric("energy_j");
            assert_eq!(energy.n, 2);
            assert!(energy.mean > 0.0, "{}", cell.cell.key());
            assert!(energy.half_width95.is_finite());
            assert!(cell.metric("pdr").mean >= 0.0);
        }
        assert!(report.find_cell(Scheme::Rcast, 0.4, 10.0).is_some());
        assert!(report.find_cell(Scheme::Odpm, 0.4, 10.0).is_none());
        assert_eq!(report.scheme_cells(Scheme::Rcast).len(), 2);
    }

    #[test]
    fn thread_width_never_changes_the_numbers() {
        let spec = tiny_spec();
        let serial = run_spec(&spec, 1).expect("serial");
        for threads in [2, 8] {
            let parallel = run_spec(&spec, threads).expect("parallel");
            // Debug rendering covers every f64 exactly (shortest
            // round-trip), so this is bit-for-bit equality.
            assert_eq!(
                format!("{:?}", parallel.cells),
                format!("{:?}", serial.cells),
                "{threads} threads"
            );
        }
    }

    #[test]
    fn per_node_curves_are_sorted_when_requested() {
        let mut spec = tiny_spec();
        spec.per_node = true;
        spec.schemes = vec![Scheme::Rcast];
        spec.rates = vec![0.4];
        let report = run_spec(&spec, 2).expect("runs");
        let curve = report.cells[0]
            .per_node_energy_j
            .as_ref()
            .expect("per-node curve requested");
        assert_eq!(curve.len(), 12);
        assert!(curve.windows(2).all(|w| w[0] <= w[1]), "sorted ascending");
    }

    #[test]
    fn independent_pairing_changes_runs_but_not_determinism() {
        let mut spec = tiny_spec();
        spec.schemes = vec![Scheme::Rcast];
        spec.rates = vec![0.4];
        let common = run_spec(&spec, 2).expect("common");
        spec.pairing = Pairing::Independent;
        let a = run_spec(&spec, 1).expect("independent serial");
        let b = run_spec(&spec, 4).expect("independent parallel");
        assert_eq!(format!("{:?}", a.cells), format!("{:?}", b.cells));
        assert_ne!(
            format!("{:?}", a.cells),
            format!("{:?}", common.cells),
            "pairing modes draw different seed streams"
        );
    }

    #[test]
    fn invalid_specs_fail_before_any_run() {
        let mut spec = tiny_spec();
        spec.seeds.clear();
        assert!(run_spec(&spec, 1).is_err());
    }

    #[test]
    #[should_panic(expected = "unknown figure metric")]
    fn unknown_metric_names_panic() {
        let report = run_spec(
            &{
                let mut s = tiny_spec();
                s.schemes = vec![Scheme::Rcast];
                s.rates = vec![0.4];
                s.seeds = vec![1];
                s
            },
            1,
        )
        .expect("runs");
        let _ = report.cells[0].metric("goodput");
    }
}
