//! Stable `rcast-sweep/v1` artifacts: JSON and CSV renderings of a
//! [`SweepReport`].
//!
//! Hand-rolled and canonical, like the `rcast-bench/v1` document: fixed
//! key order, shortest-round-trip number rendering, no timestamps, no
//! host or thread-count fields. Two runs of the same spec — at any
//! `--threads` width — render **byte-identical** files, so artifacts can
//! be checked in and diffed, and CI can `cmp` them against goldens.

use rcast_core::{FaultsConfig, RoutingKind, FIGURE_METRICS};
use rcast_metrics::CsvTable;

use crate::run::SweepReport;

/// A JSON number: shortest round-trip `Display` for finite values,
/// `null` otherwise (JSON has no NaN/infinity).
fn num(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

/// A JSON array of numbers.
fn num_array(xs: &[f64]) -> String {
    let mut s = String::from("[");
    for (i, &x) in xs.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str(&num(x));
    }
    s.push(']');
    s
}

/// A JSON array of strings (no escaping needed: every value here is a
/// scheme label or fault spec, both escape-free by construction).
fn str_array<S: AsRef<str>>(xs: &[S]) -> String {
    let mut s = String::from("[");
    for (i, x) in xs.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push('"');
        s.push_str(x.as_ref());
        s.push('"');
    }
    s.push(']');
    s
}

/// The axis label of one fault plan: `none` for the empty plan, its
/// `--faults` spec string otherwise.
///
/// # Panics
///
/// Panics on a scripted plan — normalization rejects those before a
/// report can exist.
fn fault_label(f: &FaultsConfig) -> String {
    if f.is_none() {
        "none".to_string()
    } else {
        f.spec_string()
            .expect("normalization rejects scripted fault plans")
    }
}

fn routing_label(r: RoutingKind) -> &'static str {
    match r {
        RoutingKind::Dsr => "dsr",
        RoutingKind::Aodv => "aodv",
    }
}

/// Renders the `rcast-sweep/v1` JSON document. See the
/// [module docs](self) for the stability contract.
pub fn to_json(report: &SweepReport) -> String {
    let spec = &report.spec;
    let mut s = String::from("{\n  \"schema\": \"rcast-sweep/v1\",\n");
    s.push_str(&format!("  \"name\": \"{}\",\n", spec.name));
    s.push_str(&format!("  \"pairing\": \"{}\",\n", spec.pairing.label()));
    s.push_str(&format!(
        "  \"seeds\": {},\n",
        num_array(&spec.seeds.iter().map(|&x| x as f64).collect::<Vec<_>>())
    ));
    s.push_str("  \"axes\": {\n");
    s.push_str(&format!(
        "    \"schemes\": {},\n",
        str_array(&spec.schemes.iter().map(|x| x.label()).collect::<Vec<_>>())
    ));
    s.push_str(&format!("    \"rates_pps\": {},\n", num_array(&spec.rates)));
    s.push_str(&format!("    \"pauses_s\": {},\n", num_array(&spec.pauses)));
    s.push_str(&format!(
        "    \"nodes\": {},\n",
        num_array(&spec.nodes.iter().map(|&x| f64::from(x)).collect::<Vec<_>>())
    ));
    s.push_str(&format!(
        "    \"fault_plans\": {}\n",
        str_array(&spec.faults.iter().map(fault_label).collect::<Vec<_>>())
    ));
    s.push_str("  },\n");
    s.push_str(&format!(
        "  \"base\": {{\"routing\": \"{}\", \"duration_s\": {}, \"flows\": {}, \
\"packet_bytes\": {}, \"area_m\": [{}, {}]}},\n",
        routing_label(spec.base.routing),
        num(spec.base.duration.as_secs_f64()),
        spec.base.traffic.flows,
        spec.base.traffic.packet_bytes,
        num(spec.base.area.width()),
        num(spec.base.area.height()),
    ));
    s.push_str(&format!("  \"total_runs\": {},\n", report.total_runs));
    s.push_str("  \"cells\": [\n");
    for (i, cell) in report.cells.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"scheme\": \"{}\", \"rate_pps\": {}, \"pause_s\": {}, \
\"nodes\": {}, \"fault_plan\": \"{}\", \"runs\": {},\n",
            cell.cell.scheme.label(),
            num(cell.cell.rate_pps),
            num(cell.cell.pause_s),
            cell.cell.nodes,
            fault_label(&spec.faults[cell.cell.fault_index]),
            cell.runs,
        ));
        s.push_str("     \"metrics\": {");
        for (j, (name, m)) in
            FIGURE_METRICS.iter().zip(&cell.metrics).enumerate()
        {
            if j > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!(
                "\"{name}\": {{\"mean\": {}, \"stddev\": {}, \"ci95\": {}}}",
                num(m.mean),
                num(m.stddev),
                num(m.half_width95),
            ));
        }
        s.push('}');
        if let Some(curve) = &cell.per_node_energy_j {
            s.push_str(&format!(
                ",\n     \"per_node_energy_j\": {}",
                num_array(curve)
            ));
        }
        s.push_str(&format!(
            "}}{}\n",
            if i + 1 < report.cells.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Renders the CSV table: one row per cell, scalar summaries only
/// (per-node curves live in the JSON document). Columns are the cell
/// coordinates followed by `mean`/`stddev`/`ci95` triples per
/// [`FIGURE_METRICS`](rcast_core::FIGURE_METRICS) column.
pub fn to_csv(report: &SweepReport) -> String {
    let mut header: Vec<String> = [
        "name", "scheme", "rate_pps", "pause_s", "nodes", "fault_plan", "runs",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    for name in FIGURE_METRICS {
        header.push(format!("{name}_mean"));
        header.push(format!("{name}_stddev"));
        header.push(format!("{name}_ci95"));
    }
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = CsvTable::new(&header_refs);
    for cell in &report.cells {
        let mut row = vec![
            report.spec.name.clone(),
            cell.cell.scheme.label().to_string(),
            CsvTable::num(cell.cell.rate_pps),
            CsvTable::num(cell.cell.pause_s),
            cell.cell.nodes.to_string(),
            fault_label(&report.spec.faults[cell.cell.fault_index]),
            cell.runs.to_string(),
        ];
        for m in &cell.metrics {
            row.push(CsvTable::num(m.mean));
            row.push(CsvTable::num(m.stddev));
            row.push(CsvTable::num(m.half_width95));
        }
        table.row(row);
    }
    table.render()
}

/// A human-readable summary table for the terminal: one line per cell
/// with the headline metrics (mean ± CI95 energy, PDR, delay).
pub fn human_summary(report: &SweepReport) -> String {
    let mut s = format!(
        "sweep {}: {} cells x {} seeds = {} runs ({} simulated seconds)\n",
        report.spec.name,
        report.cells.len(),
        report.spec.seeds.len(),
        report.total_runs,
        report.total_sim_seconds,
    );
    s.push_str(&format!(
        "{:<32} {:>16} {:>12} {:>12}\n",
        "cell", "energy (J)", "PDR", "delay (ms)"
    ));
    for cell in &report.cells {
        let e = cell.metric("energy_j");
        let p = cell.metric("pdr");
        let d = cell.metric("delay_s");
        s.push_str(&format!(
            "{:<32} {:>9.0} ±{:>5.0} {:>11.1}% {:>12.0}\n",
            cell.cell.key(),
            e.mean,
            e.half_width95,
            p.mean * 100.0,
            d.mean * 1e3,
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::run_spec;
    use crate::spec::SweepSpec;
    use rcast_core::Scheme;
    use rcast_engine::SimDuration;

    fn tiny_report() -> SweepReport {
        let mut spec = SweepSpec::paper_default("artifact-test");
        spec.base.duration = SimDuration::from_secs(8);
        spec.base.area = rcast_core::Area::new(600.0, 300.0);
        spec.base.traffic.flows = 3;
        spec.schemes = vec![Scheme::Dot11, Scheme::Rcast];
        spec.rates = vec![0.4];
        spec.pauses = vec![8.0];
        spec.nodes = vec![10];
        spec.seeds = vec![1, 2];
        spec.per_node = true;
        run_spec(&spec, 2).expect("tiny sweep runs")
    }

    #[test]
    fn json_has_schema_axes_and_every_cell() {
        let report = tiny_report();
        let json = to_json(&report);
        assert!(json.starts_with("{\n  \"schema\": \"rcast-sweep/v1\""));
        assert!(json.contains("\"name\": \"artifact-test\""));
        assert!(json.contains("\"schemes\": [\"802.11\", \"Rcast\"]"));
        assert!(json.contains("\"fault_plans\": [\"none\"]"));
        assert!(json.contains("\"per_node_energy_j\": ["));
        assert!(json.contains("\"total_runs\": 4"));
        for name in FIGURE_METRICS {
            assert!(json.contains(&format!("\"{name}\": {{\"mean\": ")), "{name}");
        }
        assert_eq!(json.matches("\"scheme\": ").count(), 2, "one per cell");
        assert!(!json.contains("threads"), "no execution-environment fields");
        assert!(json.ends_with("}\n"));
    }

    #[test]
    fn csv_is_rectangular_with_one_row_per_cell() {
        let report = tiny_report();
        let csv = to_csv(&report);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 1 + report.cells.len());
        let cols = lines[0].split(',').count();
        assert_eq!(cols, 7 + 3 * FIGURE_METRICS.len());
        for line in &lines[1..] {
            assert_eq!(line.split(',').count(), cols, "{line}");
        }
        assert!(lines[0].starts_with("name,scheme,rate_pps"));
        assert!(lines[1].starts_with("artifact-test,802.11,0.4,8,10,none,2,"));
    }

    #[test]
    fn artifacts_are_stable_across_renders_and_widths() {
        let spec = tiny_report().spec;
        let a = run_spec(&spec, 1).expect("serial");
        let b = run_spec(&spec, 8).expect("parallel");
        assert_eq!(to_json(&a), to_json(&b));
        assert_eq!(to_csv(&a), to_csv(&b));
        assert_eq!(to_json(&a), to_json(&a), "rendering is pure");
    }

    #[test]
    fn human_summary_lists_every_cell() {
        let report = tiny_report();
        let text = human_summary(&report);
        assert!(text.contains("artifact-test"));
        for cell in &report.cells {
            assert!(text.contains(&cell.cell.key()), "{}", cell.cell.key());
        }
    }
}
