//! Declarative campaign specs and their expansion into a run matrix.
//!
//! A [`SweepSpec`] names the axes of one figure-style experiment grid —
//! schemes × packet rates × pause times × node counts × fault plans —
//! plus the seed list averaged per cell and a base configuration for
//! everything the grid does not sweep. [`SweepSpec::expand`] turns it
//! into the canonical, duplicate-free list of [`SweepCell`]s the
//! runner executes.
//!
//! Specs are **normalized** before use: every sortable axis is sorted
//! and deduplicated, so the expansion (and therefore the artifact) is
//! independent of the order axis values were written in — permuting a
//! spec file's `rates 2.0,0.2` line cannot reorder the artifact.

use rcast_core::{parse_scenario, Area, FaultsConfig, Scheme, SimConfig};
use rcast_engine::rng::StreamRng;
use rcast_engine::SimDuration;

/// How per-cell runs draw their master seeds from the spec's seed list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pairing {
    /// Every cell replays the same seed list verbatim — the ns-2
    /// convention of re-running each scheme over the *same* scenario
    /// files, which pairs the curves and lowers the variance of
    /// cross-scheme differences. The default, and what the paper does.
    Common,
    /// Each cell derives its own seed stream by splitting the master
    /// seed with the cell's [`key`](SweepCell::key), so no two cells in
    /// the matrix ever share an RNG stream (collision-freedom is pinned
    /// by a property test).
    Independent,
}

impl Pairing {
    /// The spec-file token (`common` / `independent`).
    pub fn label(self) -> &'static str {
        match self {
            Pairing::Common => "common",
            Pairing::Independent => "independent",
        }
    }
}

/// A declarative sweep campaign. See the [module docs](self).
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// Campaign name; artifact files are `<name>.json` / `<name>.csv`.
    pub name: String,
    /// Base configuration for everything no axis sweeps (duration,
    /// flows, area, routing, radio, MAC…). Its `scheme`, traffic rate,
    /// pause time and `seed` fields are overwritten per cell/run.
    pub base: SimConfig,
    /// Scheme axis.
    pub schemes: Vec<Scheme>,
    /// Packet-rate axis (packets/second per flow).
    pub rates: Vec<f64>,
    /// Pause-time axis (seconds).
    pub pauses: Vec<f64>,
    /// Node-count axis.
    pub nodes: Vec<u32>,
    /// Fault-plan axis; `FaultsConfig::default()` is the healthy cell.
    pub faults: Vec<FaultsConfig>,
    /// Seeds averaged per cell.
    pub seeds: Vec<u64>,
    /// Seed pairing across cells.
    pub pairing: Pairing,
    /// When `true`, each cell's artifact row carries the seed-averaged
    /// sorted per-node energy curve (Fig. 5's raw material).
    pub per_node: bool,
}

/// One point of the expanded run matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepCell {
    /// The scheme under test.
    pub scheme: Scheme,
    /// Packets/second per flow.
    pub rate_pps: f64,
    /// Random-waypoint pause time, seconds.
    pub pause_s: f64,
    /// Node count.
    pub nodes: u32,
    /// Index into [`SweepSpec::faults`].
    pub fault_index: usize,
}

impl SweepCell {
    /// A stable identity string for the cell: distinct cells in one
    /// matrix always have distinct keys (floats render with Rust's
    /// shortest-round-trip `Display`, so distinct values never print
    /// alike).
    pub fn key(&self) -> String {
        format!(
            "{}/r{}/p{}/n{}/f{}",
            self.scheme.label(),
            self.rate_pps,
            self.pause_s,
            self.nodes,
            self.fault_index
        )
    }

    /// The master seed one run of this cell uses for `base_seed` from
    /// the spec's seed list. [`Pairing::Common`] passes the seed
    /// through; [`Pairing::Independent`] splits a fresh stream off it
    /// with the cell [`key`](Self::key), so streams never collide
    /// across the matrix.
    pub fn run_seed(&self, base_seed: u64, pairing: Pairing) -> u64 {
        match pairing {
            Pairing::Common => base_seed,
            Pairing::Independent => StreamRng::from_seed(base_seed)
                .child("sweep-cell")
                .child(&self.key())
                .next_u64(),
        }
    }

    /// The cell's full configuration: the spec's base with this cell's
    /// axis values written in (seed still to be set per run).
    pub fn config(&self, spec: &SweepSpec) -> SimConfig {
        let mut cfg = spec.base.clone();
        cfg.scheme = self.scheme;
        cfg.traffic.rate_pps = self.rate_pps;
        cfg.waypoint.pause_secs = self.pause_s;
        cfg.nodes = self.nodes;
        cfg.faults = spec.faults[self.fault_index].clone();
        cfg
    }
}

impl SweepSpec {
    /// The paper's default campaign scaffold: `Scheme::PAPER_FIGURES`
    /// at the nominal rate/pause on the Section 4.1 testbed, five
    /// seeds, no faults. Presets and spec files start from this.
    pub fn paper_default(name: &str) -> SweepSpec {
        SweepSpec {
            name: name.to_string(),
            base: SimConfig::paper(Scheme::Rcast, 0, 0.4, 600.0),
            schemes: Scheme::PAPER_FIGURES.to_vec(),
            rates: vec![0.4],
            pauses: vec![600.0],
            nodes: vec![100],
            faults: vec![FaultsConfig::default()],
            seeds: (1..=5).collect(),
            pairing: Pairing::Common,
            per_node: false,
        }
    }

    /// Normalizes and validates the spec: sortable axes are sorted and
    /// deduplicated (schemes by paper order, rates/pauses/nodes/seeds
    /// ascending), the fault axis is deduplicated preserving order, and
    /// every resulting cell's configuration must validate.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint: an empty axis or seed
    /// list, a non-finite axis value, a scripted fault plan (those have
    /// no spec syntax and cannot be archived in an artifact), or a
    /// per-cell configuration error.
    pub fn normalized(&self) -> Result<SweepSpec, String> {
        let mut spec = self.clone();
        if spec.name.is_empty() {
            return Err("sweep: name must be non-empty".into());
        }
        for (axis, len) in [
            ("schemes", spec.schemes.len()),
            ("rates", spec.rates.len()),
            ("pauses", spec.pauses.len()),
            ("nodes", spec.nodes.len()),
            ("fault plans", spec.faults.len()),
            ("seeds", spec.seeds.len()),
        ] {
            if len == 0 {
                return Err(format!("sweep: {axis} axis must be non-empty"));
            }
        }
        for &r in &spec.rates {
            if !(r.is_finite() && r > 0.0) {
                return Err(format!("sweep: invalid rate {r}"));
            }
        }
        for &p in &spec.pauses {
            if !(p.is_finite() && p >= 0.0) {
                return Err(format!("sweep: invalid pause {p}"));
            }
        }
        for f in &spec.faults {
            if !f.script.is_empty() {
                return Err("sweep: scripted fault plans cannot be swept \
                            (no spec syntax to archive them)"
                    .into());
            }
        }
        spec.schemes.sort_by_key(|s| Scheme::ALL.iter().position(|a| a == s));
        spec.schemes.dedup();
        spec.rates.sort_by(|a, b| a.partial_cmp(b).expect("finite rates"));
        spec.rates.dedup();
        spec.pauses
            .sort_by(|a, b| a.partial_cmp(b).expect("finite pauses"));
        spec.pauses.dedup();
        spec.nodes.sort_unstable();
        spec.nodes.dedup();
        spec.seeds.sort_unstable();
        spec.seeds.dedup();
        let mut deduped: Vec<FaultsConfig> = Vec::new();
        for f in spec.faults {
            if !deduped.contains(&f) {
                deduped.push(f);
            }
        }
        spec.faults = deduped;
        for cell in spec.expand() {
            cell.config(&spec)
                .validate()
                .map_err(|e| format!("sweep: cell {}: {e}", cell.key()))?;
        }
        Ok(spec)
    }

    /// Expands the (normalized) spec into its run matrix, scheme-major:
    /// scheme, then rate, pause, node count, fault plan. The expansion
    /// of a normalized spec is canonical — axis input order cannot
    /// change it — and duplicate-free.
    pub fn expand(&self) -> Vec<SweepCell> {
        let mut cells = Vec::with_capacity(
            self.schemes.len() * self.rates.len() * self.pauses.len()
                * self.nodes.len()
                * self.faults.len(),
        );
        for &scheme in &self.schemes {
            for &rate_pps in &self.rates {
                for &pause_s in &self.pauses {
                    for &nodes in &self.nodes {
                        for fault_index in 0..self.faults.len() {
                            cells.push(SweepCell {
                                scheme,
                                rate_pps,
                                pause_s,
                                nodes,
                                fault_index,
                            });
                        }
                    }
                }
            }
        }
        cells
    }

    /// Total runs the matrix executes (`cells × seeds`).
    pub fn total_runs(&self) -> usize {
        self.expand().len() * self.seeds.len()
    }

    /// The CI-smoke version of this campaign: 60 simulated seconds on a
    /// 20-node 800 × 300 m field with 4 flows, the first two values of
    /// the rate and seed axes, and pause times scaled by the duration
    /// ratio (ns-2 setdest nodes pause *before* their first trip, so an
    /// unscaled 600 s pause would leave a 60 s run entirely static).
    /// `-smoke` is appended to the name so smoke artifacts can never be
    /// mistaken for full ones.
    pub fn smoke(&self) -> SweepSpec {
        let mut spec = self.clone();
        let full_duration = spec.base.duration.as_secs_f64();
        spec.name.push_str("-smoke");
        spec.base.duration = SimDuration::from_secs(60);
        spec.base.area = Area::new(800.0, 300.0);
        spec.base.traffic.flows = 4;
        spec.nodes = vec![20];
        spec.rates.truncate(2);
        spec.seeds.truncate(2);
        for p in &mut spec.pauses {
            // Multiply before dividing: `1125 × 60 / 1125` is exactly
            // 60, while `1125 × (60/1125)` picks up an ulp of noise
            // that would leak into cell keys and artifact bytes.
            *p = *p * 60.0 / full_duration;
        }
        spec
    }
}

/// The spec-file keys that sweep an axis — and therefore ban their
/// singular scenario-file counterparts from the base section.
const AXIS_KEYS: [(&str, &str); 6] = [
    ("scheme", "schemes"),
    ("rate", "rates"),
    ("pause", "pauses"),
    ("nodes", "nodes"),
    ("seed", "seeds"),
    ("faults", "fault-plan"),
];

/// Parses a sweep spec file.
///
/// The format extends the scenario format (`rcast export-scenario`)
/// with axis keys; everything else is a base-configuration line handed
/// to [`rcast_core::parse_scenario`] verbatim:
///
/// ```text
/// # rcast sweep spec
/// name my-campaign
/// schemes 802.11,odpm,rcast
/// rates 0.2,0.4,1.0,2.0
/// pauses 600,1125
/// nodes 100
/// seeds 1..10
/// fault-plan none
/// fault-plan crash=0.3,downtime=20
/// pairing common
/// per-node false
/// duration 1125        # base line: handed to the scenario parser
/// flows 20
/// ```
///
/// Axis keys replace their scenario singulars: `scheme`, `rate`,
/// `pause`, `seed` and `faults` lines are rejected with a pointer to
/// the plural form, and `obs`/`trace` are rejected outright (a sweep
/// artifact carries aggregates, not ledgers). `seeds` accepts comma
/// lists and inclusive `A..B` ranges. Each `fault-plan` line appends
/// one axis value (`none` for the healthy plan).
///
/// # Errors
///
/// Returns a message naming the offending line for unknown or banned
/// keys, malformed values, or a spec that fails [`SweepSpec::normalized`].
pub fn parse_spec(text: &str) -> Result<SweepSpec, String> {
    let mut spec = SweepSpec::paper_default("sweep");
    let mut base_lines = String::new();
    let mut faults: Vec<FaultsConfig> = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            base_lines.push('\n');
            continue;
        }
        let at = |msg: String| format!("line {}: {msg}", lineno + 1);
        let (key, value) = match line.split_once(char::is_whitespace) {
            Some((k, v)) => (k, v.trim()),
            None => (line, ""),
        };
        let list = |what: &str| -> Result<Vec<&str>, String> {
            if value.is_empty() {
                return Err(at(format!("'{what}' expects a comma list")));
            }
            Ok(value.split(',').map(str::trim).collect())
        };
        match key {
            "name" => {
                if value.is_empty() {
                    return Err(at("'name' expects a value".into()));
                }
                spec.name = value.to_string();
            }
            "schemes" => {
                spec.schemes = list("schemes")?
                    .into_iter()
                    .map(parse_scheme_name)
                    .collect::<Result<_, _>>()
                    .map_err(at)?;
            }
            "rates" => {
                spec.rates = list("rates")?
                    .into_iter()
                    .map(|v| {
                        v.parse::<f64>()
                            .map_err(|_| at(format!("bad rate '{v}'")))
                    })
                    .collect::<Result<_, _>>()?;
            }
            "pauses" => {
                spec.pauses = list("pauses")?
                    .into_iter()
                    .map(|v| {
                        v.parse::<f64>()
                            .map_err(|_| at(format!("bad pause '{v}'")))
                    })
                    .collect::<Result<_, _>>()?;
            }
            "nodes" => {
                spec.nodes = list("nodes")?
                    .into_iter()
                    .map(|v| {
                        v.parse::<u32>()
                            .map_err(|_| at(format!("bad node count '{v}'")))
                    })
                    .collect::<Result<_, _>>()?;
            }
            "seeds" => {
                let mut seeds = Vec::new();
                for part in list("seeds")? {
                    if let Some((lo, hi)) = part.split_once("..") {
                        let lo: u64 = lo
                            .parse()
                            .map_err(|_| at(format!("bad seed range '{part}'")))?;
                        let hi: u64 = hi
                            .parse()
                            .map_err(|_| at(format!("bad seed range '{part}'")))?;
                        if lo > hi {
                            return Err(at(format!(
                                "seed range '{part}' is empty (A..B is inclusive)"
                            )));
                        }
                        seeds.extend(lo..=hi);
                    } else {
                        seeds.push(
                            part.parse()
                                .map_err(|_| at(format!("bad seed '{part}'")))?,
                        );
                    }
                }
                spec.seeds = seeds;
            }
            "fault-plan" => {
                if value == "none" {
                    faults.push(FaultsConfig::default());
                } else {
                    faults.push(
                        FaultsConfig::parse_spec(value).map_err(at)?,
                    );
                }
            }
            "pairing" => {
                spec.pairing = match value {
                    "common" => Pairing::Common,
                    "independent" => Pairing::Independent,
                    other => {
                        return Err(at(format!(
                            "pairing expects common/independent, got '{other}'"
                        )))
                    }
                };
            }
            "per-node" => {
                spec.per_node = match value {
                    "true" => true,
                    "false" => false,
                    other => {
                        return Err(at(format!(
                            "per-node expects true/false, got '{other}'"
                        )))
                    }
                };
            }
            "obs" | "trace" => {
                return Err(at(format!(
                    "'{key}' is not sweepable — artifacts carry aggregates, \
                     not ledgers; use `rcast trace` for one run"
                )));
            }
            other => {
                if let Some((singular, plural)) =
                    AXIS_KEYS.iter().find(|(s, _)| *s == other)
                {
                    return Err(at(format!(
                        "'{singular}' is an axis here — use '{plural}'"
                    )));
                }
                // Anything else is a base-configuration line; the
                // scenario parser owns its syntax and errors.
                base_lines.push_str(raw);
            }
        }
        // Axis lines leave a blank in their place, so scenario-parser
        // errors carry this file's line numbers.
        base_lines.push('\n');
    }
    if !faults.is_empty() {
        spec.faults = faults;
    }
    spec.base = parse_scenario(&base_lines)?;
    // The scenario parser fills axis fields (scheme, rate, pause) with
    // paper defaults; cells overwrite them, so keeping them is harmless.
    // Its seed default is dead state here — runs set their own — so pin
    // it, keeping parsed specs canonical.
    spec.base.seed = 0;
    spec.normalized()
}

fn parse_scheme_name(s: &str) -> Result<Scheme, String> {
    match s.to_ascii_lowercase().as_str() {
        "802.11" | "80211" | "dot11" | "always-on" => Ok(Scheme::Dot11),
        "psm" => Ok(Scheme::Psm),
        "psm-none" | "no-overhear" => Ok(Scheme::PsmNoOverhear),
        "odpm" => Ok(Scheme::Odpm),
        "rcast" | "randomcast" => Ok(Scheme::Rcast),
        other => Err(format!(
            "unknown scheme '{other}' (expected 802.11, psm, psm-none, odpm, rcast)"
        )),
    }
}

/// A built-in figure preset, or `None` for an unknown name.
///
/// * `fig5` — per-node sorted energy curves (3 schemes × 1 rate ×
///   1 pause, per-node curves on);
/// * `fig6`/`fig7`/`fig8` — the shared evaluation grid (3 schemes ×
///   4 rates × mobile/static pauses). The three figures plot different
///   columns of the same matrix — variance, energy/PDR/EPB, and
///   delay/overhead respectively — so their artifacts differ only in
///   name; regenerate whichever the figure you are reading names.
///
/// All presets run the paper testbed (100 nodes, 1125 s) over seeds
/// 1–5 with common seed pairing.
pub fn preset(name: &str) -> Option<SweepSpec> {
    match name {
        "fig5" => {
            let mut spec = SweepSpec::paper_default("fig5");
            spec.per_node = true;
            Some(spec)
        }
        "fig6" | "fig7" | "fig8" => {
            let mut spec = SweepSpec::paper_default(name);
            spec.rates = vec![0.2, 0.4, 1.0, 2.0];
            spec.pauses = vec![600.0, 1125.0];
            Some(spec)
        }
        "scale" => {
            // Not a figure: the node-count scaling campaign, companion
            // to `rcast bench --large`. The bench gate tracks simulator
            // wall time per interval at constant density; this campaign
            // tracks what the *protocol* does as the large tier's
            // 7200 × 720 m field fills from 300 to 1200 nodes (energy,
            // PDR, EPB per cell). Rcast only, three seeds, nominal
            // rate, short pause so the population actually mixes.
            let mut spec = SweepSpec::paper_default("scale");
            spec.schemes = vec![Scheme::Rcast];
            spec.nodes = vec![300, 600, 1200];
            spec.pauses = vec![60.0];
            spec.seeds = (1..=3).collect();
            spec.base.area = Area::new(7200.0, 720.0);
            spec.base.duration = SimDuration::from_secs(240);
            spec.base.traffic.flows = 30;
            Some(spec)
        }
        _ => None,
    }
}

/// The built-in preset names, for help text and errors.
pub const PRESETS: [&str; 5] = ["fig5", "fig6", "fig7", "fig8", "scale"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_normalize_and_expand() {
        for name in PRESETS {
            let spec = preset(name).expect(name).normalized().expect(name);
            let cells = spec.expand();
            assert!(!cells.is_empty(), "{name}");
            let expect = spec.schemes.len()
                * spec.rates.len()
                * spec.pauses.len()
                * spec.nodes.len()
                * spec.faults.len();
            assert_eq!(cells.len(), expect, "{name}");
            assert_eq!(spec.total_runs(), expect * spec.seeds.len());
        }
        assert!(preset("fig9").is_none());
        assert!(preset("").is_none());
    }

    #[test]
    fn scale_preset_doubles_nodes_on_the_large_field() {
        let scale = preset("scale").unwrap().normalized().unwrap();
        assert_eq!(scale.schemes, vec![Scheme::Rcast]);
        assert_eq!(scale.nodes, vec![300, 600, 1200]);
        assert_eq!(scale.base.area, Area::new(7200.0, 720.0));
        assert_eq!(scale.base.traffic.flows, 30);
        // 1 scheme × 1 rate × 1 pause × 3 node counts × 1 fault plan.
        assert_eq!(scale.expand().len(), 3);
        assert_eq!(scale.total_runs(), 9);
        // The smoke transform still collapses it to a cheap grid.
        assert!(scale.smoke().normalized().is_ok());
    }

    #[test]
    fn fig5_carries_per_node_curves_and_fig7_the_grid() {
        let fig5 = preset("fig5").unwrap();
        assert!(fig5.per_node);
        assert_eq!(fig5.rates, vec![0.4]);
        let fig7 = preset("fig7").unwrap();
        assert!(!fig7.per_node);
        assert_eq!(fig7.rates, vec![0.2, 0.4, 1.0, 2.0]);
        assert_eq!(fig7.pauses, vec![600.0, 1125.0]);
        assert_eq!(fig7.seeds, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn normalization_sorts_and_dedups_every_axis() {
        let mut spec = SweepSpec::paper_default("t");
        spec.schemes = vec![Scheme::Rcast, Scheme::Dot11, Scheme::Rcast];
        spec.rates = vec![2.0, 0.2, 2.0];
        spec.pauses = vec![900.0, 0.0, 900.0];
        spec.nodes = vec![100, 50, 100];
        spec.seeds = vec![9, 1, 9];
        let n = spec.normalized().expect("valid");
        assert_eq!(n.schemes, vec![Scheme::Dot11, Scheme::Rcast]);
        assert_eq!(n.rates, vec![0.2, 2.0]);
        assert_eq!(n.pauses, vec![0.0, 900.0]);
        assert_eq!(n.nodes, vec![50, 100]);
        assert_eq!(n.seeds, vec![1, 9]);
    }

    #[test]
    fn normalization_rejects_bad_axes() {
        let mut spec = SweepSpec::paper_default("t");
        spec.rates = vec![];
        assert!(spec.normalized().is_err(), "empty axis");
        let mut spec = SweepSpec::paper_default("t");
        spec.rates = vec![f64::NAN];
        assert!(spec.normalized().is_err(), "NaN rate");
        let mut spec = SweepSpec::paper_default("t");
        spec.pauses = vec![-1.0];
        assert!(spec.normalized().is_err(), "negative pause");
        let mut spec = SweepSpec::paper_default("t");
        spec.nodes = vec![1];
        assert!(spec.normalized().is_err(), "cell config invalid");
        let mut spec = SweepSpec::paper_default("t");
        spec.name.clear();
        assert!(spec.normalized().is_err(), "empty name");
    }

    #[test]
    fn cell_keys_are_distinct_within_a_matrix() {
        let spec = preset("fig7").unwrap().normalized().unwrap();
        let keys: Vec<String> = spec.expand().iter().map(SweepCell::key).collect();
        let mut deduped = keys.clone();
        deduped.sort();
        deduped.dedup();
        assert_eq!(deduped.len(), keys.len());
    }

    #[test]
    fn pairing_modes_differ_and_common_passes_through() {
        let spec = preset("fig7").unwrap();
        let cells = spec.expand();
        assert_eq!(cells[0].run_seed(7, Pairing::Common), 7);
        let a = cells[0].run_seed(7, Pairing::Independent);
        let b = cells[1].run_seed(7, Pairing::Independent);
        assert_ne!(a, 7);
        assert_ne!(a, b, "distinct cells, distinct streams");
        assert_eq!(a, cells[0].run_seed(7, Pairing::Independent), "stable");
    }

    #[test]
    fn cell_config_writes_all_axis_fields() {
        let mut spec = SweepSpec::paper_default("t");
        spec.faults = vec![FaultsConfig::default(), FaultsConfig {
            crash_prob: 0.25,
            ..FaultsConfig::default()
        }];
        let cell = SweepCell {
            scheme: Scheme::Odpm,
            rate_pps: 1.5,
            pause_s: 30.0,
            nodes: 40,
            fault_index: 1,
        };
        let cfg = cell.config(&spec);
        assert_eq!(cfg.scheme, Scheme::Odpm);
        assert_eq!(cfg.traffic.rate_pps, 1.5);
        assert_eq!(cfg.waypoint.pause_secs, 30.0);
        assert_eq!(cfg.nodes, 40);
        assert_eq!(cfg.faults.crash_prob, 0.25);
        assert_eq!(cfg.duration, spec.base.duration, "base survives");
    }

    #[test]
    fn smoke_scales_the_grid_down() {
        let spec = preset("fig7").unwrap().smoke();
        assert_eq!(spec.name, "fig7-smoke");
        assert_eq!(spec.base.duration, SimDuration::from_secs(60));
        assert_eq!(spec.nodes, vec![20]);
        assert_eq!(spec.rates, vec![0.2, 0.4]);
        assert_eq!(spec.seeds, vec![1, 2]);
        // 600/1125 of the 60 s run, like the figure binaries' quick mode.
        assert!((spec.pauses[0] - 32.0).abs() < 1e-9, "{}", spec.pauses[0]);
        assert!((spec.pauses[1] - 60.0).abs() < 1e-9);
        assert!(spec.normalized().is_ok());
    }

    #[test]
    fn spec_files_parse_with_axes_and_base_lines() {
        let spec = parse_spec(
            "# campaign\n\
             name grid\n\
             schemes 802.11,rcast\n\
             rates 2.0,0.2\n\
             pauses 600\n\
             nodes 50\n\
             seeds 1..3,9\n\
             fault-plan none\n\
             fault-plan crash=0.3,downtime=20\n\
             pairing independent\n\
             per-node true\n\
             duration 300\n\
             flows 8\n",
        )
        .expect("valid spec");
        assert_eq!(spec.name, "grid");
        assert_eq!(spec.schemes, vec![Scheme::Dot11, Scheme::Rcast]);
        assert_eq!(spec.rates, vec![0.2, 2.0], "normalized order");
        assert_eq!(spec.seeds, vec![1, 2, 3, 9]);
        assert_eq!(spec.faults.len(), 2);
        assert_eq!(spec.faults[1].crash_prob, 0.3);
        assert_eq!(spec.pairing, Pairing::Independent);
        assert!(spec.per_node);
        assert_eq!(spec.base.duration, SimDuration::from_secs(300));
        assert_eq!(spec.base.traffic.flows, 8);
    }

    #[test]
    fn spec_defaults_match_paper_default() {
        let spec = parse_spec("name d\n").expect("valid");
        let want = SweepSpec::paper_default("d").normalized().unwrap();
        assert_eq!(spec, want);
    }

    #[test]
    fn singular_axis_keys_are_rejected_with_a_pointer() {
        for (line, plural) in [
            ("scheme rcast", "schemes"),
            ("rate 0.4", "rates"),
            ("pause 600", "pauses"),
            ("seed 1", "seeds"),
            ("faults crash=0.5", "fault-plan"),
        ] {
            let err = parse_spec(line).expect_err(line);
            assert!(err.contains(plural), "{line}: {err}");
            assert!(err.contains("line 1"), "{line}: {err}");
        }
        let err = parse_spec("obs true\n").unwrap_err();
        assert!(err.contains("not sweepable"), "{err}");
    }

    #[test]
    fn malformed_spec_lines_are_errors_with_line_numbers() {
        assert!(parse_spec("schemes span\n").is_err());
        assert!(parse_spec("rates fast\n").is_err());
        assert!(parse_spec("seeds 5..1\n").is_err());
        assert!(parse_spec("seeds one\n").is_err());
        assert!(parse_spec("nodes some\n").is_err());
        assert!(parse_spec("pairing maybe\n").is_err());
        assert!(parse_spec("per-node maybe\n").is_err());
        assert!(parse_spec("fault-plan wat=1\n").is_err());
        assert!(parse_spec("name\n").is_err());
        let err = parse_spec("rates 0.4\nspeed_of_light 3e8\n").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        // Unknown base keys surface the scenario parser's message.
        assert!(err.contains("speed_of_light"), "{err}");
    }
}
