//! Paper-figure sweep campaigns: declarative run matrices, deterministic
//! parallel execution, stable artifacts.
//!
//! The paper's evaluation is a grid — every scheme at every packet rate
//! and pause time, repeated over seeds, averaged, plotted. This crate
//! makes that grid a first-class object:
//!
//! * [`SweepSpec`] — the declarative campaign: axes over scheme × rate ×
//!   pause × node count × fault plan, a seed list, and a base
//!   configuration; parsed from spec files ([`parse_spec`]) or built
//!   from the figure presets ([`preset`]: `fig5`–`fig8`).
//! * [`run_spec`] — canonical expansion into [`SweepCell`]s, execution
//!   across cores via `ScopedPool::map_grid` (workers steal across
//!   cells, not just seeds), and per-cell reduction to
//!   mean/stddev/CI95 per figure metric.
//! * [`to_json`] / [`to_csv`] — the `rcast-sweep/v1` artifacts: fixed
//!   key order, shortest-round-trip numbers, no timestamps or
//!   thread-count fields, **byte-identical at any `--threads` width**.
//!
//! # Quickstart
//!
//! ```
//! use rcast_engine::SimDuration;
//! use rcast_sweep::{preset, run_spec, to_csv};
//!
//! // The Fig. 7 grid, scaled to doctest size.
//! let mut spec = preset("fig7").expect("built-in preset").smoke();
//! spec.base.duration = SimDuration::from_secs(4);
//! spec.pauses = vec![4.0];
//! spec.rates.truncate(1);
//! spec.seeds.truncate(1);
//!
//! let report = run_spec(&spec, 2)?;
//! assert_eq!(report.cells.len(), spec.schemes.len());
//! assert!(to_csv(&report).lines().count() == 1 + report.cells.len());
//! # Ok::<(), String>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod artifact;
mod run;
mod spec;

pub use artifact::{human_summary, to_csv, to_json};
pub use run::{run_spec, CellSummary, SweepReport};
pub use spec::{parse_spec, preset, Pairing, SweepCell, SweepSpec, PRESETS};
