//! Property tests for sweep-matrix expansion and cell seed derivation.
//!
//! Pinned here, over arbitrary axis specs:
//!
//! * normalization makes expansion **order-independent** — permuting a
//!   spec's axis lists never changes the matrix;
//! * the expanded matrix is **duplicate-free** and exactly the size of
//!   the axis product;
//! * under independent pairing, `(cell, base seed)` → run-seed is
//!   **collision-free** across the whole matrix — no two runs of a
//!   campaign ever share an RNG stream.

use rcast_core::{FaultsConfig, Scheme, SimConfig};
use rcast_engine::SimDuration;
use rcast_sweep::{Pairing, SweepSpec};
use rcast_testkit::{prop_assert, prop_assert_eq, Check, Gen};

/// An arbitrary (valid) spec: random subsets of the scheme axis, random
/// small float/integer axes, sized by the generator's size dial.
fn arb_spec(g: &mut Gen) -> SweepSpec {
    let mut spec = SweepSpec::paper_default("prop");
    // A fast base so accidental execution in a property stays cheap;
    // these tests only expand, never run.
    spec.base = SimConfig::smoke(Scheme::Rcast, 0);
    spec.base.duration = SimDuration::from_secs(10);
    let k = g.usize_range(1, Scheme::ALL.len() + 1);
    spec.schemes = Scheme::ALL[..k].to_vec();
    spec.rates = g.vec(1, 4, |g| {
        // Steps of 0.1 in (0, 25.6]: coarse enough to collide sometimes
        // (exercising dedup), always valid.
        f64::from(g.u32_range(1, 256)) / 10.0
    });
    spec.pauses = g.vec(1, 4, |g| f64::from(g.u32_range(0, 1200)));
    spec.nodes = g.vec(1, 3, |g| g.u32_range(2, 40));
    spec.seeds = g.vec(1, 6, |g| g.u64_range(0, 1 << 48));
    spec.faults = g.vec(1, 3, |g| {
        if g.bool() {
            FaultsConfig::default()
        } else {
            FaultsConfig {
                crash_prob: f64::from(g.u32_range(0, 10)) / 10.0,
                downtime_s: f64::from(g.u32_range(0, 60)),
                ..FaultsConfig::default()
            }
        }
    });
    spec.pairing = if g.bool() {
        Pairing::Common
    } else {
        Pairing::Independent
    };
    spec
}

/// A deterministic pseudo-shuffle driven by the generator.
fn shuffle<T>(g: &mut Gen, items: &mut [T]) {
    for i in (1..items.len()).rev() {
        items.swap(i, g.usize_range(0, i + 1));
    }
}

#[test]
fn expansion_is_independent_of_axis_input_order() {
    Check::new("sweep-expansion-order-independent")
        .cases(64)
        .run(|g| {
            let spec = arb_spec(g);
            let mut permuted = spec.clone();
            shuffle(g, &mut permuted.schemes);
            shuffle(g, &mut permuted.rates);
            shuffle(g, &mut permuted.pauses);
            shuffle(g, &mut permuted.nodes);
            shuffle(g, &mut permuted.seeds);

            let a = spec.normalized().map_err(|e| format!("normalize: {e}"))?;
            let b = permuted
                .normalized()
                .map_err(|e| format!("normalize permuted: {e}"))?;
            prop_assert_eq!(a, b);
            Ok(())
        });
}

#[test]
fn expansion_is_duplicate_free_and_exactly_the_axis_product() {
    Check::new("sweep-expansion-duplicate-free")
        .cases(64)
        .run(|g| {
            let spec = arb_spec(g)
                .normalized()
                .map_err(|e| format!("normalize: {e}"))?;
            let cells = spec.expand();
            let product = spec.schemes.len()
                * spec.rates.len()
                * spec.pauses.len()
                * spec.nodes.len()
                * spec.faults.len();
            prop_assert_eq!(cells.len(), product);

            let mut keys: Vec<String> =
                cells.iter().map(|c| c.key()).collect();
            let total = keys.len();
            keys.sort();
            keys.dedup();
            prop_assert_eq!(keys.len(), total);
            Ok(())
        });
}

#[test]
fn independent_pairing_never_collides_across_the_matrix() {
    Check::new("sweep-cell-seed-streams-never-collide")
        .cases(48)
        .run(|g| {
            let spec = arb_spec(g)
                .normalized()
                .map_err(|e| format!("normalize: {e}"))?;
            let mut run_seeds: Vec<u64> = Vec::new();
            for cell in spec.expand() {
                for &base in &spec.seeds {
                    run_seeds.push(cell.run_seed(base, Pairing::Independent));
                }
            }
            let total = run_seeds.len();
            run_seeds.sort_unstable();
            run_seeds.dedup();
            prop_assert_eq!(run_seeds.len(), total);
            Ok(())
        });
}

#[test]
fn run_seed_derivation_is_stable_and_pairing_aware() {
    Check::new("sweep-run-seed-stability").cases(48).run(|g| {
        let spec = arb_spec(g)
            .normalized()
            .map_err(|e| format!("normalize: {e}"))?;
        let cells = spec.expand();
        let cell = &cells[g.usize_range(0, cells.len())];
        let base = spec.seeds[g.usize_range(0, spec.seeds.len())];
        prop_assert_eq!(cell.run_seed(base, Pairing::Common), base);
        let derived = cell.run_seed(base, Pairing::Independent);
        prop_assert_eq!(
            derived,
            cell.run_seed(base, Pairing::Independent)
        );
        // Deterministic inputs: if this ever failed it would fail on
        // every run, so a 2^-64 collision is a safe thing to pin.
        prop_assert!(derived != base, "cell {}", cell.key());
        Ok(())
    });
}
