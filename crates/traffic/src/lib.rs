//! Constant-bit-rate traffic generation.
//!
//! The paper's workload is 20 CBR sources sending 512-byte packets at a
//! swept rate of 0.2–2.0 packets/second over randomly chosen
//! source/destination pairs. [`CbrFlow`] describes one flow;
//! [`TrafficConfig::generate`] draws a reproducible flow set; and
//! [`FlowSchedule`] iterates the global packet arrival sequence in time
//! order for the event loop.
//!
//! # Example
//!
//! ```
//! use rcast_engine::{SimTime, rng::StreamRng};
//! use rcast_traffic::TrafficConfig;
//!
//! let cfg = TrafficConfig { flows: 20, rate_pps: 0.4, ..TrafficConfig::default() };
//! let flows = cfg.generate(100, StreamRng::from_seed(1));
//! assert_eq!(flows.len(), 20);
//! assert!(flows.iter().all(|f| f.src != f.dst));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use rcast_engine::rng::StreamRng;
use rcast_engine::{NodeId, SimDuration, SimTime};

/// One constant-bit-rate flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CbrFlow {
    /// Flow identifier (dense, `0..flows`).
    pub id: u32,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// When the first packet is generated.
    pub start: SimTime,
    /// Inter-packet interval.
    pub interval: SimDuration,
    /// Payload size in bytes.
    pub packet_bytes: usize,
}

impl CbrFlow {
    /// The generation time of packet `seq` (0-based).
    pub fn packet_time(&self, seq: u64) -> SimTime {
        self.start + self.interval * seq
    }

    /// Number of packets generated within `[0, horizon)`.
    pub fn packets_before(&self, horizon: SimTime) -> u64 {
        if self.start >= horizon {
            return 0;
        }
        (horizon - self.start) / self.interval + 1
    }
}

/// Workload parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficConfig {
    /// Number of concurrent CBR flows (paper: 20).
    pub flows: u32,
    /// Packet rate per flow, packets/second (paper sweep: 0.2–2.0).
    pub rate_pps: f64,
    /// Payload size, bytes (paper: 512).
    pub packet_bytes: usize,
    /// Flow start times are staggered uniformly in `[0, stagger)` so
    /// sources do not beat in lockstep.
    pub stagger: SimDuration,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        TrafficConfig {
            flows: 20,
            rate_pps: 0.4,
            packet_bytes: 512,
            stagger: SimDuration::from_secs(10),
        }
    }
}

impl TrafficConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.flows == 0 {
            return Err("at least one flow required".into());
        }
        if !(self.rate_pps.is_finite() && self.rate_pps > 0.0) {
            return Err(format!("rate must be positive: {}", self.rate_pps));
        }
        if self.packet_bytes == 0 {
            return Err("packet size must be positive".into());
        }
        Ok(())
    }

    /// The inter-packet interval implied by `rate_pps`.
    pub fn interval(&self) -> SimDuration {
        SimDuration::from_secs_f64(1.0 / self.rate_pps)
    }

    /// Draws a reproducible flow set over `n_nodes` nodes.
    ///
    /// Source/destination pairs are uniform without self-loops. Distinct
    /// flows may share endpoints, as in the paper's ns-2 scenarios.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or `n_nodes < 2`.
    pub fn generate(&self, n_nodes: u32, mut rng: StreamRng) -> Vec<CbrFlow> {
        if let Err(e) = self.validate() {
            panic!("invalid traffic config: {e}");
        }
        assert!(n_nodes >= 2, "need at least two nodes for traffic");
        (0..self.flows)
            .map(|id| {
                let src = NodeId::new(rng.below(n_nodes as u64) as u32);
                let dst = loop {
                    let d = NodeId::new(rng.below(n_nodes as u64) as u32);
                    if d != src {
                        break d;
                    }
                };
                let start = SimTime::ZERO
                    + SimDuration::from_secs_f64(
                        rng.range_f64(0.0, self.stagger.as_secs_f64().max(1e-9)),
                    );
                CbrFlow {
                    id,
                    src,
                    dst,
                    start,
                    interval: self.interval(),
                    packet_bytes: self.packet_bytes,
                }
            })
            .collect()
    }
}

/// A time-ordered iterator over every packet arrival of a flow set.
///
/// # Example
///
/// ```
/// use rcast_engine::{SimTime, rng::StreamRng};
/// use rcast_traffic::{FlowSchedule, TrafficConfig};
///
/// let flows = TrafficConfig::default().generate(50, StreamRng::from_seed(2));
/// let mut sched = FlowSchedule::new(&flows, SimTime::from_secs(60));
/// let mut last = SimTime::ZERO;
/// while let Some(arrival) = sched.next() {
///     assert!(arrival.at >= last);
///     last = arrival.at;
/// }
/// ```
#[derive(Debug, Clone)]
pub struct FlowSchedule {
    flows: Vec<CbrFlow>,
    next_seq: Vec<u64>,
    horizon: SimTime,
}

/// One packet arrival produced by a [`FlowSchedule`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arrival {
    /// Which flow generated the packet.
    pub flow: u32,
    /// Packet sequence number within the flow (0-based).
    pub seq: u64,
    /// Generation instant.
    pub at: SimTime,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Payload size, bytes.
    pub bytes: usize,
}

impl FlowSchedule {
    /// A schedule over `flows`, generating arrivals strictly before
    /// `horizon`.
    pub fn new(flows: &[CbrFlow], horizon: SimTime) -> Self {
        FlowSchedule {
            flows: flows.to_vec(),
            next_seq: vec![0; flows.len()],
            horizon,
        }
    }

    /// The next arrival in global time order, if any remain.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<Arrival> {
        let mut best: Option<(usize, SimTime)> = None;
        for (i, f) in self.flows.iter().enumerate() {
            let t = f.packet_time(self.next_seq[i]);
            if t >= self.horizon {
                continue;
            }
            match best {
                Some((_, bt)) if bt <= t => {}
                _ => best = Some((i, t)),
            }
        }
        let (i, at) = best?;
        let f = &self.flows[i];
        let seq = self.next_seq[i];
        self.next_seq[i] += 1;
        Some(Arrival {
            flow: f.id,
            seq,
            at,
            src: f.src,
            dst: f.dst,
            bytes: f.packet_bytes,
        })
    }

    /// Total arrivals this schedule will produce.
    pub fn total_packets(&self) -> u64 {
        self.flows
            .iter()
            .map(|f| f.packets_before(self.horizon))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flow_generation_is_deterministic() {
        let cfg = TrafficConfig::default();
        let a = cfg.generate(100, StreamRng::from_seed(9));
        let b = cfg.generate(100, StreamRng::from_seed(9));
        assert_eq!(a, b);
        let c = cfg.generate(100, StreamRng::from_seed(10));
        assert_ne!(a, c);
    }

    #[test]
    fn no_self_flows_and_ids_dense() {
        let flows = TrafficConfig::default().generate(5, StreamRng::from_seed(3));
        for (i, f) in flows.iter().enumerate() {
            assert_ne!(f.src, f.dst);
            assert_eq!(f.id, i as u32);
            assert!(f.src.index() < 5 && f.dst.index() < 5);
        }
    }

    #[test]
    fn interval_matches_rate() {
        let cfg = TrafficConfig {
            rate_pps: 2.0,
            ..TrafficConfig::default()
        };
        assert_eq!(cfg.interval(), SimDuration::from_millis(500));
        let cfg = TrafficConfig {
            rate_pps: 0.2,
            ..TrafficConfig::default()
        };
        assert_eq!(cfg.interval(), SimDuration::from_secs(5));
    }

    #[test]
    fn packet_times_are_arithmetic() {
        let f = CbrFlow {
            id: 0,
            src: NodeId::new(0),
            dst: NodeId::new(1),
            start: SimTime::from_secs(3),
            interval: SimDuration::from_millis(2500),
            packet_bytes: 512,
        };
        assert_eq!(f.packet_time(0), SimTime::from_secs(3));
        assert_eq!(f.packet_time(2), SimTime::from_secs(8));
        assert_eq!(f.packets_before(SimTime::from_secs(3)), 0);
        assert_eq!(f.packets_before(SimTime::from_millis(3001)), 1);
        assert_eq!(f.packets_before(SimTime::from_secs(11)), 4);
    }

    #[test]
    fn schedule_is_time_ordered_and_complete() {
        let flows = TrafficConfig {
            flows: 7,
            rate_pps: 1.0,
            ..TrafficConfig::default()
        }
        .generate(30, StreamRng::from_seed(4));
        let horizon = SimTime::from_secs(100);
        let mut sched = FlowSchedule::new(&flows, horizon);
        let expected = sched.total_packets();
        let mut count = 0u64;
        let mut last = SimTime::ZERO;
        while let Some(a) = sched.next() {
            assert!(a.at >= last);
            assert!(a.at < horizon);
            last = a.at;
            count += 1;
        }
        assert_eq!(count, expected);
        // 7 flows × 1 pps × ~(100 − stagger) s each.
        assert!((7 * 85..=7 * 100).contains(&count), "{count}");
    }

    #[test]
    fn paper_rate_sweep_packet_counts() {
        // At 2.0 pps over 1125 s, each flow sends ~2250 packets; the
        // paper's 20 flows give ~45 000 total.
        let flows = TrafficConfig {
            flows: 20,
            rate_pps: 2.0,
            stagger: SimDuration::from_secs(1),
            ..TrafficConfig::default()
        }
        .generate(100, StreamRng::from_seed(8));
        let sched = FlowSchedule::new(&flows, SimTime::from_secs(1125));
        let total = sched.total_packets();
        assert!((44_000..=45_100).contains(&total), "{total}");
    }

    #[test]
    fn validation() {
        assert!(TrafficConfig::default().validate().is_ok());
        assert!(TrafficConfig {
            flows: 0,
            ..TrafficConfig::default()
        }
        .validate()
        .is_err());
        assert!(TrafficConfig {
            rate_pps: 0.0,
            ..TrafficConfig::default()
        }
        .validate()
        .is_err());
        assert!(TrafficConfig {
            packet_bytes: 0,
            ..TrafficConfig::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    #[should_panic]
    fn one_node_panics() {
        let _ = TrafficConfig::default().generate(1, StreamRng::from_seed(0));
    }
}
