//! DSR packet formats.
//!
//! Four packet types, as in the protocol (and the paper's Section 2.1):
//! broadcast route requests ([`Rreq`]), unicast route replies
//! ([`Rrep`]), unicast route errors ([`Rerr`]), and source-routed data
//! ([`DataPacket`]). Wire sizes follow the DSR option encodings over
//! IPv4 (4-byte addresses) so MAC airtime is realistic.

use rcast_engine::{NodeId, SimTime};

use crate::route::SourceRoute;

/// IPv4 header length, octets.
const IP_HEADER: usize = 20;
/// DSR fixed option-header overhead, octets.
const DSR_FIXED: usize = 8;
/// Per-address overhead in DSR options, octets.
const PER_ADDR: usize = 4;

/// A route request, flooded by broadcast.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rreq {
    /// The node performing route discovery.
    pub origin: NodeId,
    /// The node being sought.
    pub target: NodeId,
    /// Discovery identifier, unique per origin.
    pub id: u32,
    /// Remaining hops the request may propagate (the expanding-ring
    /// search sends a non-propagating request with `ttl = 1` first).
    pub ttl: u8,
    /// The accumulated route record: origin through the latest forwarder.
    pub record: Vec<NodeId>,
}

impl Rreq {
    /// On-air size, octets.
    pub fn wire_bytes(&self) -> usize {
        IP_HEADER + DSR_FIXED + PER_ADDR * self.record.len()
    }
}

/// A route reply, unicast back toward the request origin.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rrep {
    /// The complete discovered route, origin → target.
    pub route: SourceRoute,
    /// The node that generated this reply (the target, or a caching
    /// intermediate).
    pub replier: NodeId,
    /// `true` when an intermediate node answered from its route cache.
    pub from_cache: bool,
}

impl Rrep {
    /// On-air size, octets.
    pub fn wire_bytes(&self) -> usize {
        IP_HEADER + DSR_FIXED + PER_ADDR * self.route.nodes().len()
    }

    /// The discovery origin this reply answers.
    pub fn origin(&self) -> NodeId {
        self.route.origin()
    }

    /// The discovered destination.
    pub fn target(&self) -> NodeId {
        self.route.destination()
    }
}

/// A route error, unicast toward the source whose packet hit the break.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rerr {
    /// The node that detected the broken link.
    pub detector: NodeId,
    /// The broken link, from the detector's side.
    pub broken_from: NodeId,
    /// The unreachable next hop.
    pub broken_to: NodeId,
    /// The path the error travels, detector → source.
    pub path: SourceRoute,
}

impl Rerr {
    /// On-air size, octets.
    pub fn wire_bytes(&self) -> usize {
        IP_HEADER + DSR_FIXED + 4 + PER_ADDR * self.path.nodes().len()
    }

    /// The node this error is heading to (the data source).
    pub fn destination(&self) -> NodeId {
        self.path.destination()
    }
}

/// A source-routed data packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataPacket {
    /// Flow identifier (from the traffic layer).
    pub flow: u32,
    /// Sequence number within the flow.
    pub seq: u64,
    /// The full source route currently in the header, src → dst.
    pub route: SourceRoute,
    /// Application payload size, octets.
    pub payload_bytes: usize,
    /// When the application generated the packet (delay metric).
    pub generated_at: SimTime,
    /// How many times intermediate nodes have salvaged the packet.
    pub salvage_count: u8,
}

impl DataPacket {
    /// On-air size, octets (payload plus IP + DSR source-route header).
    pub fn wire_bytes(&self) -> usize {
        self.payload_bytes + IP_HEADER + PER_ADDR * self.route.nodes().len()
    }

    /// The originating application source.
    pub fn src(&self) -> NodeId {
        self.route.origin()
    }

    /// The application destination.
    pub fn dst(&self) -> NodeId {
        self.route.destination()
    }
}

/// Any DSR packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DsrPacket {
    /// Broadcast route request.
    Rreq(Rreq),
    /// Unicast route reply.
    Rrep(Rrep),
    /// Unicast route error.
    Rerr(Rerr),
    /// Unicast source-routed data.
    Data(DataPacket),
}

impl DsrPacket {
    /// On-air size, octets.
    pub fn wire_bytes(&self) -> usize {
        match self {
            DsrPacket::Rreq(p) => p.wire_bytes(),
            DsrPacket::Rrep(p) => p.wire_bytes(),
            DsrPacket::Rerr(p) => p.wire_bytes(),
            DsrPacket::Data(p) => p.wire_bytes(),
        }
    }

    /// `true` for routing-control packets (RREQ/RREP/RERR) — the
    /// numerator of the paper's normalized-routing-overhead metric.
    pub fn is_control(&self) -> bool {
        !matches!(self, DsrPacket::Data(_))
    }

    /// A short kind tag for logs and counters.
    pub fn kind(&self) -> &'static str {
        match self {
            DsrPacket::Rreq(_) => "RREQ",
            DsrPacket::Rrep(_) => "RREP",
            DsrPacket::Rerr(_) => "RERR",
            DsrPacket::Data(_) => "DATA",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn route(ids: &[u32]) -> SourceRoute {
        SourceRoute::new(ids.iter().copied().map(NodeId::new).collect()).unwrap()
    }

    #[test]
    fn wire_sizes_grow_with_route_length() {
        let short = DataPacket {
            flow: 0,
            seq: 0,
            route: route(&[0, 1]),
            payload_bytes: 512,
            generated_at: SimTime::ZERO,
            salvage_count: 0,
        };
        let long = DataPacket {
            route: route(&[0, 1, 2, 3, 4]),
            ..short.clone()
        };
        assert!(long.wire_bytes() > short.wire_bytes());
        assert_eq!(long.wire_bytes() - short.wire_bytes(), 3 * 4);
        assert_eq!(short.wire_bytes(), 512 + 20 + 8);
    }

    #[test]
    fn control_vs_data() {
        let rreq = DsrPacket::Rreq(Rreq {
            origin: NodeId::new(0),
            target: NodeId::new(5),
            id: 1,
            ttl: 16,
            record: vec![NodeId::new(0)],
        });
        assert!(rreq.is_control());
        assert_eq!(rreq.kind(), "RREQ");
        let data = DsrPacket::Data(DataPacket {
            flow: 0,
            seq: 0,
            route: route(&[0, 1]),
            payload_bytes: 512,
            generated_at: SimTime::ZERO,
            salvage_count: 0,
        });
        assert!(!data.is_control());
        assert_eq!(data.kind(), "DATA");
    }

    #[test]
    fn rrep_endpoints() {
        let r = Rrep {
            route: route(&[3, 4, 5]),
            replier: NodeId::new(5),
            from_cache: false,
        };
        assert_eq!(r.origin(), NodeId::new(3));
        assert_eq!(r.target(), NodeId::new(5));
        assert_eq!(r.wire_bytes(), 20 + 8 + 12);
    }

    #[test]
    fn rerr_destination() {
        let e = Rerr {
            detector: NodeId::new(2),
            broken_from: NodeId::new(2),
            broken_to: NodeId::new(3),
            path: route(&[2, 1, 0]),
        };
        assert_eq!(e.destination(), NodeId::new(0));
        assert!(DsrPacket::Rerr(e).is_control());
    }

    #[test]
    fn rreq_size_counts_record() {
        let r = Rreq {
            origin: NodeId::new(0),
            target: NodeId::new(9),
            id: 7,
            ttl: 1,
            record: vec![NodeId::new(0), NodeId::new(1), NodeId::new(2)],
        };
        assert_eq!(r.wire_bytes(), 20 + 8 + 12);
    }
}
