//! DSR protocol configuration.

use rcast_engine::SimDuration;

use crate::cache::CacheConfig;

/// Tunables of the DSR implementation.
///
/// Timeout defaults are sized for the PSM environment, where one hop
/// costs up to a beacon interval (250 ms): a non-propagating ring-search
/// round trip needs ~2 intervals, a network-wide discovery across the
/// paper's ≤ 8-hop field needs several seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DsrConfig {
    /// Route cache shape (capacity + optional timeout).
    pub cache: CacheConfig,
    /// Packets buffered at the source while discovery runs.
    pub send_buffer_capacity: usize,
    /// How long a buffered packet may wait for a route.
    pub send_buffer_timeout: SimDuration,
    /// Whether intermediate nodes answer RREQs from their caches.
    pub reply_from_cache: bool,
    /// Whether discovery starts with a TTL-1 non-propagating request
    /// (the expanding-ring search the paper links to load unbalance).
    pub ring_search: bool,
    /// Timeout awaiting a reply to the non-propagating request.
    pub nonprop_timeout: SimDuration,
    /// Base timeout awaiting a reply to a network-wide request
    /// (doubled per retry).
    pub discovery_timeout: SimDuration,
    /// Maximum discovery rounds before buffered packets are dropped.
    pub max_discovery_retries: u32,
    /// TTL of network-wide requests.
    pub network_ttl: u8,
    /// Maximum RREPs the target answers per discovery (DSR offers
    /// alternative routes; the paper blames stale alternates on exactly
    /// this multiplicity).
    pub max_replies_per_request: u32,
    /// How many times a data packet may be salvaged en route.
    pub max_salvage: u8,
    /// Minimum spacing between identical RERRs (same broken link, same
    /// source): a break drops whole queues, and reporting every frame
    /// separately would storm the network with redundant —
    /// unconditionally overheard — error packets.
    pub rerr_suppression: SimDuration,
}

impl Default for DsrConfig {
    fn default() -> Self {
        DsrConfig {
            cache: CacheConfig::default(),
            send_buffer_capacity: 64,
            send_buffer_timeout: SimDuration::from_secs(30),
            reply_from_cache: true,
            ring_search: true,
            nonprop_timeout: SimDuration::from_millis(2000),
            discovery_timeout: SimDuration::from_millis(4000),
            max_discovery_retries: 8,
            network_ttl: 16,
            max_replies_per_request: 3,
            max_salvage: 4,
            rerr_suppression: SimDuration::from_secs(2),
        }
    }
}

impl DsrConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.cache.capacity == 0 {
            return Err("cache capacity must be positive".into());
        }
        if self.send_buffer_capacity == 0 {
            return Err("send buffer capacity must be positive".into());
        }
        if self.network_ttl == 0 {
            return Err("network TTL must be positive".into());
        }
        if self.max_discovery_retries == 0 {
            return Err("at least one discovery round required".into());
        }
        if self.nonprop_timeout.is_zero() || self.discovery_timeout.is_zero() {
            return Err("discovery timeouts must be positive".into());
        }
        if self.max_replies_per_request == 0 {
            return Err("target must answer at least one RREP".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        assert!(DsrConfig::default().validate().is_ok());
    }

    #[test]
    fn invalid_configs_rejected() {
        let c = DsrConfig { network_ttl: 0, ..DsrConfig::default() };
        assert!(c.validate().is_err());

        let c = DsrConfig { send_buffer_capacity: 0, ..DsrConfig::default() };
        assert!(c.validate().is_err());

        let c = DsrConfig { max_discovery_retries: 0, ..DsrConfig::default() };
        assert!(c.validate().is_err());

        let c = DsrConfig {
            nonprop_timeout: SimDuration::ZERO,
            ..DsrConfig::default()
        };
        assert!(c.validate().is_err());

        let c = DsrConfig { max_replies_per_request: 0, ..DsrConfig::default() };
        assert!(c.validate().is_err());
    }
}
