//! The DSR route cache (path cache).
//!
//! Every cached entry is a full path **starting at the cache owner**, as
//! in ns-2's path cache. Insertions of routes that merely *contain* the
//! owner are truncated to start there; routes that do not contain the
//! owner are rejected (a path cache cannot use them — overheard routes
//! are extended through the overheard transmitter before insertion, see
//! `DsrNode::overhear`).
//!
//! The paper's stale-route discussion (Section 2.1.2) drives two
//! features: link-based invalidation with *truncation* (a broken link
//! removes the unusable tail but keeps the still-valid prefix), and an
//! optional capacity/timeout pair for the cache-design ablation.

use rcast_engine::{NodeId, SimDuration, SimTime};

use crate::route::SourceRoute;

/// One cached path with bookkeeping.
#[derive(Debug, Clone)]
struct Entry {
    path: SourceRoute,
    inserted_at: SimTime,
    last_used: SimTime,
}

/// Configuration of a [`RouteCache`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheConfig {
    /// Maximum number of cached entries: paths for the path strategy,
    /// directed links for the link strategy (ns-2 DSR default: 64).
    pub capacity: usize,
    /// Optional entry lifetime; `None` reproduces stock DSR (entries die
    /// only via RERR invalidation or eviction).
    pub timeout: Option<SimDuration>,
    /// Which caching strategy to use.
    pub strategy: CacheStrategy,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            capacity: 64,
            timeout: None,
            strategy: CacheStrategy::Path,
        }
    }
}

/// The path-cache strategy: whole source routes, LRU-evicted.
///
#[derive(Debug, Clone)]
pub struct PathCache {
    owner: NodeId,
    cfg: CacheConfig,
    entries: Vec<Entry>,
}

impl PathCache {
    /// An empty cache owned by `owner`.
    ///
    /// # Panics
    ///
    /// Panics if the configured capacity is zero.
    pub fn new(owner: NodeId, cfg: CacheConfig) -> Self {
        assert!(cfg.capacity > 0, "cache capacity must be positive");
        PathCache {
            owner,
            cfg,
            entries: Vec::new(),
        }
    }

    /// The node this cache belongs to.
    pub fn owner(&self) -> NodeId {
        self.owner
    }

    /// Number of cached paths.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Inserts a route. The route is normalized to start at the owner
    /// (truncating any prefix); routes not containing the owner are
    /// rejected. Returns `true` when a **new** path was stored (used by
    /// the role-number metric), `false` for duplicates, rejected routes,
    /// and paths subsumed by an identical existing entry.
    pub fn insert(&mut self, route: SourceRoute, now: SimTime) -> bool {
        let Some(normalized) = self.normalize(route) else {
            return false;
        };
        if let Some(e) = self.entries.iter_mut().find(|e| e.path == normalized) {
            e.last_used = now;
            return false;
        }
        if self.entries.len() >= self.cfg.capacity {
            // Evict the least recently used entry.
            let (idx, _) = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_used)
                .expect("capacity > 0 so entries is non-empty");
            self.entries.swap_remove(idx);
        }
        self.entries.push(Entry {
            path: normalized,
            inserted_at: now,
            last_used: now,
        });
        true
    }

    fn normalize(&self, route: SourceRoute) -> Option<SourceRoute> {
        if route.origin() == self.owner {
            Some(route)
        } else {
            route.suffix_from(self.owner)
        }
    }

    /// The best (shortest, then freshest) cached route from the owner to
    /// `dst`. Touches the entry's LRU stamp.
    pub fn find_route(&mut self, dst: NodeId, now: SimTime) -> Option<SourceRoute> {
        self.purge_expired(now);
        let mut best: Option<(usize, usize, SimTime)> = None; // (idx, hops, inserted)
        for (i, e) in self.entries.iter().enumerate() {
            let Some(pos) = e.path.position_of(dst) else {
                continue;
            };
            if pos == 0 {
                continue; // dst == owner
            }
            let hops = pos;
            match best {
                Some((_, bh, bt)) if bh < hops || (bh == hops && bt >= e.inserted_at) => {}
                _ => best = Some((i, hops, e.inserted_at)),
            }
        }
        let (idx, _, _) = best?;
        self.entries[idx].last_used = now;
        let path = &self.entries[idx].path;
        path.prefix_to(dst)
    }

    /// `true` when a route to `dst` is cached (without touching LRU).
    pub fn has_route(&self, dst: NodeId) -> bool {
        self.entries
            .iter()
            .any(|e| e.path.position_of(dst).is_some_and(|p| p > 0))
    }

    /// Invalidates the (undirected) link `a ↔ b`: every path using it is
    /// truncated just before the break; prefixes that still form a route
    /// (≥ 2 nodes) survive. Returns the number of affected entries.
    // det: hot-ok — link-breakage repair path, driven by failure events
    pub fn remove_link(&mut self, a: NodeId, b: NodeId) -> usize {
        let mut affected = 0;
        let mut kept = Vec::with_capacity(self.entries.len());
        for mut e in self.entries.drain(..) {
            if !e.path.uses_link(a, b) {
                kept.push(e);
                continue;
            }
            affected += 1;
            // Truncate at the first use of the broken link.
            let nodes = e.path.nodes();
            let cut = nodes
                .windows(2)
                .position(|w| (w[0] == a && w[1] == b) || (w[0] == b && w[1] == a))
                .expect("uses_link implies a cut point");
            if cut + 1 >= 2 {
                if let Some(prefix) = SourceRoute::new(nodes[..=cut].to_vec()) {
                    e.path = prefix;
                    kept.push(e);
                }
            }
        }
        self.entries = kept;
        affected
    }

    /// Drops entries older than the configured timeout.
    pub fn purge_expired(&mut self, now: SimTime) {
        if let Some(ttl) = self.cfg.timeout {
            self.entries.retain(|e| now - e.inserted_at <= ttl);
        }
    }

    /// The cached paths (metrics: role numbers are counted over cache
    /// contents).
    // det: hot-ok — link-cache fallback for the role sampler; the default path-cache strategy uses the allocation-free for_each_path
    pub fn paths(&self) -> Vec<SourceRoute> {
        self.entries.iter().map(|e| e.path.clone()).collect()
    }

    /// Visits every cached path by reference, in storage order —
    /// the allocation-free counterpart of [`paths`](Self::paths).
    pub fn for_each_path(&self, mut f: impl FnMut(&SourceRoute)) {
        for e in &self.entries {
            f(&e.path);
        }
    }
}

/// Which caching strategy a [`RouteCache`] uses — the design axis of
/// Hu & Johnson (reference 11 of the paper).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum CacheStrategy {
    /// Store whole source routes (ns-2 DSR's default).
    #[default]
    Path,
    /// Store individual links; answer queries by shortest-path search.
    Link,
}

/// A per-node DSR route cache, dispatching to the configured strategy.
///
/// # Example
///
/// ```
/// use rcast_engine::{NodeId, SimTime};
/// use rcast_dsr::{CacheConfig, RouteCache, SourceRoute};
///
/// let me = NodeId::new(0);
/// let mut cache = RouteCache::new(me, CacheConfig::default());
/// let route = SourceRoute::new(vec![0, 1, 2].into_iter().map(NodeId::new).collect()).unwrap();
/// assert!(cache.insert(route, SimTime::ZERO));
/// let found = cache.find_route(NodeId::new(2), SimTime::ZERO).unwrap();
/// assert_eq!(found.destination(), NodeId::new(2));
/// ```
#[derive(Debug, Clone)]
pub enum RouteCache {
    /// Path-cache strategy.
    Path(PathCache),
    /// Link-cache strategy.
    Link(crate::link_cache::LinkCache),
}

impl RouteCache {
    /// A cache of the configured strategy.
    ///
    /// # Panics
    ///
    /// Panics if the configured capacity is zero.
    pub fn new(owner: NodeId, cfg: CacheConfig) -> Self {
        match cfg.strategy {
            CacheStrategy::Path => RouteCache::Path(PathCache::new(owner, cfg)),
            CacheStrategy::Link => RouteCache::Link(crate::link_cache::LinkCache::new(
                owner,
                cfg.capacity,
                cfg.timeout,
            )),
        }
    }

    /// The owning node.
    pub fn owner(&self) -> NodeId {
        match self {
            RouteCache::Path(c) => c.owner(),
            RouteCache::Link(c) => c.owner(),
        }
    }

    /// Number of stored entries (paths or directed links, by strategy).
    pub fn len(&self) -> usize {
        match self {
            RouteCache::Path(c) => c.len(),
            RouteCache::Link(c) => c.len(),
        }
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Learns a route. Returns `true` when new information was stored.
    pub fn insert(&mut self, route: SourceRoute, now: SimTime) -> bool {
        match self {
            RouteCache::Path(c) => c.insert(route, now),
            RouteCache::Link(c) => c.insert(route, now),
        }
    }

    /// The best cached route from the owner to `dst`.
    pub fn find_route(&mut self, dst: NodeId, now: SimTime) -> Option<SourceRoute> {
        match self {
            RouteCache::Path(c) => c.find_route(dst, now),
            RouteCache::Link(c) => c.find_route(dst, now),
        }
    }

    /// `true` when a route to `dst` is cached.
    pub fn has_route(&self, dst: NodeId) -> bool {
        match self {
            RouteCache::Path(c) => c.has_route(dst),
            RouteCache::Link(c) => c.has_route(dst),
        }
    }

    /// Invalidates the undirected link `a ↔ b`; returns affected entries.
    pub fn remove_link(&mut self, a: NodeId, b: NodeId) -> usize {
        match self {
            RouteCache::Path(c) => c.remove_link(a, b),
            RouteCache::Link(c) => c.remove_link(a, b),
        }
    }

    /// Drops expired entries.
    pub fn purge_expired(&mut self, now: SimTime) {
        match self {
            RouteCache::Path(c) => c.purge_expired(now),
            RouteCache::Link(c) => c.purge_expired(now),
        }
    }

    /// The cache contents rendered as routes from the owner (role
    /// numbers sample these).
    pub fn paths(&self) -> Vec<SourceRoute> {
        match self {
            RouteCache::Path(c) => c.paths(),
            RouteCache::Link(c) => c.paths(),
        }
    }

    /// Visits every cached path by reference. For a path cache this
    /// never allocates; a link cache has no materialized paths, so it
    /// falls back to rendering them (the role sampler only runs every
    /// fourth interval, and the link strategy is off the paper's
    /// default configuration).
    pub fn for_each_path(&self, mut f: impl FnMut(&SourceRoute)) {
        match self {
            RouteCache::Path(c) => c.for_each_path(f),
            RouteCache::Link(c) => {
                for p in c.paths() {
                    f(&p);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn route(ids: &[u32]) -> SourceRoute {
        SourceRoute::new(ids.iter().copied().map(NodeId::new).collect()).unwrap()
    }

    fn cache(owner: u32) -> RouteCache {
        RouteCache::new(NodeId::new(owner), CacheConfig::default())
    }

    #[test]
    fn insert_and_find() {
        let mut c = cache(0);
        assert!(c.insert(route(&[0, 1, 2, 3]), SimTime::ZERO));
        // Duplicate rejected.
        assert!(!c.insert(route(&[0, 1, 2, 3]), SimTime::from_secs(1)));
        assert_eq!(c.len(), 1);
        // Sub-destination found via prefix.
        let r = c.find_route(NodeId::new(2), SimTime::from_secs(2)).unwrap();
        assert_eq!(r, route(&[0, 1, 2]));
        assert!(c.has_route(NodeId::new(3)));
        assert!(!c.has_route(NodeId::new(9)));
    }

    #[test]
    fn routes_not_containing_owner_rejected() {
        let mut c = cache(9);
        assert!(!c.insert(route(&[0, 1, 2]), SimTime::ZERO));
        assert!(c.is_empty());
    }

    #[test]
    fn routes_containing_owner_truncated() {
        let mut c = cache(1);
        assert!(c.insert(route(&[0, 1, 2, 3]), SimTime::ZERO));
        let r = c.find_route(NodeId::new(3), SimTime::ZERO).unwrap();
        assert_eq!(r, route(&[1, 2, 3]));
        // Upstream nodes are unreachable through this entry.
        assert!(!c.has_route(NodeId::new(0)));
    }

    #[test]
    fn shortest_route_wins() {
        let mut c = cache(0);
        c.insert(route(&[0, 1, 2, 3, 4]), SimTime::ZERO);
        c.insert(route(&[0, 5, 4]), SimTime::from_secs(1));
        let r = c.find_route(NodeId::new(4), SimTime::from_secs(2)).unwrap();
        assert_eq!(r, route(&[0, 5, 4]));
    }

    #[test]
    fn tie_breaks_by_freshness() {
        let mut c = cache(0);
        c.insert(route(&[0, 1, 4]), SimTime::ZERO);
        c.insert(route(&[0, 2, 4]), SimTime::from_secs(5));
        let r = c.find_route(NodeId::new(4), SimTime::from_secs(6)).unwrap();
        assert_eq!(r, route(&[0, 2, 4]), "fresher equal-length route wins");
    }

    #[test]
    fn capacity_evicts_lru() {
        let mut c = RouteCache::new(
            NodeId::new(0),
            CacheConfig {
                capacity: 2,
                timeout: None,
                ..CacheConfig::default()
            },
        );
        c.insert(route(&[0, 1]), SimTime::ZERO);
        c.insert(route(&[0, 2]), SimTime::from_secs(1));
        // Touch [0,1] so [0,2] becomes LRU.
        let _ = c.find_route(NodeId::new(1), SimTime::from_secs(2));
        c.insert(route(&[0, 3]), SimTime::from_secs(3));
        assert_eq!(c.len(), 2);
        assert!(c.has_route(NodeId::new(1)));
        assert!(!c.has_route(NodeId::new(2)), "LRU entry evicted");
        assert!(c.has_route(NodeId::new(3)));
    }

    #[test]
    fn link_removal_truncates() {
        let mut c = cache(0);
        c.insert(route(&[0, 1, 2, 3]), SimTime::ZERO);
        c.insert(route(&[0, 4, 5]), SimTime::ZERO);
        let affected = c.remove_link(NodeId::new(2), NodeId::new(3));
        assert_eq!(affected, 1);
        // Prefix 0→1→2 survives.
        assert!(c.has_route(NodeId::new(2)));
        assert!(!c.has_route(NodeId::new(3)));
        // Untouched entry intact.
        assert!(c.has_route(NodeId::new(5)));
    }

    #[test]
    fn link_removal_is_undirected_and_can_empty_entries() {
        let mut c = cache(0);
        c.insert(route(&[0, 1, 2]), SimTime::ZERO);
        let affected = c.remove_link(NodeId::new(1), NodeId::new(0));
        assert_eq!(affected, 1);
        assert!(c.is_empty(), "first-hop break leaves no usable prefix");
    }

    #[test]
    fn timeout_purges_entries() {
        let mut c = RouteCache::new(
            NodeId::new(0),
            CacheConfig {
                capacity: 8,
                timeout: Some(SimDuration::from_secs(10)),
                ..CacheConfig::default()
            },
        );
        c.insert(route(&[0, 1]), SimTime::ZERO);
        assert!(c.find_route(NodeId::new(1), SimTime::from_secs(5)).is_some());
        assert!(c.find_route(NodeId::new(1), SimTime::from_secs(11)).is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn paths_expose_contents() {
        let mut c = cache(0);
        c.insert(route(&[0, 1, 2]), SimTime::ZERO);
        c.insert(route(&[0, 3]), SimTime::ZERO);
        let paths = c.paths();
        assert_eq!(paths.len(), 2);
        assert!(paths.contains(&route(&[0, 1, 2])));
    }

    #[test]
    fn link_strategy_dispatches() {
        let cfg = CacheConfig {
            strategy: CacheStrategy::Link,
            ..CacheConfig::default()
        };
        let mut c = RouteCache::new(NodeId::new(0), cfg);
        assert!(c.insert(route(&[0, 1, 2]), SimTime::ZERO));
        assert!(c.insert(route(&[2, 5]), SimTime::ZERO));
        // Link recombination: only the link strategy can answer this.
        assert_eq!(
            c.find_route(NodeId::new(5), SimTime::ZERO).unwrap(),
            route(&[0, 1, 2, 5])
        );
        assert_eq!(c.owner(), NodeId::new(0));
        assert!(!c.is_empty());
        c.remove_link(NodeId::new(1), NodeId::new(2));
        assert!(!c.has_route(NodeId::new(5)));
    }
}
