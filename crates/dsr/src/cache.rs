//! The DSR route cache (path cache).
//!
//! Every cached entry is a full path **starting at the cache owner**, as
//! in ns-2's path cache. Insertions of routes that merely *contain* the
//! owner are truncated to start there; routes that do not contain the
//! owner are rejected (a path cache cannot use them — overheard routes
//! are extended through the overheard transmitter before insertion, see
//! `DsrNode::overhear`).
//!
//! The paper's stale-route discussion (Section 2.1.2) drives two
//! features: link-based invalidation with *truncation* (a broken link
//! removes the unusable tail but keeps the still-valid prefix), and an
//! optional capacity/timeout pair for the cache-design ablation.

use rcast_engine::{NodeId, SimDuration, SimTime};

use crate::route::SourceRoute;

/// One cached path with bookkeeping.
#[derive(Debug, Clone)]
struct Entry {
    path: SourceRoute,
    inserted_at: SimTime,
    last_used: SimTime,
}

/// A deterministic fingerprint of a node sequence (FNV-1a over the raw
/// ids). The duplicate scan in [`PathCache::observe_path`] runs on
/// every flood arrival in the network; comparing one `u64` per entry
/// instead of two node slices is what keeps that scan cheap at
/// capacity. Fixed constants, no hasher state: identical across runs
/// and platforms (rcast-lint D002).
fn path_key(nodes: &[NodeId]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for n in nodes {
        h ^= n.index() as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A 64-bit presence filter over the node ids on a path (bit `id % 64`).
/// [`PathCache::find_route`] and [`has_route`](PathCache::has_route)
/// test the destination's bit before walking an entry's node sequence,
/// so entries that cannot contain the destination cost one AND instead
/// of a linear scan. Purely an accelerator: a set bit is always
/// re-verified against the actual sequence.
fn node_mask(nodes: &[NodeId]) -> u64 {
    nodes
        .iter()
        .fold(0u64, |m, n| m | 1u64 << (n.index() & 63))
}

/// Configuration of a [`RouteCache`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheConfig {
    /// Maximum number of cached entries: paths for the path strategy,
    /// directed links for the link strategy (ns-2 DSR default: 64).
    pub capacity: usize,
    /// Optional entry lifetime; `None` reproduces stock DSR (entries die
    /// only via RERR invalidation or eviction).
    pub timeout: Option<SimDuration>,
    /// Which caching strategy to use.
    pub strategy: CacheStrategy,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            capacity: 64,
            timeout: None,
            strategy: CacheStrategy::Path,
        }
    }
}

/// The path-cache strategy: whole source routes, LRU-evicted.
///
#[derive(Debug, Clone)]
pub struct PathCache {
    owner: NodeId,
    cfg: CacheConfig,
    entries: Vec<Entry>,
    /// `path_key(entries[i].path.nodes())`, index-aligned with
    /// `entries`. Kept as a separate packed array so the duplicate scan
    /// — run on every flood arrival — touches 8 bytes per entry
    /// instead of striding over whole entries.
    keys: Vec<u64>,
    /// `node_mask(entries[i].path.nodes())`, index-aligned with
    /// `entries`; the route-lookup prefilter.
    masks: Vec<u64>,
    /// Index of the most recent duplicate hit. Data packets on an
    /// established route re-teach the same few paths over and over, so
    /// checking this slot first usually replaces the whole key scan
    /// with one compare. Purely an accelerator: always verified, falls
    /// back to the scan when stale, and a deterministic function of the
    /// call history.
    last_hit: usize,
}

impl PathCache {
    /// An empty cache owned by `owner`.
    ///
    /// # Panics
    ///
    /// Panics if the configured capacity is zero.
    pub fn new(owner: NodeId, cfg: CacheConfig) -> Self {
        assert!(cfg.capacity > 0, "cache capacity must be positive");
        PathCache {
            owner,
            cfg,
            entries: Vec::new(),
            keys: Vec::new(),
            masks: Vec::new(),
            last_hit: 0,
        }
    }

    /// The node this cache belongs to.
    pub fn owner(&self) -> NodeId {
        self.owner
    }

    /// Number of cached paths.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Inserts a route. The route is normalized to start at the owner
    /// (truncating any prefix); routes not containing the owner are
    /// rejected. Returns `true` when a **new** path was stored (used by
    /// the role-number metric), `false` for duplicates, rejected routes,
    /// and paths subsumed by an identical existing entry.
    pub fn insert(&mut self, route: SourceRoute, now: SimTime) -> bool {
        self.observe_path(route.nodes(), now)
    }

    /// Slice form of [`insert`](Self::insert): observes a path without
    /// a materialized [`SourceRoute`], touching the allocator only when
    /// a **new** entry is actually stored. The duplicate case — the
    /// steady state of a settled network, where every flood arrival
    /// re-teaches known topology — costs a linear scan and an LRU stamp,
    /// nothing more (DESIGN.md §10).
    pub fn observe_path(&mut self, nodes: &[NodeId], now: SimTime) -> bool {
        // Normalize to start at the owner (truncating any prefix);
        // paths not containing the owner are rejected.
        let slice = if nodes.first() == Some(&self.owner) {
            nodes
        } else {
            match nodes.iter().position(|&n| n == self.owner) {
                Some(pos) => &nodes[pos..],
                None => return false,
            }
        };
        if slice.len() < 2 {
            return false;
        }
        let key = path_key(slice);
        // Most-recently-hit slot first, then the packed-key scan — a
        // bare `u64` equality search the compiler can vectorize; a key
        // hit is verified against the sequence. Both run *before*
        // loop-freedom validation: the cache only ever stores valid
        // paths, so a byte-equal hit proves the incoming slice valid,
        // and the dominant duplicate arrival skips the O(n²) check
        // entirely.
        let lh = self.last_hit;
        if lh < self.keys.len() && self.keys[lh] == key && self.entries[lh].path.nodes() == slice {
            self.entries[lh].last_used = now;
            return false;
        }
        let mut from = 0;
        while let Some(off) = self.keys[from..].iter().position(|&k| k == key) {
            let i = from + off;
            if self.entries[i].path.nodes() == slice {
                self.entries[i].last_used = now;
                self.last_hit = i;
                return false;
            }
            from = i + 1;
        }
        if !SourceRoute::is_valid_path(slice) {
            return false;
        }
        if self.entries.len() >= self.cfg.capacity {
            // Evict the least recently used entry — and recycle its
            // storage for the new path, so a saturated cache (the
            // steady state of an active node) learns without touching
            // the allocator.
            let (idx, _) = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_used)
                .expect("capacity > 0 so entries is non-empty");
            let mut recycled = self.entries.swap_remove(idx);
            self.keys.swap_remove(idx);
            self.masks.swap_remove(idx);
            recycled.path.refill(slice);
            recycled.inserted_at = now;
            recycled.last_used = now;
            self.entries.push(recycled);
            self.keys.push(key);
            self.masks.push(node_mask(slice));
            return true;
        }
        self.entries.push(Entry {
            // det: hot-ok — materializes the route only while the cache is below capacity
            path: SourceRoute::new(slice.to_vec()).expect("slice was just validated"),
            inserted_at: now,
            last_used: now,
        });
        self.keys.push(key);
        self.masks.push(node_mask(slice));
        true
    }

    /// The best (shortest, then freshest) cached route from the owner to
    /// `dst`. Touches the entry's LRU stamp.
    pub fn find_route(&mut self, dst: NodeId, now: SimTime) -> Option<SourceRoute> {
        self.purge_expired(now);
        let dst_bit = 1u64 << (dst.index() & 63);
        let mut best: Option<(usize, usize, SimTime)> = None; // (idx, hops, inserted)
        for (i, e) in self.entries.iter().enumerate() {
            if self.masks[i] & dst_bit == 0 {
                continue; // dst is definitely not on this path
            }
            let Some(pos) = e.path.position_of(dst) else {
                continue;
            };
            if pos == 0 {
                continue; // dst == owner
            }
            let hops = pos;
            match best {
                Some((_, bh, bt)) if bh < hops || (bh == hops && bt >= e.inserted_at) => {}
                _ => best = Some((i, hops, e.inserted_at)),
            }
        }
        let (idx, _, _) = best?;
        self.entries[idx].last_used = now;
        let path = &self.entries[idx].path;
        path.prefix_to(dst)
    }

    /// `true` when a route to `dst` is cached (without touching LRU).
    pub fn has_route(&self, dst: NodeId) -> bool {
        let dst_bit = 1u64 << (dst.index() & 63);
        self.entries.iter().enumerate().any(|(i, e)| {
            self.masks[i] & dst_bit != 0 && e.path.position_of(dst).is_some_and(|p| p > 0)
        })
    }

    /// Invalidates the (undirected) link `a ↔ b`: every path using it is
    /// truncated just before the break; prefixes that still form a route
    /// (≥ 2 nodes) survive. Returns the number of affected entries.
    // det: hot-ok — link-breakage repair path, driven by failure events
    pub fn remove_link(&mut self, a: NodeId, b: NodeId) -> usize {
        // Most caches don't hold the broken link at all; the mask
        // prefilter lets those return without rebuilding anything.
        let ab = (1u64 << (a.index() & 63)) | (1u64 << (b.index() & 63));
        let any_hit = self
            .masks
            .iter()
            .zip(&self.entries)
            .any(|(&m, e)| m & ab == ab && e.path.uses_link(a, b));
        if !any_hit {
            return 0;
        }
        let mut affected = 0;
        let mut kept = Vec::with_capacity(self.entries.len());
        for mut e in self.entries.drain(..) {
            if !e.path.uses_link(a, b) {
                kept.push(e);
                continue;
            }
            affected += 1;
            // Truncate at the first use of the broken link.
            let nodes = e.path.nodes();
            let cut = nodes
                .windows(2)
                .position(|w| (w[0] == a && w[1] == b) || (w[0] == b && w[1] == a))
                .expect("uses_link implies a cut point");
            if cut + 1 >= 2 {
                if let Some(prefix) = SourceRoute::new(nodes[..=cut].to_vec()) {
                    e.path = prefix;
                    kept.push(e);
                }
            }
        }
        self.entries = kept;
        self.keys.clear();
        self.keys
            .extend(self.entries.iter().map(|e| path_key(e.path.nodes())));
        self.masks.clear();
        self.masks
            .extend(self.entries.iter().map(|e| node_mask(e.path.nodes())));
        affected
    }

    /// Drops entries older than the configured timeout.
    pub fn purge_expired(&mut self, now: SimTime) {
        if let Some(ttl) = self.cfg.timeout {
            // Order-preserving compaction over both parallel arrays.
            let mut w = 0;
            for i in 0..self.entries.len() {
                if now - self.entries[i].inserted_at <= ttl {
                    self.entries.swap(w, i);
                    self.keys.swap(w, i);
                    self.masks.swap(w, i);
                    w += 1;
                }
            }
            self.entries.truncate(w);
            self.keys.truncate(w);
            self.masks.truncate(w);
        }
    }

    /// The cached paths (metrics: role numbers are counted over cache
    /// contents).
    // det: hot-ok — link-cache fallback for the role sampler; the default path-cache strategy uses the allocation-free for_each_path
    pub fn paths(&self) -> Vec<SourceRoute> {
        self.entries.iter().map(|e| e.path.clone()).collect()
    }

    /// Visits every cached path by reference, in storage order —
    /// the allocation-free counterpart of [`paths`](Self::paths).
    pub fn for_each_path(&self, mut f: impl FnMut(&SourceRoute)) {
        for e in &self.entries {
            f(&e.path);
        }
    }
}

/// Which caching strategy a [`RouteCache`] uses — the design axis of
/// Hu & Johnson (reference 11 of the paper).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum CacheStrategy {
    /// Store whole source routes (ns-2 DSR's default).
    #[default]
    Path,
    /// Store individual links; answer queries by shortest-path search.
    Link,
}

/// A per-node DSR route cache, dispatching to the configured strategy.
///
/// # Example
///
/// ```
/// use rcast_engine::{NodeId, SimTime};
/// use rcast_dsr::{CacheConfig, RouteCache, SourceRoute};
///
/// let me = NodeId::new(0);
/// let mut cache = RouteCache::new(me, CacheConfig::default());
/// let route = SourceRoute::new(vec![0, 1, 2].into_iter().map(NodeId::new).collect()).unwrap();
/// assert!(cache.insert(route, SimTime::ZERO));
/// let found = cache.find_route(NodeId::new(2), SimTime::ZERO).unwrap();
/// assert_eq!(found.destination(), NodeId::new(2));
/// ```
#[derive(Debug, Clone)]
pub enum RouteCache {
    /// Path-cache strategy.
    Path(PathCache),
    /// Link-cache strategy.
    Link(crate::link_cache::LinkCache),
}

impl RouteCache {
    /// A cache of the configured strategy.
    ///
    /// # Panics
    ///
    /// Panics if the configured capacity is zero.
    pub fn new(owner: NodeId, cfg: CacheConfig) -> Self {
        match cfg.strategy {
            CacheStrategy::Path => RouteCache::Path(PathCache::new(owner, cfg)),
            CacheStrategy::Link => RouteCache::Link(crate::link_cache::LinkCache::new(
                owner,
                cfg.capacity,
                cfg.timeout,
            )),
        }
    }

    /// The owning node.
    pub fn owner(&self) -> NodeId {
        match self {
            RouteCache::Path(c) => c.owner(),
            RouteCache::Link(c) => c.owner(),
        }
    }

    /// Number of stored entries (paths or directed links, by strategy).
    pub fn len(&self) -> usize {
        match self {
            RouteCache::Path(c) => c.len(),
            RouteCache::Link(c) => c.len(),
        }
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Learns a route. Returns `true` when new information was stored.
    pub fn insert(&mut self, route: SourceRoute, now: SimTime) -> bool {
        match self {
            RouteCache::Path(c) => c.insert(route, now),
            RouteCache::Link(c) => c.insert(route, now),
        }
    }

    /// Slice form of [`insert`](Self::insert), allocating only when the
    /// path cache actually stores a new entry. The link strategy has no
    /// slice-level fast path; it materializes the route as `insert`
    /// does.
    pub fn observe_path(&mut self, nodes: &[NodeId], now: SimTime) -> bool {
        match self {
            RouteCache::Path(c) => c.observe_path(nodes, now),
            // det: hot-ok — the link strategy is off the paper's default configuration
            RouteCache::Link(c) => {
                let owner = c.owner();
                let Some(pos) = nodes.iter().position(|&n| n == owner) else {
                    return false;
                };
                // det: hot-ok — the link strategy is off the paper's default configuration
                match SourceRoute::new(nodes[pos..].to_vec()) {
                    Some(r) => c.insert(r, now),
                    None => false,
                }
            }
        }
    }

    /// The best cached route from the owner to `dst`.
    pub fn find_route(&mut self, dst: NodeId, now: SimTime) -> Option<SourceRoute> {
        match self {
            RouteCache::Path(c) => c.find_route(dst, now),
            RouteCache::Link(c) => c.find_route(dst, now),
        }
    }

    /// `true` when a route to `dst` is cached.
    pub fn has_route(&self, dst: NodeId) -> bool {
        match self {
            RouteCache::Path(c) => c.has_route(dst),
            RouteCache::Link(c) => c.has_route(dst),
        }
    }

    /// Invalidates the undirected link `a ↔ b`; returns affected entries.
    pub fn remove_link(&mut self, a: NodeId, b: NodeId) -> usize {
        match self {
            RouteCache::Path(c) => c.remove_link(a, b),
            RouteCache::Link(c) => c.remove_link(a, b),
        }
    }

    /// Drops expired entries.
    pub fn purge_expired(&mut self, now: SimTime) {
        match self {
            RouteCache::Path(c) => c.purge_expired(now),
            RouteCache::Link(c) => c.purge_expired(now),
        }
    }

    /// The cache contents rendered as routes from the owner (role
    /// numbers sample these).
    pub fn paths(&self) -> Vec<SourceRoute> {
        match self {
            RouteCache::Path(c) => c.paths(),
            RouteCache::Link(c) => c.paths(),
        }
    }

    /// Visits every cached path by reference. For a path cache this
    /// never allocates; a link cache has no materialized paths, so it
    /// falls back to rendering them (the role sampler only runs every
    /// fourth interval, and the link strategy is off the paper's
    /// default configuration).
    pub fn for_each_path(&self, mut f: impl FnMut(&SourceRoute)) {
        match self {
            RouteCache::Path(c) => c.for_each_path(f),
            RouteCache::Link(c) => {
                for p in c.paths() {
                    f(&p);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn route(ids: &[u32]) -> SourceRoute {
        SourceRoute::new(ids.iter().copied().map(NodeId::new).collect()).unwrap()
    }

    fn cache(owner: u32) -> RouteCache {
        RouteCache::new(NodeId::new(owner), CacheConfig::default())
    }

    #[test]
    fn insert_and_find() {
        let mut c = cache(0);
        assert!(c.insert(route(&[0, 1, 2, 3]), SimTime::ZERO));
        // Duplicate rejected.
        assert!(!c.insert(route(&[0, 1, 2, 3]), SimTime::from_secs(1)));
        assert_eq!(c.len(), 1);
        // Sub-destination found via prefix.
        let r = c.find_route(NodeId::new(2), SimTime::from_secs(2)).unwrap();
        assert_eq!(r, route(&[0, 1, 2]));
        assert!(c.has_route(NodeId::new(3)));
        assert!(!c.has_route(NodeId::new(9)));
    }

    #[test]
    fn routes_not_containing_owner_rejected() {
        let mut c = cache(9);
        assert!(!c.insert(route(&[0, 1, 2]), SimTime::ZERO));
        assert!(c.is_empty());
    }

    #[test]
    fn routes_containing_owner_truncated() {
        let mut c = cache(1);
        assert!(c.insert(route(&[0, 1, 2, 3]), SimTime::ZERO));
        let r = c.find_route(NodeId::new(3), SimTime::ZERO).unwrap();
        assert_eq!(r, route(&[1, 2, 3]));
        // Upstream nodes are unreachable through this entry.
        assert!(!c.has_route(NodeId::new(0)));
    }

    #[test]
    fn shortest_route_wins() {
        let mut c = cache(0);
        c.insert(route(&[0, 1, 2, 3, 4]), SimTime::ZERO);
        c.insert(route(&[0, 5, 4]), SimTime::from_secs(1));
        let r = c.find_route(NodeId::new(4), SimTime::from_secs(2)).unwrap();
        assert_eq!(r, route(&[0, 5, 4]));
    }

    #[test]
    fn tie_breaks_by_freshness() {
        let mut c = cache(0);
        c.insert(route(&[0, 1, 4]), SimTime::ZERO);
        c.insert(route(&[0, 2, 4]), SimTime::from_secs(5));
        let r = c.find_route(NodeId::new(4), SimTime::from_secs(6)).unwrap();
        assert_eq!(r, route(&[0, 2, 4]), "fresher equal-length route wins");
    }

    #[test]
    fn capacity_evicts_lru() {
        let mut c = RouteCache::new(
            NodeId::new(0),
            CacheConfig {
                capacity: 2,
                timeout: None,
                ..CacheConfig::default()
            },
        );
        c.insert(route(&[0, 1]), SimTime::ZERO);
        c.insert(route(&[0, 2]), SimTime::from_secs(1));
        // Touch [0,1] so [0,2] becomes LRU.
        let _ = c.find_route(NodeId::new(1), SimTime::from_secs(2));
        c.insert(route(&[0, 3]), SimTime::from_secs(3));
        assert_eq!(c.len(), 2);
        assert!(c.has_route(NodeId::new(1)));
        assert!(!c.has_route(NodeId::new(2)), "LRU entry evicted");
        assert!(c.has_route(NodeId::new(3)));
    }

    #[test]
    fn link_removal_truncates() {
        let mut c = cache(0);
        c.insert(route(&[0, 1, 2, 3]), SimTime::ZERO);
        c.insert(route(&[0, 4, 5]), SimTime::ZERO);
        let affected = c.remove_link(NodeId::new(2), NodeId::new(3));
        assert_eq!(affected, 1);
        // Prefix 0→1→2 survives.
        assert!(c.has_route(NodeId::new(2)));
        assert!(!c.has_route(NodeId::new(3)));
        // Untouched entry intact.
        assert!(c.has_route(NodeId::new(5)));
    }

    #[test]
    fn link_removal_is_undirected_and_can_empty_entries() {
        let mut c = cache(0);
        c.insert(route(&[0, 1, 2]), SimTime::ZERO);
        let affected = c.remove_link(NodeId::new(1), NodeId::new(0));
        assert_eq!(affected, 1);
        assert!(c.is_empty(), "first-hop break leaves no usable prefix");
    }

    #[test]
    fn timeout_purges_entries() {
        let mut c = RouteCache::new(
            NodeId::new(0),
            CacheConfig {
                capacity: 8,
                timeout: Some(SimDuration::from_secs(10)),
                ..CacheConfig::default()
            },
        );
        c.insert(route(&[0, 1]), SimTime::ZERO);
        assert!(c.find_route(NodeId::new(1), SimTime::from_secs(5)).is_some());
        assert!(c.find_route(NodeId::new(1), SimTime::from_secs(11)).is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn paths_expose_contents() {
        let mut c = cache(0);
        c.insert(route(&[0, 1, 2]), SimTime::ZERO);
        c.insert(route(&[0, 3]), SimTime::ZERO);
        let paths = c.paths();
        assert_eq!(paths.len(), 2);
        assert!(paths.contains(&route(&[0, 1, 2])));
    }

    #[test]
    fn link_strategy_dispatches() {
        let cfg = CacheConfig {
            strategy: CacheStrategy::Link,
            ..CacheConfig::default()
        };
        let mut c = RouteCache::new(NodeId::new(0), cfg);
        assert!(c.insert(route(&[0, 1, 2]), SimTime::ZERO));
        assert!(c.insert(route(&[2, 5]), SimTime::ZERO));
        // Link recombination: only the link strategy can answer this.
        assert_eq!(
            c.find_route(NodeId::new(5), SimTime::ZERO).unwrap(),
            route(&[0, 1, 2, 5])
        );
        assert_eq!(c.owner(), NodeId::new(0));
        assert!(!c.is_empty());
        c.remove_link(NodeId::new(1), NodeId::new(2));
        assert!(!c.has_route(NodeId::new(5)));
    }
}
