//! The per-node DSR state machine.
//!
//! [`DsrNode`] is a pure protocol engine: events come in (packet
//! receptions, overhearings, link failures, timer ticks, application
//! sends) and [`DsrAction`]s come out (transmissions, deliveries,
//! drops, cache-insertion notifications). It owns no clock, radio or
//! queue — the simulation core wires it to the MAC — which makes every
//! protocol rule unit-testable in isolation.

use std::collections::{BTreeMap, BTreeSet};

use rcast_engine::{NodeId, SimTime};

use crate::cache::RouteCache;
use crate::config::DsrConfig;
use crate::packet::{DataPacket, DsrPacket, Rerr, Rreq, Rrep};
use crate::route::SourceRoute;

/// Why a data packet was abandoned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DropReason {
    /// The send buffer was full when the packet arrived.
    SendBufferFull,
    /// The packet waited in the send buffer past the timeout.
    SendBufferTimeout,
    /// Route discovery exhausted its retries.
    DiscoveryFailed,
    /// A relay hit a broken link and could not salvage.
    SalvageFailed,
    /// The relay was not on the packet's source route (malformed).
    NotOnRoute,
}

/// An output of the DSR state machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DsrAction {
    /// Transmit `packet` to `next_hop`.
    Unicast {
        /// Layer-2 receiver.
        next_hop: NodeId,
        /// The packet to send.
        packet: DsrPacket,
    },
    /// Flood `packet` to all neighbors.
    Broadcast {
        /// The packet to flood.
        packet: DsrPacket,
    },
    /// This node is the packet's final destination.
    Delivered {
        /// The arrived data packet.
        packet: DataPacket,
    },
    /// The node gave up on a data packet.
    Dropped {
        /// The abandoned packet (route reflects its last known header).
        packet: DataPacket,
        /// Why it was abandoned.
        reason: DropReason,
    },
    /// A *new* route entered this node's cache (drives the paper's
    /// role-number metric).
    RouteCached {
        /// The cached path, starting at this node.
        route: SourceRoute,
    },
}

/// Cumulative per-node protocol statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DsrCounters {
    /// Route discoveries initiated (including retries).
    pub rreq_originated: u64,
    /// RREQ rebroadcasts performed.
    pub rreq_forwarded: u64,
    /// RREPs generated as the discovery target.
    pub rrep_from_target: u64,
    /// RREPs generated from the route cache.
    pub rrep_from_cache: u64,
    /// RREPs relayed toward their origin.
    pub rrep_forwarded: u64,
    /// RERRs generated at a detected break.
    pub rerr_originated: u64,
    /// RERRs relayed toward the source.
    pub rerr_forwarded: u64,
    /// Data packets sent with a route at this node (as source).
    pub data_sent: u64,
    /// Data packets relayed.
    pub data_forwarded: u64,
    /// Data packets re-routed around a break.
    pub data_salvaged: u64,
    /// Data packets delivered to this node.
    pub data_delivered: u64,
    /// Data packets abandoned here, any reason.
    pub data_dropped: u64,
}

impl DsrCounters {
    /// Labeled control-plane totals, for trace summaries: how many
    /// RREQ/RREP/RERR events this node produced, by label.
    pub fn control_events(&self) -> [(&'static str, u64); 3] {
        [
            ("rreq", self.rreq_originated + self.rreq_forwarded),
            (
                "rrep",
                self.rrep_from_target + self.rrep_from_cache + self.rrep_forwarded,
            ),
            ("rerr", self.rerr_originated + self.rerr_forwarded),
        ]
    }
}

/// A data packet parked at the source awaiting a route.
#[derive(Debug, Clone)]
struct Buffered {
    flow: u32,
    seq: u64,
    dst: NodeId,
    payload_bytes: usize,
    generated_at: SimTime,
    buffered_at: SimTime,
}

impl Buffered {
    fn into_packet(self, route: SourceRoute) -> DataPacket {
        DataPacket {
            flow: self.flow,
            seq: self.seq,
            route,
            payload_bytes: self.payload_bytes,
            generated_at: self.generated_at,
            salvage_count: 0,
        }
    }
}

/// An in-progress route discovery for one target.
#[derive(Debug, Clone)]
struct Discovery {
    round: u32,
    deadline: SimTime,
}

/// Duplicate-RREQ filter: per-origin sets of seen request ids, stored
/// as sorted, disjoint, inclusive ranges.
///
/// Request ids are monotone per origin and never reused (a reboot
/// preserves `next_rreq_id`), so the ids a node has seen from any one
/// origin compress to a handful of contiguous runs. Membership checks
/// touch one small sorted `Vec` instead of walking a tree that grows
/// by one node per flood — the dominant lookup in `receive_rreq`.
///
/// Ordered collections only: iteration never depends on hasher state
/// (rcast-lint D002), and the exact "ever inserted" semantics of the
/// `BTreeSet<(NodeId, u32)>` it replaces are preserved. Origins live in
/// a `Vec` sorted by id — binary-searched, cheaper per lookup than
/// walking tree nodes, and bounded by the network's node count.
#[derive(Debug, Clone, Default)]
struct SeenRreq {
    origins: Vec<(NodeId, Vec<(u32, u32)>)>,
}

impl SeenRreq {
    fn new() -> Self {
        SeenRreq::default()
    }

    fn clear(&mut self) {
        self.origins.clear();
    }

    /// Inserts `(origin, id)`; returns `true` when it was not already
    /// present (mirrors `BTreeSet::insert`).
    fn insert(&mut self, origin: NodeId, id: u32) -> bool {
        use std::cmp::Ordering;
        let oi = match self.origins.binary_search_by_key(&origin, |&(o, _)| o) {
            Ok(oi) => oi,
            Err(oi) => {
                // det: hot-ok — one slot per RREQ origin (bounded by the node count), not per flood
                self.origins.insert(oi, (origin, vec![(id, id)]));
                return true;
            }
        };
        let rs = &mut self.origins[oi].1;
        let pos = match rs.binary_search_by(|&(lo, hi)| {
            if id < lo {
                Ordering::Greater
            } else if id > hi {
                Ordering::Less
            } else {
                Ordering::Equal
            }
        }) {
            Ok(_) => return false, // inside an existing range: duplicate
            Err(pos) => pos,
        };
        let joins_prev = pos > 0 && rs[pos - 1].1.checked_add(1) == Some(id);
        let joins_next = pos < rs.len() && id.checked_add(1) == Some(rs[pos].0);
        match (joins_prev, joins_next) {
            (true, true) => {
                // Bridges the gap between two runs: merge them.
                rs[pos - 1].1 = rs[pos].1;
                rs.remove(pos);
            }
            (true, false) => rs[pos - 1].1 = id,
            (false, true) => rs[pos].0 = id,
            // det: hot-ok — a new disjoint run; runs per origin stay near one in practice
            (false, false) => rs.insert(pos, (id, id)),
        }
        true
    }
}

/// The DSR protocol engine for one node.
///
/// # Example
///
/// ```
/// use rcast_engine::{NodeId, SimTime};
/// use rcast_dsr::{DsrAction, DsrConfig, DsrNode, DsrPacket};
///
/// let mut node = DsrNode::new(NodeId::new(0), DsrConfig::default());
/// // No route yet: the node buffers the packet and floods a request.
/// let actions = node.originate(0, 0, NodeId::new(5), 512, SimTime::ZERO);
/// assert!(matches!(
///     actions.as_slice(),
///     [DsrAction::Broadcast { packet: DsrPacket::Rreq(_) }]
/// ));
/// ```
#[derive(Debug, Clone)]
pub struct DsrNode {
    id: NodeId,
    cfg: DsrConfig,
    cache: RouteCache,
    send_buffer: Vec<Buffered>,
    // BTree collections throughout: protocol state iteration must be
    // ordered so results never depend on hasher state (rcast-lint D002).
    seen_rreq: SeenRreq,
    replies_sent: BTreeMap<(NodeId, u32), u32>,
    /// Last time a RERR for (broken_to, source) was sent, for suppression.
    recent_rerrs: BTreeMap<(NodeId, NodeId), SimTime>,
    discoveries: BTreeMap<NodeId, Discovery>,
    next_rreq_id: u32,
    counters: DsrCounters,
    /// Reusable buffer for candidate paths (reversed RREQ records,
    /// overheard-route splices) observed into the cache by slice —
    /// always left empty between calls. Keeps the dominant
    /// duplicate-flood-arrival path off the allocator (DESIGN.md §10).
    path_scratch: Vec<NodeId>,
    /// Whether cache insertions materialize [`DsrAction::RouteCached`]
    /// notifications (the default). The simulation core filters those
    /// actions out and samples the cache directly for the role-number
    /// metric, so it disables reporting — which keeps steady-state
    /// route learning off the allocator.
    report_cached: bool,
}

impl DsrNode {
    /// Creates the engine for node `id`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`DsrConfig::validate`].
    pub fn new(id: NodeId, cfg: DsrConfig) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid DSR config: {e}");
        }
        DsrNode {
            id,
            cfg,
            cache: RouteCache::new(id, cfg.cache),
            send_buffer: Vec::new(),
            seen_rreq: SeenRreq::new(),
            replies_sent: BTreeMap::new(),
            recent_rerrs: BTreeMap::new(),
            discoveries: BTreeMap::new(),
            next_rreq_id: 0,
            counters: DsrCounters::default(),
            path_scratch: Vec::new(),
            report_cached: true,
        }
    }

    /// Enables or disables [`DsrAction::RouteCached`] notifications.
    /// Cache behavior — contents, normalization, LRU order — is
    /// identical either way; only the materialized action is skipped.
    /// Embedders that ignore those actions (the simulation core reads
    /// the cache directly) turn them off so route learning does not
    /// allocate notification routes it will immediately drop.
    pub fn set_route_cached_reports(&mut self, enabled: bool) {
        self.report_cached = enabled;
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Cumulative statistics.
    pub fn counters(&self) -> DsrCounters {
        self.counters
    }

    /// Read access to the route cache (metrics, tests).
    pub fn cache(&self) -> &RouteCache {
        &self.cache
    }

    /// Packets currently parked awaiting routes.
    pub fn send_buffer_len(&self) -> usize {
        self.send_buffer.len()
    }

    /// `true` while a discovery for `target` is outstanding.
    pub fn discovering(&self, target: NodeId) -> bool {
        self.discoveries.contains_key(&target)
    }

    /// Wipes all volatile protocol state — what a crash does to a node.
    ///
    /// The route cache, send buffer, duplicate-suppression sets and
    /// outstanding discoveries are lost. Cumulative counters and the
    /// RREQ id sequence survive: ids stay monotone so neighbors that
    /// remember pre-crash `(origin, id)` pairs never mistake a fresh
    /// discovery for a duplicate. Returns the `(flow, seq)` ids of the
    /// buffered data packets that died with the node.
    // det: cold — fault-rejoin lifecycle event: rebuilds node state outside the settled loop
    pub fn reboot(&mut self) -> Vec<(u32, u64)> {
        let lost = self.send_buffer.iter().map(|b| (b.flow, b.seq)).collect();
        self.cache = RouteCache::new(self.id, self.cfg.cache);
        self.send_buffer.clear();
        self.seen_rreq.clear();
        self.replies_sent.clear();
        self.recent_rerrs.clear();
        self.discoveries.clear();
        lost
    }

    // ------------------------------------------------------------------
    // Cache plumbing
    // ------------------------------------------------------------------

    /// Observes `nodes` as a candidate path; when the cache stores a
    /// genuinely new entry, reports the stored (owner-normalized) route.
    // det: hot-ok — materializes a route only when new topology information appears
    fn observe_and_report(&mut self, nodes: &[NodeId], now: SimTime, out: &mut Vec<DsrAction>) {
        if self.cache.observe_path(nodes, now) && self.report_cached {
            let pos = nodes
                .iter()
                .position(|&n| n == self.id)
                .expect("a stored path contains its owner");
            out.push(DsrAction::RouteCached {
                route: SourceRoute::new(nodes[pos..].to_vec())
                    .expect("the cache validated this path"),
            });
        }
    }

    /// Learns `route` (which must start at or contain this node) and its
    /// reverse; emits `RouteCached` for new entries and drains any
    /// now-routable buffered packets.
    // det: hot-ok — caches a route only when new topology information appears
    fn learn_route(&mut self, route: &SourceRoute, now: SimTime, out: &mut Vec<DsrAction>) {
        // RouteCache::observe_path normalizes to start at the owner and
        // rejects paths that don't contain it.
        self.observe_and_report(route.nodes(), now, out);
        let mut rev = std::mem::take(&mut self.path_scratch);
        rev.clear();
        rev.extend(route.nodes().iter().rev().copied());
        self.observe_and_report(&rev, now, out);
        rev.clear();
        self.path_scratch = rev;
        self.drain_send_buffer(now, out);
    }

    /// Learns from an *overheard* route the node is not on: extend it
    /// through the overheard transmitter, which is known reachable.
    // det: hot-ok — caches a route only when new topology information appears
    fn learn_via_transmitter(
        &mut self,
        transmitter: NodeId,
        route: &SourceRoute,
        now: SimTime,
        out: &mut Vec<DsrAction>,
    ) {
        debug_assert!(!route.contains(self.id));
        if transmitter == self.id {
            return; // nonsensical: we cannot be our own next hop
        }
        let nodes = route.nodes();
        let Some(pos) = nodes.iter().position(|&n| n == transmitter) else {
            self.drain_send_buffer(now, out);
            return;
        };
        let mut scratch = std::mem::take(&mut self.path_scratch);
        // Toward the route's destination: self → transmitter → … → dst.
        if pos + 1 < nodes.len() {
            scratch.clear();
            scratch.push(self.id);
            scratch.extend_from_slice(&nodes[pos..]);
            self.observe_and_report(&scratch, now, out);
        }
        // Toward the route's origin: self → transmitter → … → origin.
        if pos >= 1 {
            scratch.clear();
            scratch.push(self.id);
            scratch.extend(nodes[..=pos].iter().rev().copied());
            self.observe_and_report(&scratch, now, out);
        }
        scratch.clear();
        self.path_scratch = scratch;
        self.drain_send_buffer(now, out);
    }

    /// Sends every buffered packet that now has a route; completes
    /// discoveries whose target became reachable. Works in place: the
    /// common no-op drain (empty buffer, or no new routes) never
    /// rebuilds the buffer.
    // det: hot-ok — flushes buffered packets when a route materializes, a discovery-completion event
    fn drain_send_buffer(&mut self, now: SimTime, out: &mut Vec<DsrAction>) {
        let mut i = 0;
        while i < self.send_buffer.len() {
            let dst = self.send_buffer[i].dst;
            match self.cache.find_route(dst, now) {
                Some(route) => {
                    let b = self.send_buffer.remove(i);
                    let next_hop = route
                        .next_hop_after(self.id)
                        .expect("route starts at self with >= 1 hop");
                    self.counters.data_sent += 1;
                    out.push(DsrAction::Unicast {
                        next_hop,
                        packet: DsrPacket::Data(b.into_packet(route)),
                    });
                    self.discoveries.remove(&dst);
                }
                None => i += 1,
            }
        }
    }

    // ------------------------------------------------------------------
    // Application interface
    // ------------------------------------------------------------------

    /// The application asks to send `payload_bytes` to `dst`.
    // det: hot-ok — origination allocates per traffic event, not per idle interval
    pub fn originate(
        &mut self,
        flow: u32,
        seq: u64,
        dst: NodeId,
        payload_bytes: usize,
        now: SimTime,
    ) -> Vec<DsrAction> {
        let mut out = Vec::new();
        if let Some(route) = self.cache.find_route(dst, now) {
            let next_hop = route.next_hop_after(self.id).expect("non-trivial route");
            self.counters.data_sent += 1;
            out.push(DsrAction::Unicast {
                next_hop,
                packet: DsrPacket::Data(DataPacket {
                    flow,
                    seq,
                    route,
                    payload_bytes,
                    generated_at: now,
                    salvage_count: 0,
                }),
            });
            return out;
        }
        // Buffer and (maybe) start a discovery.
        if self.send_buffer.len() >= self.cfg.send_buffer_capacity {
            self.counters.data_dropped += 1;
            out.push(DsrAction::Dropped {
                packet: self.orphan_packet(flow, seq, dst, payload_bytes, now),
                reason: DropReason::SendBufferFull,
            });
            return out;
        }
        self.send_buffer.push(Buffered {
            flow,
            seq,
            dst,
            payload_bytes,
            generated_at: now,
            buffered_at: now,
        });
        if !self.discoveries.contains_key(&dst) {
            out.extend(self.start_discovery(dst, now));
        }
        out
    }

    /// A data packet with no valid route, used only in `Dropped` reports.
    fn orphan_packet(
        &self,
        flow: u32,
        seq: u64,
        dst: NodeId,
        payload_bytes: usize,
        now: SimTime,
    ) -> DataPacket {
        DataPacket {
            flow,
            seq,
            route: SourceRoute::new(vec![self.id, dst]).unwrap_or_else(|| {
                // dst == self can't occur for traffic, but stay total.
                SourceRoute::new(vec![self.id, NodeId::new(u32::MAX)]).expect("distinct ids")
            }),
            payload_bytes,
            generated_at: now,
            salvage_count: 0,
        }
    }

    fn start_discovery(&mut self, target: NodeId, now: SimTime) -> Vec<DsrAction> {
        let ttl = if self.cfg.ring_search {
            1
        } else {
            self.cfg.network_ttl
        };
        let timeout = if self.cfg.ring_search {
            self.cfg.nonprop_timeout
        } else {
            self.cfg.discovery_timeout
        };
        self.discoveries.insert(
            target,
            Discovery {
                round: 0,
                deadline: now + timeout,
            },
        );
        vec![self.emit_rreq(target, ttl)]
    }

    fn emit_rreq(&mut self, target: NodeId, ttl: u8) -> DsrAction {
        let id = self.next_rreq_id;
        self.next_rreq_id += 1;
        self.seen_rreq.insert(self.id, id);
        self.counters.rreq_originated += 1;
        DsrAction::Broadcast {
            packet: DsrPacket::Rreq(Rreq {
                origin: self.id,
                target,
                id,
                ttl,
                record: vec![self.id],
            }),
        }
    }

    // ------------------------------------------------------------------
    // Timers
    // ------------------------------------------------------------------

    /// Advances protocol timers (call at least once per beacon interval).
    // det: hot-ok — timer path: allocates only when a ring-search deadline fires
    pub fn tick(&mut self, now: SimTime) -> Vec<DsrAction> {
        let mut out = Vec::new();

        // Expire buffered packets.
        let timeout = self.cfg.send_buffer_timeout;
        let (expired, kept): (Vec<_>, Vec<_>) = std::mem::take(&mut self.send_buffer)
            .into_iter()
            .partition(|b| now - b.buffered_at > timeout);
        self.send_buffer = kept;
        for b in expired {
            self.counters.data_dropped += 1;
            let p = self.orphan_packet(b.flow, b.seq, b.dst, b.payload_bytes, b.generated_at);
            out.push(DsrAction::Dropped {
                packet: p,
                reason: DropReason::SendBufferTimeout,
            });
        }

        // Cancel discoveries with nothing left to send.
        let live_targets: BTreeSet<NodeId> = self.send_buffer.iter().map(|b| b.dst).collect();
        self.discoveries.retain(|t, _| live_targets.contains(t));

        // Retry or abandon due discoveries. The BTreeMap iterates in
        // NodeId order, so event order never depends on hasher state.
        let due: Vec<NodeId> = self
            .discoveries
            .iter()
            .filter(|(_, d)| d.deadline <= now)
            .map(|(&t, _)| t)
            .collect();
        for target in due {
            let round = self.discoveries[&target].round;
            if round >= self.cfg.max_discovery_retries {
                self.discoveries.remove(&target);
                let (dead, kept): (Vec<_>, Vec<_>) = std::mem::take(&mut self.send_buffer)
                    .into_iter()
                    .partition(|b| b.dst == target);
                self.send_buffer = kept;
                for b in dead {
                    self.counters.data_dropped += 1;
                    let p =
                        self.orphan_packet(b.flow, b.seq, b.dst, b.payload_bytes, b.generated_at);
                    out.push(DsrAction::Dropped {
                        packet: p,
                        reason: DropReason::DiscoveryFailed,
                    });
                }
                continue;
            }
            // Escalate: network-wide flood with exponential backoff.
            let backoff = self
                .cfg
                .discovery_timeout
                .mul_f64(f64::from(1u32 << round.min(4)));
            if let Some(d) = self.discoveries.get_mut(&target) {
                d.round = round + 1;
                d.deadline = now + backoff;
            }
            let ttl = self.cfg.network_ttl;
            out.push(self.emit_rreq(target, ttl));
        }

        self.cache.purge_expired(now);
        out
    }

    // ------------------------------------------------------------------
    // Reception
    // ------------------------------------------------------------------

    /// Handles a packet addressed to this node (or a broadcast it
    /// received). `from` is the transmitting neighbor.
    pub fn receive(&mut self, packet: DsrPacket, from: NodeId, now: SimTime) -> Vec<DsrAction> {
        match packet {
            DsrPacket::Rreq(r) => self.receive_rreq(&r, from, now),
            DsrPacket::Rrep(r) => self.receive_rrep(r, now),
            DsrPacket::Rerr(e) => self.receive_rerr(e, now),
            DsrPacket::Data(d) => self.receive_data(d, now),
        }
    }

    /// Borrowing variant of [`receive`](Self::receive) for broadcast
    /// fan-out: one interned packet is handed to every recipient without
    /// cloning it per receiver. RREQs — the only packet kind that
    /// actually floods — are processed entirely by reference; the rare
    /// non-RREQ broadcast falls back to a clone.
    pub fn receive_ref(&mut self, packet: &DsrPacket, from: NodeId, now: SimTime) -> Vec<DsrAction> {
        match packet {
            DsrPacket::Rreq(r) => self.receive_rreq(r, from, now),
            // det: hot-ok — non-RREQ broadcasts are rare (see doc above)
            other => self.receive(other.clone(), from, now),
        }
    }

    /// The extended record of `r` as seen from this node: `r.record`
    /// plus our own id. Only built on the paths that transmit it.
    fn extended_record(&self, r: &Rreq) -> Vec<NodeId> {
        let mut record = Vec::with_capacity(r.record.len() + 1);
        record.extend_from_slice(&r.record);
        record.push(self.id);
        record
    }

    // det: hot-ok — route-discovery control path; the dominant duplicate-arrival case stays off the allocator
    fn receive_rreq(&mut self, r: &Rreq, from: NodeId, now: SimTime) -> Vec<DsrAction> {
        let mut out = Vec::new();
        if r.origin == self.id || r.record.contains(&self.id) {
            return out; // our own flood, or a loop
        }

        // The accumulated record teaches us the path back to the
        // origin. In a flood, every neighbor's rebroadcast re-delivers
        // the same record; observing it through the reusable scratch
        // keeps those duplicate arrivals allocation-free.
        let mut back = std::mem::take(&mut self.path_scratch);
        back.clear();
        back.push(self.id);
        back.extend(r.record.iter().rev().copied());
        if SourceRoute::is_valid_path(&back) {
            self.observe_and_report(&back, now, &mut out);
            self.drain_send_buffer(now, &mut out);
        }
        back.clear();
        self.path_scratch = back;

        if r.target == self.id {
            // Answer every distinct arrival (up to the cap): DSR offers
            // the origin alternative routes.
            let sent = self.replies_sent.entry((r.origin, r.id)).or_insert(0);
            if *sent < self.cfg.max_replies_per_request {
                *sent += 1;
                if let Some(full) = SourceRoute::new(self.extended_record(r)) {
                    self.counters.rrep_from_target += 1;
                    out.push(DsrAction::Unicast {
                        next_hop: from,
                        packet: DsrPacket::Rrep(Rrep {
                            route: full,
                            replier: self.id,
                            from_cache: false,
                        }),
                    });
                }
            }
            return out;
        }

        if !self.seen_rreq.insert(r.origin, r.id) {
            return out; // duplicate: already forwarded or answered
        }

        // Cached reply by an intermediate node.
        if self.cfg.reply_from_cache {
            if let Some(tail) = self.cache.find_route(r.target, now) {
                if let Some(prefix) = SourceRoute::new(self.extended_record(r)) {
                    if let Some(full) = prefix.spliced_with(&tail) {
                        self.counters.rrep_from_cache += 1;
                        out.push(DsrAction::Unicast {
                            next_hop: from,
                            packet: DsrPacket::Rrep(Rrep {
                                route: full,
                                replier: self.id,
                                from_cache: true,
                            }),
                        });
                        return out; // reply suppresses propagation here
                    }
                }
            }
        }

        if r.ttl > 1 {
            self.counters.rreq_forwarded += 1;
            out.push(DsrAction::Broadcast {
                packet: DsrPacket::Rreq(Rreq {
                    origin: r.origin,
                    target: r.target,
                    id: r.id,
                    ttl: r.ttl - 1,
                    record: self.extended_record(r),
                }),
            });
        }
        out
    }

    // det: hot-ok — route-discovery control path, absent from the settled steady state
    fn receive_rrep(&mut self, r: Rrep, now: SimTime) -> Vec<DsrAction> {
        let mut out = Vec::new();
        self.learn_route(&r.route, now, &mut out);
        if r.origin() == self.id {
            // Discovery complete; drain already happened in learn_route.
            self.discoveries.remove(&r.target());
            return out;
        }
        // Relay toward the origin.
        if let Some(next_hop) = r.route.prev_hop_before(self.id) {
            self.counters.rrep_forwarded += 1;
            out.push(DsrAction::Unicast {
                next_hop,
                packet: DsrPacket::Rrep(r),
            });
        }
        out
    }

    // det: hot-ok — error-propagation path, driven by link-failure events
    fn receive_rerr(&mut self, e: Rerr, now: SimTime) -> Vec<DsrAction> {
        let mut out = Vec::new();
        self.cache.remove_link(e.broken_from, e.broken_to);
        let _ = now;
        if e.destination() == self.id {
            return out;
        }
        if let Some(next_hop) = e.path.next_hop_after(self.id) {
            self.counters.rerr_forwarded += 1;
            out.push(DsrAction::Unicast {
                next_hop,
                packet: DsrPacket::Rerr(e),
            });
        }
        out
    }

    // det: hot-ok — per-packet data-plane event, outside the quiet-interval zero-alloc contract (crates/bench/tests/zero_alloc.rs)
    fn receive_data(&mut self, d: DataPacket, now: SimTime) -> Vec<DsrAction> {
        let mut out = Vec::new();
        if d.dst() == self.id {
            // Destination also learns the (reverse) route.
            self.learn_route(&d.route, now, &mut out);
            self.counters.data_delivered += 1;
            out.push(DsrAction::Delivered { packet: d });
            return out;
        }
        // Relays learn the route they carry.
        self.learn_route(&d.route, now, &mut out);
        match d.route.next_hop_after(self.id) {
            Some(next_hop) => {
                self.counters.data_forwarded += 1;
                out.push(DsrAction::Unicast {
                    next_hop,
                    packet: DsrPacket::Data(d),
                });
            }
            None => {
                self.counters.data_dropped += 1;
                out.push(DsrAction::Dropped {
                    packet: d,
                    reason: DropReason::NotOnRoute,
                });
            }
        }
        out
    }

    // ------------------------------------------------------------------
    // Overhearing
    // ------------------------------------------------------------------

    /// Handles a packet this node overheard from `transmitter` without
    /// being addressed. This is where DSR's eavesdropping-based route
    /// learning — the subject of the paper — happens.
    // det: hot-ok — promiscuous overhearing allocates per packet event, outside the quiet-interval zero-alloc contract
    pub fn overhear(
        &mut self,
        packet: &DsrPacket,
        transmitter: NodeId,
        now: SimTime,
    ) -> Vec<DsrAction> {
        let mut out = Vec::new();
        match packet {
            DsrPacket::Data(d) => {
                if d.route.contains(self.id) {
                    self.learn_route(&d.route, now, &mut out);
                } else {
                    self.learn_via_transmitter(transmitter, &d.route, now, &mut out);
                }
            }
            DsrPacket::Rrep(r) => {
                if r.route.contains(self.id) {
                    self.learn_route(&r.route, now, &mut out);
                } else {
                    self.learn_via_transmitter(transmitter, &r.route, now, &mut out);
                }
            }
            DsrPacket::Rerr(e) => {
                // Stale-route eradication: the reason the paper keeps
                // RERR overhearing *unconditional*.
                self.cache.remove_link(e.broken_from, e.broken_to);
            }
            DsrPacket::Rreq(_) => {
                // Broadcasts are received, not overheard.
            }
        }
        out
    }

    // ------------------------------------------------------------------
    // Link failures
    // ------------------------------------------------------------------

    /// The MAC reports that `next_hop` is unreachable and returns the
    /// undeliverable packet.
    // det: hot-ok — link-breakage repair path, driven by MAC failure events
    pub fn link_failure(
        &mut self,
        next_hop: NodeId,
        packet: DsrPacket,
        now: SimTime,
    ) -> Vec<DsrAction> {
        let mut out = Vec::new();
        self.cache.remove_link(self.id, next_hop);
        let DsrPacket::Data(mut d) = packet else {
            // Lost control packets are not retried: DSR regenerates them
            // through its normal timeout machinery.
            return out;
        };

        // Report the break to the source (unless we are the source).
        // Identical reports within the suppression window are elided: a
        // break returns whole queues, and every RERR is overheard
        // unconditionally — redundant copies would storm the channel.
        if d.src() != self.id {
            let key = (next_hop, d.src());
            let suppressed = self
                .recent_rerrs
                .get(&key)
                .is_some_and(|&t| now.saturating_since(t) < self.cfg.rerr_suppression);
            if !suppressed {
                if let Some(prefix) = d.route.prefix_to(self.id) {
                    let path = prefix.reversed();
                    if let Some(hop) = path.next_hop_after(self.id) {
                        self.recent_rerrs.insert(key, now);
                        self.counters.rerr_originated += 1;
                        out.push(DsrAction::Unicast {
                            next_hop: hop,
                            packet: DsrPacket::Rerr(Rerr {
                                detector: self.id,
                                broken_from: self.id,
                                broken_to: next_hop,
                                path,
                            }),
                        });
                    }
                }
            }
        }

        // Try to salvage with an alternative cached route.
        if d.salvage_count < self.cfg.max_salvage {
            if let Some(tail) = self.cache.find_route(d.dst(), now) {
                let new_route = if d.src() == self.id {
                    Some(tail)
                } else {
                    d.route
                        .prefix_to(self.id)
                        .and_then(|p| p.spliced_with(&tail))
                };
                if let Some(route) = new_route {
                    let hop = route
                        .next_hop_after(self.id)
                        .expect("salvage route has a next hop");
                    d.route = route;
                    d.salvage_count += 1;
                    self.counters.data_salvaged += 1;
                    out.push(DsrAction::Unicast {
                        next_hop: hop,
                        packet: DsrPacket::Data(d),
                    });
                    return out;
                }
            }
        }

        if d.src() == self.id {
            // Re-enter the discovery path.
            if self.send_buffer.len() < self.cfg.send_buffer_capacity {
                let dst = d.dst();
                self.send_buffer.push(Buffered {
                    flow: d.flow,
                    seq: d.seq,
                    dst,
                    payload_bytes: d.payload_bytes,
                    generated_at: d.generated_at,
                    buffered_at: now,
                });
                if !self.discoveries.contains_key(&dst) {
                    out.extend(self.start_discovery(dst, now));
                }
            } else {
                self.counters.data_dropped += 1;
                out.push(DsrAction::Dropped {
                    packet: d,
                    reason: DropReason::SendBufferFull,
                });
            }
        } else {
            self.counters.data_dropped += 1;
            out.push(DsrAction::Dropped {
                packet: d,
                reason: DropReason::SalvageFailed,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcast_engine::SimDuration;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn route(ids: &[u32]) -> SourceRoute {
        SourceRoute::new(ids.iter().copied().map(NodeId::new).collect()).unwrap()
    }

    fn node(id: u32) -> DsrNode {
        DsrNode::new(n(id), DsrConfig::default())
    }

    fn data(route_ids: &[u32], flow: u32, seq: u64) -> DataPacket {
        DataPacket {
            flow,
            seq,
            route: route(route_ids),
            payload_bytes: 512,
            generated_at: SimTime::ZERO,
            salvage_count: 0,
        }
    }

    #[test]
    fn originate_with_cached_route_sends_immediately() {
        let mut s = node(0);
        let mut scratch = Vec::new();
        s.learn_route(&route(&[0, 1, 2]), SimTime::ZERO, &mut scratch);
        let actions = s.originate(7, 3, n(2), 512, SimTime::from_secs(1));
        match &actions[..] {
            [DsrAction::Unicast { next_hop, packet: DsrPacket::Data(d) }] => {
                assert_eq!(*next_hop, n(1));
                assert_eq!(d.flow, 7);
                assert_eq!(d.seq, 3);
                assert_eq!(d.route, route(&[0, 1, 2]));
            }
            other => panic!("unexpected actions {other:?}"),
        }
        assert_eq!(s.counters().data_sent, 1);
    }

    #[test]
    fn originate_without_route_starts_ring_search() {
        let mut s = node(0);
        let actions = s.originate(0, 0, n(9), 512, SimTime::ZERO);
        match &actions[..] {
            [DsrAction::Broadcast { packet: DsrPacket::Rreq(r) }] => {
                assert_eq!(r.origin, n(0));
                assert_eq!(r.target, n(9));
                assert_eq!(r.ttl, 1, "ring search starts non-propagating");
                assert_eq!(r.record, vec![n(0)]);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(s.discovering(n(9)));
        assert_eq!(s.send_buffer_len(), 1);
        // A second packet to the same target does not re-flood.
        let again = s.originate(0, 1, n(9), 512, SimTime::from_millis(100));
        assert!(again.is_empty());
        assert_eq!(s.send_buffer_len(), 2);
    }

    #[test]
    fn target_replies_to_rreq() {
        let mut t = node(2);
        let rreq = Rreq {
            origin: n(0),
            target: n(2),
            id: 0,
            ttl: 16,
            record: vec![n(0), n(1)],
        };
        let actions = t.receive(DsrPacket::Rreq(rreq), n(1), SimTime::ZERO);
        let rrep = actions.iter().find_map(|a| match a {
            DsrAction::Unicast { next_hop, packet: DsrPacket::Rrep(r) } => {
                Some((*next_hop, r.clone()))
            }
            _ => None,
        });
        let (hop, r) = rrep.expect("target must reply");
        assert_eq!(hop, n(1));
        assert_eq!(r.route, route(&[0, 1, 2]));
        assert!(!r.from_cache);
        assert_eq!(t.counters().rrep_from_target, 1);
        // The target also learned the reverse route to the origin.
        assert!(t.cache().has_route(n(0)));
    }

    #[test]
    fn target_reply_cap_limits_alternates() {
        let cap = DsrConfig::default().max_replies_per_request;
        let mut t = node(2);
        let mut replies = 0;
        for k in 0..(cap + 3) {
            let rreq = Rreq {
                origin: n(0),
                target: n(2),
                id: 0,
                ttl: 16,
                // Distinct arrival paths.
                record: vec![n(0), n(10 + k)],
            };
            let actions = t.receive(DsrPacket::Rreq(rreq), n(10 + k), SimTime::ZERO);
            replies += actions
                .iter()
                .filter(|a| matches!(a, DsrAction::Unicast { packet: DsrPacket::Rrep(_), .. }))
                .count();
        }
        assert_eq!(replies as u32, cap);
    }

    #[test]
    fn intermediate_forwards_rreq_once() {
        let mut m = node(1);
        let rreq = Rreq {
            origin: n(0),
            target: n(9),
            id: 4,
            ttl: 16,
            record: vec![n(0)],
        };
        let first = m.receive(DsrPacket::Rreq(rreq.clone()), n(0), SimTime::ZERO);
        let fwd = first.iter().find_map(|a| match a {
            DsrAction::Broadcast { packet: DsrPacket::Rreq(r) } => Some(r.clone()),
            _ => None,
        });
        let r = fwd.expect("must rebroadcast");
        assert_eq!(r.ttl, 15);
        assert_eq!(r.record, vec![n(0), n(1)]);
        // Duplicate suppressed.
        let second = m.receive(DsrPacket::Rreq(rreq), n(5), SimTime::ZERO);
        assert!(!second
            .iter()
            .any(|a| matches!(a, DsrAction::Broadcast { .. })));
        assert_eq!(m.counters().rreq_forwarded, 1);
    }

    #[test]
    fn nonpropagating_rreq_dies_at_ttl_1() {
        let mut m = node(1);
        let rreq = Rreq {
            origin: n(0),
            target: n(9),
            id: 4,
            ttl: 1,
            record: vec![n(0)],
        };
        let actions = m.receive(DsrPacket::Rreq(rreq), n(0), SimTime::ZERO);
        assert!(!actions
            .iter()
            .any(|a| matches!(a, DsrAction::Broadcast { .. })));
    }

    #[test]
    fn intermediate_replies_from_cache_and_suppresses_flood() {
        let mut m = node(1);
        let mut scratch = Vec::new();
        m.learn_route(&route(&[1, 5, 9]), SimTime::ZERO, &mut scratch);
        let rreq = Rreq {
            origin: n(0),
            target: n(9),
            id: 4,
            ttl: 16,
            record: vec![n(0)],
        };
        let actions = m.receive(DsrPacket::Rreq(rreq), n(0), SimTime::ZERO);
        let rrep = actions.iter().find_map(|a| match a {
            DsrAction::Unicast { packet: DsrPacket::Rrep(r), .. } => Some(r.clone()),
            _ => None,
        });
        let r = rrep.expect("cached reply");
        assert!(r.from_cache);
        assert_eq!(r.route, route(&[0, 1, 5, 9]));
        assert!(!actions
            .iter()
            .any(|a| matches!(a, DsrAction::Broadcast { .. })));
        assert_eq!(m.counters().rrep_from_cache, 1);
    }

    #[test]
    fn cache_reply_with_loop_falls_back_to_flood() {
        let mut m = node(1);
        let mut scratch = Vec::new();
        // Cached tail goes back through the origin: splicing would loop.
        m.learn_route(&route(&[1, 0, 9]), SimTime::ZERO, &mut scratch);
        let rreq = Rreq {
            origin: n(0),
            target: n(9),
            id: 4,
            ttl: 16,
            record: vec![n(0)],
        };
        let actions = m.receive(DsrPacket::Rreq(rreq), n(0), SimTime::ZERO);
        assert!(
            actions
                .iter()
                .any(|a| matches!(a, DsrAction::Broadcast { .. })),
            "loopy cache reply must not suppress the flood"
        );
    }

    #[test]
    fn rrep_relays_toward_origin_and_origin_drains_buffer() {
        // Node 1 relays an RREP for origin 0.
        let mut relay = node(1);
        let rrep = Rrep {
            route: route(&[0, 1, 2]),
            replier: n(2),
            from_cache: false,
        };
        let actions = relay.receive(DsrPacket::Rrep(rrep.clone()), n(2), SimTime::ZERO);
        assert!(actions.iter().any(|a| matches!(
            a,
            DsrAction::Unicast { next_hop, packet: DsrPacket::Rrep(_) } if *next_hop == n(0)
        )));
        assert_eq!(relay.counters().rrep_forwarded, 1);

        // Origin 0 was waiting on a buffered packet to 2.
        let mut origin = node(0);
        let start = origin.originate(3, 0, n(2), 512, SimTime::ZERO);
        assert!(matches!(start[0], DsrAction::Broadcast { .. }));
        let actions = origin.receive(DsrPacket::Rrep(rrep), n(1), SimTime::from_millis(600));
        let sent = actions.iter().find_map(|a| match a {
            DsrAction::Unicast { next_hop, packet: DsrPacket::Data(d) } => {
                Some((*next_hop, d.clone()))
            }
            _ => None,
        });
        let (hop, d) = sent.expect("buffered packet must flush");
        assert_eq!(hop, n(1));
        assert_eq!(d.flow, 3);
        assert!(!origin.discovering(n(2)));
        assert_eq!(origin.send_buffer_len(), 0);
    }

    #[test]
    fn data_forwarding_and_delivery() {
        let mut relay = node(1);
        let actions = relay.receive(DsrPacket::Data(data(&[0, 1, 2], 0, 0)), n(0), SimTime::ZERO);
        assert!(actions.iter().any(|a| matches!(
            a,
            DsrAction::Unicast { next_hop, packet: DsrPacket::Data(_) } if *next_hop == n(2)
        )));
        assert_eq!(relay.counters().data_forwarded, 1);
        // The relay learned both directions.
        assert!(relay.cache().has_route(n(0)));
        assert!(relay.cache().has_route(n(2)));

        let mut dest = node(2);
        let actions = dest.receive(DsrPacket::Data(data(&[0, 1, 2], 0, 5)), n(1), SimTime::ZERO);
        assert!(actions
            .iter()
            .any(|a| matches!(a, DsrAction::Delivered { packet } if packet.seq == 5)));
        assert_eq!(dest.counters().data_delivered, 1);
    }

    #[test]
    fn overhearing_data_caches_routes_through_transmitter() {
        // Node 7 overhears node 1 relaying 0→1→2 data.
        let mut x = node(7);
        let pkt = DsrPacket::Data(data(&[0, 1, 2], 0, 0));
        let actions = x.overhear(&pkt, n(1), SimTime::ZERO);
        let cached: Vec<_> = actions
            .iter()
            .filter_map(|a| match a {
                DsrAction::RouteCached { route } => Some(route.clone()),
                _ => None,
            })
            .collect();
        assert!(cached.contains(&route(&[7, 1, 2])), "toward destination");
        assert!(cached.contains(&route(&[7, 1, 0])), "toward source");
    }

    #[test]
    fn overhearing_rerr_purges_stale_link() {
        let mut x = node(7);
        let mut scratch = Vec::new();
        x.learn_route(&route(&[7, 3, 4, 5]), SimTime::ZERO, &mut scratch);
        assert!(x.cache().has_route(n(5)));
        let rerr = DsrPacket::Rerr(Rerr {
            detector: n(3),
            broken_from: n(4),
            broken_to: n(5),
            path: route(&[3, 2, 0]),
        });
        x.overhear(&rerr, n(3), SimTime::ZERO);
        assert!(!x.cache().has_route(n(5)), "stale tail invalidated");
        assert!(x.cache().has_route(n(4)), "prefix survives");
    }

    #[test]
    fn link_failure_at_relay_sends_rerr_and_salvages() {
        let mut relay = node(1);
        let mut scratch = Vec::new();
        relay.learn_route(&route(&[1, 5, 3]), SimTime::ZERO, &mut scratch);
        // Relaying 0→1→2→3 data; link 1→2 fails.
        let actions = relay.link_failure(
            n(2),
            DsrPacket::Data(data(&[0, 1, 2, 3], 0, 0)),
            SimTime::ZERO,
        );
        let rerr = actions.iter().find_map(|a| match a {
            DsrAction::Unicast { next_hop, packet: DsrPacket::Rerr(e) } => {
                Some((*next_hop, e.clone()))
            }
            _ => None,
        });
        let (hop, e) = rerr.expect("RERR to source");
        assert_eq!(hop, n(0));
        assert_eq!((e.broken_from, e.broken_to), (n(1), n(2)));
        assert_eq!(e.destination(), n(0));
        let salvaged = actions.iter().find_map(|a| match a {
            DsrAction::Unicast { next_hop, packet: DsrPacket::Data(d) } => {
                Some((*next_hop, d.clone()))
            }
            _ => None,
        });
        let (hop, d) = salvaged.expect("salvage via 5");
        assert_eq!(hop, n(5));
        assert_eq!(d.route, route(&[0, 1, 5, 3]));
        assert_eq!(d.salvage_count, 1);
        assert_eq!(relay.counters().data_salvaged, 1);
    }

    #[test]
    fn link_failure_without_alternative_drops_at_relay() {
        let mut relay = node(1);
        let actions = relay.link_failure(
            n(2),
            DsrPacket::Data(data(&[0, 1, 2], 0, 0)),
            SimTime::ZERO,
        );
        assert!(actions
            .iter()
            .any(|a| matches!(a, DsrAction::Dropped { reason: DropReason::SalvageFailed, .. })));
    }

    #[test]
    fn link_failure_at_source_rediscovers() {
        let mut src = node(0);
        let actions =
            src.link_failure(n(1), DsrPacket::Data(data(&[0, 1, 2], 0, 0)), SimTime::ZERO);
        assert!(actions
            .iter()
            .any(|a| matches!(a, DsrAction::Broadcast { packet: DsrPacket::Rreq(_) })));
        assert_eq!(src.send_buffer_len(), 1);
        assert!(src.discovering(n(2)));
    }

    #[test]
    fn salvage_cap_is_respected() {
        let mut relay = node(1);
        let mut scratch = Vec::new();
        relay.learn_route(&route(&[1, 5, 3]), SimTime::ZERO, &mut scratch);
        let mut d = data(&[0, 1, 2, 3], 0, 0);
        d.salvage_count = DsrConfig::default().max_salvage;
        let actions = relay.link_failure(n(2), DsrPacket::Data(d), SimTime::ZERO);
        assert!(
            actions
                .iter()
                .any(|a| matches!(a, DsrAction::Dropped { .. })),
            "over-salvaged packet must drop"
        );
    }

    #[test]
    fn discovery_escalates_then_gives_up() {
        let cfg = DsrConfig::default();
        let mut s = node(0);
        let first = s.originate(0, 0, n(9), 512, SimTime::ZERO);
        assert!(matches!(
            &first[..],
            [DsrAction::Broadcast { packet: DsrPacket::Rreq(r) }] if r.ttl == 1
        ));
        // After the non-propagating timeout, a network-wide flood goes out.
        let t1 = SimTime::ZERO + cfg.nonprop_timeout + SimDuration::from_millis(1);
        let retry = s.tick(t1);
        assert!(matches!(
            &retry[..],
            [DsrAction::Broadcast { packet: DsrPacket::Rreq(r) }] if r.ttl == cfg.network_ttl
        ));
        // Exhaust the retries. Whichever timeout fires first — the
        // discovery retry cap or the 30 s send-buffer lifetime — the
        // packet must eventually be abandoned.
        let mut t = t1;
        let mut dropped = false;
        for _ in 0..cfg.max_discovery_retries + 2 {
            t += SimDuration::from_secs(120);
            let actions = s.tick(t);
            if actions.iter().any(|a| {
                matches!(
                    a,
                    DsrAction::Dropped {
                        reason: DropReason::DiscoveryFailed | DropReason::SendBufferTimeout,
                        ..
                    }
                )
            }) {
                dropped = true;
                break;
            }
        }
        assert!(dropped, "discovery must eventually abandon the packet");
        assert!(!s.discovering(n(9)));
        assert_eq!(s.send_buffer_len(), 0);
    }

    #[test]
    fn send_buffer_times_out() {
        let mut s = node(0);
        s.originate(0, 0, n(9), 512, SimTime::ZERO);
        let late = SimTime::ZERO + DsrConfig::default().send_buffer_timeout
            + SimDuration::from_secs(1);
        let actions = s.tick(late);
        assert!(actions
            .iter()
            .any(|a| matches!(a, DsrAction::Dropped { reason: DropReason::SendBufferTimeout, .. })));
        assert_eq!(s.send_buffer_len(), 0);
    }

    #[test]
    fn send_buffer_overflow_drops_newcomer() {
        let cfg = DsrConfig::default();
        let mut s = node(0);
        for seq in 0..cfg.send_buffer_capacity as u64 {
            s.originate(0, seq, n(9), 512, SimTime::ZERO);
        }
        let actions = s.originate(0, 999, n(9), 512, SimTime::ZERO);
        assert!(actions
            .iter()
            .any(|a| matches!(a, DsrAction::Dropped { reason: DropReason::SendBufferFull, .. })));
    }

    #[test]
    fn overheard_route_flushes_waiting_traffic() {
        // The Rcast premise: an overheard route substitutes for a flood.
        let mut s = node(0);
        s.originate(0, 0, n(2), 512, SimTime::ZERO);
        assert_eq!(s.send_buffer_len(), 1);
        let pkt = DsrPacket::Data(data(&[5, 1, 2], 9, 9));
        let actions = s.overhear(&pkt, n(1), SimTime::from_millis(300));
        assert!(
            actions.iter().any(|a| matches!(
                a,
                DsrAction::Unicast { packet: DsrPacket::Data(d), .. } if d.flow == 0
            )),
            "buffered packet should ride the overheard route 0→1→2"
        );
        assert_eq!(s.send_buffer_len(), 0);
    }
}
