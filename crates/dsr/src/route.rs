//! Source routes: ordered node sequences with hop-lookup helpers.

use rcast_engine::NodeId;

/// A loop-free source route: the full node sequence from origin to
/// destination, inclusive.
///
/// # Example
///
/// ```
/// use rcast_engine::NodeId;
/// use rcast_dsr::SourceRoute;
///
/// let r = SourceRoute::new(vec![0, 1, 2, 3].into_iter().map(NodeId::new).collect()).unwrap();
/// assert_eq!(r.next_hop_after(NodeId::new(1)), Some(NodeId::new(2)));
/// assert_eq!(r.prev_hop_before(NodeId::new(1)), Some(NodeId::new(0)));
/// assert_eq!(r.hop_count(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SourceRoute {
    nodes: Vec<NodeId>,
}

impl SourceRoute {
    /// Builds a route from a node sequence.
    ///
    /// Returns `None` when the sequence is shorter than two nodes or
    /// contains a repeated node (routes must be loop-free).
    pub fn new(nodes: Vec<NodeId>) -> Option<Self> {
        if !Self::is_valid_path(&nodes) {
            return None;
        }
        Some(SourceRoute { nodes })
    }

    /// `true` when `nodes` would form a valid route (≥ 2 nodes,
    /// loop-free) — [`new`](Self::new)'s precondition, checkable on a
    /// borrowed slice without materializing the `Vec`.
    pub fn is_valid_path(nodes: &[NodeId]) -> bool {
        if nodes.len() < 2 {
            return false;
        }
        for (i, a) in nodes.iter().enumerate() {
            if nodes[i + 1..].contains(a) {
                return false;
            }
        }
        true
    }

    /// Replaces the node sequence in place, reusing the existing
    /// allocation — the recycling counterpart of [`new`](Self::new) for
    /// storage pools like the route cache's eviction slot.
    ///
    /// # Panics
    ///
    /// Panics when `nodes` fails [`is_valid_path`](Self::is_valid_path).
    pub fn refill(&mut self, nodes: &[NodeId]) {
        assert!(Self::is_valid_path(nodes), "invalid route");
        self.nodes.clear();
        // det: hot-ok — reuses the existing storage; grows only when the new path is longer than any predecessor
        self.nodes.extend_from_slice(nodes);
    }

    /// The origin (first node).
    pub fn origin(&self) -> NodeId {
        self.nodes[0]
    }

    /// The destination (last node).
    pub fn destination(&self) -> NodeId {
        *self.nodes.last().expect("routes have >= 2 nodes")
    }

    /// The full node sequence.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Number of hops (links), i.e. `len − 1`.
    pub fn hop_count(&self) -> usize {
        self.nodes.len() - 1
    }

    /// Position of `node` on the route.
    pub fn position_of(&self, node: NodeId) -> Option<usize> {
        self.nodes.iter().position(|&n| n == node)
    }

    /// `true` when `node` lies on the route.
    pub fn contains(&self, node: NodeId) -> bool {
        self.position_of(node).is_some()
    }

    /// The hop following `node` (toward the destination).
    pub fn next_hop_after(&self, node: NodeId) -> Option<NodeId> {
        let i = self.position_of(node)?;
        self.nodes.get(i + 1).copied()
    }

    /// The hop preceding `node` (toward the origin).
    pub fn prev_hop_before(&self, node: NodeId) -> Option<NodeId> {
        let i = self.position_of(node)?;
        if i == 0 {
            None
        } else {
            Some(self.nodes[i - 1])
        }
    }

    /// The intermediate (relay) nodes: everything but the endpoints.
    pub fn intermediates(&self) -> &[NodeId] {
        &self.nodes[1..self.nodes.len() - 1]
    }

    /// The reversed route (valid under DSR's bidirectional-link
    /// assumption).
    // det: hot-ok — route surgery materializes a new path on repair/learning events only
    pub fn reversed(&self) -> SourceRoute {
        let mut nodes = self.nodes.clone();
        nodes.reverse();
        SourceRoute { nodes }
    }

    /// The sub-route from `node` to the destination, if `node` is on the
    /// route and not the destination itself.
    // det: hot-ok — route surgery materializes a new path on repair/learning events only
    pub fn suffix_from(&self, node: NodeId) -> Option<SourceRoute> {
        let i = self.position_of(node)?;
        SourceRoute::new(self.nodes[i..].to_vec())
    }

    /// The sub-route from the origin to `node`, if `node` is on the
    /// route and not the origin itself.
    // det: hot-ok — route surgery materializes a new path on repair/learning events only
    pub fn prefix_to(&self, node: NodeId) -> Option<SourceRoute> {
        let i = self.position_of(node)?;
        SourceRoute::new(self.nodes[..=i].to_vec())
    }

    /// `true` when the route uses the directed link `a → b` or `b → a`.
    pub fn uses_link(&self, a: NodeId, b: NodeId) -> bool {
        self.nodes
            .windows(2)
            .any(|w| (w[0] == a && w[1] == b) || (w[0] == b && w[1] == a))
    }

    /// Concatenates `self` with `tail`, which must start where `self`
    /// ends. Returns `None` when the splice would introduce a loop.
    // det: hot-ok — route surgery materializes a new path on repair/learning events only
    pub fn spliced_with(&self, tail: &SourceRoute) -> Option<SourceRoute> {
        if self.destination() != tail.origin() {
            return None;
        }
        let mut nodes = self.nodes.clone();
        nodes.extend_from_slice(&tail.nodes()[1..]);
        SourceRoute::new(nodes)
    }
}

impl std::fmt::Display for SourceRoute {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut first = true;
        for n in &self.nodes {
            if !first {
                write!(f, "→")?;
            }
            write!(f, "{n}")?;
            first = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn route(ids: &[u32]) -> SourceRoute {
        SourceRoute::new(ids.iter().copied().map(NodeId::new).collect()).unwrap()
    }

    #[test]
    fn construction_rules() {
        assert!(SourceRoute::new(vec![]).is_none());
        assert!(SourceRoute::new(vec![NodeId::new(1)]).is_none());
        assert!(SourceRoute::new(vec![NodeId::new(1), NodeId::new(1)]).is_none());
        assert!(SourceRoute::new(vec![
            NodeId::new(1),
            NodeId::new(2),
            NodeId::new(1)
        ])
        .is_none());
        assert!(SourceRoute::new(vec![NodeId::new(1), NodeId::new(2)]).is_some());
    }

    #[test]
    fn endpoints_and_hops() {
        let r = route(&[5, 6, 7, 8]);
        assert_eq!(r.origin(), NodeId::new(5));
        assert_eq!(r.destination(), NodeId::new(8));
        assert_eq!(r.hop_count(), 3);
        assert_eq!(r.intermediates(), &[NodeId::new(6), NodeId::new(7)]);
    }

    #[test]
    fn hop_lookup() {
        let r = route(&[0, 1, 2]);
        assert_eq!(r.next_hop_after(NodeId::new(0)), Some(NodeId::new(1)));
        assert_eq!(r.next_hop_after(NodeId::new(2)), None);
        assert_eq!(r.prev_hop_before(NodeId::new(0)), None);
        assert_eq!(r.prev_hop_before(NodeId::new(2)), Some(NodeId::new(1)));
        assert_eq!(r.next_hop_after(NodeId::new(9)), None);
    }

    #[test]
    fn reverse_and_subroutes() {
        let r = route(&[0, 1, 2, 3]);
        assert_eq!(r.reversed(), route(&[3, 2, 1, 0]));
        assert_eq!(r.suffix_from(NodeId::new(1)), Some(route(&[1, 2, 3])));
        assert_eq!(r.suffix_from(NodeId::new(3)), None, "dest has no suffix");
        assert_eq!(r.prefix_to(NodeId::new(2)), Some(route(&[0, 1, 2])));
        assert_eq!(r.prefix_to(NodeId::new(0)), None, "origin has no prefix");
    }

    #[test]
    fn link_usage() {
        let r = route(&[0, 1, 2]);
        assert!(r.uses_link(NodeId::new(0), NodeId::new(1)));
        assert!(r.uses_link(NodeId::new(1), NodeId::new(0)), "undirected");
        assert!(!r.uses_link(NodeId::new(0), NodeId::new(2)));
    }

    #[test]
    fn splice() {
        let a = route(&[0, 1, 2]);
        let b = route(&[2, 3]);
        assert_eq!(a.spliced_with(&b), Some(route(&[0, 1, 2, 3])));
        // Mismatched junction.
        assert_eq!(a.spliced_with(&route(&[5, 6])), None);
        // Splice that would loop.
        let looped = route(&[2, 1]);
        assert_eq!(a.spliced_with(&looped), None);
    }

    #[test]
    fn display() {
        assert_eq!(route(&[0, 1, 2]).to_string(), "n0→n1→n2");
    }
}
