//! The DSR link cache: Hu & Johnson's alternative to the path cache.
//!
//! Where a path cache stores whole source routes, a link cache
//! decomposes every learned route into individual links and answers
//! queries by shortest-path search over the link graph. Hu & Johnson
//! ("Caching Strategies in On-Demand Routing Protocols", MOBICOM 2000 —
//! reference [11] of the Rcast paper) show the choice materially affects
//! DSR's stale-route behaviour; the `ablation_cache` experiment measures
//! it under Rcast.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use rcast_engine::{NodeId, SimDuration, SimTime};

use crate::route::SourceRoute;

/// Bookkeeping for one directed link.
#[derive(Debug, Clone, Copy)]
struct LinkEntry {
    inserted_at: SimTime,
    last_used: SimTime,
}

/// A per-node DSR link cache.
///
/// Links are stored directionally but inserted in both directions
/// (DSR's bidirectional-link assumption over 802.11). Capacity counts
/// directed links; eviction is LRU.
///
/// # Example
///
/// ```
/// use rcast_engine::{NodeId, SimTime};
/// use rcast_dsr::{LinkCache, SourceRoute};
///
/// let me = NodeId::new(0);
/// let mut cache = LinkCache::new(me, 64, None);
/// let learned = SourceRoute::new(vec![0, 1, 2].into_iter().map(NodeId::new).collect()).unwrap();
/// cache.insert(learned, SimTime::ZERO);
/// // Shortest-path search recombines links into a route.
/// let r = cache.find_route(NodeId::new(2), SimTime::ZERO).unwrap();
/// assert_eq!(r.nodes().len(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct LinkCache {
    owner: NodeId,
    capacity: usize,
    timeout: Option<SimDuration>,
    // Ordered map: eviction scans and BFS adjacency building iterate
    // this, and iteration order must never depend on hasher state
    // (rcast-lint D002).
    links: BTreeMap<(NodeId, NodeId), LinkEntry>,
}

impl LinkCache {
    /// An empty cache owned by `owner` holding at most `capacity`
    /// directed links, each expiring after `timeout` if set.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(owner: NodeId, capacity: usize, timeout: Option<SimDuration>) -> Self {
        assert!(capacity > 0, "link cache capacity must be positive");
        LinkCache {
            owner,
            capacity,
            timeout,
            links: BTreeMap::new(),
        }
    }

    /// The owning node.
    pub fn owner(&self) -> NodeId {
        self.owner
    }

    /// Number of directed links stored.
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// `true` when no links are stored.
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }

    fn evict_to_capacity(&mut self) {
        while self.links.len() > self.capacity {
            // Tie-break by key: among equally-old links the smallest
            // key goes, so eviction is a pure function of the contents.
            let (&key, _) = self
                .links
                .iter()
                .min_by_key(|(&k, e)| (e.last_used, k))
                .expect("non-empty while over capacity");
            self.links.remove(&key);
        }
    }

    /// Decomposes `route` into links (both directions) and stores them.
    /// Returns `true` when at least one previously unknown link was
    /// added.
    pub fn insert(&mut self, route: SourceRoute, now: SimTime) -> bool {
        let mut added = false;
        for w in route.nodes().windows(2) {
            for (a, b) in [(w[0], w[1]), (w[1], w[0])] {
                match self.links.get_mut(&(a, b)) {
                    Some(e) => {
                        e.last_used = now;
                        e.inserted_at = now; // refreshed evidence
                    }
                    None => {
                        self.links.insert(
                            (a, b),
                            LinkEntry {
                                inserted_at: now,
                                last_used: now,
                            },
                        );
                        added = true;
                    }
                }
            }
        }
        self.evict_to_capacity();
        added
    }

    /// Drops expired links.
    pub fn purge_expired(&mut self, now: SimTime) {
        if let Some(ttl) = self.timeout {
            self.links.retain(|_, e| now - e.inserted_at <= ttl);
        }
    }

    /// Breadth-first shortest-path tree from the owner over stored
    /// links; returns each reachable node's predecessor.
    fn bfs_tree(&self) -> BTreeMap<NodeId, NodeId> {
        let mut pred: BTreeMap<NodeId, NodeId> = BTreeMap::new();
        let mut seen: BTreeSet<NodeId> = BTreeSet::from([self.owner]);
        let mut queue = VecDeque::from([self.owner]);
        // `links` iterates in key order, so each adjacency list comes
        // out sorted and the BFS visits ties deterministically.
        let mut adjacency: BTreeMap<NodeId, Vec<NodeId>> = BTreeMap::new();
        for &(a, b) in self.links.keys() {
            adjacency.entry(a).or_default().push(b);
        }
        while let Some(u) = queue.pop_front() {
            if let Some(neighbors) = adjacency.get(&u) {
                for &v in neighbors {
                    if seen.insert(v) {
                        pred.insert(v, u);
                        queue.push_back(v);
                    }
                }
            }
        }
        pred
    }

    fn path_to(&self, dst: NodeId, pred: &BTreeMap<NodeId, NodeId>) -> Option<SourceRoute> {
        if dst == self.owner || !pred.contains_key(&dst) {
            return None;
        }
        let mut nodes = vec![dst];
        let mut cur = dst;
        while cur != self.owner {
            cur = *pred.get(&cur)?;
            nodes.push(cur);
        }
        nodes.reverse();
        SourceRoute::new(nodes)
    }

    /// The shortest cached route from the owner to `dst`, touching the
    /// LRU stamps of its links.
    pub fn find_route(&mut self, dst: NodeId, now: SimTime) -> Option<SourceRoute> {
        self.purge_expired(now);
        let pred = self.bfs_tree();
        let route = self.path_to(dst, &pred)?;
        for w in route.nodes().windows(2) {
            // Touch both directions: links are one bidirectional fact.
            for key in [(w[0], w[1]), (w[1], w[0])] {
                if let Some(e) = self.links.get_mut(&key) {
                    e.last_used = now;
                }
            }
        }
        Some(route)
    }

    /// `true` when `dst` is reachable through stored links.
    pub fn has_route(&self, dst: NodeId) -> bool {
        dst != self.owner && self.bfs_tree().contains_key(&dst)
    }

    /// Removes the link `a ↔ b` (both directions). Returns how many
    /// directed entries were removed.
    pub fn remove_link(&mut self, a: NodeId, b: NodeId) -> usize {
        let mut removed = 0;
        for key in [(a, b), (b, a)] {
            if self.links.remove(&key).is_some() {
                removed += 1;
            }
        }
        removed
    }

    /// The shortest-path tree rendered as one route per reachable
    /// destination — the link cache's analog of "cache contents" for
    /// the role-number metric.
    pub fn paths(&self) -> Vec<SourceRoute> {
        let pred = self.bfs_tree();
        let dsts: Vec<NodeId> = pred.keys().copied().collect();
        dsts.into_iter()
            .filter_map(|d| self.path_to(d, &pred))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn route(ids: &[u32]) -> SourceRoute {
        SourceRoute::new(ids.iter().copied().map(NodeId::new).collect()).unwrap()
    }

    fn cache() -> LinkCache {
        LinkCache::new(n(0), 64, None)
    }

    #[test]
    fn recombines_links_across_routes() {
        let mut c = cache();
        // Learn 0-1-2 and, separately, 2-5: the link cache can answer
        // 0→5 even though no single learned route contains it — the
        // structural advantage over a path cache.
        c.insert(route(&[0, 1, 2]), SimTime::ZERO);
        c.insert(route(&[2, 5]), SimTime::ZERO);
        let r = c.find_route(n(5), SimTime::ZERO).unwrap();
        assert_eq!(r, route(&[0, 1, 2, 5]));
    }

    #[test]
    fn finds_shortest_combination() {
        let mut c = cache();
        c.insert(route(&[0, 1, 2, 3, 4]), SimTime::ZERO);
        c.insert(route(&[0, 7, 4]), SimTime::ZERO);
        let r = c.find_route(n(4), SimTime::ZERO).unwrap();
        assert_eq!(r.hop_count(), 2);
    }

    #[test]
    fn bidirectional_insertion() {
        let mut c = cache();
        // A route *toward* the owner still teaches usable links.
        c.insert(route(&[3, 2, 0]), SimTime::ZERO);
        assert!(c.has_route(n(3)));
        assert_eq!(
            c.find_route(n(3), SimTime::ZERO).unwrap(),
            route(&[0, 2, 3])
        );
    }

    #[test]
    fn link_removal_disconnects() {
        let mut c = cache();
        c.insert(route(&[0, 1, 2]), SimTime::ZERO);
        assert_eq!(c.remove_link(n(1), n(2)), 2);
        assert!(c.has_route(n(1)));
        assert!(!c.has_route(n(2)));
        assert_eq!(c.remove_link(n(1), n(2)), 0, "idempotent");
    }

    #[test]
    fn alternative_survives_removal() {
        let mut c = cache();
        c.insert(route(&[0, 1, 2]), SimTime::ZERO);
        c.insert(route(&[0, 3, 2]), SimTime::ZERO);
        c.remove_link(n(1), n(2));
        // Still reachable via 3 — the stale-route resilience Hu &
        // Johnson attribute to link caches.
        assert_eq!(
            c.find_route(n(2), SimTime::from_secs(1)).unwrap(),
            route(&[0, 3, 2])
        );
    }

    #[test]
    fn capacity_evicts_lru_links() {
        let mut c = LinkCache::new(n(0), 4, None);
        c.insert(route(&[0, 1]), SimTime::ZERO); // 2 directed links
        c.insert(route(&[0, 2]), SimTime::from_secs(1)); // 4 links
        // Touch 0↔1 so 0↔2 is LRU.
        let _ = c.find_route(n(1), SimTime::from_secs(2));
        c.insert(route(&[0, 3]), SimTime::from_secs(3)); // forces eviction
        assert!(c.len() <= 4);
        assert!(c.has_route(n(1)));
        assert!(c.has_route(n(3)));
        assert!(!c.has_route(n(2)), "LRU links evicted");
    }

    #[test]
    fn timeout_expires_links() {
        let mut c = LinkCache::new(n(0), 64, Some(SimDuration::from_secs(5)));
        c.insert(route(&[0, 1]), SimTime::ZERO);
        assert!(c.find_route(n(1), SimTime::from_secs(4)).is_some());
        assert!(c.find_route(n(1), SimTime::from_secs(6)).is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn owner_is_never_a_destination() {
        let mut c = cache();
        c.insert(route(&[0, 1]), SimTime::ZERO);
        assert!(!c.has_route(n(0)));
        assert!(c.find_route(n(0), SimTime::ZERO).is_none());
    }

    #[test]
    fn paths_render_the_tree() {
        let mut c = cache();
        c.insert(route(&[0, 1, 2]), SimTime::ZERO);
        c.insert(route(&[1, 5]), SimTime::ZERO);
        let paths = c.paths();
        // Reachable: 1, 2, 5.
        assert_eq!(paths.len(), 3);
        assert!(paths.iter().all(|p| p.origin() == n(0)));
        assert!(paths.iter().any(|p| p.destination() == n(5)));
    }

    #[test]
    fn deterministic_ties() {
        // Two equal-length options: BFS with sorted adjacency must pick
        // the same one every time.
        let build = || {
            let mut c = cache();
            c.insert(route(&[0, 1, 9]), SimTime::ZERO);
            c.insert(route(&[0, 2, 9]), SimTime::ZERO);
            c.find_route(n(9), SimTime::ZERO).unwrap()
        };
        assert_eq!(build(), build());
    }
}
