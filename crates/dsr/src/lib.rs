//! Dynamic Source Routing (DSR) for the RandomCast reproduction.
//!
//! DSR (Johnson & Maltz) is the routing protocol the paper pairs with
//! the 802.11 PSM, chosen because it gathers route state by
//! **overhearing** rather than periodic control broadcasts. This crate
//! implements the protocol slice the evaluation exercises:
//!
//! * [`SourceRoute`] — loop-free full-path routes,
//! * [`RouteCache`] — the per-node path cache with LRU capacity,
//!   link-based invalidation (with prefix truncation), and an optional
//!   timeout for the cache-strategy ablation,
//! * [`DsrPacket`] — RREQ / RREP / RERR / source-routed data with
//!   realistic wire sizes,
//! * [`DsrNode`] — the event-driven state machine: route discovery with
//!   expanding-ring search, cached replies, multiple RREPs per
//!   discovery, send buffering, salvaging, RERR propagation, and the
//!   promiscuous-overhearing learning path that Rcast throttles.
//!
//! The crate is MAC-agnostic: [`DsrNode`] consumes events and produces
//! [`DsrAction`]s; the simulation core (`rcast-core`) maps actions onto
//! MAC frames and assigns each packet type its overhearing level
//! (randomized for RREP/data, unconditional for RERR — Section 3.3 of
//! the paper).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod cache;
mod config;
mod link_cache;
mod node;
mod packet;
mod route;

pub use cache::{CacheConfig, CacheStrategy, PathCache, RouteCache};
pub use link_cache::LinkCache;
pub use config::DsrConfig;
pub use node::{DropReason, DsrAction, DsrCounters, DsrNode};
pub use packet::{DataPacket, DsrPacket, Rerr, Rreq, Rrep};
pub use route::SourceRoute;
