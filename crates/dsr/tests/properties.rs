//! Property-based tests for DSR's route cache and source routes, on the
//! in-tree `rcast-testkit` harness (hermetic: no proptest).

use rcast_dsr::{CacheConfig, RouteCache, SourceRoute};
use rcast_engine::{NodeId, SimTime};
use rcast_testkit::{prop_assert, prop_assert_eq, Check, Gen};

/// Generator: a loop-free route of 2..=8 nodes drawn from ids 0..20.
/// Returns `None` when the draw collapses below two distinct nodes.
fn route(g: &mut Gen) -> Option<SourceRoute> {
    let ids = g.vec(2, 8, |g| g.u32_range(0, 20));
    let mut seen = std::collections::HashSet::new();
    let nodes: Vec<NodeId> = ids
        .into_iter()
        .filter(|&i| seen.insert(i))
        .map(NodeId::new)
        .collect();
    SourceRoute::new(nodes)
}

/// Generator: keeps drawing until a valid route appears.
fn some_route(g: &mut Gen) -> SourceRoute {
    loop {
        if let Some(r) = route(g) {
            return r;
        }
    }
}

/// Reversal is an involution and preserves hop count.
#[test]
fn reverse_involution() {
    Check::new("reverse_involution").run(|g| {
        let r = some_route(g);
        prop_assert_eq!(r.reversed().reversed(), r.clone());
        prop_assert_eq!(r.reversed().hop_count(), r.hop_count());
        prop_assert_eq!(r.reversed().origin(), r.destination());
        Ok(())
    });
}

/// Every node on the route except the destination has a next hop,
/// and following next hops walks the whole route.
#[test]
fn next_hops_walk_the_route() {
    Check::new("next_hops_walk_the_route").run(|g| {
        let r = some_route(g);
        let mut cur = r.origin();
        let mut walked = vec![cur];
        while let Some(next) = r.next_hop_after(cur) {
            walked.push(next);
            cur = next;
        }
        prop_assert_eq!(&walked[..], r.nodes());
        prop_assert_eq!(cur, r.destination());
        Ok(())
    });
}

/// Splicing prefix_to(x) with suffix_from(x) reconstructs the route.
#[test]
fn prefix_suffix_splice_identity() {
    Check::new("prefix_suffix_splice_identity").run(|g| {
        let r = some_route(g);
        for &x in r.intermediates() {
            let prefix = r.prefix_to(x).expect("intermediate has a prefix");
            let suffix = r.suffix_from(x).expect("intermediate has a suffix");
            prop_assert_eq!(prefix.spliced_with(&suffix), Some(r.clone()));
        }
        Ok(())
    });
}

/// Whatever is inserted, every cached path starts at the owner and
/// the cache never exceeds its capacity.
#[test]
fn cache_invariants() {
    Check::new("cache_invariants").run(|g| {
        let routes = g.vec(1, 40, some_route);
        let capacity = g.usize_range(1, 16);
        let owner = NodeId::new(0);
        let mut cache = RouteCache::new(
            owner,
            CacheConfig {
                capacity,
                ..CacheConfig::default()
            },
        );
        for (i, r) in routes.iter().enumerate() {
            cache.insert(r.clone(), SimTime::from_secs(i as u64));
            prop_assert!(cache.len() <= capacity);
        }
        for path in cache.paths() {
            prop_assert_eq!(path.origin(), owner);
        }
        Ok(())
    });
}

/// `find_route` returns a route from the owner to the destination,
/// and never one using a removed link.
#[test]
fn find_route_is_correct_and_respects_removals() {
    Check::new("find_route_is_correct_and_respects_removals").run(|g| {
        let routes = g.vec(1, 30, some_route);
        let dst = NodeId::new(g.u32_range(1, 20));
        let link = (
            NodeId::new(g.u32_range(0, 20)),
            NodeId::new(g.u32_range(0, 20)),
        );
        let owner = NodeId::new(0);
        let mut cache = RouteCache::new(owner, CacheConfig::default());
        for r in &routes {
            cache.insert(r.clone(), SimTime::ZERO);
        }
        if let Some(found) = cache.find_route(dst, SimTime::from_secs(1)) {
            prop_assert_eq!(found.origin(), owner);
            prop_assert_eq!(found.destination(), dst);
        }
        let (a, b) = link;
        cache.remove_link(a, b);
        if let Some(found) = cache.find_route(dst, SimTime::from_secs(2)) {
            prop_assert!(!found.uses_link(a, b), "returned a route over a dead link");
        }
        Ok(())
    });
}

/// Shortest-route preference: with a direct 1-hop route cached, the
/// cache never prefers a longer alternative.
#[test]
fn shortest_route_preferred() {
    Check::new("shortest_route_preferred").run(|g| {
        let routes = g.vec(0, 20, some_route);
        let dst = NodeId::new(g.u32_range(1, 20));
        let owner = NodeId::new(0);
        let mut cache = RouteCache::new(
            owner,
            CacheConfig {
                capacity: 64,
                ..CacheConfig::default()
            },
        );
        for r in &routes {
            cache.insert(r.clone(), SimTime::ZERO);
        }
        cache.insert(
            SourceRoute::new(vec![owner, dst]).expect("direct route"),
            SimTime::from_secs(1),
        );
        let found = cache
            .find_route(dst, SimTime::from_secs(2))
            .expect("direct route cached");
        prop_assert_eq!(found.hop_count(), 1);
        Ok(())
    });
}
