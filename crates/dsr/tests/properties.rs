//! Property-based tests for DSR's route cache and source routes.

use proptest::prelude::*;
use rcast_engine::{NodeId, SimTime};
use rcast_dsr::{CacheConfig, RouteCache, SourceRoute};

/// Strategy: a loop-free route of 2..=8 nodes drawn from ids 0..20.
fn route_strategy() -> impl Strategy<Value = SourceRoute> {
    prop::collection::vec(0u32..20, 2..8)
        .prop_filter_map("needs >=2 distinct loop-free nodes", |ids| {
            let mut seen = std::collections::HashSet::new();
            let nodes: Vec<NodeId> = ids
                .into_iter()
                .filter(|&i| seen.insert(i))
                .map(NodeId::new)
                .collect();
            SourceRoute::new(nodes)
        })
}

proptest! {
    /// Reversal is an involution and preserves hop count.
    #[test]
    fn reverse_involution(r in route_strategy()) {
        prop_assert_eq!(r.reversed().reversed(), r.clone());
        prop_assert_eq!(r.reversed().hop_count(), r.hop_count());
        prop_assert_eq!(r.reversed().origin(), r.destination());
    }

    /// Every node on the route except the destination has a next hop,
    /// and following next hops walks the whole route.
    #[test]
    fn next_hops_walk_the_route(r in route_strategy()) {
        let mut cur = r.origin();
        let mut walked = vec![cur];
        while let Some(next) = r.next_hop_after(cur) {
            walked.push(next);
            cur = next;
        }
        prop_assert_eq!(&walked[..], r.nodes());
        prop_assert_eq!(cur, r.destination());
    }

    /// Splicing prefix_to(x) with suffix_from(x) reconstructs the route.
    #[test]
    fn prefix_suffix_splice_identity(r in route_strategy()) {
        for &x in r.intermediates() {
            let prefix = r.prefix_to(x).expect("intermediate has a prefix");
            let suffix = r.suffix_from(x).expect("intermediate has a suffix");
            prop_assert_eq!(prefix.spliced_with(&suffix), Some(r.clone()));
        }
    }

    /// Whatever is inserted, every cached path starts at the owner and
    /// the cache never exceeds its capacity.
    #[test]
    fn cache_invariants(
        routes in prop::collection::vec(route_strategy(), 1..40),
        capacity in 1usize..16,
    ) {
        let owner = NodeId::new(0);
        let mut cache = RouteCache::new(
            owner,
            CacheConfig { capacity, ..CacheConfig::default() },
        );
        for (i, r) in routes.iter().enumerate() {
            cache.insert(r.clone(), SimTime::from_secs(i as u64));
            prop_assert!(cache.len() <= capacity);
        }
        for path in cache.paths() {
            prop_assert_eq!(path.origin(), owner);
        }
    }

    /// `find_route` returns a route from the owner to the destination,
    /// and never one using a removed link.
    #[test]
    fn find_route_is_correct_and_respects_removals(
        routes in prop::collection::vec(route_strategy(), 1..30),
        dst in 1u32..20,
        link in (0u32..20, 0u32..20),
    ) {
        let owner = NodeId::new(0);
        let mut cache = RouteCache::new(owner, CacheConfig::default());
        for r in &routes {
            cache.insert(r.clone(), SimTime::ZERO);
        }
        let dst = NodeId::new(dst);
        if let Some(found) = cache.find_route(dst, SimTime::from_secs(1)) {
            prop_assert_eq!(found.origin(), owner);
            prop_assert_eq!(found.destination(), dst);
        }
        let (a, b) = (NodeId::new(link.0), NodeId::new(link.1));
        cache.remove_link(a, b);
        if let Some(found) = cache.find_route(dst, SimTime::from_secs(2)) {
            prop_assert!(!found.uses_link(a, b), "returned a route over a dead link");
        }
    }

    /// Shortest-route preference: with a direct 1-hop route cached, the
    /// cache never prefers a longer alternative.
    #[test]
    fn shortest_route_preferred(routes in prop::collection::vec(route_strategy(), 0..20), dst in 1u32..20) {
        let owner = NodeId::new(0);
        let dst = NodeId::new(dst);
        let mut cache = RouteCache::new(
            owner,
            CacheConfig { capacity: 64, ..CacheConfig::default() },
        );
        for r in &routes {
            cache.insert(r.clone(), SimTime::ZERO);
        }
        cache.insert(
            SourceRoute::new(vec![owner, dst]).expect("direct route"),
            SimTime::from_secs(1),
        );
        let found = cache.find_route(dst, SimTime::from_secs(2)).expect("direct route cached");
        prop_assert_eq!(found.hop_count(), 1);
    }
}
