//! Property-based tests: streaming statistics agree with naive
//! formulas, and merging agrees with concatenation. On the in-tree
//! `rcast-testkit` harness.

use rcast_metrics::{population_variance, RunningStats};
use rcast_testkit::{prop_assert, prop_assert_eq, Check, Gen};

fn naive_mean(v: &[f64]) -> f64 {
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

fn naive_var(v: &[f64]) -> f64 {
    if v.is_empty() {
        return 0.0;
    }
    let m = naive_mean(v);
    v.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / v.len() as f64
}

/// Welford matches the two-pass textbook formulas.
#[test]
fn welford_matches_naive() {
    Check::new("welford_matches_naive").run(|g| {
        let v = g.vec(0, 300, |g: &mut Gen| g.f64_range(-1e6, 1e6));
        let s = RunningStats::from_slice(&v);
        prop_assert!((s.mean() - naive_mean(&v)).abs() < 1e-6 * (1.0 + naive_mean(&v).abs()));
        let nv = naive_var(&v);
        prop_assert!((s.population_variance() - nv).abs() < 1e-4 * (1.0 + nv.abs()));
        prop_assert_eq!(s.count() as usize, v.len());
        if !v.is_empty() {
            prop_assert_eq!(s.min(), v.iter().cloned().fold(f64::INFINITY, f64::min));
            prop_assert_eq!(s.max(), v.iter().cloned().fold(f64::NEG_INFINITY, f64::max));
        }
        Ok(())
    });
}

/// merge(A, B) == stats(A ++ B) for arbitrary splits.
#[test]
fn merge_equals_concat() {
    Check::new("merge_equals_concat").run(|g| {
        let a = g.vec(0, 150, |g: &mut Gen| g.f64_range(-1e4, 1e4));
        let b = g.vec(0, 150, |g: &mut Gen| g.f64_range(-1e4, 1e4));
        let mut merged = RunningStats::from_slice(&a);
        merged.merge(&RunningStats::from_slice(&b));
        let concat: Vec<f64> = a.iter().chain(&b).copied().collect();
        let direct = RunningStats::from_slice(&concat);
        prop_assert_eq!(merged.count(), direct.count());
        prop_assert!((merged.mean() - direct.mean()).abs() < 1e-6 * (1.0 + direct.mean().abs()));
        prop_assert!(
            (merged.population_variance() - direct.population_variance()).abs()
                < 1e-4 * (1.0 + direct.population_variance().abs())
        );
        Ok(())
    });
}

/// Variance is translation-invariant and scales quadratically.
#[test]
fn variance_affine_laws() {
    Check::new("variance_affine_laws").run(|g| {
        let v = g.vec(2, 100, |g: &mut Gen| g.f64_range(-1e3, 1e3));
        let shift = g.f64_range(-1e3, 1e3);
        let scale = g.f64_range(-10.0, 10.0);
        let base = population_variance(&v);
        let shifted: Vec<f64> = v.iter().map(|x| x + shift).collect();
        prop_assert!((population_variance(&shifted) - base).abs() < 1e-5 * (1.0 + base));
        let scaled: Vec<f64> = v.iter().map(|x| x * scale).collect();
        let expect = base * scale * scale;
        prop_assert!(
            (population_variance(&scaled) - expect).abs() < 1e-5 * (1.0 + expect.abs())
        );
        Ok(())
    });
}
