//! Property-based tests: streaming statistics agree with naive
//! formulas, and merging agrees with concatenation.

use proptest::prelude::*;
use rcast_metrics::{population_variance, RunningStats};

fn naive_mean(v: &[f64]) -> f64 {
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

fn naive_var(v: &[f64]) -> f64 {
    if v.is_empty() {
        return 0.0;
    }
    let m = naive_mean(v);
    v.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / v.len() as f64
}

proptest! {
    /// Welford matches the two-pass textbook formulas.
    #[test]
    fn welford_matches_naive(v in prop::collection::vec(-1e6f64..1e6, 0..300)) {
        let s = RunningStats::from_slice(&v);
        prop_assert!((s.mean() - naive_mean(&v)).abs() < 1e-6 * (1.0 + naive_mean(&v).abs()));
        let nv = naive_var(&v);
        prop_assert!((s.population_variance() - nv).abs() < 1e-4 * (1.0 + nv.abs()));
        prop_assert_eq!(s.count() as usize, v.len());
        if !v.is_empty() {
            prop_assert_eq!(s.min(), v.iter().cloned().fold(f64::INFINITY, f64::min));
            prop_assert_eq!(s.max(), v.iter().cloned().fold(f64::NEG_INFINITY, f64::max));
        }
    }

    /// merge(A, B) == stats(A ++ B) for arbitrary splits.
    #[test]
    fn merge_equals_concat(
        a in prop::collection::vec(-1e4f64..1e4, 0..150),
        b in prop::collection::vec(-1e4f64..1e4, 0..150),
    ) {
        let mut merged = RunningStats::from_slice(&a);
        merged.merge(&RunningStats::from_slice(&b));
        let concat: Vec<f64> = a.iter().chain(&b).copied().collect();
        let direct = RunningStats::from_slice(&concat);
        prop_assert_eq!(merged.count(), direct.count());
        prop_assert!((merged.mean() - direct.mean()).abs() < 1e-6 * (1.0 + direct.mean().abs()));
        prop_assert!(
            (merged.population_variance() - direct.population_variance()).abs()
                < 1e-4 * (1.0 + direct.population_variance().abs())
        );
    }

    /// Variance is translation-invariant and scales quadratically.
    #[test]
    fn variance_affine_laws(
        v in prop::collection::vec(-1e3f64..1e3, 2..100),
        shift in -1e3f64..1e3,
        scale in -10.0f64..10.0,
    ) {
        let base = population_variance(&v);
        let shifted: Vec<f64> = v.iter().map(|x| x + shift).collect();
        prop_assert!((population_variance(&shifted) - base).abs() < 1e-5 * (1.0 + base));
        let scaled: Vec<f64> = v.iter().map(|x| x * scale).collect();
        let expect = base * scale * scale;
        prop_assert!(
            (population_variance(&scaled) - expect).abs() < 1e-5 * (1.0 + expect.abs())
        );
    }
}
