//! Evaluation metrics for the RandomCast reproduction.
//!
//! Every number in the paper's Section 4 maps to a type here:
//!
//! | Paper metric | Type |
//! |---|---|
//! | Per-node energy, total energy, EPB (Figs. 5, 7a/c/d/f) | [`EnergyReport`] |
//! | Variance of energy consumption (Fig. 6) | [`EnergyReport::variance`] |
//! | Packet delivery ratio, delay (Figs. 7b/e, 8a/c) | [`DeliveryTracker`] |
//! | Normalized routing overhead (Fig. 8b/d) | [`DeliveryTracker::normalized_routing_overhead`] |
//! | Role numbers (Fig. 9) | [`RoleNumbers`] |
//!
//! [`RunningStats`] provides the underlying streaming statistics and
//! [`TextTable`] renders the figure-regeneration binaries' output.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod confidence;
mod csv;
mod delivery;
mod histogram;
mod energy;
mod role;
mod stats;
mod table;
mod timeseries;

pub use confidence::{confidence95, summarize95, t_critical_95, Confidence, SampleSummary};
pub use csv::CsvTable;
pub use delivery::DeliveryTracker;
pub use histogram::Histogram;
pub use energy::EnergyReport;
pub use role::RoleNumbers;
pub use stats::{mean, population_variance, RunningStats};
pub use table::{fmt_f64, TextTable};
pub use timeseries::{IntervalSeries, TimeSeries};
