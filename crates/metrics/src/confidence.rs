//! Confidence intervals for seed-averaged results.
//!
//! The paper repeats every scenario ten times; a faithful harness should
//! say how tight those averages are. [`confidence95`] computes the
//! classic two-sided Student-t interval for the mean.

use crate::stats::RunningStats;

/// Two-sided 95 % critical values of Student's t-distribution for
/// `df = 1..=30`; beyond 30 the normal approximation (1.960) is used.
const T_TABLE_95: [f64; 30] = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
    2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
    2.052, 2.048, 2.045, 2.042,
];

/// The 95 % t critical value for `df` degrees of freedom.
pub fn t_critical_95(df: u64) -> f64 {
    if df == 0 {
        f64::INFINITY
    } else if df <= 30 {
        T_TABLE_95[(df - 1) as usize]
    } else {
        1.960
    }
}

/// A symmetric confidence interval around a mean.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Confidence {
    /// The sample mean.
    pub mean: f64,
    /// The half-width of the interval (`mean ± half_width`).
    pub half_width: f64,
}

impl Confidence {
    /// Lower bound.
    pub fn low(&self) -> f64 {
        self.mean - self.half_width
    }

    /// Upper bound.
    pub fn high(&self) -> f64 {
        self.mean + self.half_width
    }

    /// `true` when `other`'s interval does not overlap this one —
    /// the difference of means is significant at the interval's level.
    pub fn separated_from(&self, other: &Confidence) -> bool {
        self.high() < other.low() || other.high() < self.low()
    }
}

impl std::fmt::Display for Confidence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.3} ± {:.3}", self.mean, self.half_width)
    }
}

/// The 95 % confidence interval for the mean of `samples`
/// (per-seed results of one experiment point).
///
/// With fewer than two samples the half-width is infinite — a single
/// run says nothing about run-to-run spread.
pub fn confidence95(samples: &[f64]) -> Confidence {
    let stats = RunningStats::from_slice(samples);
    let n = stats.count();
    if n < 2 {
        return Confidence {
            mean: stats.mean(),
            half_width: f64::INFINITY,
        };
    }
    let se = (stats.sample_variance() / n as f64).sqrt();
    Confidence {
        mean: stats.mean(),
        half_width: t_critical_95(n - 1) * se,
    }
}

/// Mean, spread and 95 % interval of one experiment point's per-seed
/// samples — the statistics a sweep artifact carries per cell metric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleSummary {
    /// Sample count.
    pub n: u64,
    /// The sample mean.
    pub mean: f64,
    /// The sample standard deviation (n − 1 denominator); `0` for a
    /// single sample.
    pub stddev: f64,
    /// Half-width of the 95 % Student-t interval; infinite below two
    /// samples.
    pub half_width95: f64,
}

impl SampleSummary {
    /// The summary as a [`Confidence`] interval, for overlap gating.
    pub fn confidence(&self) -> Confidence {
        Confidence {
            mean: self.mean,
            half_width: self.half_width95,
        }
    }
}

/// Summarizes per-seed samples of one metric: mean, sample standard
/// deviation and the 95 % confidence half-width of [`confidence95`].
pub fn summarize95(samples: &[f64]) -> SampleSummary {
    let stats = RunningStats::from_slice(samples);
    let n = stats.count();
    // Sample (n-1) standard deviation, matching the variance the
    // confidence interval is built from — not the population one
    // `RunningStats::std_dev` returns.
    let stddev = if n < 2 {
        0.0
    } else {
        stats.sample_variance().sqrt()
    };
    SampleSummary {
        n,
        mean: stats.mean(),
        stddev,
        half_width95: confidence95(samples).half_width,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t_table_endpoints() {
        assert_eq!(t_critical_95(0), f64::INFINITY);
        assert!((t_critical_95(1) - 12.706).abs() < 1e-9);
        assert!((t_critical_95(9) - 2.262).abs() < 1e-9, "the paper's n=10");
        assert!((t_critical_95(30) - 2.042).abs() < 1e-9);
        assert!((t_critical_95(1000) - 1.960).abs() < 1e-9);
    }

    #[test]
    fn single_sample_is_uninformative() {
        let c = confidence95(&[5.0]);
        assert_eq!(c.mean, 5.0);
        assert!(c.half_width.is_infinite());
    }

    #[test]
    fn textbook_example() {
        // n = 4, mean = 5, sample sd = 2 → hw = 3.182 * 2/2 = 3.182.
        let samples = [3.0, 5.0, 5.0, 7.0];
        let c = confidence95(&samples);
        assert!((c.mean - 5.0).abs() < 1e-12);
        let sd: f64 = 8.0 / 3.0; // sample variance
        let expect = 3.182 * (sd / 4.0_f64).sqrt();
        assert!((c.half_width - expect).abs() < 1e-9, "{c}");
        assert!((c.low() - (5.0 - expect)).abs() < 1e-9);
        assert!((c.high() - (5.0 + expect)).abs() < 1e-9);
    }

    #[test]
    fn zero_variance_collapses() {
        let c = confidence95(&[2.0; 10]);
        assert_eq!(c.mean, 2.0);
        assert_eq!(c.half_width, 0.0);
    }

    #[test]
    fn separation() {
        let a = confidence95(&[1.0, 1.1, 0.9, 1.0]);
        let b = confidence95(&[5.0, 5.1, 4.9, 5.0]);
        assert!(a.separated_from(&b));
        assert!(b.separated_from(&a));
        let c = confidence95(&[1.0, 5.0, 3.0, 2.5]);
        assert!(!a.separated_from(&c));
    }

    #[test]
    fn summary_matches_confidence95() {
        let samples = [3.0, 5.0, 5.0, 7.0];
        let s = summarize95(&samples);
        assert_eq!(s.n, 4);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.stddev - (8.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.half_width95, confidence95(&samples).half_width);
        assert_eq!(s.confidence(), confidence95(&samples));
    }

    #[test]
    fn summary_degenerate_sizes() {
        let one = summarize95(&[4.5]);
        assert_eq!(one.n, 1);
        assert_eq!(one.mean, 4.5);
        assert_eq!(one.stddev, 0.0);
        assert!(one.half_width95.is_infinite());
        let none = summarize95(&[]);
        assert_eq!(none.n, 0);
    }

    #[test]
    fn display_format() {
        let c = Confidence {
            mean: 1.5,
            half_width: 0.25,
        };
        assert_eq!(c.to_string(), "1.500 ± 0.250");
    }
}
