//! Plain-text table rendering for the figure-regeneration binaries.

/// A simple aligned-column text table.
///
/// The bench binaries print each paper figure as one of these, so the
/// rows/series can be compared against the paper by eye or diffed in CI.
///
/// # Example
///
/// ```
/// use rcast_metrics::TextTable;
///
/// let mut t = TextTable::new(vec!["rate".into(), "802.11".into(), "Rcast".into()]);
/// t.add_row(vec!["0.4".into(), "129375.0".into(), "39820.1".into()]);
/// let s = t.render();
/// assert!(s.contains("rate"));
/// assert!(s.lines().count() >= 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// A table with the given column headers.
    pub fn new(header: Vec<String>) -> Self {
        TextTable {
            header,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn add_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.header.len(),
            "row width must match header"
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns and a separator line.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                let cell = &cells[i];
                line.push_str(&" ".repeat(widths[i] - cell.len()));
                line.push_str(cell);
            }
            line
        };
        let mut out = fmt_row(&self.header);
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with sensible figure precision.
pub fn fmt_f64(v: f64, decimals: usize) -> String {
    if v.is_infinite() {
        "inf".to_string()
    } else {
        format!("{v:.decimals$}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["a".into(), "long_header".into()]);
        t.add_row(vec!["12345".into(), "1".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        // All lines equal width.
        assert_eq!(lines[0].len(), lines[2].len());
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(!t.is_empty());
        assert_eq!(t.len(), 1);
    }

    #[test]
    #[should_panic]
    fn mismatched_row_panics() {
        let mut t = TextTable::new(vec!["a".into()]);
        t.add_row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f64(1.23456, 2), "1.23");
        assert_eq!(fmt_f64(f64::INFINITY, 2), "inf");
        assert_eq!(fmt_f64(0.0, 0), "0");
    }
}
