//! Packet-delivery bookkeeping: PDR, end-to-end delay, routing overhead.

use rcast_engine::{SimDuration, SimTime};

use crate::histogram::Histogram;
use crate::stats::RunningStats;

/// Tracks data-plane outcomes across a run.
///
/// Feeds three of the paper's metrics: **packet delivery ratio**
/// (Fig. 7b/7e), **average end-to-end delay** (Fig. 8a/8c), and the
/// denominator of **normalized routing overhead** (Fig. 8b/8d).
///
/// # Example
///
/// ```
/// use rcast_engine::{SimDuration, SimTime};
/// use rcast_metrics::DeliveryTracker;
///
/// let mut t = DeliveryTracker::new();
/// t.record_originated();
/// t.record_originated();
/// t.record_delivered(SimTime::from_secs(1), SimTime::from_secs(1) + SimDuration::from_millis(375));
/// assert_eq!(t.delivery_ratio(), 0.5);
/// assert!((t.mean_delay().as_millis_f64() - 375.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct DeliveryTracker {
    originated: u64,
    delivered: u64,
    dropped: u64,
    fault_drops: u64,
    delay: RunningStats,
    delay_hist: Histogram,
    hop_counts: RunningStats,
    control_transmissions: u64,
    data_transmissions: u64,
}

impl Default for DeliveryTracker {
    fn default() -> Self {
        DeliveryTracker::new()
    }
}

impl DeliveryTracker {
    /// An empty tracker. Delay percentiles resolve at millisecond bins
    /// up to 60 s (beacon-paced multi-hop worst cases).
    pub fn new() -> Self {
        DeliveryTracker {
            originated: 0,
            delivered: 0,
            dropped: 0,
            fault_drops: 0,
            delay: RunningStats::new(),
            delay_hist: Histogram::new(60.0, 60_000),
            hop_counts: RunningStats::new(),
            control_transmissions: 0,
            data_transmissions: 0,
        }
    }

    /// A data packet entered the network at its source.
    pub fn record_originated(&mut self) {
        self.originated += 1;
    }

    /// A data packet reached its destination.
    pub fn record_delivered(&mut self, generated_at: SimTime, delivered_at: SimTime) {
        self.delivered += 1;
        let d = delivered_at.saturating_since(generated_at).as_secs_f64();
        self.delay.push(d);
        self.delay_hist.push(d);
    }

    /// A delivered packet's route length (hops), for delay analysis.
    pub fn record_hops(&mut self, hops: usize) {
        self.hop_counts.push(hops as f64);
    }

    /// A data packet was abandoned anywhere in the network.
    pub fn record_dropped(&mut self) {
        self.dropped += 1;
    }

    /// A data packet was destroyed by an injected fault (a crashed
    /// relay's queue, a dead source). Counts as a drop *and* is tallied
    /// separately so chaos runs can attribute losses.
    pub fn record_fault_drop(&mut self) {
        self.dropped += 1;
        self.fault_drops += 1;
    }

    /// One on-air transmission of a routing-control packet
    /// (RREQ/RREP/RERR, counted per hop — the paper's overhead numerator).
    pub fn record_control_transmission(&mut self) {
        self.control_transmissions += 1;
    }

    /// One on-air transmission of a data packet (any hop).
    pub fn record_data_transmission(&mut self) {
        self.data_transmissions += 1;
    }

    /// Packets originated.
    pub fn originated(&self) -> u64 {
        self.originated
    }

    /// Packets delivered end-to-end.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Packets recorded as dropped.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The subset of drops caused by injected faults.
    pub fn fault_drops(&self) -> u64 {
        self.fault_drops
    }

    /// Control-packet transmissions (per hop).
    pub fn control_transmissions(&self) -> u64 {
        self.control_transmissions
    }

    /// Data-packet transmissions (per hop).
    pub fn data_transmissions(&self) -> u64 {
        self.data_transmissions
    }

    /// Delivered / originated, in `[0, 1]`; `0` when nothing originated.
    pub fn delivery_ratio(&self) -> f64 {
        if self.originated == 0 {
            0.0
        } else {
            self.delivered as f64 / self.originated as f64
        }
    }

    /// Mean end-to-end delay of delivered packets.
    pub fn mean_delay(&self) -> SimDuration {
        SimDuration::from_secs_f64(self.delay.mean().max(0.0))
    }

    /// Full delay statistics.
    pub fn delay_stats(&self) -> &RunningStats {
        &self.delay
    }

    /// The `p`-th percentile of end-to-end delay.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn delay_percentile(&self, p: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.delay_hist.percentile(p))
    }

    /// Mean route length (hops) of delivered packets.
    pub fn mean_hops(&self) -> f64 {
        self.hop_counts.mean()
    }

    /// Control transmissions per delivered data packet — the paper's
    /// *normalized routing overhead*. `0` when nothing was delivered.
    pub fn normalized_routing_overhead(&self) -> f64 {
        if self.delivered == 0 {
            0.0
        } else {
            self.control_transmissions as f64 / self.delivered as f64
        }
    }

    /// Merges another tracker (multi-seed aggregation).
    pub fn merge(&mut self, other: &DeliveryTracker) {
        self.originated += other.originated;
        self.delivered += other.delivered;
        self.dropped += other.dropped;
        self.fault_drops += other.fault_drops;
        self.delay.merge(&other.delay);
        self.delay_hist.merge(&other.delay_hist);
        self.hop_counts.merge(&other.hop_counts);
        self.control_transmissions += other.control_transmissions;
        self.data_transmissions += other.data_transmissions;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_tracker_is_all_zero() {
        let t = DeliveryTracker::new();
        assert_eq!(t.delivery_ratio(), 0.0);
        assert_eq!(t.mean_delay(), SimDuration::ZERO);
        assert_eq!(t.normalized_routing_overhead(), 0.0);
        assert_eq!(t.mean_hops(), 0.0);
    }

    #[test]
    fn delay_percentiles_track_the_distribution() {
        let mut t = DeliveryTracker::new();
        for i in 1..=100u64 {
            t.record_originated();
            t.record_delivered(
                SimTime::ZERO,
                SimTime::ZERO + SimDuration::from_millis(10 * i),
            );
        }
        // Uniform 10..=1000 ms: p50 ≈ 500 ms, p95 ≈ 950 ms.
        let p50 = t.delay_percentile(50.0).as_millis_f64();
        let p95 = t.delay_percentile(95.0).as_millis_f64();
        assert!((p50 - 500.0).abs() < 15.0, "{p50}");
        assert!((p95 - 950.0).abs() < 15.0, "{p95}");
        assert!(t.delay_percentile(100.0) >= t.delay_percentile(95.0));
    }

    #[test]
    fn pdr_and_delay() {
        let mut t = DeliveryTracker::new();
        for _ in 0..10 {
            t.record_originated();
        }
        for i in 0..9u64 {
            let g = SimTime::from_secs(i);
            t.record_delivered(g, g + SimDuration::from_millis(100 * (i + 1)));
        }
        t.record_dropped();
        assert!((t.delivery_ratio() - 0.9).abs() < 1e-12);
        // Mean of 100..900 ms = 500 ms.
        assert!((t.mean_delay().as_millis_f64() - 500.0).abs() < 1e-9);
        assert_eq!(t.dropped(), 1);
    }

    #[test]
    fn fault_drops_count_as_drops_and_separately() {
        let mut t = DeliveryTracker::new();
        t.record_originated();
        t.record_dropped();
        t.record_fault_drop();
        assert_eq!(t.dropped(), 2);
        assert_eq!(t.fault_drops(), 1);
        let mut other = DeliveryTracker::new();
        other.record_fault_drop();
        t.merge(&other);
        assert_eq!(t.dropped(), 3);
        assert_eq!(t.fault_drops(), 2);
    }

    #[test]
    fn overhead_normalizes_by_deliveries() {
        let mut t = DeliveryTracker::new();
        t.record_originated();
        t.record_originated();
        t.record_delivered(SimTime::ZERO, SimTime::from_secs(1));
        t.record_delivered(SimTime::ZERO, SimTime::from_secs(1));
        for _ in 0..7 {
            t.record_control_transmission();
        }
        t.record_data_transmission();
        assert!((t.normalized_routing_overhead() - 3.5).abs() < 1e-12);
        assert_eq!(t.data_transmissions(), 1);
    }

    #[test]
    fn merge_sums_everything() {
        let mut a = DeliveryTracker::new();
        a.record_originated();
        a.record_delivered(SimTime::ZERO, SimTime::from_millis(200));
        a.record_control_transmission();
        a.record_hops(2);
        let mut b = DeliveryTracker::new();
        b.record_originated();
        b.record_originated();
        b.record_delivered(SimTime::ZERO, SimTime::from_millis(400));
        b.record_hops(4);
        a.merge(&b);
        assert_eq!(a.originated(), 3);
        assert_eq!(a.delivered(), 2);
        assert!((a.mean_delay().as_millis_f64() - 300.0).abs() < 1e-9);
        assert!((a.mean_hops() - 3.0).abs() < 1e-12);
        assert_eq!(a.control_transmissions(), 1);
    }
}
