//! Time-series collection: per-node metrics sampled over the run.
//!
//! The paper reports end-of-run totals; a release-quality harness should
//! also expose *trajectories* — how energy drains over time, when the
//! balance diverges, when a battery would die. [`TimeSeries`] stores
//! per-node samples at a fixed period and answers slope/crossing
//! queries.

use rcast_engine::{SimDuration, SimTime};

/// Per-node samples of one metric at a fixed sampling period.
///
/// # Example
///
/// ```
/// use rcast_engine::{SimDuration, SimTime};
/// use rcast_metrics::TimeSeries;
///
/// let mut ts = TimeSeries::new(2, SimDuration::from_secs(1));
/// ts.push(SimTime::from_secs(1), &[1.0, 2.0]);
/// ts.push(SimTime::from_secs(2), &[2.0, 4.0]);
/// assert_eq!(ts.samples(), 2);
/// assert_eq!(ts.node_series(1), &[2.0, 4.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries {
    nodes: usize,
    period: SimDuration,
    times: Vec<SimTime>,
    /// Row-major: `values[sample * nodes + node]`.
    values: Vec<f64>,
}

impl TimeSeries {
    /// An empty series for `nodes` nodes sampled every `period`.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn new(nodes: usize, period: SimDuration) -> Self {
        assert!(!period.is_zero(), "sampling period must be positive");
        TimeSeries {
            nodes,
            period,
            times: Vec::new(),
            values: Vec::new(),
        }
    }

    /// The sampling period.
    pub fn period(&self) -> SimDuration {
        self.period
    }

    /// Number of nodes per sample.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Number of samples stored.
    pub fn samples(&self) -> usize {
        self.times.len()
    }

    /// `true` when nothing has been sampled.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Appends one sample.
    ///
    /// # Panics
    ///
    /// Panics if `per_node.len()` differs from the node count or `at`
    /// precedes the previous sample.
    pub fn push(&mut self, at: SimTime, per_node: &[f64]) {
        assert_eq!(per_node.len(), self.nodes, "sample width mismatch");
        if let Some(&last) = self.times.last() {
            assert!(at >= last, "samples must be time-ordered");
        }
        self.times.push(at);
        self.values.extend_from_slice(per_node);
    }

    /// The sample instants.
    pub fn times(&self) -> &[SimTime] {
        &self.times
    }

    /// All node values at sample `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn sample(&self, idx: usize) -> &[f64] {
        &self.values[idx * self.nodes..(idx + 1) * self.nodes]
    }

    /// One node's full trajectory.
    pub fn node_series(&self, node: usize) -> Vec<f64> {
        (0..self.samples())
            .map(|s| self.values[s * self.nodes + node])
            .collect()
    }

    /// The network-wide sum at each sample.
    pub fn totals(&self) -> Vec<f64> {
        (0..self.samples()).map(|s| self.sample(s).iter().sum()).collect()
    }

    /// The first instant any node's value reaches `threshold`
    /// (for battery-depletion style queries on cumulative series).
    pub fn first_crossing(&self, threshold: f64) -> Option<SimTime> {
        for s in 0..self.samples() {
            if self.sample(s).iter().any(|&v| v >= threshold) {
                return Some(self.times[s]);
            }
        }
        None
    }

    /// Mean slope of the network total between the first and last
    /// sample, per second (e.g. average network power draw in watts for
    /// a cumulative-energy series). Zero with fewer than two samples.
    pub fn mean_total_slope(&self) -> f64 {
        if self.samples() < 2 {
            return 0.0;
        }
        let totals = self.totals();
        let dt = (*self.times.last().expect("non-empty") - self.times[0]).as_secs_f64();
        if dt == 0.0 {
            0.0
        } else {
            (totals[totals.len() - 1] - totals[0]) / dt
        }
    }

    /// Renders `(seconds, total)` rows as CSV with a header.
    pub fn totals_csv(&self) -> String {
        let mut out = String::from("time_s,total\n");
        for (t, v) in self.times.iter().zip(self.totals()) {
            out.push_str(&format!("{:.3},{:.6}\n", t.as_secs_f64(), v));
        }
        out
    }
}

/// A fixed-width series indexed by interval number instead of
/// timestamps: row `k` describes interval `k`. Unlike [`TimeSeries`]
/// the columns are arbitrary scalars (not per-node values) and the
/// backing storage can be reserved up front with
/// [`with_capacity`](Self::with_capacity), so ingestion from a
/// simulation hot loop never touches the allocator.
///
/// # Example
///
/// ```
/// use rcast_metrics::IntervalSeries;
///
/// let mut s = IntervalSeries::with_capacity(2, 8);
/// s.push_row(&[1.0, 10.0]);
/// s.push_row(&[2.0, 20.0]);
/// assert_eq!(s.rows(), 2);
/// assert_eq!(s.row(1), &[2.0, 20.0]);
/// assert_eq!(s.column(1), vec![10.0, 20.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct IntervalSeries {
    width: usize,
    /// Row-major: `values[row * width + column]`.
    values: Vec<f64>,
}

impl IntervalSeries {
    /// An empty series of `width` columns with storage reserved for
    /// `rows` rows.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn with_capacity(width: usize, rows: usize) -> Self {
        assert!(width > 0, "need at least one column");
        IntervalSeries {
            width,
            values: Vec::with_capacity(width * rows),
        }
    }

    /// Number of columns per row.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of rows stored.
    pub fn rows(&self) -> usize {
        self.values.len() / self.width
    }

    /// `true` when no row has been pushed.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if `row.len()` differs from the column count.
    pub fn push_row(&mut self, row: &[f64]) {
        assert_eq!(row.len(), self.width, "row width mismatch");
        self.values.extend_from_slice(row);
    }

    /// Row `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn row(&self, k: usize) -> &[f64] {
        &self.values[k * self.width..(k + 1) * self.width]
    }

    /// Column `i` across all rows.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn column(&self, i: usize) -> Vec<f64> {
        assert!(i < self.width, "column {i} out of range");
        (0..self.rows()).map(|k| self.values[k * self.width + i]).collect()
    }

    /// Renders the series as CSV, one row per interval, with the given
    /// column headers prefixed by an `interval` index column.
    ///
    /// # Panics
    ///
    /// Panics if `headers.len()` differs from the column count.
    pub fn csv(&self, headers: &[&str]) -> String {
        assert_eq!(headers.len(), self.width, "header width mismatch");
        let mut out = String::from("interval");
        for h in headers {
            out.push(',');
            out.push_str(h);
        }
        out.push('\n');
        for k in 0..self.rows() {
            out.push_str(&k.to_string());
            for v in self.row(k) {
                out.push(',');
                out.push_str(&format!("{v}"));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series() -> TimeSeries {
        let mut ts = TimeSeries::new(3, SimDuration::from_secs(1));
        ts.push(SimTime::from_secs(0), &[0.0, 0.0, 0.0]);
        ts.push(SimTime::from_secs(1), &[1.0, 2.0, 3.0]);
        ts.push(SimTime::from_secs(2), &[2.0, 4.0, 6.0]);
        ts
    }

    #[test]
    fn accessors() {
        let ts = series();
        assert_eq!(ts.samples(), 3);
        assert_eq!(ts.nodes(), 3);
        assert!(!ts.is_empty());
        assert_eq!(ts.sample(1), &[1.0, 2.0, 3.0]);
        assert_eq!(ts.node_series(2), vec![0.0, 3.0, 6.0]);
        assert_eq!(ts.totals(), vec![0.0, 6.0, 12.0]);
        assert_eq!(ts.period(), SimDuration::from_secs(1));
    }

    #[test]
    fn slope_is_average_power() {
        let ts = series();
        // 12 total units over 2 s → 6 units/s.
        assert!((ts.mean_total_slope() - 6.0).abs() < 1e-12);
        let empty = TimeSeries::new(3, SimDuration::from_secs(1));
        assert_eq!(empty.mean_total_slope(), 0.0);
    }

    #[test]
    fn crossings() {
        let ts = series();
        assert_eq!(ts.first_crossing(3.5), Some(SimTime::from_secs(2)));
        assert_eq!(ts.first_crossing(2.5), Some(SimTime::from_secs(1)));
        assert_eq!(ts.first_crossing(100.0), None);
    }

    #[test]
    fn csv_shape() {
        let csv = series().totals_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0], "time_s,total");
        assert!(lines[2].starts_with("1.000,"));
    }

    #[test]
    #[should_panic]
    fn width_mismatch_panics() {
        let mut ts = TimeSeries::new(2, SimDuration::from_secs(1));
        ts.push(SimTime::ZERO, &[1.0]);
    }

    #[test]
    #[should_panic]
    fn out_of_order_panics() {
        let mut ts = TimeSeries::new(1, SimDuration::from_secs(1));
        ts.push(SimTime::from_secs(2), &[1.0]);
        ts.push(SimTime::from_secs(1), &[1.0]);
    }

    #[test]
    fn interval_series_never_reallocates_within_capacity() {
        let mut s = IntervalSeries::with_capacity(3, 4);
        let ptr = s.values.as_ptr();
        for k in 0..4 {
            s.push_row(&[k as f64, 0.0, 1.0]);
        }
        assert_eq!(s.rows(), 4);
        assert_eq!(s.values.as_ptr(), ptr, "reserved storage must be reused");
        assert_eq!(s.column(0), vec![0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn interval_series_csv_shape() {
        let mut s = IntervalSeries::with_capacity(2, 2);
        s.push_row(&[1.5, 2.0]);
        let csv = s.csv(&["a", "b"]);
        assert_eq!(csv, "interval,a,b\n0,1.5,2\n");
    }

    #[test]
    #[should_panic]
    fn interval_series_row_width_mismatch_panics() {
        let mut s = IntervalSeries::with_capacity(2, 1);
        s.push_row(&[1.0]);
    }
}
