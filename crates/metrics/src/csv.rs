//! A minimal, deterministic CSV writer for sweep/figure artifacts.
//!
//! Hand-rolled (the workspace is dependency-free) and *stable*: fields
//! are written in insertion order with RFC-4180 quoting, floats are
//! rendered with Rust's shortest-round-trip `Display` (so identical
//! bits always produce identical bytes), and non-finite values become
//! empty fields (CSV has no NaN/inf literal consumers agree on).

/// A CSV document builder: one header row plus data rows, all the same
/// width.
///
/// # Example
///
/// ```
/// use rcast_metrics::CsvTable;
///
/// let mut t = CsvTable::new(&["scheme", "energy_j"]);
/// t.row(vec!["Rcast".into(), CsvTable::num(39820.125)]);
/// assert_eq!(t.render(), "scheme,energy_j\nRcast,39820.125\n");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsvTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl CsvTable {
    /// A table with the given column names.
    pub fn new(header: &[&str]) -> Self {
        CsvTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one data row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width must match header"
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// A float cell: shortest round-trip decimal; empty when not
    /// finite.
    pub fn num(v: f64) -> String {
        if v.is_finite() {
            format!("{v}")
        } else {
            String::new()
        }
    }

    /// Renders the document with `\n` line endings and RFC-4180
    /// quoting (fields containing `,`, `"` or newlines are quoted,
    /// inner quotes doubled).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let line = |cells: &[String], out: &mut String| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if cell.contains([',', '"', '\n', '\r']) {
                    out.push('"');
                    out.push_str(&cell.replace('"', "\"\""));
                    out.push('"');
                } else {
                    out.push_str(cell);
                }
            }
            out.push('\n');
        };
        line(&self.header, &mut out);
        for row in &self.rows {
            line(row, &mut out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_header_and_rows() {
        let mut t = CsvTable::new(&["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["x".into(), "y".into()]);
        assert_eq!(t.render(), "a,b\n1,2\nx,y\n");
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn quoting_follows_rfc_4180() {
        let mut t = CsvTable::new(&["v"]);
        t.row(vec!["plain".into()]);
        t.row(vec!["with,comma".into()]);
        t.row(vec!["with\"quote".into()]);
        t.row(vec!["with\nnewline".into()]);
        assert_eq!(
            t.render(),
            "v\nplain\n\"with,comma\"\n\"with\"\"quote\"\n\"with\nnewline\"\n"
        );
    }

    #[test]
    fn num_is_shortest_round_trip_and_empty_when_non_finite() {
        assert_eq!(CsvTable::num(0.1), "0.1");
        assert_eq!(CsvTable::num(40884.0), "40884");
        assert_eq!(CsvTable::num(f64::INFINITY), "");
        assert_eq!(CsvTable::num(f64::NAN), "");
        // Round trip: the rendered text parses back to the same bits.
        let v = 0.001140079_f64;
        assert_eq!(CsvTable::num(v).parse::<f64>().unwrap(), v);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn width_mismatch_panics() {
        let mut t = CsvTable::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }
}
