//! Fixed-bin histograms with percentile queries.
//!
//! The paper reports mean delays; a release-quality harness should also
//! answer "what's the p95?" — beacon-paced delivery makes MANET delay
//! distributions heavy-tailed, and means hide that. [`Histogram`] uses
//! uniform bins over a configured range with an overflow bucket, so
//! memory stays constant however many samples arrive.

/// A streaming histogram over `[0, upper)` with uniform bins.
///
/// # Example
///
/// ```
/// use rcast_metrics::Histogram;
///
/// let mut h = Histogram::new(10.0, 100);
/// for i in 0..100 {
///     h.push(i as f64 / 10.0);
/// }
/// assert_eq!(h.count(), 100);
/// let p50 = h.percentile(50.0);
/// assert!((p50 - 5.0).abs() < 0.2, "{p50}");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    upper: f64,
    bins: Vec<u64>,
    overflow: u64,
    count: u64,
    sum: f64,
    max_seen: f64,
}

impl Histogram {
    /// A histogram over `[0, upper)` with `bins` uniform buckets plus an
    /// overflow bucket.
    ///
    /// # Panics
    ///
    /// Panics if `upper` is not positive and finite or `bins` is zero.
    pub fn new(upper: f64, bins: usize) -> Self {
        assert!(upper.is_finite() && upper > 0.0, "invalid upper {upper}");
        assert!(bins > 0, "need at least one bin");
        Histogram {
            upper,
            bins: vec![0; bins],
            overflow: 0,
            count: 0,
            sum: 0.0,
            max_seen: 0.0,
        }
    }

    /// Adds a sample (negative values clamp to zero).
    ///
    /// # Panics
    ///
    /// Panics if `value` is not finite.
    pub fn push(&mut self, value: f64) {
        assert!(value.is_finite(), "non-finite sample {value}");
        let v = value.max(0.0);
        self.count += 1;
        self.sum += v;
        self.max_seen = self.max_seen.max(v);
        if v >= self.upper {
            self.overflow += 1;
        } else {
            let last = self.bins.len() - 1;
            let idx = ((v / self.upper) * self.bins.len() as f64) as usize;
            self.bins[idx.min(last)] += 1;
        }
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of all samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// The largest sample seen (exact, not binned).
    pub fn max(&self) -> f64 {
        self.max_seen
    }

    /// Samples at or beyond the histogram range.
    pub fn overflow_count(&self) -> u64 {
        self.overflow
    }

    /// The approximate value below which `p` percent of samples fall
    /// (linear interpolation within the bin; the exact maximum for
    /// queries landing in the overflow bucket). Zero when empty.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&self, p: f64) -> f64 {
        assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
        if self.count == 0 {
            return 0.0;
        }
        let target = (p / 100.0) * self.count as f64;
        let mut seen = 0.0;
        let bin_width = self.upper / self.bins.len() as f64;
        for (i, &c) in self.bins.iter().enumerate() {
            let next = seen + c as f64;
            if next >= target && c > 0 {
                let frac = if c == 0 { 0.0 } else { (target - seen) / c as f64 };
                return bin_width * (i as f64 + frac.clamp(0.0, 1.0));
            }
            seen = next;
        }
        // Landed in the overflow bucket.
        self.max_seen
    }

    /// Merges another histogram with identical shape.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.upper, other.upper, "histogram range mismatch");
        assert_eq!(self.bins.len(), other.bins.len(), "bin count mismatch");
        for (a, b) in self.bins.iter_mut().zip(&other.bins) {
            *a += b;
        }
        self.overflow += other.overflow;
        self.count += other.count;
        self.sum += other.sum;
        self.max_seen = self.max_seen.max(other.max_seen);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = Histogram::new(1.0, 10);
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.percentile(50.0), 0.0);
        assert_eq!(h.max(), 0.0);
    }

    #[test]
    fn uniform_percentiles() {
        let mut h = Histogram::new(100.0, 1000);
        for i in 0..10_000 {
            h.push(i as f64 / 100.0);
        }
        for p in [10.0, 25.0, 50.0, 75.0, 90.0, 99.0] {
            let got = h.percentile(p);
            assert!((got - p).abs() < 0.5, "p{p}: {got}");
        }
        assert!((h.mean() - 49.995).abs() < 0.01);
    }

    #[test]
    fn overflow_handling() {
        let mut h = Histogram::new(10.0, 10);
        for _ in 0..9 {
            h.push(1.0);
        }
        h.push(1_000.0);
        assert_eq!(h.overflow_count(), 1);
        assert_eq!(h.max(), 1_000.0);
        // p99 lands in the overflow bucket → exact max.
        assert_eq!(h.percentile(99.9), 1_000.0);
        // p50 stays in range.
        assert!(h.percentile(50.0) < 2.0);
    }

    #[test]
    fn negative_clamps_to_zero() {
        let mut h = Histogram::new(10.0, 10);
        h.push(-5.0);
        assert_eq!(h.count(), 1);
        assert!(h.percentile(100.0) <= 1.0);
    }

    #[test]
    fn merge_equals_concat() {
        let mut a = Histogram::new(10.0, 100);
        let mut b = Histogram::new(10.0, 100);
        let mut both = Histogram::new(10.0, 100);
        for i in 0..50 {
            let v = (i as f64 * 0.37) % 10.0;
            a.push(v);
            both.push(v);
        }
        for i in 0..70 {
            let v = (i as f64 * 0.53) % 12.0;
            b.push(v);
            both.push(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), both.count());
        assert_eq!(a.overflow_count(), both.overflow_count());
        assert!((a.percentile(50.0) - both.percentile(50.0)).abs() < 1e-9);
        assert!((a.mean() - both.mean()).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn shape_mismatch_panics() {
        let mut a = Histogram::new(10.0, 100);
        let b = Histogram::new(20.0, 100);
        a.merge(&b);
    }

    #[test]
    #[should_panic]
    fn bad_percentile_panics() {
        Histogram::new(1.0, 1).percentile(101.0);
    }
}
