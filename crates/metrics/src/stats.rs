//! Streaming descriptive statistics.

/// Welford's online mean/variance accumulator with min/max tracking.
///
/// # Example
///
/// ```
/// use rcast_metrics::RunningStats;
///
/// let mut s = RunningStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(x);
/// }
/// assert_eq!(s.count(), 8);
/// assert!((s.mean() - 5.0).abs() < 1e-12);
/// assert!((s.population_variance() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        RunningStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Builds an accumulator from a slice.
    pub fn from_slice(values: &[f64]) -> Self {
        let mut s = RunningStats::new();
        for &v in values {
            s.push(v);
        }
        s
    }

    /// Adds an observation.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not finite (garbage in the stats would silently
    /// poison every figure downstream).
    pub fn push(&mut self, x: f64) {
        assert!(x.is_finite(), "non-finite observation {x}");
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 when empty).
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance (0 with fewer than two observations).
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Smallest observation (0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.mean() * self.count as f64
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// The population variance of a slice (0 when empty) — the metric of the
/// paper's Figure 6.
pub fn population_variance(values: &[f64]) -> f64 {
    RunningStats::from_slice(values).population_variance()
}

/// The mean of a slice (0 when empty).
pub fn mean(values: &[f64]) -> f64 {
    RunningStats::from_slice(values).mean()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_zero() {
        let s = RunningStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.population_variance(), 0.0);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.sum(), 0.0);
    }

    #[test]
    fn single_observation() {
        let mut s = RunningStats::new();
        s.push(3.5);
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.population_variance(), 0.0);
        assert_eq!(s.min(), 3.5);
        assert_eq!(s.max(), 3.5);
    }

    #[test]
    fn matches_textbook_formulas() {
        let vals = [1.0, 2.0, 3.0, 4.0, 5.0];
        let s = RunningStats::from_slice(&vals);
        assert!((s.mean() - 3.0).abs() < 1e-12);
        assert!((s.population_variance() - 2.0).abs() < 1e-12);
        assert!((s.sample_variance() - 2.5).abs() < 1e-12);
        assert!((s.std_dev() - 2.0_f64.sqrt()).abs() < 1e-12);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 5.0);
        assert!((s.sum() - 15.0).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_concatenation() {
        let a_vals: Vec<f64> = (0..50).map(|i| (i as f64).sin() * 10.0).collect();
        let b_vals: Vec<f64> = (50..180).map(|i| (i as f64).cos() * 3.0 + 2.0).collect();
        let mut merged = RunningStats::from_slice(&a_vals);
        merged.merge(&RunningStats::from_slice(&b_vals));
        let all: Vec<f64> = a_vals.iter().chain(&b_vals).copied().collect();
        let direct = RunningStats::from_slice(&all);
        assert_eq!(merged.count(), direct.count());
        assert!((merged.mean() - direct.mean()).abs() < 1e-9);
        assert!(
            (merged.population_variance() - direct.population_variance()).abs() < 1e-9
        );
        assert_eq!(merged.min(), direct.min());
        assert_eq!(merged.max(), direct.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s = RunningStats::from_slice(&[1.0, 2.0]);
        let before = s;
        s.merge(&RunningStats::new());
        assert_eq!(s, before);
        let mut e = RunningStats::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn helpers() {
        assert_eq!(population_variance(&[]), 0.0);
        assert!((population_variance(&[1.0, 3.0]) - 1.0).abs() < 1e-12);
        assert!((mean(&[1.0, 3.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn non_finite_rejected() {
        RunningStats::new().push(f64::NAN);
    }
}
