//! Energy-centric network metrics.

use crate::stats::{population_variance, RunningStats};

/// Per-node energy figures for a finished run.
///
/// Wraps the raw joules-per-node vector and derives the paper's energy
/// metrics: the sorted per-node curve (Fig. 5), total consumption
/// (Fig. 7a/7d), variance (Fig. 6), energy-per-bit (Fig. 7c/7f), and
/// network-lifetime proxies.
///
/// # Example
///
/// ```
/// use rcast_metrics::EnergyReport;
///
/// let r = EnergyReport::new(vec![10.0, 30.0, 20.0]);
/// assert_eq!(r.total_joules(), 60.0);
/// assert_eq!(r.sorted_joules(), vec![10.0, 20.0, 30.0]);
/// assert!(r.variance() > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyReport {
    per_node_joules: Vec<f64>,
}

impl EnergyReport {
    /// Builds a report from per-node consumption (indexed by node id).
    ///
    /// # Panics
    ///
    /// Panics if any value is negative or non-finite.
    pub fn new(per_node_joules: Vec<f64>) -> Self {
        for &j in &per_node_joules {
            assert!(j.is_finite() && j >= 0.0, "invalid energy {j}");
        }
        EnergyReport { per_node_joules }
    }

    /// Raw per-node joules, indexed by node id.
    pub fn per_node_joules(&self) -> &[f64] {
        &self.per_node_joules
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.per_node_joules.len()
    }

    /// `true` when the report covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.per_node_joules.is_empty()
    }

    /// Per-node joules in ascending order — the curve of Figure 5.
    pub fn sorted_joules(&self) -> Vec<f64> {
        let mut v = self.per_node_joules.clone();
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite by construction"));
        v
    }

    /// Network-wide total, joules.
    pub fn total_joules(&self) -> f64 {
        self.per_node_joules.iter().sum()
    }

    /// Mean per-node consumption, joules.
    pub fn mean_joules(&self) -> f64 {
        RunningStats::from_slice(&self.per_node_joules).mean()
    }

    /// Population variance of per-node consumption — the energy-balance
    /// metric of Figure 6 (lower is better balanced).
    pub fn variance(&self) -> f64 {
        population_variance(&self.per_node_joules)
    }

    /// Max/min consumption ratio (∞ if some node used nothing); another
    /// balance lens.
    pub fn imbalance_ratio(&self) -> f64 {
        let s = RunningStats::from_slice(&self.per_node_joules);
        if s.min() == 0.0 {
            f64::INFINITY
        } else {
            s.max() / s.min()
        }
    }

    /// Energy per successfully delivered bit, J/bit (Fig. 7c/7f).
    /// `INFINITY` when nothing was delivered.
    pub fn energy_per_bit(&self, delivered_bits: u64) -> f64 {
        if delivered_bits == 0 {
            f64::INFINITY
        } else {
            self.total_joules() / delivered_bits as f64
        }
    }

    /// The consumption of the hungriest node — a proxy for time-to-first
    /// -death under equal batteries: network lifetime shrinks as this
    /// grows.
    pub fn max_joules(&self) -> f64 {
        RunningStats::from_slice(&self.per_node_joules).max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_sorting() {
        let r = EnergyReport::new(vec![5.0, 1.0, 3.0]);
        assert_eq!(r.len(), 3);
        assert_eq!(r.total_joules(), 9.0);
        assert_eq!(r.mean_joules(), 3.0);
        assert_eq!(r.sorted_joules(), vec![1.0, 3.0, 5.0]);
        assert_eq!(r.max_joules(), 5.0);
    }

    #[test]
    fn flat_consumption_has_zero_variance() {
        // The 802.11 scheme: every node burns 1293.75 J.
        let r = EnergyReport::new(vec![1293.75; 100]);
        assert_eq!(r.variance(), 0.0);
        assert_eq!(r.imbalance_ratio(), 1.0);
    }

    #[test]
    fn unbalanced_consumption_shows_in_variance() {
        // ODPM-like: on-route nodes burn full power, others doze.
        let mut v = vec![300.0; 80];
        v.extend(vec![1290.0; 20]);
        let odpm = EnergyReport::new(v);
        // Rcast-like: everyone in a narrow band.
        let rcast = EnergyReport::new(
            (0..100).map(|i| 400.0 + (i % 10) as f64 * 8.0).collect(),
        );
        assert!(odpm.variance() > 4.0 * rcast.variance());
    }

    #[test]
    fn energy_per_bit() {
        let r = EnergyReport::new(vec![50.0, 50.0]);
        assert_eq!(r.energy_per_bit(1_000_000), 1e-4);
        assert_eq!(r.energy_per_bit(0), f64::INFINITY);
    }

    #[test]
    fn empty_report() {
        let r = EnergyReport::new(vec![]);
        assert!(r.is_empty());
        assert_eq!(r.total_joules(), 0.0);
        assert_eq!(r.variance(), 0.0);
    }

    #[test]
    #[should_panic]
    fn negative_energy_rejected() {
        let _ = EnergyReport::new(vec![-1.0]);
    }
}
