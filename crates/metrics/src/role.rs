//! Role numbers: the paper's packet-forwarding-influence metric.
//!
//! Section 4.2 defines a node's *role number* as "a measure of the
//! extent to which the node lies on the paths between others",
//! calculated by examining every node's route cache and counting the
//! intermediate nodes stored there. We accumulate the counts as routes
//! enter caches (each `RouteCached` event from the DSR layer), which
//! integrates cache contents over all packet transmissions exactly as
//! the paper describes.

use rcast_engine::NodeId;

/// Accumulates role numbers over a run.
///
/// # Example
///
/// ```
/// use rcast_engine::NodeId;
/// use rcast_metrics::RoleNumbers;
///
/// let mut roles = RoleNumbers::new(4);
/// // A route 0→1→2→3 was cached somewhere: 1 and 2 are intermediates.
/// roles.record_cached_route(&[0, 1, 2, 3].map(NodeId::new));
/// assert_eq!(roles.role(NodeId::new(1)), 1);
/// assert_eq!(roles.role(NodeId::new(0)), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoleNumbers {
    counts: Vec<u64>,
}

impl RoleNumbers {
    /// Zeroed counters for `n` nodes.
    pub fn new(n: usize) -> Self {
        RoleNumbers {
            counts: vec![0; n],
        }
    }

    /// Records a route inserted into some node's cache: every
    /// intermediate node's role number increments.
    pub fn record_cached_route(&mut self, route: &[NodeId]) {
        if route.len() < 3 {
            return; // one-hop routes have no intermediates
        }
        for &node in &route[1..route.len() - 1] {
            self.counts[node.index()] += 1;
        }
    }

    /// The role number of one node.
    pub fn role(&self, node: NodeId) -> u64 {
        self.counts[node.index()]
    }

    /// All role numbers, indexed by node id.
    pub fn all(&self) -> &[u64] {
        &self.counts
    }

    /// The largest role number — Fig. 9 compares maxima (~500 for ODPM
    /// vs ~300 for Rcast at high rate).
    pub fn max_role(&self) -> u64 {
        self.counts.iter().copied().max().unwrap_or(0)
    }

    /// Role numbers as f64 for statistics.
    pub fn as_f64(&self) -> Vec<f64> {
        self.counts.iter().map(|&c| c as f64).collect()
    }

    /// Merges counts from another accumulator (multi-seed runs).
    ///
    /// # Panics
    ///
    /// Panics if the node counts differ.
    pub fn merge(&mut self, other: &RoleNumbers) {
        assert_eq!(self.counts.len(), other.counts.len());
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u32]) -> Vec<NodeId> {
        v.iter().copied().map(NodeId::new).collect()
    }

    #[test]
    fn endpoints_do_not_count() {
        let mut r = RoleNumbers::new(5);
        r.record_cached_route(&ids(&[0, 1, 2]));
        assert_eq!(r.role(NodeId::new(0)), 0);
        assert_eq!(r.role(NodeId::new(1)), 1);
        assert_eq!(r.role(NodeId::new(2)), 0);
    }

    #[test]
    fn one_hop_routes_add_nothing() {
        let mut r = RoleNumbers::new(3);
        r.record_cached_route(&ids(&[0, 1]));
        assert_eq!(r.all(), &[0, 0, 0]);
    }

    #[test]
    fn accumulation_and_max() {
        let mut r = RoleNumbers::new(4);
        r.record_cached_route(&ids(&[0, 1, 2, 3]));
        r.record_cached_route(&ids(&[3, 1, 0]));
        r.record_cached_route(&ids(&[0, 1, 3]));
        assert_eq!(r.role(NodeId::new(1)), 3);
        assert_eq!(r.role(NodeId::new(2)), 1);
        assert_eq!(r.max_role(), 3);
        assert_eq!(r.as_f64(), vec![0.0, 3.0, 1.0, 0.0]);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = RoleNumbers::new(3);
        a.record_cached_route(&ids(&[0, 1, 2]));
        let mut b = RoleNumbers::new(3);
        b.record_cached_route(&ids(&[2, 1, 0]));
        a.merge(&b);
        assert_eq!(a.role(NodeId::new(1)), 2);
    }

    #[test]
    fn empty_max_is_zero() {
        assert_eq!(RoleNumbers::new(0).max_role(), 0);
    }
}
