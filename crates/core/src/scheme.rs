//! The power-management schemes compared in the paper.

use rcast_dsr::DsrPacket;
use rcast_mac::OverhearingLevel;

use crate::routing::NetPacket;

/// A power-management scheme under evaluation.
///
/// The paper's Table 1 compares the first three; `Psm` and
/// `PsmNoOverhear` are the additional baselines quoted in the abstract
/// (unmodified 802.11 PSM with unconditional overhearing) and in the
/// introduction (the naïve no-overhearing fix that starves DSR's
/// caches).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// IEEE 802.11 without PSM: every node always awake, packets
    /// transmitted immediately. Best PDR/delay, worst energy.
    Dot11,
    /// Unmodified IEEE 802.11 PSM with unconditional overhearing: every
    /// advertised unicast keeps all neighbors awake.
    Psm,
    /// IEEE 802.11 PSM with overhearing disabled: neighbors sleep
    /// through all data they are not addressed by. Starves DSR's route
    /// caches and inflates RREQ flooding.
    PsmNoOverhear,
    /// On-Demand Power Management (Zheng & Kravets): nodes switch to AM
    /// on communication events with per-event timeouts.
    Odpm,
    /// RandomCast: all nodes in PS mode; overhearing level chosen per
    /// packet type, randomized for RREP/data.
    Rcast,
}

impl Scheme {
    /// All schemes, in the order the paper discusses them.
    pub const ALL: [Scheme; 5] = [
        Scheme::Dot11,
        Scheme::Psm,
        Scheme::PsmNoOverhear,
        Scheme::Odpm,
        Scheme::Rcast,
    ];

    /// The three schemes of the paper's evaluation figures.
    pub const PAPER_FIGURES: [Scheme; 3] = [Scheme::Dot11, Scheme::Odpm, Scheme::Rcast];

    /// The display name used in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            Scheme::Dot11 => "802.11",
            Scheme::Psm => "PSM",
            Scheme::PsmNoOverhear => "PSM-none",
            Scheme::Odpm => "ODPM",
            Scheme::Rcast => "Rcast",
        }
    }

    /// `true` when nodes use the PSM transmission path (buffered
    /// traffic, ATIM advertisement, beacon-interval delivery).
    pub fn uses_psm_path(self) -> bool {
        !matches!(self, Scheme::Dot11)
    }

    /// The overhearing level this scheme advertises for a unicast DSR
    /// packet — the heart of the paper's Section 3.3:
    ///
    /// * **Rcast**: randomized for RREP and data (exploit route-info
    ///   locality), unconditional for RERR (stale routes must die fast).
    /// * **PSM**: unconditional for everything (the DSR assumption).
    /// * **PSM-none / ODPM / 802.11**: no PSM-level overhearing request;
    ///   AM nodes overhear physically anyway.
    pub fn level_for(self, packet: &DsrPacket) -> OverhearingLevel {
        match self {
            Scheme::Rcast => match packet {
                DsrPacket::Rrep(_) | DsrPacket::Data(_) => OverhearingLevel::Randomized,
                DsrPacket::Rerr(_) => OverhearingLevel::Unconditional,
                DsrPacket::Rreq(_) => OverhearingLevel::Unconditional,
            },
            Scheme::Psm => OverhearingLevel::Unconditional,
            Scheme::PsmNoOverhear | Scheme::Odpm | Scheme::Dot11 => OverhearingLevel::None,
        }
    }

    /// The overhearing level for a protocol-agnostic packet. AODV never
    /// benefits from overhearing (nothing for a bystander in a
    /// distance-vector hop), so only the PSM scheme's unconditional
    /// promiscuity applies there — precisely the energy waste the paper
    /// attributes to pairing PSM with AODV-style protocols.
    pub fn level_for_net(self, packet: &NetPacket) -> OverhearingLevel {
        match packet {
            NetPacket::Dsr(p) => self.level_for(p),
            NetPacket::Aodv(_) => match self {
                Scheme::Psm => OverhearingLevel::Unconditional,
                _ => OverhearingLevel::None,
            },
        }
    }
}

impl std::fmt::Display for Scheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcast_dsr::{Rerr, Rrep, Rreq, SourceRoute};
    use rcast_engine::NodeId;

    fn route(ids: &[u32]) -> SourceRoute {
        SourceRoute::new(ids.iter().copied().map(NodeId::new).collect()).unwrap()
    }

    fn rrep() -> DsrPacket {
        DsrPacket::Rrep(Rrep {
            route: route(&[0, 1, 2]),
            replier: NodeId::new(2),
            from_cache: false,
        })
    }

    fn rerr() -> DsrPacket {
        DsrPacket::Rerr(Rerr {
            detector: NodeId::new(1),
            broken_from: NodeId::new(1),
            broken_to: NodeId::new(2),
            path: route(&[1, 0]),
        })
    }

    fn rreq() -> DsrPacket {
        DsrPacket::Rreq(Rreq {
            origin: NodeId::new(0),
            target: NodeId::new(2),
            id: 0,
            ttl: 16,
            record: vec![NodeId::new(0)],
        })
    }

    fn data() -> DsrPacket {
        DsrPacket::Data(rcast_dsr::DataPacket {
            flow: 0,
            seq: 0,
            route: route(&[0, 1, 2]),
            payload_bytes: 512,
            generated_at: rcast_engine::SimTime::ZERO,
            salvage_count: 0,
        })
    }

    #[test]
    fn rcast_levels_match_section_3_3() {
        assert_eq!(
            Scheme::Rcast.level_for(&rrep()),
            OverhearingLevel::Randomized
        );
        assert_eq!(
            Scheme::Rcast.level_for(&data()),
            OverhearingLevel::Randomized
        );
        assert_eq!(
            Scheme::Rcast.level_for(&rerr()),
            OverhearingLevel::Unconditional
        );
        assert_eq!(
            Scheme::Rcast.level_for(&rreq()),
            OverhearingLevel::Unconditional
        );
    }

    #[test]
    fn psm_overhears_everything() {
        for p in [rrep(), rerr(), rreq(), data()] {
            assert_eq!(Scheme::Psm.level_for(&p), OverhearingLevel::Unconditional);
        }
    }

    #[test]
    fn non_psm_schemes_request_nothing() {
        for s in [Scheme::Dot11, Scheme::Odpm, Scheme::PsmNoOverhear] {
            assert_eq!(s.level_for(&data()), OverhearingLevel::None, "{s}");
        }
    }

    #[test]
    fn psm_path_usage() {
        assert!(!Scheme::Dot11.uses_psm_path());
        for s in [Scheme::Psm, Scheme::PsmNoOverhear, Scheme::Odpm, Scheme::Rcast] {
            assert!(s.uses_psm_path(), "{s}");
        }
    }

    #[test]
    fn labels_are_paper_labels() {
        assert_eq!(Scheme::Dot11.to_string(), "802.11");
        assert_eq!(Scheme::Odpm.to_string(), "ODPM");
        assert_eq!(Scheme::Rcast.to_string(), "Rcast");
        assert_eq!(Scheme::ALL.len(), 5);
        assert_eq!(Scheme::PAPER_FIGURES.len(), 3);
    }
}
