//! On-Demand Power Management (Zheng & Kravets, INFOCOM 2003).
//!
//! The paper's most competitive baseline: each node keeps a *keep-alive
//! deadline*; communication events push the deadline forward (5 s on
//! receiving a RREP, 2 s on sending/receiving data or being a flow
//! endpoint — the values suggested in the original paper and used in
//! this one). A node is in AM while `now < deadline` and reverts to PS
//! afterwards.

use rcast_engine::{NodeId, SimDuration, SimTime};

/// ODPM timeout parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OdpmConfig {
    /// AM residence after receiving a route reply (paper: 5 s).
    pub rrep_timeout: SimDuration,
    /// AM residence after a data send/receive or endpoint event
    /// (paper: 2 s).
    pub data_timeout: SimDuration,
    /// AM residence after receiving a route request — recipients are
    /// candidate relays and must be awake for the reply to race back.
    pub rreq_timeout: SimDuration,
}

impl Default for OdpmConfig {
    fn default() -> Self {
        OdpmConfig {
            rrep_timeout: SimDuration::from_secs(5),
            data_timeout: SimDuration::from_secs(2),
            rreq_timeout: SimDuration::from_secs(1),
        }
    }
}

/// The AM/PS switching state of every node.
///
/// # Example
///
/// ```
/// use rcast_core::{OdpmConfig, OdpmState};
/// use rcast_engine::{NodeId, SimTime};
///
/// let mut odpm = OdpmState::new(3, OdpmConfig::default());
/// let n = NodeId::new(1);
/// assert!(!odpm.is_am(n, SimTime::ZERO));
/// odpm.on_data(n, SimTime::ZERO);
/// assert!(odpm.is_am(n, SimTime::from_millis(1999)));
/// assert!(!odpm.is_am(n, SimTime::from_secs(2)));
/// ```
#[derive(Debug, Clone)]
pub struct OdpmState {
    cfg: OdpmConfig,
    am_until: Vec<SimTime>,
}

impl OdpmState {
    /// All nodes initially in PS mode.
    pub fn new(n: usize, cfg: OdpmConfig) -> Self {
        OdpmState {
            cfg,
            am_until: vec![SimTime::ZERO; n],
        }
    }

    /// The node received a route reply: stay in AM expecting traffic.
    pub fn on_rrep(&mut self, node: NodeId, now: SimTime) {
        self.extend(node, now + self.cfg.rrep_timeout);
    }

    /// The node sent, received, or forwarded a data packet (or is a flow
    /// endpoint generating one).
    pub fn on_data(&mut self, node: NodeId, now: SimTime) {
        self.extend(node, now + self.cfg.data_timeout);
    }

    /// The node received a route request: stay up for the reply phase.
    pub fn on_rreq(&mut self, node: NodeId, now: SimTime) {
        self.extend(node, now + self.cfg.rreq_timeout);
    }

    fn extend(&mut self, node: NodeId, until: SimTime) {
        let slot = &mut self.am_until[node.index()];
        if *slot < until {
            *slot = until;
        }
    }

    /// Whether the node is in active mode at `t`.
    pub fn is_am(&self, node: NodeId, t: SimTime) -> bool {
        t < self.am_until[node.index()]
    }

    /// The node's current keep-alive deadline.
    pub fn am_until(&self, node: NodeId) -> SimTime {
        self.am_until[node.index()]
    }

    /// Seconds of the interval `[start, start + len)` the node spends in
    /// AM — the energy integrator for ODPM's partial-interval wakeups.
    pub fn am_overlap(&self, node: NodeId, start: SimTime, len: SimDuration) -> SimDuration {
        let deadline = self.am_until[node.index()];
        if deadline <= start {
            SimDuration::ZERO
        } else {
            (deadline - start).min(len)
        }
    }

    /// The configured timeouts.
    pub fn config(&self) -> OdpmConfig {
        self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn starts_in_ps() {
        let s = OdpmState::new(5, OdpmConfig::default());
        for i in 0..5 {
            assert!(!s.is_am(n(i), SimTime::ZERO));
        }
    }

    #[test]
    fn rrep_keeps_am_longer_than_data() {
        let mut s = OdpmState::new(2, OdpmConfig::default());
        let t = SimTime::from_secs(10);
        s.on_rrep(n(0), t);
        s.on_data(n(1), t);
        assert_eq!(s.am_until(n(0)), SimTime::from_secs(15));
        assert_eq!(s.am_until(n(1)), SimTime::from_secs(12));
    }

    #[test]
    fn deadlines_only_extend() {
        let mut s = OdpmState::new(1, OdpmConfig::default());
        s.on_rrep(n(0), SimTime::from_secs(10)); // until 15
        s.on_data(n(0), SimTime::from_secs(11)); // would be 13: ignored
        assert_eq!(s.am_until(n(0)), SimTime::from_secs(15));
        s.on_data(n(0), SimTime::from_secs(14)); // until 16
        assert_eq!(s.am_until(n(0)), SimTime::from_secs(16));
    }

    #[test]
    fn overlap_integrates_partial_intervals() {
        let mut s = OdpmState::new(1, OdpmConfig::default());
        s.on_data(n(0), SimTime::from_secs(1)); // AM until 3 s
        let bi = SimDuration::from_millis(250);
        // Interval fully inside the AM window.
        assert_eq!(s.am_overlap(n(0), SimTime::from_secs(2), bi), bi);
        // Interval straddling the deadline: 3.0 − 2.9 = 100 ms.
        assert_eq!(
            s.am_overlap(n(0), SimTime::from_millis(2900), bi),
            SimDuration::from_millis(100)
        );
        // Interval after the deadline.
        assert_eq!(
            s.am_overlap(n(0), SimTime::from_secs(3), bi),
            SimDuration::ZERO
        );
    }

    #[test]
    fn paper_beat_pattern_high_rate_stays_am() {
        // At 2 pkt/s the inter-packet gap (0.5 s) is below the 2 s
        // timeout: a relay refreshed every 0.5 s never leaves AM —
        // exactly the paper's Fig. 5(d) explanation.
        let mut s = OdpmState::new(1, OdpmConfig::default());
        let mut t = SimTime::ZERO;
        s.on_data(n(0), t);
        for _ in 0..100 {
            t += SimDuration::from_millis(500);
            assert!(s.is_am(n(0), t), "at {t}");
            s.on_data(n(0), t);
        }
    }

    #[test]
    fn paper_beat_pattern_low_rate_toggles() {
        // At 0.4 pkt/s the gap (2.5 s) exceeds the 2 s timeout: the node
        // sleeps 0.5 s out of every 2.5 s.
        let mut s = OdpmState::new(1, OdpmConfig::default());
        let t0 = SimTime::ZERO;
        s.on_data(n(0), t0);
        assert!(s.is_am(n(0), t0 + SimDuration::from_millis(1900)));
        assert!(!s.is_am(n(0), t0 + SimDuration::from_millis(2100)));
    }
}
