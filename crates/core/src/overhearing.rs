//! The RandomCast overhearing decision engine.
//!
//! Section 3.2 of the paper lists four criteria for the probabilistic
//! overhearing decision a PS node makes when it hears a
//! randomized-overhearing ATIM:
//!
//! 1. **Number of neighbors** — the more neighbors, the likelier one of
//!    them overhears instead: `P_R = 1 / #neighbors`. This is the only
//!    factor the paper's evaluation enables, and the default here.
//! 2. **Sender ID** — senders repeat the same route information in
//!    consecutive packets, so overhearing a sender that was heard
//!    recently is redundant; a sender unheard for a while is
//!    deterministically overheard.
//! 3. **Mobility** — under high mobility, overheard routes go stale
//!    quickly, so overhear more conservatively.
//! 4. **Remaining battery energy** — low battery, less overhearing.
//!
//! [`RcastDecider`] implements all four as composable multipliers so the
//! ablation benches can measure each one's contribution (the paper
//! leaves 2–4 as future work).

use std::collections::HashMap;

use rcast_engine::rng::{DrawLane, StreamRng};
use rcast_engine::{NodeId, SimDuration, SimTime};
use rcast_mobility::NeighborTable;

/// Which decision factors are active, plus their tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverhearFactors {
    /// Factor 1: `P_R = 1 / #neighbors` (the paper's evaluated scheme).
    pub neighbors: bool,
    /// Factor 2: deterministically overhear senders not heard recently.
    pub sender_id: bool,
    /// Factor 3: scale the probability down with local link churn.
    pub mobility: bool,
    /// Factor 4: scale the probability with remaining battery fraction.
    pub battery: bool,
    /// Silence threshold for the sender-ID factor.
    pub sender_silence: SimDuration,
    /// Receiving probability for randomized *broadcasts* (the paper's
    /// broadcast extension; must stay conservative so RREQs still
    /// propagate). `1.0` disables the extension.
    pub broadcast_probability: f64,
}

impl Default for OverhearFactors {
    /// The paper's evaluated configuration: neighbor count only.
    fn default() -> Self {
        OverhearFactors {
            neighbors: true,
            sender_id: false,
            mobility: false,
            battery: false,
            sender_silence: SimDuration::from_secs(10),
            broadcast_probability: 1.0,
        }
    }
}

impl OverhearFactors {
    /// Validates the tuning knobs.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.broadcast_probability) {
            return Err(format!(
                "broadcast probability {} outside [0,1]",
                self.broadcast_probability
            ));
        }
        if self.sender_id && self.sender_silence.is_zero() {
            return Err("sender-ID factor needs a positive silence threshold".into());
        }
        Ok(())
    }
}

/// The stateful Rcast decision engine shared by all nodes.
///
/// Nodes do not need private deciders: decisions are independent draws,
/// and per-observer state (last-heard tables, mobility estimates,
/// battery fractions) is indexed by node id.
///
/// # Example
///
/// ```
/// use rcast_core::{OverhearFactors, RcastDecider};
/// use rcast_engine::{NodeId, SimTime, rng::StreamRng};
/// use rcast_mobility::{Area, NeighborTable, Snapshot, Vec2};
///
/// let snap = Snapshot::from_positions(
///     vec![Vec2::new(0.0, 0.0), Vec2::new(100.0, 0.0), Vec2::new(200.0, 0.0)],
///     Area::new(1000.0, 10.0), SimTime::ZERO);
/// let nt = NeighborTable::build(&snap, 250.0);
/// let mut decider = RcastDecider::new(3, OverhearFactors::default(), StreamRng::from_seed(1));
/// // Node 0 has 2 neighbors, so it overhears with probability 1/2.
/// let hits: usize = (0..1000)
///     .filter(|_| decider.decide(NodeId::new(0), NodeId::new(1), &nt, SimTime::ZERO))
///     .count();
/// assert!(hits > 400 && hits < 600);
/// ```
#[derive(Debug, Clone)]
pub struct RcastDecider {
    factors: OverhearFactors,
    rng: StreamRng,
    /// Pre-filled raw draws for the interval's wake decisions. The
    /// decider's stream has no other consumers, so consuming the lane
    /// FIFO (with fall-through to `rng` when dry) is bit-identical to
    /// lazy per-decision draws — see [`DrawLane`].
    lane: DrawLane,
    /// Per observer: sender → when last heard (sender-ID factor).
    last_heard: Vec<HashMap<NodeId, SimTime>>,
    /// Per node: smoothed link changes per interval (mobility factor).
    link_churn: Vec<f64>,
    /// Per node: remaining battery fraction in `[0, 1]` (battery factor).
    battery_fraction: Vec<f64>,
}

impl RcastDecider {
    /// A decider for `n` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `factors` fail [`OverhearFactors::validate`].
    pub fn new(n: usize, factors: OverhearFactors, rng: StreamRng) -> Self {
        if let Err(e) = factors.validate() {
            panic!("invalid overhearing factors: {e}");
        }
        RcastDecider {
            factors,
            rng,
            lane: DrawLane::new(),
            last_heard: vec![HashMap::new(); n],
            link_churn: vec![0.0; n],
            battery_fraction: vec![1.0; n],
        }
    }

    /// The active factor set.
    pub fn factors(&self) -> OverhearFactors {
        self.factors
    }

    /// The probability `observer` would use right now (before the
    /// sender-ID short-circuit). Exposed for tests and analysis.
    pub fn probability(&self, observer: NodeId, nt: &NeighborTable) -> f64 {
        let mut p = 1.0;
        if self.factors.neighbors {
            p /= nt.degree(observer).max(1) as f64;
        }
        if self.factors.mobility {
            p /= 1.0 + self.link_churn[observer.index()];
        }
        if self.factors.battery {
            p *= self.battery_fraction[observer.index()];
        }
        p.clamp(0.0, 1.0)
    }

    /// The randomized-overhearing decision for `observer` on an ATIM
    /// advertised by `sender`.
    pub fn decide(
        &mut self,
        observer: NodeId,
        sender: NodeId,
        nt: &NeighborTable,
        now: SimTime,
    ) -> bool {
        if self.factors.sender_id {
            let heard = self.last_heard[observer.index()].get(&sender).copied();
            let silent = match heard {
                None => true,
                Some(t) => now.saturating_since(t) >= self.factors.sender_silence,
            };
            if silent {
                // An unheard sender means new traffic or too many skipped
                // packets: overhear deterministically (Section 3.2).
                self.note_heard(observer, sender, now);
                return true;
            }
        }
        let p = self.probability(observer, nt);
        let yes = self.lane.chance(&mut self.rng, p);
        if yes {
            self.note_heard(observer, sender, now);
        }
        yes
    }

    /// The randomized *broadcast* receiving decision (the paper's
    /// broadcast extension — conservative by construction).
    pub fn decide_broadcast(&mut self, _observer: NodeId, _sender: NodeId) -> bool {
        self.lane
            .chance(&mut self.rng, self.factors.broadcast_probability)
    }

    /// Tops the draw lane up to `target` pending draws. The simulator
    /// calls this once per beacon interval so the interval's wake
    /// decisions stream out of one contiguous buffer; decisions beyond
    /// the prefill fall through to the stream, and surplus draws carry
    /// over, so the decision sequence is bit-identical to unbatched
    /// draws at any `target` (including 0).
    pub fn prefill_draws(&mut self, target: usize) {
        self.lane.prefill(&mut self.rng, target);
    }

    /// Records that `observer` actually heard `sender` (reception or
    /// overhearing) — feeds the sender-ID factor.
    pub fn note_heard(&mut self, observer: NodeId, sender: NodeId, now: SimTime) {
        if self.factors.sender_id {
            self.last_heard[observer.index()].insert(sender, now);
        }
    }

    /// Feeds the mobility factor with this interval's link changes,
    /// exponentially smoothed (α = 0.25).
    pub fn note_link_changes(&mut self, node: NodeId, changes: usize) {
        let churn = &mut self.link_churn[node.index()];
        *churn = 0.75 * *churn + 0.25 * changes as f64;
    }

    /// Feeds the battery factor.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `[0, 1]`.
    pub fn note_battery(&mut self, node: NodeId, fraction: f64) {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "battery fraction {fraction} outside [0,1]"
        );
        self.battery_fraction[node.index()] = fraction;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcast_mobility::{Area, Snapshot, Vec2};

    fn line_nt(xs: &[f64]) -> NeighborTable {
        let snap = Snapshot::from_positions(
            xs.iter().map(|&x| Vec2::new(x, 0.0)).collect(),
            Area::new(100_000.0, 10.0),
            SimTime::ZERO,
        );
        NeighborTable::build(&snap, 250.0)
    }

    fn decider(n: usize, factors: OverhearFactors, seed: u64) -> RcastDecider {
        RcastDecider::new(n, factors, StreamRng::from_seed(seed))
    }

    #[test]
    fn probability_is_one_over_degree() {
        // A 6-node clique: every node has 5 neighbors.
        let nt = line_nt(&[0.0, 10.0, 20.0, 30.0, 40.0, 50.0]);
        let d = decider(6, OverhearFactors::default(), 0);
        assert!((d.probability(NodeId::new(0), &nt) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn isolated_node_has_probability_one() {
        let nt = line_nt(&[0.0, 100_000.0 - 1.0]);
        let d = decider(2, OverhearFactors::default(), 0);
        assert_eq!(d.probability(NodeId::new(0), &nt), 1.0);
    }

    #[test]
    fn empirical_rate_matches_probability() {
        let nt = line_nt(&[0.0, 10.0, 20.0, 30.0]); // degree 3 each
        let mut d = decider(4, OverhearFactors::default(), 42);
        let n = 30_000;
        let hits = (0..n)
            .filter(|_| d.decide(NodeId::new(0), NodeId::new(1), &nt, SimTime::ZERO))
            .count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 1.0 / 3.0).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn sender_id_factor_short_circuits_unheard_senders() {
        let nt = line_nt(&[0.0, 10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0]);
        let factors = OverhearFactors {
            sender_id: true,
            ..OverhearFactors::default()
        };
        let mut d = decider(8, factors, 7);
        // First encounter: always overhear.
        assert!(d.decide(NodeId::new(0), NodeId::new(1), &nt, SimTime::ZERO));
        // Immediately after, the sender is "recently heard": probabilistic
        // again (1/7 each; over many trials some fail).
        let hits = (0..1000)
            .filter(|_| {
                d.note_heard(NodeId::new(0), NodeId::new(1), SimTime::from_secs(1));
                d.decide(NodeId::new(0), NodeId::new(1), &nt, SimTime::from_secs(1))
            })
            .count();
        assert!(hits < 400, "recently-heard sender must not short-circuit");
        // After a long silence: deterministic again.
        assert!(d.decide(
            NodeId::new(0),
            NodeId::new(1),
            &nt,
            SimTime::from_secs(1000)
        ));
    }

    #[test]
    fn mobility_factor_reduces_probability() {
        let nt = line_nt(&[0.0, 10.0]);
        let factors = OverhearFactors {
            neighbors: false,
            mobility: true,
            ..OverhearFactors::default()
        };
        let mut d = decider(2, factors, 1);
        assert_eq!(d.probability(NodeId::new(0), &nt), 1.0);
        for _ in 0..50 {
            d.note_link_changes(NodeId::new(0), 8);
        }
        let p = d.probability(NodeId::new(0), &nt);
        assert!(p < 0.2, "high churn must suppress overhearing: {p}");
    }

    #[test]
    fn battery_factor_scales_probability() {
        let nt = line_nt(&[0.0, 10.0]);
        let factors = OverhearFactors {
            neighbors: false,
            battery: true,
            ..OverhearFactors::default()
        };
        let mut d = decider(2, factors, 1);
        d.note_battery(NodeId::new(0), 0.25);
        assert!((d.probability(NodeId::new(0), &nt) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn combined_factors_multiply() {
        let nt = line_nt(&[0.0, 10.0, 20.0]); // degree 2
        let factors = OverhearFactors {
            neighbors: true,
            battery: true,
            ..OverhearFactors::default()
        };
        let mut d = decider(3, factors, 1);
        d.note_battery(NodeId::new(0), 0.5);
        assert!((d.probability(NodeId::new(0), &nt) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn broadcast_probability_controls_extension() {
        let factors = OverhearFactors {
            broadcast_probability: 0.0,
            ..OverhearFactors::default()
        };
        let mut d = decider(2, factors, 3);
        assert!(!d.decide_broadcast(NodeId::new(0), NodeId::new(1)));
        let mut d2 = decider(2, OverhearFactors::default(), 3);
        assert!(d2.decide_broadcast(NodeId::new(0), NodeId::new(1)));
    }

    #[test]
    fn decisions_are_deterministic_per_seed() {
        let nt = line_nt(&[0.0, 10.0, 20.0, 30.0]);
        let run = |seed| {
            let mut d = decider(4, OverhearFactors::default(), seed);
            (0..100)
                .map(|_| d.decide(NodeId::new(0), NodeId::new(1), &nt, SimTime::ZERO))
                .collect::<Vec<bool>>()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn validation() {
        assert!(OverhearFactors::default().validate().is_ok());
        assert!(OverhearFactors {
            broadcast_probability: 1.5,
            ..OverhearFactors::default()
        }
        .validate()
        .is_err());
        assert!(OverhearFactors {
            sender_id: true,
            sender_silence: SimDuration::ZERO,
            ..OverhearFactors::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    #[should_panic]
    fn battery_fraction_out_of_range_panics() {
        let mut d = decider(1, OverhearFactors::default(), 0);
        d.note_battery(NodeId::new(0), 1.5);
    }
}
