//! Scenario files: a plain-text serialization of [`SimConfig`].
//!
//! ns-2 experiments live in scenario files; this library's equivalent is
//! a line-oriented `key value` format covering every knob the paper
//! sweeps, so experiments can be archived, diffed and replayed:
//!
//! ```text
//! # RandomCast scenario
//! scheme rcast
//! routing dsr
//! nodes 100
//! area 1500 300
//! rate 0.4
//! pause 600
//! seed 1
//! ```
//!
//! Unlisted keys keep the paper defaults; unknown keys are errors
//! (typos must not silently change an experiment).

use rcast_engine::SimDuration;
use rcast_mobility::Area;

use crate::config::SimConfig;
use crate::routing::RoutingKind;
use crate::scheme::Scheme;

/// Serializes a configuration to scenario text.
pub fn write_scenario(cfg: &SimConfig) -> String {
    let scheme = match cfg.scheme {
        Scheme::Dot11 => "802.11",
        Scheme::Psm => "psm",
        Scheme::PsmNoOverhear => "psm-none",
        Scheme::Odpm => "odpm",
        Scheme::Rcast => "rcast",
    };
    let routing = match cfg.routing {
        RoutingKind::Dsr => "dsr",
        RoutingKind::Aodv => "aodv",
    };
    let mut out = String::from("# RandomCast scenario\n");
    let mut line = |k: &str, v: String| {
        out.push_str(k);
        out.push(' ');
        out.push_str(&v);
        out.push('\n');
    };
    line("scheme", scheme.into());
    line("routing", routing.into());
    line("nodes", cfg.nodes.to_string());
    line(
        "area",
        format!("{} {}", cfg.area.width(), cfg.area.height()),
    );
    line("range", cfg.range_m.to_string());
    line("data_rate", cfg.data_rate_bps.to_string());
    line("duration", cfg.duration.as_secs_f64().to_string());
    line("seed", cfg.seed.to_string());
    line(
        "beacon_interval_ms",
        cfg.mac.beacon_interval.as_millis_f64().to_string(),
    );
    line(
        "atim_window_ms",
        cfg.mac.atim_window.as_millis_f64().to_string(),
    );
    line("flows", cfg.traffic.flows.to_string());
    line("rate", cfg.traffic.rate_pps.to_string());
    line("packet_bytes", cfg.traffic.packet_bytes.to_string());
    line("pause", cfg.waypoint.pause_secs.to_string());
    line("max_speed", cfg.waypoint.max_speed_mps.to_string());
    line(
        "broadcast_p",
        cfg.factors.broadcast_probability.to_string(),
    );
    if let Some(b) = cfg.battery_capacity_j {
        line("battery", b.to_string());
    }
    if cfg.obs {
        line("obs", "true".into());
    }
    if !cfg.faults.is_none() {
        if let Some(spec) = cfg.faults.spec_string() {
            line("faults", spec);
        }
        // Scripted faults have no spec syntax and are deliberately not
        // serialized: scenario files capture sweepable experiments, not
        // hand-placed test fixtures.
    }
    out
}

/// Parses scenario text into a configuration (starting from the paper
/// defaults).
///
/// # Errors
///
/// Returns a message naming the offending line for unknown keys,
/// malformed values, or a configuration that fails validation.
pub fn parse_scenario(text: &str) -> Result<SimConfig, String> {
    let mut cfg = SimConfig::paper(Scheme::Rcast, 1, 0.4, 600.0);
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let key = parts.next().expect("non-empty line has a first token");
        let rest: Vec<&str> = parts.collect();
        let one = || -> Result<&str, String> {
            if rest.len() == 1 {
                Ok(rest[0])
            } else {
                Err(format!("line {}: '{key}' expects one value", lineno + 1))
            }
        };
        let parse_f = |v: &str| -> Result<f64, String> {
            v.parse()
                .map_err(|_| format!("line {}: bad number '{v}'", lineno + 1))
        };
        match key {
            "scheme" => {
                cfg.scheme = match one()? {
                    "802.11" => Scheme::Dot11,
                    "psm" => Scheme::Psm,
                    "psm-none" => Scheme::PsmNoOverhear,
                    "odpm" => Scheme::Odpm,
                    "rcast" => Scheme::Rcast,
                    other => return Err(format!("line {}: unknown scheme '{other}'", lineno + 1)),
                }
            }
            "routing" => {
                cfg.routing = match one()? {
                    "dsr" => RoutingKind::Dsr,
                    "aodv" => RoutingKind::Aodv,
                    other => {
                        return Err(format!("line {}: unknown routing '{other}'", lineno + 1))
                    }
                }
            }
            "nodes" => cfg.nodes = parse_f(one()?)? as u32,
            "area" => {
                if rest.len() != 2 {
                    return Err(format!("line {}: area expects W H", lineno + 1));
                }
                cfg.area = Area::new(parse_f(rest[0])?, parse_f(rest[1])?);
            }
            "range" => cfg.range_m = parse_f(one()?)?,
            "data_rate" => cfg.data_rate_bps = parse_f(one()?)?,
            "duration" => cfg.duration = SimDuration::from_secs_f64(parse_f(one()?)?),
            "seed" => cfg.seed = parse_f(one()?)? as u64,
            "beacon_interval_ms" => {
                cfg.mac.beacon_interval = SimDuration::from_secs_f64(parse_f(one()?)? / 1e3)
            }
            "atim_window_ms" => {
                cfg.mac.atim_window = SimDuration::from_secs_f64(parse_f(one()?)? / 1e3)
            }
            "flows" => cfg.traffic.flows = parse_f(one()?)? as u32,
            "rate" => cfg.traffic.rate_pps = parse_f(one()?)?,
            "packet_bytes" => cfg.traffic.packet_bytes = parse_f(one()?)? as usize,
            "pause" => cfg.waypoint.pause_secs = parse_f(one()?)?,
            "max_speed" => cfg.waypoint.max_speed_mps = parse_f(one()?)?,
            "broadcast_p" => cfg.factors.broadcast_probability = parse_f(one()?)?,
            "battery" => cfg.battery_capacity_j = Some(parse_f(one()?)?),
            "obs" => {
                cfg.obs = match one()? {
                    "true" => true,
                    "false" => false,
                    other => {
                        return Err(format!("line {}: obs expects true/false, got '{other}'", lineno + 1))
                    }
                }
            }
            "faults" => {
                cfg.faults = crate::faults::FaultsConfig::parse_spec(one()?)
                    .map_err(|e| format!("line {}: {e}", lineno + 1))?
            }
            other => return Err(format!("line {}: unknown key '{other}'", lineno + 1)),
        }
    }
    cfg.validate()?;
    Ok(cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_preserves_config() {
        let mut cfg = SimConfig::paper(Scheme::Odpm, 17, 1.6, 300.0);
        cfg.routing = RoutingKind::Aodv;
        cfg.nodes = 64;
        cfg.battery_capacity_j = Some(800.0);
        cfg.factors.broadcast_probability = 0.8;
        let text = write_scenario(&cfg);
        let parsed = parse_scenario(&text).expect("round trip");
        assert_eq!(parsed, cfg);
    }

    #[test]
    fn faults_spec_round_trips_through_scenario_text() {
        let mut cfg = SimConfig::paper(Scheme::Rcast, 3, 0.4, 600.0);
        cfg.faults.crash_prob = 0.3;
        cfg.faults.downtime_s = 45.0;
        cfg.faults.link_blackouts = 2;
        cfg.faults.corruption_bursts = 1;
        let text = write_scenario(&cfg);
        assert!(text.contains("faults crash=0.3"), "{text}");
        let parsed = parse_scenario(&text).expect("round trip");
        assert_eq!(parsed, cfg);
        // A clean config emits no faults line at all.
        let clean = write_scenario(&SimConfig::paper(Scheme::Rcast, 3, 0.4, 600.0));
        assert!(!clean.contains("faults"), "{clean}");
    }

    #[test]
    fn obs_flag_round_trips_and_defaults_off() {
        let mut cfg = SimConfig::paper(Scheme::Rcast, 3, 0.4, 600.0);
        cfg.obs = true;
        let text = write_scenario(&cfg);
        assert!(text.contains("obs true"), "{text}");
        let parsed = parse_scenario(&text).expect("round trip");
        assert_eq!(parsed, cfg);
        // A default config emits no obs line and parses back off.
        let clean = write_scenario(&SimConfig::paper(Scheme::Rcast, 3, 0.4, 600.0));
        assert!(!clean.contains("obs"), "{clean}");
        assert!(!parse_scenario(&clean).unwrap().obs);
        assert!(parse_scenario("obs maybe\n").is_err());
    }

    #[test]
    fn defaults_fill_unlisted_keys() {
        let cfg = parse_scenario("scheme odpm\nrate 2.0\n").unwrap();
        assert_eq!(cfg.scheme, Scheme::Odpm);
        assert_eq!(cfg.traffic.rate_pps, 2.0);
        assert_eq!(cfg.nodes, 100, "paper default survives");
        assert_eq!(cfg.waypoint.pause_secs, 600.0);
    }

    #[test]
    fn comments_and_blanks_are_ignored() {
        let cfg = parse_scenario("# a comment\n\n  \nseed 9\n").unwrap();
        assert_eq!(cfg.seed, 9);
    }

    #[test]
    fn unknown_keys_are_errors_with_line_numbers() {
        let err = parse_scenario("nodes 50\nspeed_of_light 3e8\n").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        assert!(err.contains("speed_of_light"), "{err}");
    }

    #[test]
    fn malformed_values_are_errors() {
        assert!(parse_scenario("nodes many\n").is_err());
        assert!(parse_scenario("area 100\n").is_err());
        assert!(parse_scenario("scheme span\n").is_err());
        assert!(parse_scenario("nodes 1 2\n").is_err());
    }

    #[test]
    fn validation_applies() {
        // One node is structurally valid text but an invalid scenario.
        assert!(parse_scenario("nodes 1\n").is_err());
    }
}
