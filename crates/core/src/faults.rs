//! Deterministic, seed-driven fault injection.
//!
//! The paper evaluates clean networks only, yet Rcast's argument — that
//! randomized overhearing keeps DSR caches warm enough to survive
//! churn — is really a claim about *faulty* networks. This module adds
//! the missing half of the testbed: a [`FaultPlan`] that schedules
//!
//! * **node crashes and rejoins** — a crashed node's radio is off
//!   ([`rcast_radio::PowerState::Off`]), its MAC queue is purged, and
//!   its routing state is wiped; neighbors discover the loss through
//!   missing ATIM-ACKs, which feeds DSR a link error and drives the
//!   RERR → unconditional-overhearing policy of Section 3.3;
//! * **link blackouts** — a node pair stops hearing each other for a
//!   window (fading, obstruction) while both stay alive;
//! * **frame-corruption bursts** — windows in which the MAC channel
//!   drops data frames with some probability;
//! * **battery exhaustion** — with [`FaultsConfig::battery_exhaustion`]
//!   set, a node whose [`rcast_radio::Battery`] drains becomes a
//!   permanent crash instead of a mere bookkeeping event.
//!
//! Faults are generated from their own [`StreamRng`] stream
//! (`root.child("faults")`), so a fault-injected run remains a pure
//! function of `(SimConfig, seed)` and stays byte-identical across
//! `--threads` widths. Generation uses *nested coupling*: the random
//! draws for each potential fault happen unconditionally and the
//! probability only gates whether the fault activates, so raising
//! [`FaultsConfig::crash_prob`] yields a superset of identically-timed
//! crashes — the property the chaos harness leans on to check that
//! delivery degrades monotonically in the fault rate.
//!
//! Fault times are quantized to beacon-interval boundaries: a node is
//! either up or down for a whole interval, which keeps the MAC's
//! interval-granular bookkeeping (and the trace invariant "every hop of
//! a delivered packet ran between alive nodes") exact.

use rcast_engine::rng::StreamRng;
use rcast_engine::{NodeId, SimDuration, SimTime};

use crate::config::SimConfig;

/// Fault-injection knobs; the default injects nothing.
///
/// Random faults (crashes, blackouts, bursts) are drawn from the run's
/// `"faults"` RNG stream; [`FaultsConfig::script`] adds exact,
/// hand-placed faults on top for scripted tests.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultsConfig {
    /// Per-node probability of one scheduled crash during the run.
    pub crash_prob: f64,
    /// How long a crashed node stays down, seconds; `0` means it never
    /// rejoins.
    pub downtime_s: f64,
    /// Number of random link blackouts (node pairs that stop hearing
    /// each other for a window).
    pub link_blackouts: u32,
    /// Blackout window length, seconds.
    pub blackout_s: f64,
    /// Number of random frame-corruption bursts.
    pub corruption_bursts: u32,
    /// Corruption-burst window length, seconds.
    pub burst_s: f64,
    /// Data-frame loss probability while a burst is active.
    pub corruption_prob: f64,
    /// When `true` and the run has a finite battery, a depleted node
    /// crashes permanently instead of continuing to transmit for free.
    pub battery_exhaustion: bool,
    /// Exact scripted faults, applied on top of the random ones.
    pub script: Vec<FaultEvent>,
}

impl Default for FaultsConfig {
    fn default() -> Self {
        FaultsConfig {
            crash_prob: 0.0,
            downtime_s: 30.0,
            link_blackouts: 0,
            blackout_s: 20.0,
            corruption_bursts: 0,
            burst_s: 10.0,
            corruption_prob: 0.5,
            battery_exhaustion: false,
            script: Vec::new(),
        }
    }
}

impl FaultsConfig {
    /// `true` when this configuration injects no fault of any kind.
    pub fn is_none(&self) -> bool {
        self.crash_prob == 0.0
            && self.link_blackouts == 0
            && self.corruption_bursts == 0
            && !self.battery_exhaustion
            && self.script.is_empty()
    }

    /// Validates the fault configuration against a node count.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint.
    pub fn validate(&self, nodes: u32) -> Result<(), String> {
        let prob = |name: &str, p: f64| {
            if !(p.is_finite() && (0.0..=1.0).contains(&p)) {
                return Err(format!("{name} must be a probability, got {p}"));
            }
            Ok(())
        };
        let span = |name: &str, s: f64| {
            if !(s.is_finite() && s >= 0.0) {
                return Err(format!("{name} must be a non-negative duration, got {s}"));
            }
            Ok(())
        };
        prob("crash", self.crash_prob)?;
        prob("corrupt", self.corruption_prob)?;
        span("downtime", self.downtime_s)?;
        span("blackout", self.blackout_s)?;
        span("burst", self.burst_s)?;
        for ev in &self.script {
            match *ev {
                FaultEvent::Crash { node, at_s, down_s } => {
                    if node >= nodes {
                        return Err(format!("scripted crash of unknown node {node}"));
                    }
                    span("scripted crash time", at_s)?;
                    span("scripted crash downtime", down_s)?;
                }
                FaultEvent::LinkBlackout { a, b, at_s, for_s } => {
                    if a >= nodes || b >= nodes || a == b {
                        return Err(format!("scripted blackout of invalid pair ({a}, {b})"));
                    }
                    span("scripted blackout time", at_s)?;
                    span("scripted blackout length", for_s)?;
                }
                FaultEvent::CorruptionBurst { at_s, for_s, prob: p } => {
                    span("scripted burst time", at_s)?;
                    span("scripted burst length", for_s)?;
                    prob("scripted burst", p)?;
                }
            }
        }
        Ok(())
    }

    /// Parses the compact `--faults` spec string, e.g.
    /// `crash=0.3,downtime=15,blackouts=4,blackout=10,bursts=2,burst=10,corrupt=0.4,battery=true`.
    ///
    /// Every key is optional; omitted keys keep their defaults.
    /// Scripted events are not expressible in a spec.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending key or value.
    pub fn parse_spec(spec: &str) -> Result<FaultsConfig, String> {
        let mut cfg = FaultsConfig::default();
        for part in spec.split(',').filter(|p| !p.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("faults spec entry {part:?} is not key=value"))?;
            let f64_val = || -> Result<f64, String> {
                value
                    .parse::<f64>()
                    .map_err(|_| format!("faults spec: invalid number {value:?} for {key}"))
            };
            let u32_val = || -> Result<u32, String> {
                value
                    .parse::<u32>()
                    .map_err(|_| format!("faults spec: invalid count {value:?} for {key}"))
            };
            match key {
                "crash" => cfg.crash_prob = f64_val()?,
                "downtime" => cfg.downtime_s = f64_val()?,
                "blackouts" => cfg.link_blackouts = u32_val()?,
                "blackout" => cfg.blackout_s = f64_val()?,
                "bursts" => cfg.corruption_bursts = u32_val()?,
                "burst" => cfg.burst_s = f64_val()?,
                "corrupt" => cfg.corruption_prob = f64_val()?,
                "battery" => {
                    cfg.battery_exhaustion = value
                        .parse::<bool>()
                        .map_err(|_| format!("faults spec: battery wants true/false, got {value:?}"))?
                }
                other => return Err(format!("faults spec: unknown key {other:?}")),
            }
        }
        Ok(cfg)
    }

    /// The canonical spec string: `parse_spec(&spec_string())` restores
    /// every field except [`FaultsConfig::script`], which has no spec
    /// syntax. Returns `None` when the script is non-empty.
    pub fn spec_string(&self) -> Option<String> {
        if !self.script.is_empty() {
            return None;
        }
        Some(format!(
            "crash={},downtime={},blackouts={},blackout={},bursts={},burst={},corrupt={},battery={}",
            self.crash_prob,
            self.downtime_s,
            self.link_blackouts,
            self.blackout_s,
            self.corruption_bursts,
            self.burst_s,
            self.corruption_prob,
            self.battery_exhaustion,
        ))
    }
}

/// One scripted fault, for exact per-test scenarios.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultEvent {
    /// Node `node` crashes at `at_s` seconds and stays down `down_s`
    /// seconds (`0` = forever).
    Crash {
        /// Index of the crashing node.
        node: u32,
        /// Crash time, seconds from the start of the run.
        at_s: f64,
        /// Downtime in seconds; `0` means the node never rejoins.
        down_s: f64,
    },
    /// Nodes `a` and `b` stop hearing each other for a window.
    LinkBlackout {
        /// One endpoint.
        a: u32,
        /// The other endpoint.
        b: u32,
        /// Blackout start, seconds from the start of the run.
        at_s: f64,
        /// Blackout length, seconds.
        for_s: f64,
    },
    /// The channel corrupts data frames with probability `prob` for a
    /// window.
    CorruptionBurst {
        /// Burst start, seconds from the start of the run.
        at_s: f64,
        /// Burst length, seconds.
        for_s: f64,
        /// Data-frame loss probability during the burst.
        prob: f64,
    },
}

/// Per-run fault bookkeeping, carried in the
/// [`SimReport`](crate::SimReport).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Scheduled or scripted crashes that activated.
    pub crashes: u64,
    /// Crashed nodes that came back up.
    pub rejoins: u64,
    /// Nodes that died because their battery drained.
    pub battery_deaths: u64,
    /// Link blackouts that activated.
    pub link_blackouts: u64,
    /// Corruption bursts that activated.
    pub corruption_bursts: u64,
    /// MAC link-failure events caused by an injected fault (each one
    /// reaches the routing layer and can trigger a RERR).
    pub rerrs_triggered: u64,
    /// Data packets destroyed by faults: purged from a crashed node's
    /// MAC queue or route buffer, or originated by a dead source.
    pub packets_lost_to_faults: u64,
}

#[derive(Debug, Clone)]
struct Blackout {
    a: NodeId,
    b: NodeId,
    from: SimTime,
    until: SimTime,
    started: bool,
}

#[derive(Debug, Clone)]
struct Burst {
    from: SimTime,
    until: SimTime,
    prob: f64,
    started: bool,
}

/// The materialized fault schedule for one run.
///
/// Built deterministically from the config by [`FaultPlan::build`]; the
/// simulation consults it at every beacon-interval boundary. Tests can
/// rebuild the identical plan from the same config to cross-check what
/// the simulation did (e.g. which nodes were down when a hop ran).
#[derive(Debug, Clone)]
pub struct FaultPlan {
    bi: SimDuration,
    /// Per-node down windows, `[from, until)`, quantized to intervals.
    down: Vec<Vec<(SimTime, SimTime)>>,
    blackouts: Vec<Blackout>,
    bursts: Vec<Burst>,
    battery_dead: Vec<Option<SimTime>>,
    battery_exhaustion: bool,
}

impl FaultPlan {
    /// Materializes the schedule for `cfg`. Deterministic: the draws
    /// come from `StreamRng::from_seed(cfg.seed).child("faults")`, the
    /// same stream the simulation uses.
    pub fn build(cfg: &SimConfig) -> FaultPlan {
        FaultPlan::build_seeded(cfg, cfg.seed)
    }

    /// [`build`](Self::build) with the seed supplied separately, for
    /// per-seed runs that share one config (`cfg.seed` is ignored).
    pub fn build_seeded(cfg: &SimConfig, seed: u64) -> FaultPlan {
        let fc = &cfg.faults;
        let bi = cfg.mac.beacon_interval;
        let dur_s = cfg.duration.as_secs_f64();
        let rng = StreamRng::from_seed(seed).child("faults");

        let quantize = |at_s: f64| -> SimTime {
            let k = SimTime::from_secs_f64(at_s.min(dur_s)).elapsed_from_origin() / bi;
            SimTime::ZERO + bi * k
        };
        let window = |at_s: f64, len_s: f64| -> (SimTime, SimTime) {
            let from = quantize(at_s);
            if len_s <= 0.0 {
                return (from, SimTime::MAX);
            }
            let intervals = ((len_s / bi.as_secs_f64()).ceil() as u64).max(1);
            (from, from + bi * intervals)
        };

        let n = cfg.nodes as usize;
        let mut down: Vec<Vec<(SimTime, SimTime)>> = vec![Vec::new(); n];
        let mut blackouts = Vec::new();
        let mut bursts = Vec::new();

        // Nested coupling: draw unconditionally, gate on the threshold,
        // so a higher crash_prob produces a superset of the same faults.
        for i in 0..cfg.nodes {
            let mut r = rng.child_indexed("crash", u64::from(i));
            let u = r.uniform();
            let at_s = r.range_f64(0.0, dur_s);
            if u < fc.crash_prob {
                down[i as usize].push(window(at_s, fc.downtime_s));
            }
        }
        for j in 0..fc.link_blackouts {
            let mut r = rng.child_indexed("blackout", u64::from(j));
            let a = r.below(u64::from(cfg.nodes)) as u32;
            let mut b = r.below(u64::from(cfg.nodes)) as u32;
            while b == a {
                b = r.below(u64::from(cfg.nodes)) as u32;
            }
            let at_s = r.range_f64(0.0, dur_s);
            let (from, until) = window(at_s, fc.blackout_s);
            blackouts.push(Blackout {
                a: NodeId::new(a),
                b: NodeId::new(b),
                from,
                until,
                started: false,
            });
        }
        for j in 0..fc.corruption_bursts {
            let mut r = rng.child_indexed("burst", u64::from(j));
            let at_s = r.range_f64(0.0, dur_s);
            let (from, until) = window(at_s, fc.burst_s);
            bursts.push(Burst {
                from,
                until,
                prob: fc.corruption_prob,
                started: false,
            });
        }

        for ev in &fc.script {
            match *ev {
                FaultEvent::Crash { node, at_s, down_s } => {
                    down[node as usize].push(window(at_s, down_s));
                }
                FaultEvent::LinkBlackout { a, b, at_s, for_s } => {
                    let (from, until) = window(at_s, for_s);
                    blackouts.push(Blackout {
                        a: NodeId::new(a),
                        b: NodeId::new(b),
                        from,
                        until,
                        started: false,
                    });
                }
                FaultEvent::CorruptionBurst { at_s, for_s, prob } => {
                    let (from, until) = window(at_s, for_s);
                    bursts.push(Burst {
                        from,
                        until,
                        prob,
                        started: false,
                    });
                }
            }
        }
        for windows in &mut down {
            windows.sort_by_key(|w| w.0);
        }

        FaultPlan {
            bi,
            down,
            blackouts,
            bursts,
            battery_dead: vec![None; n],
            battery_exhaustion: fc.battery_exhaustion,
        }
    }

    /// `true` when the plan holds no scheduled fault and battery deaths
    /// are not being converted into crashes — i.e. consulting it can
    /// never change the run.
    pub fn is_empty(&self) -> bool {
        self.down.iter().all(Vec::is_empty)
            && self.blackouts.is_empty()
            && self.bursts.is_empty()
            && !self.battery_exhaustion
    }

    /// Whether scripted faults never activate within `duration` — the
    /// plan is *effectively* empty for a run of that length.
    pub fn is_vacuous_for(&self, duration: SimDuration) -> bool {
        let end = SimTime::ZERO + duration;
        self.down
            .iter()
            .all(|ws| ws.iter().all(|&(from, _)| from >= end))
            && self.blackouts.iter().all(|b| b.from >= end)
            && self.bursts.iter().all(|b| b.from >= end)
            && !self.battery_exhaustion
    }

    /// Is `node` down (crashed, or battery-dead) at time `t`?
    pub fn is_down(&self, node: NodeId, t: SimTime) -> bool {
        if let Some(died) = self.battery_dead[node.index()] {
            if t >= died {
                return true;
            }
        }
        self.down[node.index()]
            .iter()
            .any(|&(from, until)| t >= from && t < until)
    }

    /// Is a *scheduled* crash window (random or scripted) covering `t`
    /// for `node`? Battery deaths are excluded — they have their own
    /// counter.
    pub fn crash_scheduled(&self, node: NodeId, t: SimTime) -> bool {
        self.down[node.index()]
            .iter()
            .any(|&(from, until)| t >= from && t < until)
    }

    /// Is the link between `a` and `b` blacked out at time `t`?
    pub fn link_cut(&self, a: NodeId, b: NodeId, t: SimTime) -> bool {
        self.blackouts.iter().any(|bl| {
            t >= bl.from && t < bl.until && ((bl.a, bl.b) == (a, b) || (bl.a, bl.b) == (b, a))
        })
    }

    /// Blackouts active at `t`, as endpoint pairs.
    pub fn cut_links_at(&self, t: SimTime) -> Vec<(NodeId, NodeId)> {
        self.blackouts
            .iter()
            .filter(|bl| t >= bl.from && t < bl.until)
            .map(|bl| (bl.a, bl.b))
            .collect()
    }

    /// The effective frame-corruption probability at `t` (the strongest
    /// active burst, or `0`).
    pub fn corruption_prob(&self, t: SimTime) -> f64 {
        self.bursts
            .iter()
            .filter(|b| t >= b.from && t < b.until)
            .fold(0.0, |acc, b| acc.max(b.prob))
    }

    /// Marks blackouts whose window has begun as started; returns how
    /// many newly activated (for the report counters).
    pub fn activate_blackouts(&mut self, t: SimTime) -> u64 {
        let mut n = 0;
        for bl in &mut self.blackouts {
            if !bl.started && t >= bl.from && t < bl.until {
                bl.started = true;
                n += 1;
            }
        }
        n
    }

    /// Marks bursts whose window has begun as started; returns how many
    /// newly activated.
    pub fn activate_bursts(&mut self, t: SimTime) -> u64 {
        let mut n = 0;
        for b in &mut self.bursts {
            if !b.started && t >= b.from && t < b.until {
                b.started = true;
                n += 1;
            }
        }
        n
    }

    /// Records that `node`'s battery drained at `at`. With
    /// [`FaultsConfig::battery_exhaustion`] set the node is down from
    /// the next interval boundary on; otherwise this is a no-op.
    /// Returns `true` when the death was newly recorded.
    pub fn note_battery_death(&mut self, node: NodeId, at: SimTime) -> bool {
        if !self.battery_exhaustion || self.battery_dead[node.index()].is_some() {
            return false;
        }
        // Quantize up: the node finishes the interval it died in and is
        // down from the next boundary (a death stamped exactly on a
        // boundary needs no rounding).
        let e = at.elapsed_from_origin();
        let mut k = e / self.bi;
        if self.bi * k != e {
            k += 1;
        }
        self.battery_dead[node.index()] = Some(SimTime::ZERO + self.bi * k);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::Scheme;

    fn cfg_with(fc: FaultsConfig) -> SimConfig {
        let mut cfg = SimConfig::smoke(Scheme::Rcast, 7);
        cfg.faults = fc;
        cfg
    }

    #[test]
    fn default_config_is_none_and_plan_is_empty() {
        let fc = FaultsConfig::default();
        assert!(fc.is_none());
        let plan = FaultPlan::build(&cfg_with(fc));
        assert!(plan.is_empty());
    }

    #[test]
    fn spec_round_trips() {
        let fc = FaultsConfig {
            crash_prob: 0.25,
            downtime_s: 15.0,
            link_blackouts: 3,
            corruption_bursts: 2,
            corruption_prob: 0.4,
            battery_exhaustion: true,
            ..FaultsConfig::default()
        };
        let spec = fc.spec_string().expect("no script");
        assert_eq!(FaultsConfig::parse_spec(&spec), Ok(fc));
    }

    #[test]
    fn spec_rejects_junk() {
        assert!(FaultsConfig::parse_spec("crash").is_err());
        assert!(FaultsConfig::parse_spec("crash=x").is_err());
        assert!(FaultsConfig::parse_spec("wat=1").is_err());
        assert!(FaultsConfig::parse_spec("battery=maybe").is_err());
    }

    #[test]
    fn validation_catches_bad_values() {
        let nodes = 10;
        let fc = FaultsConfig { crash_prob: 1.5, ..FaultsConfig::default() };
        assert!(fc.validate(nodes).is_err());

        let fc = FaultsConfig { burst_s: f64::NAN, ..FaultsConfig::default() };
        assert!(fc.validate(nodes).is_err());

        let mut fc = FaultsConfig::default();
        fc.script.push(FaultEvent::Crash {
            node: 10,
            at_s: 1.0,
            down_s: 1.0,
        });
        assert!(fc.validate(nodes).is_err());

        let mut fc = FaultsConfig::default();
        fc.script.push(FaultEvent::LinkBlackout {
            a: 3,
            b: 3,
            at_s: 1.0,
            for_s: 1.0,
        });
        assert!(fc.validate(nodes).is_err());
    }

    #[test]
    fn higher_crash_prob_is_a_superset_with_identical_times() {
        let low = FaultsConfig { crash_prob: 0.2, ..FaultsConfig::default() };
        let mut high = low.clone();
        high.crash_prob = 0.6;
        let lo = FaultPlan::build(&cfg_with(low));
        let hi = FaultPlan::build(&cfg_with(high));
        let count = |p: &FaultPlan| p.down.iter().filter(|w| !w.is_empty()).count();
        assert!(count(&lo) < count(&hi), "{} vs {}", count(&lo), count(&hi));
        for (l, h) in lo.down.iter().zip(&hi.down) {
            if !l.is_empty() {
                assert_eq!(l, h, "a low-rate crash moved at the higher rate");
            }
        }
    }

    #[test]
    fn scripted_crash_windows_quantize_to_intervals() {
        let mut fc = FaultsConfig::default();
        fc.script.push(FaultEvent::Crash {
            node: 4,
            at_s: 10.1,
            down_s: 0.6,
        });
        let cfg = cfg_with(fc);
        let bi = cfg.mac.beacon_interval;
        let plan = FaultPlan::build(&cfg);
        let id = NodeId::new(4);
        // 10.1 s quantizes down to interval 40 (10.0 s); 0.6 s of
        // downtime rounds up to 3 × 250 ms intervals.
        assert!(!plan.is_down(id, SimTime::from_secs_f64(9.9)));
        assert!(plan.is_down(id, SimTime::from_secs(10)));
        assert!(plan.is_down(id, SimTime::from_secs_f64(10.5)));
        assert!(!plan.is_down(id, SimTime::from_secs_f64(10.75)));
        assert_eq!(SimTime::from_secs(10).elapsed_from_origin() / bi, 40);
    }

    #[test]
    fn permanent_crash_never_rejoins() {
        let mut fc = FaultsConfig::default();
        fc.script.push(FaultEvent::Crash {
            node: 0,
            at_s: 5.0,
            down_s: 0.0,
        });
        let plan = FaultPlan::build(&cfg_with(fc));
        assert!(plan.is_down(NodeId::new(0), SimTime::from_secs(100_000)));
    }

    #[test]
    fn link_cut_is_symmetric_and_windowed() {
        let mut fc = FaultsConfig::default();
        fc.script.push(FaultEvent::LinkBlackout {
            a: 1,
            b: 2,
            at_s: 20.0,
            for_s: 10.0,
        });
        let mut plan = FaultPlan::build(&cfg_with(fc));
        let (a, b) = (NodeId::new(1), NodeId::new(2));
        let t = SimTime::from_secs(25);
        assert!(plan.link_cut(a, b, t));
        assert!(plan.link_cut(b, a, t));
        assert!(!plan.link_cut(a, b, SimTime::from_secs(31)));
        assert!(!plan.link_cut(a, NodeId::new(3), t));
        assert_eq!(plan.activate_blackouts(t), 1);
        assert_eq!(plan.activate_blackouts(t), 0, "activation counted once");
    }

    #[test]
    fn corruption_prob_takes_strongest_active_burst() {
        let mut fc = FaultsConfig::default();
        fc.script.push(FaultEvent::CorruptionBurst {
            at_s: 10.0,
            for_s: 20.0,
            prob: 0.3,
        });
        fc.script.push(FaultEvent::CorruptionBurst {
            at_s: 15.0,
            for_s: 5.0,
            prob: 0.8,
        });
        let plan = FaultPlan::build(&cfg_with(fc));
        assert_eq!(plan.corruption_prob(SimTime::from_secs(12)), 0.3);
        assert_eq!(plan.corruption_prob(SimTime::from_secs(16)), 0.8);
        assert_eq!(plan.corruption_prob(SimTime::from_secs(40)), 0.0);
    }

    #[test]
    fn battery_death_requires_opt_in_and_rounds_up() {
        let mut cfg = cfg_with(FaultsConfig::default());
        let mut plan = FaultPlan::build(&cfg);
        assert!(!plan.note_battery_death(NodeId::new(2), SimTime::from_secs(30)));

        cfg.faults.battery_exhaustion = true;
        let mut plan = FaultPlan::build(&cfg);
        let died = SimTime::from_secs_f64(30.1);
        assert!(plan.note_battery_death(NodeId::new(2), died));
        assert!(!plan.note_battery_death(NodeId::new(2), died), "recorded once");
        assert!(!plan.is_down(NodeId::new(2), SimTime::from_secs_f64(30.2)));
        assert!(plan.is_down(NodeId::new(2), SimTime::from_secs_f64(30.25)));
    }

    #[test]
    fn plan_is_reproducible_from_the_config() {
        let fc = FaultsConfig {
            crash_prob: 0.4,
            link_blackouts: 5,
            corruption_bursts: 2,
            ..FaultsConfig::default()
        };
        let cfg = cfg_with(fc);
        let a = FaultPlan::build(&cfg);
        let b = FaultPlan::build(&cfg);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }
}
