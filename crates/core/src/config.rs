//! Whole-simulation configuration.

use rcast_engine::SimDuration;
use rcast_mac::MacConfig;
use rcast_mobility::{Area, WaypointConfig};
use rcast_radio::EnergyModel;
use rcast_traffic::TrafficConfig;

use crate::faults::FaultsConfig;
use crate::odpm::OdpmConfig;
use crate::overhearing::OverhearFactors;
use crate::routing::RoutingKind;
use crate::scheme::Scheme;
use rcast_aodv::AodvConfig;
use rcast_dsr::DsrConfig;

/// Everything a simulation run needs; a run is a pure function of
/// `(SimConfig, seed)`.
///
/// [`SimConfig::paper`] reproduces the paper's testbed (Section 4.1):
/// 100 nodes on 1500 × 300 m², 250 m range, 2 Mbps, 20 CBR flows of
/// 512-byte packets, random waypoint at ≤ 20 m/s, 1125 s simulated.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Number of mobile nodes.
    pub nodes: u32,
    /// The field they roam.
    pub area: Area,
    /// Radio range, meters.
    pub range_m: f64,
    /// Channel bit rate, bits/second.
    pub data_rate_bps: f64,
    /// The power-management scheme under test.
    pub scheme: Scheme,
    /// Simulated duration.
    pub duration: SimDuration,
    /// Master seed; all randomness derives from it.
    pub seed: u64,
    /// MAC parameters (beacon interval, ATIM window, queues).
    pub mac: MacConfig,
    /// Which routing protocol runs on top of the MAC (paper: DSR).
    pub routing: RoutingKind,
    /// DSR parameters (cache, discovery, salvaging).
    pub dsr: DsrConfig,
    /// AODV parameters (used only with [`RoutingKind::Aodv`]).
    pub aodv: AodvConfig,
    /// Workload parameters (flows, rate, packet size).
    pub traffic: TrafficConfig,
    /// Mobility parameters (speed, pause time).
    pub waypoint: WaypointConfig,
    /// Radio power profile.
    pub energy: EnergyModel,
    /// ODPM timeouts (used only by [`Scheme::Odpm`]).
    pub odpm: OdpmConfig,
    /// Rcast decision factors (used only by [`Scheme::Rcast`]).
    pub factors: OverhearFactors,
    /// Optional finite battery per node, joules — enables the
    /// network-lifetime metric.
    pub battery_capacity_j: Option<f64>,
    /// Optional per-node cumulative-energy sampling period; when set,
    /// the report carries an energy [`rcast_metrics::TimeSeries`].
    pub energy_sampling: Option<SimDuration>,
    /// When `true`, journal every data packet's lifecycle into the
    /// report's [`crate::PacketTrace`] (costs memory on long runs).
    pub trace: bool,
    /// When `true`, record the cross-layer event ledger into the
    /// report's [`rcast_obs::ObsReport`]: MAC interval phases, routing
    /// packet lifecycle, fault markers, and per-interval energy spans.
    /// Storage is fully pre-sized (costs memory on long runs).
    pub obs: bool,
    /// Fault injection (crashes, blackouts, corruption bursts); the
    /// default injects nothing.
    pub faults: FaultsConfig,
}

impl SimConfig {
    /// The paper's testbed with the given scheme, seed, packet rate
    /// (packets/second) and pause time (seconds).
    pub fn paper(scheme: Scheme, seed: u64, rate_pps: f64, pause_secs: f64) -> Self {
        SimConfig {
            nodes: 100,
            area: Area::paper_default(),
            range_m: 250.0,
            data_rate_bps: 2_000_000.0,
            scheme,
            duration: SimDuration::from_secs(1125),
            seed,
            mac: MacConfig::default(),
            routing: RoutingKind::Dsr,
            dsr: DsrConfig::default(),
            aodv: AodvConfig::default(),
            traffic: TrafficConfig {
                rate_pps,
                ..TrafficConfig::default()
            },
            waypoint: WaypointConfig {
                pause_secs,
                ..WaypointConfig::default()
            },
            energy: EnergyModel::wavelan_ii(),
            odpm: OdpmConfig::default(),
            factors: OverhearFactors::default(),
            battery_capacity_j: None,
            energy_sampling: None,
            trace: false,
            obs: false,
            faults: FaultsConfig::default(),
        }
    }

    /// A scaled-down testbed (shorter run, fewer nodes) for fast tests
    /// and Criterion benches; same densities and protocol parameters.
    pub fn smoke(scheme: Scheme, seed: u64) -> Self {
        SimConfig {
            nodes: 50,
            area: Area::new(1000.0, 300.0),
            duration: SimDuration::from_secs(120),
            traffic: TrafficConfig {
                flows: 10,
                rate_pps: 0.4,
                ..TrafficConfig::default()
            },
            ..SimConfig::paper(scheme, seed, 0.4, 60.0)
        }
    }

    /// Number of whole beacon intervals in the run.
    pub fn beacon_intervals(&self) -> u64 {
        self.duration / self.mac.beacon_interval
    }

    /// Validates the whole configuration tree.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint, prefixed by its layer.
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes < 2 {
            return Err("need at least two nodes".into());
        }
        if !(self.range_m.is_finite() && self.range_m > 0.0) {
            return Err(format!("invalid range {}", self.range_m));
        }
        if self.duration.is_zero() {
            return Err("duration must be positive".into());
        }
        if let Some(cap) = self.battery_capacity_j {
            if !(cap.is_finite() && cap > 0.0) {
                return Err(format!("invalid battery capacity {cap}"));
            }
        }
        if let Some(p) = self.energy_sampling {
            if p.is_zero() {
                return Err("energy sampling period must be positive".into());
            }
        }
        self.mac.validate().map_err(|e| format!("mac: {e}"))?;
        self.dsr.validate().map_err(|e| format!("dsr: {e}"))?;
        self.aodv.validate().map_err(|e| format!("aodv: {e}"))?;
        self.traffic
            .validate()
            .map_err(|e| format!("traffic: {e}"))?;
        self.waypoint
            .validate()
            .map_err(|e| format!("waypoint: {e}"))?;
        self.energy.validate().map_err(|e| format!("energy: {e}"))?;
        self.factors
            .validate()
            .map_err(|e| format!("factors: {e}"))?;
        self.faults
            .validate(self.nodes)
            .map_err(|e| format!("faults: {e}"))?;
        if self.traffic.flows > 0 && self.nodes < 2 {
            return Err("traffic requires at least two nodes".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_section_4_1() {
        let c = SimConfig::paper(Scheme::Rcast, 1, 0.4, 600.0);
        assert_eq!(c.nodes, 100);
        assert_eq!(c.area.width(), 1500.0);
        assert_eq!(c.area.height(), 300.0);
        assert_eq!(c.range_m, 250.0);
        assert_eq!(c.data_rate_bps, 2_000_000.0);
        assert_eq!(c.duration, SimDuration::from_secs(1125));
        assert_eq!(c.traffic.flows, 20);
        assert_eq!(c.traffic.packet_bytes, 512);
        assert_eq!(c.waypoint.max_speed_mps, 20.0);
        assert_eq!(c.waypoint.pause_secs, 600.0);
        assert!(c.validate().is_ok());
        // 1125 s / 250 ms = 4500 beacon intervals.
        assert_eq!(c.beacon_intervals(), 4500);
    }

    #[test]
    fn smoke_config_validates() {
        for scheme in Scheme::ALL {
            assert!(SimConfig::smoke(scheme, 0).validate().is_ok(), "{scheme}");
        }
    }

    #[test]
    fn validation_propagates_layer_errors() {
        let mut c = SimConfig::smoke(Scheme::Rcast, 0);
        c.nodes = 1;
        assert!(c.validate().is_err());

        let mut c = SimConfig::smoke(Scheme::Rcast, 0);
        c.range_m = -5.0;
        assert!(c.validate().is_err());

        let mut c = SimConfig::smoke(Scheme::Rcast, 0);
        c.mac.queue_capacity = 0;
        assert!(c.validate().unwrap_err().starts_with("mac:"));

        let mut c = SimConfig::smoke(Scheme::Rcast, 0);
        c.traffic.rate_pps = 0.0;
        assert!(c.validate().unwrap_err().starts_with("traffic:"));

        let mut c = SimConfig::smoke(Scheme::Rcast, 0);
        c.battery_capacity_j = Some(0.0);
        assert!(c.validate().is_err());
    }
}
