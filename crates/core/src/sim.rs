//! The full-network simulation: all layers wired together.
//!
//! One [`Simulation`] owns mobility, the PSM MAC, the active-mode
//! channel, one DSR engine per node, the scheme-specific controllers
//! (ODPM timeouts, the Rcast decider), energy meters, and the metric
//! collectors. [`Simulation::step_interval`] advances one beacon
//! interval ([`Simulation::run`] loops it to completion):
//!
//! 1. refresh positions and the incrementally maintained neighbor
//!    index,
//! 2. fire DSR timers,
//! 3. resolve the PSM beacon interval (ATIM window + data window) and
//!    feed every delivery, overhearing and link failure back into the
//!    DSR engines,
//! 4. inject the interval's CBR arrivals (immediate transmission for
//!    802.11/ODPM-AM paths, MAC queueing otherwise),
//! 5. integrate energy per node from awake/sleep durations.
//!
//! The result is a [`SimReport`] carrying every metric of the paper's
//! Section 4.
//!
//! # Hot path & memory discipline
//!
//! The steady-state interval loop is allocation-free (see DESIGN.md
//! §10): the neighbor index ([`rcast_mobility::NeighborIndex`]) is
//! updated in place from the mobility delta, packets are interned once
//! in a [`PacketArena`] and travel through the MAC as copyable
//! [`PacketHandle`]s, and all per-interval working storage lives in a
//! [`Scratch`] that is cleared, never dropped. `crates/bench` carries a
//! counting-allocator regression test pinning quiet intervals to zero
//! heap allocations.

use std::collections::VecDeque;
use std::sync::Arc;

use rcast_aodv::AodvCounters;
use rcast_dsr::DsrCounters;
use rcast_engine::rng::StreamRng;
use rcast_engine::{NodeId, SimDuration, SimTime};
use rcast_mac::{
    Channel, Delivery, ImmediateResult, IntervalOutcome, MacFrame, MacLayer, MacObserver,
    OverhearingLevel, PowerMode, WakePolicy,
};
use rcast_mobility::{MobilityField, NeighborIndex, NeighborTable, Snapshot};
use rcast_obs::{EventKind as ObsKind, Ledger, LedgerParams, PacketClass};
use rcast_radio::{EnergyModel, Phy, PowerState};
use rcast_metrics::{DeliveryTracker, EnergyReport, RoleNumbers, TimeSeries};
use rcast_traffic::{Arrival, FlowSchedule};

use crate::config::SimConfig;
use crate::faults::{FaultCounters, FaultPlan};
use crate::odpm::OdpmState;
use crate::routing::{NetPacket, PacketArena, PacketHandle, PacketKind, RouteAction, RouterNode};
use crate::trace::{PacketTrace, TraceEvent};
use crate::overhearing::RcastDecider;
use crate::report::SimReport;
use crate::scheme::Scheme;

/// The per-interval wake policy handed to the MAC resolver.
struct IntervalPolicy<'a> {
    scheme: Scheme,
    interval_start: SimTime,
    odpm: &'a OdpmState,
    rcast: &'a mut RcastDecider,
}

impl WakePolicy for IntervalPolicy<'_> {
    fn mode(&self, node: NodeId) -> PowerMode {
        match self.scheme {
            Scheme::Dot11 => PowerMode::Active,
            Scheme::Psm | Scheme::PsmNoOverhear | Scheme::Rcast => PowerMode::PowerSave,
            Scheme::Odpm => {
                if self.odpm.is_am(node, self.interval_start) {
                    PowerMode::Active
                } else {
                    PowerMode::PowerSave
                }
            }
        }
    }

    fn overhear(
        &mut self,
        observer: NodeId,
        sender: NodeId,
        _level: OverhearingLevel,
        neighbors: &NeighborTable,
    ) -> bool {
        // Only Rcast advertises the randomized level.
        self.rcast
            .decide(observer, sender, neighbors, self.interval_start)
    }

    fn overhear_broadcast(
        &mut self,
        observer: NodeId,
        sender: NodeId,
        _neighbors: &NeighborTable,
    ) -> bool {
        self.rcast.decide_broadcast(observer, sender)
    }
}

/// A routing action awaiting dispatch, stamped with its node and time.
type Pending = (NodeId, SimTime, RouteAction);

/// Adapts the event [`Ledger`] to the MAC's [`MacObserver`] tap
/// (defined here because both traits' crates are upstream of this one).
struct LedgerMacObserver<'a> {
    ledger: &'a mut Ledger,
}

impl MacObserver for LedgerMacObserver<'_> {
    fn atim_unicast(&mut self, at: SimTime, sender: NodeId, to: NodeId) {
        self.ledger.record_event(at, sender, ObsKind::AtimUnicast { to });
    }
    fn atim_broadcast(&mut self, at: SimTime, sender: NodeId) {
        self.ledger.record_event(at, sender, ObsKind::AtimBroadcast);
    }
    fn atim_no_ack(&mut self, at: SimTime, sender: NodeId, to: NodeId) {
        self.ledger.record_event(at, sender, ObsKind::AtimNoAck { to });
    }
    fn atim_deferred(&mut self, at: SimTime, sender: NodeId) {
        self.ledger.record_event(at, sender, ObsKind::AtimDeferred);
    }
    fn link_broken(&mut self, at: SimTime, sender: NodeId, to: NodeId) {
        self.ledger.record_event(at, sender, ObsKind::LinkBroken { to });
    }
    fn overhear_commit(&mut self, at: SimTime, node: NodeId, sender: NodeId) {
        self.ledger.record_event(at, node, ObsKind::OverhearCommit { sender });
    }
    fn airtime_reserved(&mut self, at: SimTime, sender: NodeId, dur: SimDuration) {
        self.ledger
            .record_event(at, sender, ObsKind::Airtime { nanos: dur.as_nanos() });
    }
    fn data_lost(&mut self, at: SimTime, sender: NodeId, to: NodeId) {
        self.ledger.record_event(at, sender, ObsKind::DataLost { to });
    }
    fn data_deferred(&mut self, at: SimTime, sender: NodeId) {
        self.ledger.record_event(at, sender, ObsKind::DataDeferred);
    }
}

/// Maps the routing layer's packet kind onto the ledger's mirror enum.
fn class_of(kind: PacketKind) -> PacketClass {
    match kind {
        PacketKind::Rreq => PacketClass::Rreq,
        PacketKind::Rrep => PacketClass::Rrep,
        PacketKind::Rerr => PacketClass::Rerr,
        PacketKind::Data => PacketClass::Data,
        PacketKind::Hello => PacketClass::Hello,
    }
}

/// Reusable per-interval working storage. Every collection here is
/// cleared at the start of its use and refilled in place; after the
/// first few intervals the capacities stabilize and the interval loop
/// stops touching the allocator.
#[derive(Default)]
struct Scratch {
    /// The pending-action queue drained by [`Simulation::dispatch`].
    work: VecDeque<Pending>,
    /// Broadcast fan-out staging for reply-storm suppression.
    batch: Vec<Pending>,
    /// The MAC interval outcome, refilled by `run_interval_into`.
    outcome: IntervalOutcome<PacketHandle>,
    /// Fan-out buffer for the immediate (active-mode) channel path —
    /// holds one transmission's recipients/overhearers at a time.
    imm_fanout: Vec<NodeId>,
    /// Per-shard link-churn counts for the sharded neighbor scan.
    churn: Vec<Vec<usize>>,
    /// `committed_awake` substitute for the non-PSM (802.11) path: every
    /// node awake for the full beacon interval. Built once.
    flat_committed: Vec<SimDuration>,
    /// `ps_awake` substitute for the non-PSM path: all `false`.
    flat_ps: Vec<bool>,
    /// Per-node cumulative-joules buffer for the energy time series.
    energy_sample: Vec<f64>,
}

/// Struct-of-arrays per-node hot state: the crash/power lane, the
/// per-state energy-seconds lanes and the battery lanes, each one flat
/// array indexed by node id.
///
/// The interval phases walk nodes in index order (serially or in
/// contiguous shards); holding this state as lanes instead of
/// per-node structs (`Vec<EnergyMeter>` + `Vec<Battery>` + `Vec<bool>`)
/// turns the energy integration, fault scan and battery drain into
/// sequential streams over small contiguous arrays. The arithmetic
/// mirrors `EnergyMeter::accumulate`/`total_joules` and
/// `Battery::drain` operation-for-operation — same adds, same order,
/// same comparisons — so reports and ledger replays (which replay
/// spans into real `EnergyMeter`s) stay bit-identical. `EnergyMeter`
/// remains the single-node oracle type.
struct NodeLanes {
    /// Power draw per state; identical for every node.
    model: EnergyModel,
    /// Crashed (radio off) this interval.
    down: Vec<bool>,
    /// Seconds spent awake — meter slot 0.
    awake_s: Vec<f64>,
    /// Seconds spent dozing — meter slot 3.
    sleep_s: Vec<f64>,
    /// Seconds spent off — meter slot 4. Draws nothing; kept so the
    /// per-node accounted wall-clock invariant stays checkable.
    off_s: Vec<f64>,
    /// Battery lanes; `None` when capacity is unlimited.
    battery: Option<BatteryLanes>,
}

/// Finite-battery lanes mirroring `Battery` semantics per node.
struct BatteryLanes {
    capacity_j: f64,
    consumed_j: Vec<f64>,
    /// A depleted battery ignores further drains; the crossing is
    /// reported exactly once.
    depleted: Vec<bool>,
}

impl NodeLanes {
    // det: cold — construction: runs once per simulation
    fn new(n: usize, model: EnergyModel, battery_capacity_j: Option<f64>) -> Self {
        NodeLanes {
            model,
            down: vec![false; n],
            awake_s: vec![0.0; n],
            sleep_s: vec![0.0; n],
            off_s: vec![0.0; n],
            battery: battery_capacity_j.map(|cap| {
                assert!(
                    cap.is_finite() && cap > 0.0,
                    "invalid capacity {cap}"
                );
                BatteryLanes {
                    capacity_j: cap,
                    consumed_j: vec![0.0; n],
                    depleted: vec![false; n],
                }
            }),
        }
    }

    /// Number of nodes covered.
    fn len(&self) -> usize {
        self.down.len()
    }

    /// Node `i`'s total energy, bit-identical to
    /// `EnergyMeter::total_joules` fed the same durations: the tx/rx
    /// slots are never charged by the interval loop, and `x + 0.0 == x`
    /// exactly for the finite non-negative products involved, so
    /// dropping the two zero terms cannot change a bit.
    fn total_joules(&self, i: usize) -> f64 {
        self.awake_s[i] * self.model.idle_w + self.sleep_s[i] * self.model.sleep_w
    }
}

impl BatteryLanes {
    /// Mirrors `Battery::drain`: consumes `joules` (negative drains
    /// ignored), reporting `now` if this drain crossed empty.
    fn drain(&mut self, i: usize, joules: f64, now: SimTime) -> Option<SimTime> {
        if self.depleted[i] {
            return None;
        }
        self.consumed_j[i] += joules.max(0.0);
        if self.consumed_j[i] >= self.capacity_j {
            self.depleted[i] = true;
            return Some(now);
        }
        None
    }

    /// Mirrors `Battery::remaining_fraction`.
    fn remaining_fraction(&self, i: usize) -> f64 {
        (self.capacity_j - self.consumed_j[i]).max(0.0) / self.capacity_j
    }
}

/// The assembled network simulation.
///
/// # Example
///
/// ```
/// use rcast_core::{Scheme, SimConfig, Simulation};
///
/// let report = Simulation::new(SimConfig::smoke(Scheme::Rcast, 7))
///     .expect("valid config")
///     .run();
/// assert!(report.energy.total_joules() > 0.0);
/// assert!(report.delivery.delivery_ratio() > 0.0);
/// ```
pub struct Simulation {
    cfg: Arc<SimConfig>,
    /// The seed actually driving this run — overrides `cfg.seed`, so
    /// one shared configuration can fan out across seeds without being
    /// cloned per run.
    seed: u64,
    mobility: MobilityField,
    mac: MacLayer<PacketHandle>,
    channel: Channel,
    /// In-flight packet storage: the MAC and channel move
    /// [`PacketHandle`]s; the packets themselves are interned here once
    /// per transmission.
    arena: PacketArena,
    routers: Vec<RouterNode>,
    odpm: OdpmState,
    rcast: RcastDecider,
    /// Per-node hot state as struct-of-arrays lanes (crash flag,
    /// energy seconds, battery) — see [`NodeLanes`].
    lanes: NodeLanes,
    tracker: DeliveryTracker,
    roles: RoleNumbers,
    schedule: FlowSchedule,
    first_depletion: Option<SimTime>,
    energy_series: Option<TimeSeries>,
    trace: Option<PacketTrace>,
    obs: Option<Ledger>,
    faults: FaultPlan,
    /// `false` for a clean run: every fault hook short-circuits and the
    /// run is bit-identical to one built before faults existed.
    faults_active: bool,
    fault_counters: FaultCounters,
    /// Position snapshot, refreshed in place each interval.
    snap: Snapshot,
    /// Incrementally maintained neighbor index (current + previous
    /// table, double-buffered).
    neighbors: NeighborIndex,
    /// Intra-interval shard pool: width 1 (the default) is the serial
    /// path; [`set_shard_width`](Self::set_shard_width) widens it.
    pool: rcast_engine::pool::ScopedPool,
    scratch: Scratch,
    /// The next beacon interval to execute.
    k: u64,
    next_arrival: Option<Arrival>,
}

impl Simulation {
    /// Builds a simulation from a validated configuration, seeded by
    /// `cfg.seed`.
    ///
    /// # Errors
    ///
    /// Returns the configuration error, if any.
    pub fn new(cfg: SimConfig) -> Result<Self, String> {
        let seed = cfg.seed;
        Simulation::with_seed(Arc::new(cfg), seed)
    }

    /// Builds a simulation over a shared configuration with an explicit
    /// seed override. `cfg.seed` is ignored: every random stream, the
    /// fault plan, and the report's `seed` field all derive from `seed`,
    /// so seed sweeps share one configuration allocation instead of
    /// cloning it per run.
    ///
    /// # Errors
    ///
    /// Returns the configuration error, if any.
    // det: cold — construction: runs once per (config, seed) before the interval loop
    pub fn with_seed(cfg: Arc<SimConfig>, seed: u64) -> Result<Self, String> {
        cfg.validate()?;
        let n = cfg.nodes as usize;
        let root = StreamRng::from_seed(seed);
        let mut mobility = MobilityField::random_waypoint(
            cfg.nodes,
            cfg.area,
            cfg.waypoint,
            root.child("mobility"),
        );
        let flows = cfg.traffic.generate(cfg.nodes, root.child("traffic"));
        let horizon = SimTime::ZERO + cfg.duration;
        let phy = Phy::new(cfg.data_rate_bps);
        let faults = FaultPlan::build_seeded(&cfg, seed);
        let faults_active = !faults.is_empty();
        let mut schedule = FlowSchedule::new(&flows, horizon);
        let next_arrival = schedule.next();
        let snap = mobility.snapshot(SimTime::ZERO);
        let neighbors = NeighborIndex::new(&snap, cfg.range_m);
        let scratch = Scratch {
            flat_committed: vec![cfg.mac.beacon_interval; n],
            flat_ps: vec![false; n],
            ..Scratch::default()
        };
        Ok(Simulation {
            mobility,
            mac: MacLayer::new(n, cfg.mac, phy, root.child("mac")),
            channel: Channel::new(n, cfg.mac, phy, root.child("channel")),
            arena: PacketArena::new(),
            routers: (0..n)
                .map(|i| RouterNode::new(cfg.routing, NodeId::new(i as u32), cfg.dsr, cfg.aodv))
                .collect(),
            odpm: OdpmState::new(n, cfg.odpm),
            rcast: RcastDecider::new(n, cfg.factors, root.child("rcast")),
            lanes: NodeLanes::new(n, cfg.energy, cfg.battery_capacity_j),
            tracker: DeliveryTracker::new(),
            roles: RoleNumbers::new(n),
            schedule,
            first_depletion: None,
            energy_series: cfg
                .energy_sampling
                .map(|p| TimeSeries::new(n, p)),
            trace: cfg.trace.then(PacketTrace::new),
            obs: cfg.obs.then(|| {
                Ledger::new(LedgerParams {
                    nodes: cfg.nodes,
                    intervals: cfg.beacon_intervals(),
                    beacon_nanos: cfg.mac.beacon_interval.as_nanos(),
                })
            }),
            faults,
            faults_active,
            fault_counters: FaultCounters::default(),
            snap,
            neighbors,
            pool: rcast_engine::pool::ScopedPool::new(1),
            scratch,
            k: 0,
            next_arrival,
            seed,
            cfg,
        })
    }

    /// The configuration driving this run.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Sets the intra-interval shard width: how many node shards the
    /// MAC resolver's prepass/post-pass and the neighbor-churn scan are
    /// split into. Runtime-only — it is deliberately *not* part of
    /// [`SimConfig`], because results are byte-identical at every width
    /// (the shard merge re-serializes in canonical node/delivery
    /// order); only wall-clock time changes. Width 1 (the default) is
    /// the plain serial path.
    pub fn set_shard_width(&mut self, width: usize) {
        let width = width.max(1);
        self.pool = rcast_engine::pool::ScopedPool::new(width);
        self.mac.set_shard_width(width);
    }

    /// The current intra-interval shard width.
    pub fn shard_width(&self) -> usize {
        self.pool.threads()
    }

    /// Runs the simulation to completion and reports.
    pub fn run(mut self) -> SimReport {
        while self.step_interval() {}
        self.finish()
    }

    /// Executes one beacon interval. Returns `false` once the
    /// configured duration has elapsed (and performs no work then).
    pub fn step_interval(&mut self) -> bool {
        if self.k >= self.cfg.beacon_intervals() {
            return false;
        }
        let k = self.k;
        let bi = self.cfg.mac.beacon_interval;
        let t = SimTime::ZERO + bi * k;
        let n = self.cfg.nodes as usize;

        // Detach the reusable state so `&mut self` methods can run while
        // it is borrowed; restored before returning.
        let mut scratch = std::mem::take(&mut self.scratch);
        let mut neighbors = std::mem::take(&mut self.neighbors);
        let mut obs = self.obs.take();
        let work = &mut scratch.work;
        let batch = &mut scratch.batch;
        let imm_fanout = &mut scratch.imm_fanout;

        if k > 0 {
            self.mobility.snapshot_into(t, &mut self.snap);
            neighbors.advance(&self.snap);
        }
        if self.faults_active {
            self.apply_faults(t, &mut neighbors, &mut obs);
        }
        if k > 0 {
            // The per-node link-churn scan is pure reads over the
            // double-buffered tables; shard it, then feed the decider
            // serially in node order so its state evolves identically
            // at every width.
            // Carried-forward lists (no refill, no fault mutation) have
            // zero churn by construction, so the symmetric-difference
            // merge runs only for lists that actually changed — the
            // decider still sees every node (its EWMA decays on 0).
            let shards = self.pool.threads().min(n.max(1));
            if shards <= 1 {
                for i in 0..n {
                    let id = NodeId::new(i as u32);
                    let changes = if neighbors.carried_forward(id) {
                        0
                    } else {
                        neighbors
                            .current()
                            .link_changes_since(neighbors.previous(), id)
                    };
                    self.rcast.note_link_changes(id, changes);
                }
            } else {
                let chunk = n.div_ceil(shards).max(1);
                scratch.churn.resize_with(shards, Vec::new);
                let nidx = &neighbors;
                let (cur, prev) = (neighbors.current(), neighbors.previous());
                self.pool.map_shards(&mut scratch.churn, |s, lane| {
                    lane.clear();
                    let lo = (s * chunk).min(n);
                    let hi = ((s + 1) * chunk).min(n);
                    for i in lo..hi {
                        let id = NodeId::new(i as u32);
                        lane.push(if nidx.carried_forward(id) {
                            0
                        } else {
                            cur.link_changes_since(prev, id)
                        });
                    }
                });
                let mut i = 0u32;
                for lane in &scratch.churn {
                    for &changes in lane {
                        self.rcast.note_link_changes(NodeId::new(i), changes);
                        i += 1;
                    }
                }
                debug_assert_eq!(i as usize, n);
            }
        }
        let nt = neighbors.current();

        // 1. Routing timers (crashed nodes hold no timers).
        for i in 0..n {
            if self.lanes.down[i] {
                continue;
            }
            let id = NodeId::new(i as u32);
            for a in self.routers[i].tick(t) {
                work.push_back((id, t, a));
            }
        }
        self.dispatch(work, batch, imm_fanout, nt, &mut obs);

        // 2. The PSM beacon interval.
        let used_psm = self.cfg.scheme.uses_psm_path();
        if used_psm {
            if self.cfg.scheme == Scheme::Rcast {
                // Batch this interval's randomized wake draws into one
                // contiguous lane (one raw draw per node is ample for
                // typical ATIM loads; overflow falls through to the
                // stream, so the decision sequence is bit-identical to
                // lazy per-decision draws).
                self.rcast.prefill_draws(n);
            }
            {
                let mut policy = IntervalPolicy {
                    scheme: self.cfg.scheme,
                    interval_start: t,
                    odpm: &self.odpm,
                    rcast: &mut self.rcast,
                };
                match obs.as_mut() {
                    Some(ledger) => {
                        let mut tap = LedgerMacObserver { ledger };
                        self.mac.run_interval_observed(
                            t,
                            nt,
                            &mut policy,
                            &mut scratch.outcome,
                            &mut tap,
                        );
                    }
                    None => self
                        .mac
                        .run_interval_into(t, nt, &mut policy, &mut scratch.outcome),
                }
            }
            for d in scratch.outcome.deliveries.drain(..) {
                self.process_delivery(d, &scratch.outcome.fanout, work, batch, &mut obs);
            }
            for f in scratch.outcome.failures.drain(..) {
                if self.faults_active
                    && (self.lanes.down[f.receiver.index()]
                        || self.faults.link_cut(f.sender, f.receiver, t))
                {
                    self.fault_counters.rerrs_triggered += 1;
                }
                let packet = self.arena.take(f.frame.payload);
                let actions = self.routers[f.sender.index()].link_failure(
                    f.receiver,
                    packet,
                    f.at,
                );
                for a in actions {
                    work.push_back((f.sender, f.at, a));
                }
            }
            self.dispatch(work, batch, imm_fanout, nt, &mut obs);
        }

        // 3. This interval's traffic arrivals.
        let interval_end = t + bi;
        while let Some(a) = self.next_arrival {
            if a.at >= interval_end {
                break;
            }
            self.tracker.record_originated();
            if let Some(trace) = &mut self.trace {
                trace.record(
                    a.at,
                    (a.flow, a.seq),
                    TraceEvent::Originated {
                        src: a.src,
                        dst: a.dst,
                    },
                );
            }
            if let Some(l) = obs.as_mut() {
                l.record_event(
                    a.at,
                    a.src,
                    ObsKind::Originated {
                        flow: a.flow,
                        seq: a.seq,
                        dst: a.dst,
                    },
                );
            }
            if self.lanes.down[a.src.index()] {
                // A crashed source generates nothing on the air; the
                // packet is lost at birth.
                self.tracker.record_fault_drop();
                self.fault_counters.packets_lost_to_faults += 1;
                if let Some(trace) = &mut self.trace {
                    trace.record(a.at, (a.flow, a.seq), TraceEvent::Dropped);
                }
                if let Some(l) = obs.as_mut() {
                    l.record_event(
                        a.at,
                        a.src,
                        ObsKind::PacketDropped {
                            flow: a.flow,
                            seq: a.seq,
                        },
                    );
                }
                self.next_arrival = self.schedule.next();
                continue;
            }
            if self.cfg.scheme == Scheme::Odpm {
                // A generating source is an endpoint event.
                self.odpm.on_data(a.src, a.at);
            }
            let actions =
                self.routers[a.src.index()].originate(a.flow, a.seq, a.dst, a.bytes, a.at);
            for act in actions {
                work.push_back((a.src, a.at, act));
            }
            self.dispatch(work, batch, imm_fanout, nt, &mut obs);
            self.next_arrival = self.schedule.next();
        }

        // 4. Role-number accounting: the paper computes role numbers
        // "by examining each node's route cache" — sample cache
        // contents once a second and count intermediates.
        if k.is_multiple_of(4) {
            let roles = &mut self.roles;
            for node in &self.routers {
                node.for_each_cached_path(|path| roles.record_cached_route(path.nodes()));
            }
        }

        // 5. Energy integration for [t, t + bi).
        if used_psm {
            self.account_energy(
                t,
                &scratch.outcome.ps_awake,
                &scratch.outcome.committed_awake,
                &mut obs,
            );
        } else {
            self.account_energy(t, &scratch.flat_ps, &scratch.flat_committed, &mut obs);
        }

        // 6. Optional energy time series.
        if let Some(series) = &mut self.energy_series {
            let due = match series.times().last() {
                None => true,
                Some(&last) => (t + bi) - last >= series.period(),
            };
            if due {
                scratch.energy_sample.clear();
                scratch
                    .energy_sample
                    .extend((0..n).map(|i| self.lanes.total_joules(i)));
                series.push(t + bi, &scratch.energy_sample);
            }
        }

        if let Some(l) = obs.as_mut() {
            l.end_interval();
        }
        self.obs = obs;
        self.neighbors = neighbors;
        self.scratch = scratch;
        self.k += 1;
        true
    }

    /// Closes the run (end-of-run energy sample) and reports. Pairs
    /// with [`step_interval`](Self::step_interval); calling it before
    /// the final interval reports the simulation as of the intervals
    /// executed so far.
    pub fn finish(mut self) -> SimReport {
        let end = SimTime::ZERO + self.cfg.mac.beacon_interval * self.k;
        if let Some(series) = &mut self.energy_series {
            if series.times().last() != Some(&end) {
                let sample: Vec<f64> = (0..self.lanes.len())
                    .map(|i| self.lanes.total_joules(i))
                    .collect();
                series.push(end, &sample);
            }
        }
        self.into_report()
    }

    /// Applies the fault plan at the interval boundary `t`: resolves
    /// node up/down transitions (a crash purges the node's MAC queue
    /// and wipes its volatile routing state), masks crashed nodes and
    /// blacked-out links out of the neighbor index — neighbors then
    /// discover the loss through missing ATIM-ACKs, which feeds DSR a
    /// link error — and sets the interval's frame-corruption
    /// probability.
    fn apply_faults(&mut self, t: SimTime, index: &mut NeighborIndex, obs: &mut Option<Ledger>) {
        let new_blackouts = self.faults.activate_blackouts(t);
        let new_bursts = self.faults.activate_bursts(t);
        self.fault_counters.link_blackouts += new_blackouts;
        self.fault_counters.corruption_bursts += new_bursts;
        if let Some(l) = obs.as_mut() {
            // Network-scoped markers live on the pseudo-node one past
            // the last real node.
            let net = l.network_node();
            if new_blackouts > 0 {
                l.record_event(t, net, ObsKind::Blackouts { newly: new_blackouts as u32 });
            }
            if new_bursts > 0 {
                l.record_event(t, net, ObsKind::Bursts { newly: new_bursts as u32 });
            }
        }
        let n = self.cfg.nodes as usize;
        for i in 0..n {
            let id = NodeId::new(i as u32);
            let is_down = self.faults.is_down(id, t);
            if is_down && !self.lanes.down[i] {
                if self.faults.crash_scheduled(id, t) {
                    self.fault_counters.crashes += 1;
                }
                if let Some(l) = obs.as_mut() {
                    l.record_event(t, id, ObsKind::Crash);
                }
                // Volatile state dies with the node: queued frames and
                // route-pending buffered packets are lost for good.
                for q in self.mac.purge_node(id) {
                    let h = q.frame.payload;
                    self.arena.release(h);
                    if h.is_control() {
                        continue;
                    }
                    self.tracker.record_fault_drop();
                    self.fault_counters.packets_lost_to_faults += 1;
                    if let (Some(trace), Some(pid)) = (&mut self.trace, h.data_id()) {
                        trace.record(t, pid, TraceEvent::Dropped);
                    }
                    if let (Some(l), Some((flow, seq))) = (obs.as_mut(), h.data_id()) {
                        l.record_event(t, id, ObsKind::PacketDropped { flow, seq });
                    }
                }
                for pid in self.routers[i].reboot(t) {
                    self.tracker.record_fault_drop();
                    self.fault_counters.packets_lost_to_faults += 1;
                    if let Some(trace) = &mut self.trace {
                        trace.record(t, pid, TraceEvent::Dropped);
                    }
                    if let Some(l) = obs.as_mut() {
                        let (flow, seq) = pid;
                        l.record_event(t, id, ObsKind::PacketDropped { flow, seq });
                    }
                }
            } else if !is_down && self.lanes.down[i] {
                self.fault_counters.rejoins += 1;
                if let Some(l) = obs.as_mut() {
                    l.record_event(t, id, ObsKind::Rejoin);
                }
            }
            self.lanes.down[i] = is_down;
            if is_down {
                index.isolate(id);
            }
        }
        for (a, b) in self.faults.cut_links_at(t) {
            index.cut_link(a, b);
        }
        let p = self
            .faults
            .corruption_prob(t)
            .max(self.cfg.mac.frame_loss_prob);
        self.mac.set_frame_loss_prob(p);
        self.channel.set_frame_loss_prob(p);
    }

    /// Charges every node's meter for the interval starting at `t`.
    ///
    /// When the ledger is on, every `accumulate` call is mirrored by a
    /// `Span` event with the same state and duration, in the same
    /// per-node order — that is what makes
    /// [`rcast_obs::ObsReport::replay_energy`] reproduce the meters
    /// bit-for-bit.
    // The loop drives five parallel lanes plus `committed_awake` off
    // one index; an iterator over any single lane would obscure that.
    #[allow(clippy::needless_range_loop)]
    fn account_energy(
        &mut self,
        t: SimTime,
        ps_awake: &[bool],
        committed_awake: &[SimDuration],
        obs: &mut Option<Ledger>,
    ) {
        let bi = self.cfg.mac.beacon_interval;
        let aw = self.cfg.mac.atim_window;
        let n = self.cfg.nodes as usize;
        let model = self.lanes.model;
        for i in 0..n {
            let id = NodeId::new(i as u32);
            if self.lanes.down[i] {
                // A crashed node's radio is off for the whole interval:
                // the wall clock still advances but nothing drains.
                self.lanes.off_s[i] += bi.as_secs_f64();
                if let Some(l) = obs.as_mut() {
                    l.record_span(t, id, PowerState::Off, bi);
                }
                continue;
            }
            let awake_dur = match self.cfg.scheme {
                Scheme::Dot11 => bi,
                // PS schemes: the MAC already integrated commitment time
                // (ATIM window when idle, through the last committed
                // transfer otherwise, the whole interval for unbounded
                // commitments).
                Scheme::Psm | Scheme::PsmNoOverhear | Scheme::Rcast => committed_awake[i],
                Scheme::Odpm => {
                    // PSM commitments and the AM keep-alive overlap; the
                    // node is awake for whichever reaches further.
                    let _ = ps_awake;
                    committed_awake[i].max(aw.max(self.odpm.am_overlap(id, t, bi)))
                }
            };
            // Same adds in the same order as `EnergyMeter::accumulate`
            // (the ledger replay reconstructs real meters from the
            // mirrored spans and must land on the same bits).
            self.lanes.awake_s[i] += awake_dur.as_secs_f64();
            self.lanes.sleep_s[i] += (bi - awake_dur).as_secs_f64();
            if let Some(l) = obs.as_mut() {
                l.record_span(t, id, PowerState::Awake, awake_dur);
                l.record_span(t, id, PowerState::Sleep, bi - awake_dur);
            }
            if let Some(bat) = &mut self.lanes.battery {
                let joules = awake_dur.as_secs_f64() * model.idle_w
                    + (bi - awake_dur).as_secs_f64() * model.sleep_w;
                if let Some(died) = bat.drain(i, joules, t + bi) {
                    if self.first_depletion.is_none() {
                        self.first_depletion = Some(died);
                    }
                    if self.faults.note_battery_death(id, died) {
                        self.fault_counters.battery_deaths += 1;
                        if let Some(l) = obs.as_mut() {
                            l.record_event(died, id, ObsKind::BatteryDead);
                        }
                    }
                }
                self.rcast.note_battery(id, bat.remaining_fraction(i));
            }
        }
    }

    /// Drains the pending-action queue, routing transmissions through
    /// the scheme-appropriate path.
    fn dispatch(
        &mut self,
        work: &mut VecDeque<Pending>,
        batch: &mut Vec<Pending>,
        fanout: &mut Vec<NodeId>,
        nt: &NeighborTable,
        obs: &mut Option<Ledger>,
    ) {
        while let Some((node, at, action)) = work.pop_front() {
            match action {
                RouteAction::Unicast { next_hop, packet } => {
                    self.send_unicast(node, next_hop, packet, at, nt, work, batch, fanout, obs);
                }
                RouteAction::Broadcast { packet } => {
                    self.send_broadcast(node, packet, at, nt, work, batch, fanout, obs);
                }
                RouteAction::Delivered(info) => {
                    self.tracker.record_delivered(info.generated_at, at);
                    self.tracker.record_hops(info.hops);
                    if let Some(trace) = &mut self.trace {
                        trace.record(
                            at,
                            (info.flow, info.seq),
                            TraceEvent::Delivered { at_node: node },
                        );
                    }
                    if let Some(l) = obs.as_mut() {
                        l.record_event(
                            at,
                            node,
                            ObsKind::PacketDelivered {
                                flow: info.flow,
                                seq: info.seq,
                            },
                        );
                    }
                }
                RouteAction::Dropped(info) => {
                    self.tracker.record_dropped();
                    if let Some(trace) = &mut self.trace {
                        trace.record(at, (info.flow, info.seq), TraceEvent::Dropped);
                    }
                    if let Some(l) = obs.as_mut() {
                        l.record_event(
                            at,
                            node,
                            ObsKind::PacketDropped {
                                flow: info.flow,
                                seq: info.seq,
                            },
                        );
                    }
                }
            }
        }
    }

    /// `true` when the immediate (active-mode) path applies to a unicast
    /// from `from` to `to` at time `at`.
    fn immediate_path(&self, from: NodeId, to: NodeId, at: SimTime) -> bool {
        match self.cfg.scheme {
            Scheme::Dot11 => true,
            Scheme::Odpm => self.odpm.is_am(from, at) && self.odpm.is_am(to, at),
            _ => false,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn send_unicast(
        &mut self,
        from: NodeId,
        next_hop: NodeId,
        packet: NetPacket,
        at: SimTime,
        nt: &NeighborTable,
        work: &mut VecDeque<Pending>,
        batch: &mut Vec<Pending>,
        fanout: &mut Vec<NodeId>,
        obs: &mut Option<Ledger>,
    ) {
        let level = self.cfg.scheme.level_for_net(&packet);
        let bytes = packet.wire_bytes();
        let handle = self.arena.intern(packet);
        let frame = MacFrame::unicast(next_hop, level, bytes, handle);
        if self.immediate_path(from, next_hop, at) {
            let scheme = self.cfg.scheme;
            let odpm = &self.odpm;
            let result = self.channel.transmit(
                at,
                from,
                frame,
                nt,
                |x| match scheme {
                    Scheme::Dot11 => true,
                    Scheme::Odpm => odpm.is_am(x, at),
                    _ => unreachable!("immediate path is 802.11/ODPM only"),
                },
                fanout,
            );
            match result {
                ImmediateResult::Delivered(d) => {
                    self.process_delivery(d, fanout, work, batch, obs)
                }
                ImmediateResult::Failed(f) => {
                    if self.faults_active
                        && (self.lanes.down[f.receiver.index()]
                            || self.faults.link_cut(f.sender, f.receiver, f.at))
                    {
                        self.fault_counters.rerrs_triggered += 1;
                    }
                    let packet = self.arena.take(f.frame.payload);
                    let actions = self.routers[f.sender.index()].link_failure(
                        f.receiver,
                        packet,
                        f.at,
                    );
                    for a in actions {
                        work.push_back((f.sender, f.at, a));
                    }
                }
            }
        } else if let Err(frame) = self.mac.enqueue(from, frame, at) {
            let h = frame.payload;
            if !h.is_control() {
                self.tracker.record_dropped();
                if let (Some(trace), Some(id)) = (&mut self.trace, h.data_id()) {
                    trace.record(at, id, TraceEvent::Dropped);
                }
                if let (Some(l), Some((flow, seq))) = (obs.as_mut(), h.data_id()) {
                    l.record_event(at, from, ObsKind::PacketDropped { flow, seq });
                }
            }
            self.arena.release(h);
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn send_broadcast(
        &mut self,
        from: NodeId,
        packet: NetPacket,
        at: SimTime,
        nt: &NeighborTable,
        work: &mut VecDeque<Pending>,
        batch: &mut Vec<Pending>,
        fanout: &mut Vec<NodeId>,
        obs: &mut Option<Ledger>,
    ) {
        let bytes = packet.wire_bytes();
        let handle = self.arena.intern(packet);
        if self.cfg.scheme == Scheme::Dot11 {
            let frame = MacFrame::broadcast(bytes, handle);
            match self.channel.transmit(at, from, frame, nt, |_| true, fanout) {
                ImmediateResult::Delivered(d) => {
                    self.process_delivery(d, fanout, work, batch, obs)
                }
                ImmediateResult::Failed(_) => unreachable!("broadcasts never fail"),
            }
        } else {
            // The randomized-broadcast extension kicks in only when the
            // Rcast factors ask for it (probability < 1).
            let level = if self.cfg.scheme == Scheme::Rcast
                && self.cfg.factors.broadcast_probability < 1.0
            {
                OverhearingLevel::Randomized
            } else {
                OverhearingLevel::Unconditional
            };
            let frame = MacFrame::broadcast_with_level(level, bytes, handle);
            if let Err(frame) = self.mac.enqueue(from, frame, at) {
                self.arena.release(frame.payload);
            }
        }
    }

    /// Feeds one completed transmission back into the protocol stack.
    ///
    /// Arena lifetime: the interned packet is *borrowed* by overhearers
    /// and broadcast recipients, then consumed exactly once — taken by
    /// the unicast receiver, or released after the broadcast fan-out.
    fn process_delivery(
        &mut self,
        d: Delivery<PacketHandle>,
        fanout: &[NodeId],
        work: &mut VecDeque<Pending>,
        batch: &mut Vec<Pending>,
        obs: &mut Option<Ledger>,
    ) {
        let recipients = d.fanout.recipients(fanout);
        let overhearers = d.fanout.overhearers(fanout);
        let h = d.frame.payload;
        // Overhead accounting: one on-air transmission. The handle's
        // cached header answers everything without touching the arena.
        if h.is_control() {
            self.tracker.record_control_transmission();
            if let Some(l) = obs.as_mut() {
                l.record_event(
                    d.at,
                    d.sender,
                    ObsKind::ControlTx {
                        class: class_of(h.kind()),
                    },
                );
            }
        } else {
            self.tracker.record_data_transmission();
            if let (Some(trace), Some(id), Some(to)) =
                (&mut self.trace, h.data_id(), d.receiver)
            {
                trace.record(
                    d.at,
                    id,
                    TraceEvent::Hop {
                        from: d.sender,
                        to,
                    },
                );
            }
            if let (Some(l), Some((flow, seq)), Some(to)) =
                (obs.as_mut(), h.data_id(), d.receiver)
            {
                l.record_event(d.at, d.sender, ObsKind::Forwarded { flow, seq, to });
            }
        }
        if let Some(l) = obs.as_mut() {
            for &o in overhearers {
                l.record_event(d.at, o, ObsKind::Overheard { sender: d.sender });
            }
        }
        // ODPM keep-alive events. DSR runs the radio promiscuously, so
        // an AM node's *overheard* traffic is indistinguishable from
        // received traffic at the power-management layer — overhearers
        // refresh their timers too. This stickiness is what keeps ODPM's
        // active corridors lit at high rates (the paper's Fig. 5(d)
        // explanation). AODV hellos are broadcast RREPs but carry their
        // own `Hello` kind, so they do not refresh RREP timers.
        if self.cfg.scheme == Scheme::Odpm {
            match h.kind() {
                PacketKind::Rrep => {
                    if let Some(r) = d.receiver {
                        self.odpm.on_rrep(r, d.at);
                    }
                }
                PacketKind::Data => {
                    self.odpm.on_data(d.sender, d.at);
                    if let Some(r) = d.receiver {
                        self.odpm.on_data(r, d.at);
                    }
                }
                PacketKind::Rreq => {
                    // Route-discovery keep-alive: request recipients stay
                    // active briefly so the reply can race back along the
                    // reverse path — the source of ODPM's low delay.
                    for &r in recipients {
                        self.odpm.on_rreq(r, d.at);
                    }
                }
                _ => {}
            }
        }
        // Sender-ID factor bookkeeping.
        for &x in recipients
            .iter()
            .chain(overhearers.iter())
            .chain(d.receiver.iter())
        {
            self.rcast.note_heard(x, d.sender, d.at);
        }
        // Overhearers first (they only borrow the interned packet).
        let (routers, arena) = (&mut self.routers, &self.arena);
        for &o in overhearers {
            let actions = routers[o.index()].overhear(arena.get(h), d.sender, d.at);
            for a in actions {
                work.push_back((o, d.at, a));
            }
        }
        // Then the addressed receiver(s).
        match d.receiver {
            Some(r) => {
                let packet = self.arena.take(h);
                let actions = self.routers[r.index()].receive(packet, d.sender, d.at);
                for a in actions {
                    work.push_back((r, d.at, a));
                }
            }
            None => {
                let is_rreq = h.kind() == PacketKind::Rreq;
                batch.clear();
                for &r in recipients {
                    let actions = routers[r.index()].receive_ref(arena.get(h), d.sender, d.at);
                    for a in actions {
                        batch.push((r, d.at, a));
                    }
                }
                self.arena.release(h);
                if is_rreq {
                    Self::suppress_reply_storm(batch);
                }
                work.extend(batch.drain(..));
            }
        }
    }

    /// DSR's *route reply storm prevention* (Johnson & Maltz §: cached
    /// replies are jittered proportionally to route length and canceled
    /// when a shorter reply is overheard). The recipients of one RREQ
    /// transmission all hear each other, so among their cached replies
    /// only the shortest-route one survives.
    fn suppress_reply_storm(batch: &mut Vec<Pending>) {
        fn rrep_hops(a: &RouteAction) -> Option<usize> {
            match a {
                RouteAction::Unicast { packet, .. } if packet.kind() == "RREP" => {
                    Some(match packet {
                        NetPacket::Dsr(rcast_dsr::DsrPacket::Rrep(r)) => r.route.hop_count(),
                        NetPacket::Aodv(rcast_aodv::AodvPacket::Rrep(r)) => {
                            r.hop_count as usize
                        }
                        _ => usize::MAX,
                    })
                }
                _ => None,
            }
        }
        let best: Option<usize> = batch
            .iter()
            .enumerate()
            .filter_map(|(i, (_, _, a))| rrep_hops(a).map(|h| (i, h)))
            .min_by_key(|&(_, hops)| hops)
            .map(|(i, _)| i);
        let Some(best) = best else { return };
        let mut idx = 0usize;
        batch.retain(|(_, _, a)| {
            let keep = rrep_hops(a).is_none() || idx == best;
            // `retain` visits in order; track the original index.
            idx += 1;
            keep
        });
    }

    fn into_report(self) -> SimReport {
        let mut dsr_total = DsrCounters::default();
        let mut aodv_total = AodvCounters::default();
        for node in &self.routers {
            if let Some(c) = node.dsr_counters() {
                dsr_total.rreq_originated += c.rreq_originated;
                dsr_total.rreq_forwarded += c.rreq_forwarded;
                dsr_total.rrep_from_target += c.rrep_from_target;
                dsr_total.rrep_from_cache += c.rrep_from_cache;
                dsr_total.rrep_forwarded += c.rrep_forwarded;
                dsr_total.rerr_originated += c.rerr_originated;
                dsr_total.rerr_forwarded += c.rerr_forwarded;
                dsr_total.data_sent += c.data_sent;
                dsr_total.data_forwarded += c.data_forwarded;
                dsr_total.data_salvaged += c.data_salvaged;
                dsr_total.data_delivered += c.data_delivered;
                dsr_total.data_dropped += c.data_dropped;
            }
            if let Some(c) = node.aodv_counters() {
                aodv_total.rreq_originated += c.rreq_originated;
                aodv_total.rreq_forwarded += c.rreq_forwarded;
                aodv_total.rrep_from_target += c.rrep_from_target;
                aodv_total.rrep_from_table += c.rrep_from_table;
                aodv_total.rrep_forwarded += c.rrep_forwarded;
                aodv_total.hello_sent += c.hello_sent;
                aodv_total.rerr_sent += c.rerr_sent;
                aodv_total.data_sent += c.data_sent;
                aodv_total.data_forwarded += c.data_forwarded;
                aodv_total.data_delivered += c.data_delivered;
                aodv_total.data_dropped += c.data_dropped;
            }
        }
        SimReport {
            scheme: self.cfg.scheme,
            seed: self.seed,
            duration: self.cfg.duration,
            energy: EnergyReport::new(
                (0..self.lanes.len())
                    .map(|i| self.lanes.total_joules(i))
                    .collect(),
            ),
            delivery: self.tracker,
            roles: self.roles,
            mac: self.mac.counters(),
            dsr: dsr_total,
            aodv: aodv_total,
            faults: self.fault_counters,
            first_depletion: self.first_depletion,
            energy_series: self.energy_series,
            trace: self.trace,
            obs: self.obs.map(Ledger::into_report),
        }
    }
}

/// Builds and runs one simulation.
///
/// # Errors
///
/// Returns the configuration error, if any.
pub fn run_sim(cfg: SimConfig) -> Result<SimReport, String> {
    Ok(Simulation::new(cfg)?.run())
}

/// Builds and runs one simulation with the interval sharded across
/// `width` workers ([`Simulation::set_shard_width`]). The report is
/// byte-identical at any width; only wall-clock time changes.
///
/// # Errors
///
/// Returns the configuration error, if any.
pub fn run_sim_with_width(cfg: SimConfig, width: usize) -> Result<SimReport, String> {
    let mut sim = Simulation::new(cfg)?;
    sim.set_shard_width(width);
    Ok(sim.run())
}

/// Runs the same configuration under `seeds` different seeds, serially.
/// The configuration is shared (one clone total), with only the seed
/// varying per run.
///
/// # Errors
///
/// Returns the configuration error, if any.
pub fn run_seeds(cfg: &SimConfig, seeds: impl IntoIterator<Item = u64>) -> Result<Vec<SimReport>, String> {
    cfg.validate()?;
    let shared = Arc::new(cfg.clone());
    let mut out = Vec::new();
    for seed in seeds {
        out.push(Simulation::with_seed(Arc::clone(&shared), seed)?.run());
    }
    Ok(out)
}

/// Runs the same configuration under `seeds` different seeds, fanned out
/// across up to `threads` worker threads.
///
/// **Determinism contract:** the returned reports are byte-identical to
/// [`run_seeds`]' — same seeds, same order, same bits — for any thread
/// count. Each run is a pure function of `(config, seed)` with its own
/// [splittable RNG streams](rcast_engine::rng), and the
/// [pool](rcast_engine::pool) merges results in seed order, so
/// scheduling cannot leak into the output. `threads == 1` (or a single
/// seed) degenerates to the serial path on the calling thread. Pass
/// [`rcast_engine::pool::available_threads()`] to use every core.
///
/// The configuration is validated once and shared across workers
/// behind an [`Arc`]; only the seed differs per run.
///
/// # Errors
///
/// Returns the configuration error, if any, before any thread is
/// spawned.
pub fn run_seeds_parallel(
    cfg: &SimConfig,
    seeds: impl IntoIterator<Item = u64>,
    threads: usize,
) -> Result<Vec<SimReport>, String> {
    cfg.validate()?;
    let shared = Arc::new(cfg.clone());
    let seeds: Vec<u64> = seeds.into_iter().collect();
    Ok(rcast_engine::pool::ScopedPool::new(threads)
        .map(seeds, |_, seed| {
            Simulation::with_seed(Arc::clone(&shared), seed)
                .expect("validated above")
                .run()
        }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke(scheme: Scheme, seed: u64) -> SimReport {
        run_sim(SimConfig::smoke(scheme, seed)).expect("valid smoke config")
    }

    #[test]
    fn all_schemes_complete_and_deliver() {
        for scheme in Scheme::ALL {
            let r = smoke(scheme, 1);
            assert!(
                r.delivery.originated() > 100,
                "{scheme}: {} originated",
                r.delivery.originated()
            );
            assert!(
                r.delivery.delivery_ratio() > 0.3,
                "{scheme}: PDR {}",
                r.delivery.delivery_ratio()
            );
            assert!(r.energy.total_joules() > 0.0, "{scheme}");
        }
    }

    #[test]
    fn identical_seeds_reproduce_bit_identical_reports() {
        for scheme in [Scheme::Rcast, Scheme::Odpm, Scheme::Dot11] {
            let a = smoke(scheme, 42);
            let b = smoke(scheme, 42);
            assert_eq!(
                a.energy.per_node_joules(),
                b.energy.per_node_joules(),
                "{scheme}"
            );
            assert_eq!(a.delivery.delivered(), b.delivery.delivered());
            assert_eq!(a.delivery.originated(), b.delivery.originated());
            assert_eq!(a.roles.all(), b.roles.all());
        }
    }

    #[test]
    fn determinism_holds_for_aodv_and_link_cache() {
        // HashMap-backed state (AODV tables, DSR link caches) must not
        // leak iteration order into results: every HashMap instance has
        // its own RandomState, so two runs in the same process already
        // catch ordering leaks.
        let mut aodv_cfg = SimConfig::smoke(Scheme::Rcast, 8);
        aodv_cfg.routing = crate::routing::RoutingKind::Aodv;
        let a = run_sim(aodv_cfg.clone()).unwrap();
        let b = run_sim(aodv_cfg).unwrap();
        assert_eq!(a.energy.per_node_joules(), b.energy.per_node_joules());
        assert_eq!(a.aodv, b.aodv);

        let mut link_cfg = SimConfig::smoke(Scheme::Rcast, 8);
        link_cfg.dsr.cache.strategy = rcast_dsr::CacheStrategy::Link;
        let a = run_sim(link_cfg.clone()).unwrap();
        let b = run_sim(link_cfg).unwrap();
        assert_eq!(a.energy.per_node_joules(), b.energy.per_node_joules());
        assert_eq!(a.dsr, b.dsr);
        assert_eq!(a.roles.all(), b.roles.all());
    }

    #[test]
    fn different_seeds_differ() {
        let a = smoke(Scheme::Rcast, 1);
        let b = smoke(Scheme::Rcast, 2);
        assert_ne!(a.energy.per_node_joules(), b.energy.per_node_joules());
    }

    #[test]
    fn stepwise_api_matches_one_shot_run() {
        let cfg = SimConfig::smoke(Scheme::Rcast, 13);
        let one = run_sim(cfg.clone()).unwrap();
        let mut sim = Simulation::new(cfg).unwrap();
        let mut steps = 0u64;
        while sim.step_interval() {
            steps += 1;
        }
        // Stepping past the end is a no-op.
        assert!(!sim.step_interval());
        let report = sim.finish();
        assert_eq!(steps, 480, "120 s at 250 ms per interval");
        assert_eq!(format!("{one:?}"), format!("{report:?}"));
    }

    #[test]
    fn with_seed_overrides_the_config_seed() {
        // One shared config fanned across seeds must equal per-seed
        // configs bit-for-bit: nothing may read `cfg.seed` directly.
        let shared = Arc::new(SimConfig::smoke(Scheme::Rcast, 1));
        let direct = run_sim(SimConfig::smoke(Scheme::Rcast, 5)).unwrap();
        let fanned = Simulation::with_seed(shared, 5).unwrap().run();
        assert_eq!(fanned.seed, 5);
        assert_eq!(format!("{direct:?}"), format!("{fanned:?}"));
    }

    #[test]
    fn dot11_energy_is_flat_and_maximal() {
        let r = smoke(Scheme::Dot11, 3);
        // Every node awake for the whole run: 1.15 W × 120 s = 138 J.
        let expect = 1.15 * 120.0;
        for &j in r.energy.per_node_joules() {
            assert!((j - expect).abs() < 1e-6, "{j} vs {expect}");
        }
        assert_eq!(r.energy.variance(), 0.0);
    }

    #[test]
    fn scheme_energy_ordering_matches_table1() {
        // The paper's Table 1 / Fig. 7: 802.11 worst, PSM baselines in
        // between, Rcast best (or tied) among PSM schemes.
        let dot11 = smoke(Scheme::Dot11, 5);
        let psm = smoke(Scheme::Psm, 5);
        let odpm = smoke(Scheme::Odpm, 5);
        let rcast = smoke(Scheme::Rcast, 5);
        let (e_dot11, e_psm, e_odpm, e_rcast) = (
            dot11.energy.total_joules(),
            psm.energy.total_joules(),
            odpm.energy.total_joules(),
            rcast.energy.total_joules(),
        );
        assert!(e_dot11 > e_psm, "802.11 {e_dot11} vs PSM {e_psm}");
        assert!(e_dot11 > e_odpm, "802.11 {e_dot11} vs ODPM {e_odpm}");
        assert!(e_rcast < e_odpm, "Rcast {e_rcast} vs ODPM {e_odpm}");
        assert!(e_rcast < e_psm, "Rcast {e_rcast} vs PSM {e_psm}");
    }

    #[test]
    fn rcast_delay_exceeds_dot11_delay() {
        let dot11 = smoke(Scheme::Dot11, 7);
        let rcast = smoke(Scheme::Rcast, 7);
        assert!(
            rcast.delivery.mean_delay() > dot11.delivery.mean_delay() * 5,
            "PSM path must pay beacon-interval latency: {} vs {}",
            rcast.delivery.mean_delay(),
            dot11.delivery.mean_delay()
        );
    }

    #[test]
    fn odpm_energy_variance_exceeds_rcast() {
        let odpm = smoke(Scheme::Odpm, 11);
        let rcast = smoke(Scheme::Rcast, 11);
        assert!(
            odpm.energy.variance() > rcast.energy.variance(),
            "ODPM {} vs Rcast {}",
            odpm.energy.variance(),
            rcast.energy.variance()
        );
    }

    #[test]
    fn aodv_routing_delivers_under_every_scheme() {
        for scheme in [Scheme::Dot11, Scheme::Odpm, Scheme::Rcast] {
            let mut cfg = SimConfig::smoke(scheme, 3);
            cfg.routing = crate::routing::RoutingKind::Aodv;
            let r = run_sim(cfg).expect("valid config");
            assert!(
                r.delivery.delivery_ratio() > 0.3,
                "{scheme}+AODV: PDR {}",
                r.delivery.delivery_ratio()
            );
            assert!(r.aodv.rreq_originated > 0, "{scheme}: AODV must flood");
            assert_eq!(r.dsr.rreq_originated, 0, "no DSR activity under AODV");
        }
    }

    #[test]
    fn aodv_floods_more_than_dsr() {
        // The paper's footnote 1: AODV's conservative route maintenance
        // "necessitates more RREQ messages" than DSR's cached,
        // overheard route state.
        let dsr = run_sim(SimConfig::smoke(Scheme::Rcast, 9)).unwrap();
        let mut cfg = SimConfig::smoke(Scheme::Rcast, 9);
        cfg.routing = crate::routing::RoutingKind::Aodv;
        let aodv = run_sim(cfg).unwrap();
        let dsr_rreq = dsr.dsr.rreq_originated + dsr.dsr.rreq_forwarded;
        let aodv_rreq = aodv.aodv.rreq_originated + aodv.aodv.rreq_forwarded;
        assert!(
            aodv_rreq > dsr_rreq,
            "AODV RREQ traffic {aodv_rreq} must exceed DSR's {dsr_rreq}"
        );
    }

    #[test]
    fn aodv_hellos_cost_energy_under_psm() {
        // Section 1 of the paper: protocols with periodic control
        // broadcasts "tend to consume more energy with IEEE 802.11 PSM".
        let mut with_hello = SimConfig::smoke(Scheme::Rcast, 4);
        with_hello.routing = crate::routing::RoutingKind::Aodv;
        let mut without = with_hello.clone();
        without.aodv.hello_interval = None;
        let h = run_sim(with_hello).unwrap();
        let q = run_sim(without).unwrap();
        assert!(h.aodv.hello_sent > 0);
        assert!(
            h.energy.total_joules() > q.energy.total_joules(),
            "hellos {} J must cost more than silence {} J",
            h.energy.total_joules(),
            q.energy.total_joules()
        );
    }

    #[test]
    fn link_cache_strategy_runs_and_delivers() {
        let mut cfg = SimConfig::smoke(Scheme::Rcast, 6);
        cfg.dsr.cache.strategy = rcast_dsr::CacheStrategy::Link;
        cfg.dsr.cache.capacity = 128;
        let r = run_sim(cfg).expect("valid config");
        assert!(
            r.delivery.delivery_ratio() > 0.5,
            "link cache PDR {}",
            r.delivery.delivery_ratio()
        );
        // Role sampling still works: link caches render path trees.
        assert!(r.roles.max_role() > 0);
    }

    #[test]
    fn packet_trace_is_consistent_with_the_tracker() {
        let mut cfg = SimConfig::smoke(Scheme::Rcast, 3);
        cfg.trace = true;
        let r = run_sim(cfg).expect("valid config");
        let trace = r.trace.as_ref().expect("tracing enabled");
        let latencies = trace.delivery_latencies();
        assert_eq!(
            latencies.len() as u64,
            r.delivery.delivered(),
            "one latency per delivered packet"
        );
        // Trace-derived mean delay matches the tracker's.
        let mean = latencies
            .iter()
            .map(|(_, d)| d.as_secs_f64())
            .sum::<f64>()
            / latencies.len() as f64;
        assert!(
            (mean - r.delivery.mean_delay().as_secs_f64()).abs() < 1e-9,
            "trace mean {mean} vs tracker {}",
            r.delivery.mean_delay()
        );
        // Every delivered packet shows at least one on-air hop.
        assert!(trace
            .delivered_hop_counts()
            .iter()
            .all(|&(_, hops)| hops >= 1));
        // Accounting closes: originated = delivered + dropped + in-flight.
        let unresolved = trace.unresolved().len() as u64;
        assert_eq!(
            r.delivery.originated(),
            r.delivery.delivered() + r.delivery.dropped() + unresolved,
            "origination ledger must balance"
        );
    }

    #[test]
    fn ledger_records_cross_layer_events_and_replays_energy() {
        let mut cfg = SimConfig::smoke(Scheme::Rcast, 3);
        cfg.obs = true;
        let r = run_sim(cfg.clone()).expect("valid config");
        let obs = r.obs.as_ref().expect("ledger enabled");
        assert_eq!(obs.intervals(), 480);
        assert!(!obs.events().is_empty());
        // Strict total order out of into_report.
        assert!(obs
            .events()
            .windows(2)
            .all(|w| w[0].key() < w[1].key()));
        // Energy reconciliation: replaying the span events through a
        // fresh meter set reproduces the report bit-for-bit.
        let replayed = obs.replay_energy(cfg.energy);
        assert_eq!(replayed.len(), r.energy.per_node_joules().len());
        for (a, b) in replayed.iter().zip(r.energy.per_node_joules()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // The ledger is observation-only: the run with it must be
        // bit-identical to the run without it.
        let mut plain_cfg = cfg;
        plain_cfg.obs = false;
        let plain = run_sim(plain_cfg).unwrap();
        assert_eq!(
            plain.energy.per_node_joules(),
            r.energy.per_node_joules()
        );
        assert_eq!(plain.delivery.delivered(), r.delivery.delivered());
        assert_eq!(plain.mac, r.mac);
    }

    #[test]
    fn scripted_crashes_activate_rejoin_and_save_energy() {
        use crate::faults::FaultEvent;
        let mut cfg = SimConfig::smoke(Scheme::Rcast, 7);
        cfg.faults.script.push(FaultEvent::Crash {
            node: 3,
            at_s: 30.0,
            down_s: 20.0,
        });
        cfg.faults.script.push(FaultEvent::Crash {
            node: 9,
            at_s: 60.0,
            down_s: 0.0, // never rejoins
        });
        let r = run_sim(cfg).unwrap();
        assert_eq!(r.faults.crashes, 2);
        assert_eq!(r.faults.rejoins, 1);
        // Node 9 is off for the second half of the run; its meter keeps
        // ticking at 0 W, so it burns well under the network mean.
        let per_node = r.energy.per_node_joules();
        let mean = per_node.iter().sum::<f64>() / per_node.len() as f64;
        assert!(per_node[9] < 0.7 * mean, "{} vs mean {mean}", per_node[9]);
    }

    #[test]
    fn energy_series_samples_cumulative_consumption() {
        let mut cfg = SimConfig::smoke(Scheme::Rcast, 2);
        cfg.energy_sampling = Some(rcast_engine::SimDuration::from_secs(10));
        let r = run_sim(cfg).expect("valid config");
        let series = r.energy_series.expect("sampling enabled");
        assert!(series.samples() >= 11, "120 s / 10 s: {}", series.samples());
        // Cumulative energy is nondecreasing and ends at the report total.
        let totals = series.totals();
        assert!(totals.windows(2).all(|w| w[1] >= w[0]));
        let last = *totals.last().unwrap();
        assert!((last - r.energy.total_joules()).abs() < 1e-6);
        // Mean slope is the network's average power draw: between the
        // all-sleep floor and the all-awake ceiling.
        let watts = series.mean_total_slope();
        assert!(watts > 50.0 * 0.045 && watts < 50.0 * 1.15, "{watts} W");
    }

    #[test]
    fn batteries_track_depletion() {
        let mut cfg = SimConfig::smoke(Scheme::Dot11, 1);
        cfg.battery_capacity_j = Some(10.0); // dies in ~8.7 s at 1.15 W
        let r = run_sim(cfg).unwrap();
        let died = r.first_depletion.expect("tiny battery must deplete");
        assert!(died <= SimTime::from_secs(10), "{died}");
    }

    #[test]
    fn invalid_config_is_rejected() {
        let mut cfg = SimConfig::smoke(Scheme::Rcast, 0);
        cfg.nodes = 1;
        assert!(Simulation::new(cfg).is_err());
    }

    #[test]
    fn run_seeds_produces_one_report_per_seed() {
        let cfg = SimConfig::smoke(Scheme::Rcast, 0);
        let reports = run_seeds(&cfg, [1, 2, 3]).unwrap();
        assert_eq!(reports.len(), 3);
        assert_eq!(reports[0].seed, 1);
        assert_eq!(reports[2].seed, 3);
    }

    #[test]
    fn run_seeds_parallel_matches_serial_bitwise() {
        let mut cfg = SimConfig::smoke(Scheme::Rcast, 0);
        cfg.duration = SimDuration::from_secs(60);
        let serial = run_seeds(&cfg, [1, 2]).unwrap();
        for threads in [1, 2, 8] {
            let parallel = run_seeds_parallel(&cfg, [1, 2], threads).unwrap();
            assert_eq!(parallel.len(), serial.len());
            for (s, p) in serial.iter().zip(&parallel) {
                assert_eq!(s.seed, p.seed);
                // Debug formatting round-trips every f64 exactly, so
                // equal strings means bit-identical reports.
                assert_eq!(format!("{s:?}"), format!("{p:?}"), "threads={threads}");
            }
        }
    }

    #[test]
    fn run_seeds_parallel_rejects_invalid_configs_up_front() {
        let mut cfg = SimConfig::smoke(Scheme::Rcast, 0);
        cfg.nodes = 1;
        assert!(run_seeds_parallel(&cfg, [1, 2], 4).is_err());
    }

    #[test]
    fn run_seeds_parallel_with_no_seeds_is_empty() {
        let cfg = SimConfig::smoke(Scheme::Rcast, 0);
        assert!(run_seeds_parallel(&cfg, [], 4).unwrap().is_empty());
    }
}
