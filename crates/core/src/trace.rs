//! Packet-level tracing: the simulator's flight recorder.
//!
//! ns-2 ships a trace file per run; this is the equivalent. When
//! `SimConfig::trace` is enabled, the simulation journals every data
//! packet's lifecycle — origination, per-hop transmissions, delivery or
//! drop — and the report carries a queryable [`PacketTrace`]. Intended
//! for debugging protocol behaviour and for per-flow analysis beyond
//! the paper's aggregate metrics.

use std::collections::BTreeMap;

use rcast_engine::{NodeId, SimDuration, SimTime};

/// One journaled event in a data packet's life.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// The application handed the packet to the network layer.
    Originated {
        /// Source node.
        src: NodeId,
        /// Final destination.
        dst: NodeId,
    },
    /// One on-air hop transmission completed.
    Hop {
        /// Transmitting node.
        from: NodeId,
        /// Receiving node.
        to: NodeId,
    },
    /// The packet reached its destination.
    Delivered {
        /// The destination node.
        at_node: NodeId,
    },
    /// The packet was abandoned.
    Dropped,
}

/// A `(flow, seq)` packet identity.
pub type PacketId = (u32, u64);

/// A timestamped trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// When the event happened.
    pub at: SimTime,
    /// Which packet it concerns.
    pub packet: PacketId,
    /// What happened.
    pub event: TraceEvent,
}

/// The journal of every traced packet in a run.
///
/// # Example
///
/// ```
/// use rcast_core::{run_sim, Scheme, SimConfig};
///
/// let mut cfg = SimConfig::smoke(Scheme::Rcast, 1);
/// cfg.trace = true;
/// let report = run_sim(cfg)?;
/// let trace = report.trace.expect("tracing enabled");
/// assert!(trace.len() > 0);
/// // Every delivered packet has a positive end-to-end latency.
/// for (id, latency) in trace.delivery_latencies() {
///     assert!(latency.as_secs_f64() > 0.0, "{id:?}");
/// }
/// # Ok::<(), String>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PacketTrace {
    records: Vec<TraceRecord>,
}

impl PacketTrace {
    /// An empty journal.
    pub fn new() -> Self {
        PacketTrace::default()
    }

    /// Appends a record (events arrive in simulation-time order per the
    /// core loop; this is not re-sorted).
    pub fn record(&mut self, at: SimTime, packet: PacketId, event: TraceEvent) {
        self.records.push(TraceRecord { at, packet, event });
    }

    /// Total records journaled.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when nothing was journaled.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// All records, in journal order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// The records of one packet, in order.
    pub fn packet_history(&self, packet: PacketId) -> Vec<TraceRecord> {
        self.records
            .iter()
            .copied()
            .filter(|r| r.packet == packet)
            .collect()
    }

    /// The end-to-end latency of every delivered packet.
    pub fn delivery_latencies(&self) -> Vec<(PacketId, SimDuration)> {
        let mut origin: BTreeMap<PacketId, SimTime> = BTreeMap::new();
        let mut out = Vec::new();
        for r in &self.records {
            match r.event {
                TraceEvent::Originated { .. } => {
                    origin.entry(r.packet).or_insert(r.at);
                }
                TraceEvent::Delivered { .. } => {
                    if let Some(&t0) = origin.get(&r.packet) {
                        out.push((r.packet, r.at - t0));
                    }
                }
                _ => {}
            }
        }
        out
    }

    /// Hop counts of delivered packets (on-air transmissions observed).
    pub fn delivered_hop_counts(&self) -> Vec<(PacketId, usize)> {
        let mut hops: BTreeMap<PacketId, usize> = BTreeMap::new();
        let mut delivered: Vec<PacketId> = Vec::new();
        for r in &self.records {
            match r.event {
                TraceEvent::Hop { .. } => *hops.entry(r.packet).or_insert(0) += 1,
                TraceEvent::Delivered { .. } => delivered.push(r.packet),
                _ => {}
            }
        }
        delivered
            .into_iter()
            .map(|p| (p, hops.get(&p).copied().unwrap_or(0)))
            .collect()
    }

    /// Identities of packets that were originated but neither delivered
    /// nor dropped by the end of the run (still in flight / queued).
    pub fn unresolved(&self) -> Vec<PacketId> {
        let mut state: BTreeMap<PacketId, bool> = BTreeMap::new(); // resolved?
        for r in &self.records {
            match r.event {
                TraceEvent::Originated { .. } => {
                    state.entry(r.packet).or_insert(false);
                }
                TraceEvent::Delivered { .. } | TraceEvent::Dropped => {
                    state.insert(r.packet, true);
                }
                _ => {}
            }
        }
        // BTreeMap iteration is key-ordered, so the result comes out
        // sorted by packet id without an explicit sort.
        state
            .into_iter()
            .filter(|&(_, resolved)| !resolved)
            .map(|(p, _)| p)
            .collect()
    }

    /// Renders one packet's journey as human-readable lines.
    pub fn render_packet(&self, packet: PacketId) -> String {
        let mut out = String::new();
        for r in self.packet_history(packet) {
            let line = match r.event {
                TraceEvent::Originated { src, dst } => {
                    format!("{} originated {src} → {dst}", r.at)
                }
                TraceEvent::Hop { from, to } => format!("{} hop {from} → {to}", r.at),
                TraceEvent::Delivered { at_node } => {
                    format!("{} delivered at {at_node}", r.at)
                }
                TraceEvent::Dropped => format!("{} dropped", r.at),
            };
            out.push_str(&line);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn sample() -> PacketTrace {
        let mut t = PacketTrace::new();
        let p = (1, 7);
        t.record(SimTime::from_millis(100), p, TraceEvent::Originated { src: n(0), dst: n(3) });
        t.record(SimTime::from_millis(350), p, TraceEvent::Hop { from: n(0), to: n(1) });
        t.record(SimTime::from_millis(600), p, TraceEvent::Hop { from: n(1), to: n(3) });
        t.record(SimTime::from_millis(600), p, TraceEvent::Delivered { at_node: n(3) });
        let q = (2, 0);
        t.record(SimTime::from_millis(200), q, TraceEvent::Originated { src: n(5), dst: n(9) });
        t.record(SimTime::from_millis(900), q, TraceEvent::Dropped);
        let r = (3, 4);
        t.record(SimTime::from_millis(300), r, TraceEvent::Originated { src: n(2), dst: n(8) });
        t
    }

    #[test]
    fn histories_are_per_packet() {
        let t = sample();
        assert_eq!(t.len(), 7);
        assert_eq!(t.packet_history((1, 7)).len(), 4);
        assert_eq!(t.packet_history((2, 0)).len(), 2);
        assert!(t.packet_history((9, 9)).is_empty());
    }

    #[test]
    fn latencies_only_for_delivered() {
        let t = sample();
        let lats = t.delivery_latencies();
        assert_eq!(lats.len(), 1);
        assert_eq!(lats[0], ((1, 7), SimDuration::from_millis(500)));
    }

    #[test]
    fn hop_counts() {
        let t = sample();
        assert_eq!(t.delivered_hop_counts(), vec![((1, 7), 2)]);
    }

    #[test]
    fn unresolved_packets() {
        let t = sample();
        assert_eq!(t.unresolved(), vec![(3, 4)]);
    }

    #[test]
    fn rendering_mentions_every_stage() {
        let t = sample();
        let text = t.render_packet((1, 7));
        assert!(text.contains("originated n0 → n3"));
        assert!(text.contains("hop n1 → n3"));
        assert!(text.contains("delivered at n3"));
        assert_eq!(text.lines().count(), 4);
    }
}
