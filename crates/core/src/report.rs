//! Run results and multi-seed aggregation.

use rcast_aodv::AodvCounters;
use rcast_dsr::DsrCounters;
use rcast_engine::{SimDuration, SimTime};
use rcast_mac::MacCounters;
use rcast_metrics::{DeliveryTracker, EnergyReport, RoleNumbers, TimeSeries};
use rcast_obs::ObsReport;

use crate::config::SimConfig;
use crate::faults::FaultCounters;
use crate::scheme::Scheme;
use crate::sim::run_seeds_parallel;
use crate::trace::PacketTrace;

/// The scalar metric columns of [`SimReport::figure_metrics`], in
/// order — the stable column names sweep artifacts and CSV headers use.
pub const FIGURE_METRICS: [&str; 6] = [
    "energy_j",
    "energy_variance",
    "pdr",
    "delay_s",
    "overhead",
    "epb_j_per_bit",
];

/// Everything measured over one simulation run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// The scheme that produced these numbers.
    pub scheme: Scheme,
    /// The run seed.
    pub seed: u64,
    /// Simulated duration.
    pub duration: SimDuration,
    /// Per-node energy consumption.
    pub energy: EnergyReport,
    /// Data-plane outcomes (PDR, delay, overhead).
    pub delivery: DeliveryTracker,
    /// Role numbers (packet-forwarding influence).
    pub roles: RoleNumbers,
    /// MAC-level counters.
    pub mac: MacCounters,
    /// Network-wide DSR counters (summed over nodes; zero under AODV).
    pub dsr: DsrCounters,
    /// Network-wide AODV counters (summed over nodes; zero under DSR).
    pub aodv: AodvCounters,
    /// Injected-fault bookkeeping (all zero when no faults were
    /// configured).
    pub faults: FaultCounters,
    /// First battery depletion, if batteries were finite and one died.
    pub first_depletion: Option<SimTime>,
    /// Per-node cumulative energy over time, when
    /// `SimConfig::energy_sampling` was set.
    pub energy_series: Option<TimeSeries>,
    /// The packet journal, when `SimConfig::trace` was set.
    pub trace: Option<PacketTrace>,
    /// The cross-layer event ledger, when `SimConfig::obs` was set.
    pub obs: Option<ObsReport>,
}

impl SimReport {
    /// Energy to deliver one bit, J/bit (the paper's EPB; Fig. 7c/7f).
    pub fn energy_per_bit(&self, packet_bytes: usize) -> f64 {
        let bits = self.delivery.delivered() * packet_bytes as u64 * 8;
        self.energy.energy_per_bit(bits)
    }

    /// The six scalar figure metrics of one run, in the paper's
    /// artifact order: total energy (J), per-node energy variance,
    /// delivery ratio, mean delay (s), normalized routing overhead,
    /// and energy per delivered bit (J/bit, clamped to `0` when
    /// nothing was delivered so means stay finite).
    ///
    /// [`AggregateReport::from_runs`] and the sweep engine's per-cell
    /// sampling both read runs through this accessor, so a scalar added
    /// here flows into every artifact.
    pub fn figure_metrics(&self, packet_bytes: usize) -> [f64; FIGURE_METRICS.len()] {
        let epb = self.energy_per_bit(packet_bytes);
        [
            self.energy.total_joules(),
            self.energy.variance(),
            self.delivery.delivery_ratio(),
            self.delivery.mean_delay().as_secs_f64(),
            self.delivery.normalized_routing_overhead(),
            if epb.is_finite() { epb } else { 0.0 },
        ]
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "{}: energy {:.0} J, PDR {:.1}%, delay {:.0} ms, overhead {:.2}, variance {:.0}",
            self.scheme,
            self.energy.total_joules(),
            self.delivery.delivery_ratio() * 100.0,
            self.delivery.mean_delay().as_millis_f64(),
            self.delivery.normalized_routing_overhead(),
            self.energy.variance(),
        )
    }
}

/// Seed-averaged results for one `(scheme, parameter point)`.
///
/// The paper repeats each scenario ten times; this aggregates the same
/// way — arithmetic means over runs for scalars, and per-node means for
/// the energy vector (so Fig. 5's sorted curve is an average curve).
#[derive(Debug, Clone)]
pub struct AggregateReport {
    /// The scheme aggregated.
    pub scheme: Scheme,
    /// Runs aggregated.
    pub runs: usize,
    /// Mean network-wide energy, joules.
    pub mean_total_energy_j: f64,
    /// Mean per-node energy variance (Fig. 6).
    pub mean_energy_variance: f64,
    /// Mean packet delivery ratio.
    pub mean_pdr: f64,
    /// Mean end-to-end delay, seconds.
    pub mean_delay_s: f64,
    /// Mean normalized routing overhead.
    pub mean_overhead: f64,
    /// Mean energy per delivered bit, J/bit.
    pub mean_epb: f64,
    /// Seed-averaged per-node energy, indexed by node id.
    pub mean_per_node_energy_j: Vec<f64>,
    /// Summed role numbers across runs, indexed by node id.
    pub roles: RoleNumbers,
}

impl AggregateReport {
    /// Aggregates runs of the same scheme.
    ///
    /// # Panics
    ///
    /// Panics if `reports` is empty, mixes schemes, or mixes node counts.
    pub fn from_runs(reports: &[SimReport], packet_bytes: usize) -> Self {
        assert!(!reports.is_empty(), "no runs to aggregate");
        let scheme = reports[0].scheme;
        let n_nodes = reports[0].energy.len();
        assert!(
            reports.iter().all(|r| r.scheme == scheme),
            "mixed schemes in aggregation"
        );
        assert!(
            reports.iter().all(|r| r.energy.len() == n_nodes),
            "mixed node counts in aggregation"
        );
        let runs = reports.len();
        let k = runs as f64;

        let mut per_node = vec![0.0; n_nodes];
        let mut roles = RoleNumbers::new(n_nodes);
        let (mut energy, mut var, mut pdr, mut delay, mut overhead, mut epb) =
            (0.0, 0.0, 0.0, 0.0, 0.0, 0.0);
        for r in reports {
            let [e, v, p, d, o, b] = r.figure_metrics(packet_bytes);
            energy += e;
            var += v;
            pdr += p;
            delay += d;
            overhead += o;
            epb += b;
            for (acc, &j) in per_node.iter_mut().zip(r.energy.per_node_joules()) {
                *acc += j / k;
            }
            roles.merge(&r.roles);
        }
        AggregateReport {
            scheme,
            runs,
            mean_total_energy_j: energy / k,
            mean_energy_variance: var / k,
            mean_pdr: pdr / k,
            mean_delay_s: delay / k,
            mean_overhead: overhead / k,
            mean_epb: epb / k,
            mean_per_node_energy_j: per_node,
            roles,
        }
    }

    /// Runs `cfg` under every seed — fanned out across up to `threads`
    /// worker threads — and aggregates, exactly as
    /// [`from_runs`](Self::from_runs) over
    /// [`run_seeds`](crate::run_seeds) would: parallel execution merges
    /// reports in seed order and each run is a pure function of
    /// `(config, seed)`, so the aggregate is byte-identical to the
    /// serial path for any thread count. This is the entry point the
    /// figure/table binaries and the CLI sweep use.
    ///
    /// # Errors
    ///
    /// Returns the configuration error, if any, or a message when
    /// `seeds` is empty.
    pub fn from_parallel(
        cfg: &SimConfig,
        seeds: &[u64],
        threads: usize,
    ) -> Result<Self, String> {
        if seeds.is_empty() {
            return Err("no seeds to aggregate".to_string());
        }
        let reports = run_seeds_parallel(cfg, seeds.iter().copied(), threads)?;
        Ok(Self::from_runs(&reports, cfg.traffic.packet_bytes))
    }

    /// Per-node mean energy sorted ascending — Fig. 5's curve.
    pub fn sorted_per_node_energy(&self) -> Vec<f64> {
        let mut v = self.mean_per_node_energy_j.clone();
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite energies"));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcast_engine::SimDuration;

    fn report(scheme: Scheme, seed: u64, energies: Vec<f64>, delivered: u64) -> SimReport {
        let mut delivery = DeliveryTracker::new();
        for _ in 0..delivered + 1 {
            delivery.record_originated();
        }
        for i in 0..delivered {
            delivery.record_delivered(
                SimTime::ZERO,
                SimTime::ZERO + SimDuration::from_millis(100 * (i + 1)),
            );
        }
        let n = energies.len();
        SimReport {
            scheme,
            seed,
            duration: SimDuration::from_secs(10),
            energy: EnergyReport::new(energies),
            delivery,
            roles: RoleNumbers::new(n),
            mac: MacCounters::default(),
            dsr: DsrCounters::default(),
            aodv: AodvCounters::default(),
            faults: FaultCounters::default(),
            first_depletion: None,
            energy_series: None,
            trace: None,
            obs: None,
        }
    }

    #[test]
    fn epb_uses_delivered_bits() {
        let r = report(Scheme::Rcast, 0, vec![50.0, 50.0], 100);
        // 100 × 512 B × 8 = 409600 bits; 100 J / 409600 ≈ 2.44e-4.
        let epb = r.energy_per_bit(512);
        assert!((epb - 100.0 / 409_600.0).abs() < 1e-12);
        let empty = report(Scheme::Rcast, 0, vec![1.0], 0);
        assert!(empty.energy_per_bit(512).is_infinite());
    }

    #[test]
    fn figure_metrics_order_matches_the_column_names() {
        let r = report(Scheme::Rcast, 0, vec![50.0, 50.0], 100);
        let m = r.figure_metrics(512);
        assert_eq!(m.len(), FIGURE_METRICS.len());
        assert_eq!(m[0], r.energy.total_joules());
        assert_eq!(m[1], r.energy.variance());
        assert_eq!(m[2], r.delivery.delivery_ratio());
        assert_eq!(m[3], r.delivery.mean_delay().as_secs_f64());
        assert_eq!(m[4], r.delivery.normalized_routing_overhead());
        assert_eq!(m[5], r.energy_per_bit(512));
        // Undeliverable runs clamp EPB to zero instead of poisoning means.
        let empty = report(Scheme::Rcast, 0, vec![1.0], 0);
        assert_eq!(empty.figure_metrics(512)[5], 0.0);
    }

    #[test]
    fn summary_mentions_scheme() {
        let r = report(Scheme::Odpm, 0, vec![10.0], 1);
        assert!(r.summary().contains("ODPM"));
    }

    #[test]
    fn aggregation_means_scalars_and_vectors() {
        let a = report(Scheme::Rcast, 0, vec![10.0, 20.0], 4);
        let b = report(Scheme::Rcast, 1, vec![30.0, 40.0], 2);
        let agg = AggregateReport::from_runs(&[a, b], 512);
        assert_eq!(agg.runs, 2);
        assert!((agg.mean_total_energy_j - 50.0).abs() < 1e-12);
        assert_eq!(agg.mean_per_node_energy_j, vec![20.0, 30.0]);
        assert_eq!(agg.sorted_per_node_energy(), vec![20.0, 30.0]);
        // PDRs: 4/5 and 2/3 → mean ≈ 0.7333.
        assert!((agg.mean_pdr - (0.8 + 2.0 / 3.0) / 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn mixed_schemes_panic() {
        let a = report(Scheme::Rcast, 0, vec![1.0], 1);
        let b = report(Scheme::Odpm, 0, vec![1.0], 1);
        let _ = AggregateReport::from_runs(&[a, b], 512);
    }

    #[test]
    #[should_panic]
    fn empty_aggregation_panics() {
        let _ = AggregateReport::from_runs(&[], 512);
    }
}
