//! The routing-protocol abstraction: DSR or AODV under the same MAC.
//!
//! The paper pairs Rcast with DSR because DSR is the protocol that
//! *profits* from overhearing; AODV is its explicit contrast (no
//! overhearing, timeout-driven tables, hello beacons). Wiring both
//! behind one interface lets the extension experiments measure the
//! paper's claims about AODV under PSM — more RREQ flooding, and
//! periodic hello broadcasts that wake whole neighborhoods.

use rcast_aodv::{AodvAction, AodvConfig, AodvCounters, AodvNode, AodvPacket};
use rcast_dsr::{DsrAction, DsrConfig, DsrCounters, DsrNode, DsrPacket, SourceRoute};
use rcast_engine::{NodeId, SimTime};

/// Which routing protocol a simulation runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum RoutingKind {
    /// Dynamic Source Routing — the paper's protocol.
    #[default]
    Dsr,
    /// Ad hoc On-demand Distance Vector — the paper's contrast.
    Aodv,
}

impl RoutingKind {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            RoutingKind::Dsr => "DSR",
            RoutingKind::Aodv => "AODV",
        }
    }
}

impl std::fmt::Display for RoutingKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A network-layer packet of either protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetPacket {
    /// A DSR packet.
    Dsr(DsrPacket),
    /// An AODV packet.
    Aodv(AodvPacket),
}

impl NetPacket {
    /// On-air size, octets.
    pub fn wire_bytes(&self) -> usize {
        match self {
            NetPacket::Dsr(p) => p.wire_bytes(),
            NetPacket::Aodv(p) => p.wire_bytes(),
        }
    }

    /// `true` for routing-control packets.
    pub fn is_control(&self) -> bool {
        match self {
            NetPacket::Dsr(p) => p.is_control(),
            NetPacket::Aodv(p) => p.is_control(),
        }
    }

    /// Short kind tag ("RREQ", "DATA", "HELLO", ...).
    pub fn kind(&self) -> &'static str {
        match self {
            NetPacket::Dsr(p) => p.kind(),
            NetPacket::Aodv(p) => p.kind(),
        }
    }

    /// The `(flow, seq)` identity when this is a data packet.
    pub fn data_id(&self) -> Option<(u32, u64)> {
        match self {
            NetPacket::Dsr(DsrPacket::Data(d)) => Some((d.flow, d.seq)),
            NetPacket::Aodv(AodvPacket::Data(d)) => Some((d.flow, d.seq)),
            _ => None,
        }
    }
}

/// Delivery bookkeeping extracted from a protocol-specific data packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DataInfo {
    /// Flow id.
    pub flow: u32,
    /// Sequence within the flow.
    pub seq: u64,
    /// Generation instant.
    pub generated_at: SimTime,
    /// Hops travelled.
    pub hops: usize,
}

/// A protocol-agnostic routing action.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouteAction {
    /// Transmit to a neighbor.
    Unicast {
        /// Layer-2 receiver.
        next_hop: NodeId,
        /// The packet.
        packet: NetPacket,
    },
    /// Flood to all neighbors.
    Broadcast {
        /// The packet.
        packet: NetPacket,
    },
    /// This node is the data destination.
    Delivered(DataInfo),
    /// The node gave up on a data packet.
    Dropped(DataInfo),
}

fn from_dsr(a: DsrAction) -> Option<RouteAction> {
    Some(match a {
        DsrAction::Unicast { next_hop, packet } => RouteAction::Unicast {
            next_hop,
            packet: NetPacket::Dsr(packet),
        },
        DsrAction::Broadcast { packet } => RouteAction::Broadcast {
            packet: NetPacket::Dsr(packet),
        },
        DsrAction::Delivered { packet } => RouteAction::Delivered(DataInfo {
            flow: packet.flow,
            seq: packet.seq,
            generated_at: packet.generated_at,
            hops: packet.route.hop_count(),
        }),
        DsrAction::Dropped { packet, .. } => RouteAction::Dropped(DataInfo {
            flow: packet.flow,
            seq: packet.seq,
            generated_at: packet.generated_at,
            hops: packet.route.hop_count(),
        }),
        DsrAction::RouteCached { .. } => return None,
    })
}

fn from_aodv(a: AodvAction) -> Option<RouteAction> {
    Some(match a {
        AodvAction::Unicast { next_hop, packet } => RouteAction::Unicast {
            next_hop,
            packet: NetPacket::Aodv(packet),
        },
        AodvAction::Broadcast { packet } => RouteAction::Broadcast {
            packet: NetPacket::Aodv(packet),
        },
        AodvAction::Delivered { packet } => RouteAction::Delivered(DataInfo {
            flow: packet.flow,
            seq: packet.seq,
            generated_at: packet.generated_at,
            hops: packet.hops as usize,
        }),
        AodvAction::Dropped { packet, .. } => RouteAction::Dropped(DataInfo {
            flow: packet.flow,
            seq: packet.seq,
            generated_at: packet.generated_at,
            hops: packet.hops as usize,
        }),
    })
}

/// One node's routing engine, either protocol.
#[derive(Debug, Clone)]
pub enum RouterNode {
    /// A DSR engine.
    Dsr(DsrNode),
    /// An AODV engine.
    Aodv(AodvNode),
}

impl RouterNode {
    /// Creates the engine of the configured kind.
    pub fn new(kind: RoutingKind, id: NodeId, dsr: DsrConfig, aodv: AodvConfig) -> Self {
        match kind {
            RoutingKind::Dsr => {
                let mut node = DsrNode::new(id, dsr);
                // `from_dsr` drops RouteCached actions (role numbers
                // sample the cache directly), so don't build them.
                node.set_route_cached_reports(false);
                RouterNode::Dsr(node)
            }
            RoutingKind::Aodv => RouterNode::Aodv(AodvNode::new(id, aodv)),
        }
    }

    /// Application send.
    pub fn originate(
        &mut self,
        flow: u32,
        seq: u64,
        dst: NodeId,
        bytes: usize,
        now: SimTime,
    ) -> Vec<RouteAction> {
        match self {
            RouterNode::Dsr(n) => n
                .originate(flow, seq, dst, bytes, now)
                .into_iter()
                .filter_map(from_dsr)
                .collect(),
            RouterNode::Aodv(n) => n
                .originate(flow, seq, dst, bytes, now)
                .into_iter()
                .filter_map(from_aodv)
                .collect(),
        }
    }

    /// Addressed (or broadcast) reception.
    ///
    /// # Panics
    ///
    /// Panics if the packet's protocol does not match the engine's
    /// (a wiring bug in the simulation core).
    pub fn receive(&mut self, packet: NetPacket, from: NodeId, now: SimTime) -> Vec<RouteAction> {
        match (self, packet) {
            (RouterNode::Dsr(n), NetPacket::Dsr(p)) => {
                n.receive(p, from, now).into_iter().filter_map(from_dsr).collect()
            }
            (RouterNode::Aodv(n), NetPacket::Aodv(p)) => {
                n.receive(p, from, now).into_iter().filter_map(from_aodv).collect()
            }
            _ => panic!("routing protocol mismatch"),
        }
    }

    /// [`receive`](Self::receive) by reference, for broadcast fan-out
    /// where one interned packet reaches many recipients. Semantically
    /// identical to cloning the packet and calling `receive`; the
    /// engines avoid the clone on the paths that travel by broadcast
    /// (route requests, hellos).
    ///
    /// # Panics
    ///
    /// Panics on a protocol mismatch (a wiring bug).
    pub fn receive_ref(
        &mut self,
        packet: &NetPacket,
        from: NodeId,
        now: SimTime,
    ) -> Vec<RouteAction> {
        match (self, packet) {
            (RouterNode::Dsr(n), NetPacket::Dsr(p)) => n
                .receive_ref(p, from, now)
                .into_iter()
                .filter_map(from_dsr)
                .collect(),
            (RouterNode::Aodv(n), NetPacket::Aodv(p)) => n
                .receive_ref(p, from, now)
                .into_iter()
                .filter_map(from_aodv)
                .collect(),
            _ => panic!("routing protocol mismatch"),
        }
    }

    /// Promiscuous overhearing. AODV ignores overheard traffic — the
    /// contrast the paper draws.
    ///
    /// # Panics
    ///
    /// Panics on a protocol mismatch (a wiring bug).
    pub fn overhear(
        &mut self,
        packet: &NetPacket,
        transmitter: NodeId,
        now: SimTime,
    ) -> Vec<RouteAction> {
        match (self, packet) {
            (RouterNode::Dsr(n), NetPacket::Dsr(p)) => n
                .overhear(p, transmitter, now)
                .into_iter()
                .filter_map(from_dsr)
                .collect(),
            (RouterNode::Aodv(_), NetPacket::Aodv(_)) => Vec::new(), // det: hot-ok — empty Vec literal, never touches the allocator
            _ => panic!("routing protocol mismatch"),
        }
    }

    /// MAC-reported link break with the undeliverable packet.
    ///
    /// # Panics
    ///
    /// Panics on a protocol mismatch (a wiring bug).
    pub fn link_failure(
        &mut self,
        next_hop: NodeId,
        packet: NetPacket,
        now: SimTime,
    ) -> Vec<RouteAction> {
        match (self, packet) {
            (RouterNode::Dsr(n), NetPacket::Dsr(p)) => n
                .link_failure(next_hop, p, now)
                .into_iter()
                .filter_map(from_dsr)
                .collect(),
            (RouterNode::Aodv(n), NetPacket::Aodv(p)) => n
                .link_failure(next_hop, p, now)
                .into_iter()
                .filter_map(from_aodv)
                .collect(),
            _ => panic!("routing protocol mismatch"),
        }
    }

    /// Crash recovery: wipes volatile protocol state (route cache or
    /// table, buffers, duplicate suppression, timers), preserving the
    /// cumulative counters. Returns the `(flow, seq)` ids of buffered
    /// data packets lost with the node.
    // det: cold — fault-rejoin lifecycle event: rebuilds node state outside the settled loop
    pub fn reboot(&mut self, now: SimTime) -> Vec<(u32, u64)> {
        match self {
            RouterNode::Dsr(n) => n.reboot(),
            RouterNode::Aodv(n) => n.reboot(now),
        }
    }

    /// Timer tick.
    pub fn tick(&mut self, now: SimTime) -> Vec<RouteAction> {
        match self {
            RouterNode::Dsr(n) => n.tick(now).into_iter().filter_map(from_dsr).collect(),
            RouterNode::Aodv(n) => n.tick(now).into_iter().filter_map(from_aodv).collect(),
        }
    }

    /// Cached source routes (role-number sampling; DSR only — AODV's
    /// tables hold next hops, not paths).
    pub fn cached_paths(&self) -> Vec<SourceRoute> {
        match self {
            RouterNode::Dsr(n) => n.cache().paths(),
            RouterNode::Aodv(_) => Vec::new(),
        }
    }

    /// Visits every cached source route without materializing a `Vec`
    /// — the allocation-free form of [`cached_paths`](Self::cached_paths)
    /// used by the per-interval role-number sampler.
    pub fn for_each_cached_path(&self, f: impl FnMut(&SourceRoute)) {
        match self {
            RouterNode::Dsr(n) => n.cache().for_each_path(f),
            RouterNode::Aodv(_) => {}
        }
    }

    /// DSR counters, when applicable.
    pub fn dsr_counters(&self) -> Option<DsrCounters> {
        match self {
            RouterNode::Dsr(n) => Some(n.counters()),
            RouterNode::Aodv(_) => None,
        }
    }

    /// AODV counters, when applicable.
    pub fn aodv_counters(&self) -> Option<AodvCounters> {
        match self {
            RouterNode::Dsr(_) => None,
            RouterNode::Aodv(n) => Some(n.counters()),
        }
    }
}

/// Packet category, mirrored from [`NetPacket::kind`] into the interned
/// header so hot-path dispatch never touches strings or the arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PacketKind {
    /// Route request (broadcast flood).
    Rreq,
    /// Route reply.
    Rrep,
    /// Route error.
    Rerr,
    /// Application data.
    Data,
    /// AODV hello beacon (a broadcast RREP in disguise).
    Hello,
}

/// The frame metadata the simulation core consults on every hop,
/// denormalized out of the packet so a [`PacketHandle`] answers all
/// accounting questions without an arena lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketHeader {
    /// The packet category.
    pub kind: PacketKind,
    /// `true` for routing-control packets.
    pub control: bool,
    /// On-air size, octets.
    pub wire_bytes: usize,
    /// The `(flow, seq)` identity when this is a data packet.
    pub data_id: Option<(u32, u64)>,
}

/// A copyable ticket for a packet interned in a [`PacketArena`].
///
/// The MAC layer and channel move handles through queues and
/// deliveries; fanning a broadcast out to N receivers copies 32 bytes
/// per receiver instead of cloning a source route per receiver. The
/// embedded [`PacketHeader`] carries everything the bookkeeping needs;
/// the arena is only consulted to hand the actual packet to a routing
/// engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketHandle {
    id: u32,
    /// Cached frame metadata.
    pub header: PacketHeader,
}

impl PacketHandle {
    /// The packet category.
    pub fn kind(&self) -> PacketKind {
        self.header.kind
    }

    /// `true` for routing-control packets.
    pub fn is_control(&self) -> bool {
        self.header.control
    }

    /// On-air size, octets.
    pub fn wire_bytes(&self) -> usize {
        self.header.wire_bytes
    }

    /// The `(flow, seq)` identity when this is a data packet.
    pub fn data_id(&self) -> Option<(u32, u64)> {
        self.header.data_id
    }
}

/// A slab of in-flight packets, indexed by [`PacketHandle`].
///
/// Lifetime discipline (see DESIGN.md §10): every interned handle is
/// consumed exactly once — taken by the unicast receiver or a link
/// failure, or released after a broadcast fan-out, an enqueue
/// rejection, or a crash purge. Freed slots are recycled through a free
/// list, so a steady-state simulation reuses a small working set of
/// slots instead of growing.
#[derive(Debug, Clone, Default)]
pub struct PacketArena {
    slots: Vec<Option<NetPacket>>,
    free: Vec<u32>,
    live: usize,
    high_water: usize,
}

impl PacketArena {
    /// An empty arena.
    pub fn new() -> Self {
        PacketArena::default()
    }

    fn header_of(packet: &NetPacket) -> PacketHeader {
        let kind = match packet {
            NetPacket::Dsr(DsrPacket::Rreq(_)) | NetPacket::Aodv(AodvPacket::Rreq(_)) => {
                PacketKind::Rreq
            }
            NetPacket::Aodv(AodvPacket::Rrep(r)) if r.is_hello() => PacketKind::Hello,
            NetPacket::Dsr(DsrPacket::Rrep(_)) | NetPacket::Aodv(AodvPacket::Rrep(_)) => {
                PacketKind::Rrep
            }
            NetPacket::Dsr(DsrPacket::Rerr(_)) | NetPacket::Aodv(AodvPacket::Rerr(_)) => {
                PacketKind::Rerr
            }
            NetPacket::Dsr(DsrPacket::Data(_)) | NetPacket::Aodv(AodvPacket::Data(_)) => {
                PacketKind::Data
            }
        };
        PacketHeader {
            kind,
            control: packet.is_control(),
            wire_bytes: packet.wire_bytes(),
            data_id: packet.data_id(),
        }
    }

    /// Interns a packet, returning its handle.
    pub fn intern(&mut self, packet: NetPacket) -> PacketHandle {
        let header = Self::header_of(&packet);
        let id = match self.free.pop() {
            Some(id) => {
                self.slots[id as usize] = Some(packet);
                id
            }
            None => {
                let id = self.slots.len() as u32;
                self.slots.push(Some(packet));
                id
            }
        };
        self.live += 1;
        self.high_water = self.high_water.max(self.live);
        PacketHandle { id, header }
    }

    /// Borrows the interned packet.
    ///
    /// # Panics
    ///
    /// Panics if the handle was already taken or released (a lifetime
    /// bug in the simulation core).
    pub fn get(&self, h: PacketHandle) -> &NetPacket {
        self.slots[h.id as usize]
            .as_ref()
            .expect("packet handle used after release")
    }

    /// Removes and returns the interned packet, freeing the slot.
    ///
    /// # Panics
    ///
    /// Panics if the handle was already taken or released.
    pub fn take(&mut self, h: PacketHandle) -> NetPacket {
        let p = self.slots[h.id as usize]
            .take()
            .expect("packet handle used after release");
        self.free.push(h.id);
        self.live -= 1;
        p
    }

    /// Drops the interned packet, freeing the slot.
    ///
    /// # Panics
    ///
    /// Panics if the handle was already taken or released.
    pub fn release(&mut self, h: PacketHandle) {
        let _ = self.take(h);
    }

    /// Number of packets currently interned.
    pub fn live(&self) -> usize {
        self.live
    }

    /// The maximum number of simultaneously interned packets seen.
    pub fn high_water(&self) -> usize {
        self.high_water
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn kind_labels() {
        assert_eq!(RoutingKind::Dsr.to_string(), "DSR");
        assert_eq!(RoutingKind::Aodv.to_string(), "AODV");
        assert_eq!(RoutingKind::default(), RoutingKind::Dsr);
    }

    #[test]
    fn both_engines_flood_on_unknown_destination() {
        for kind in [RoutingKind::Dsr, RoutingKind::Aodv] {
            let mut r = RouterNode::new(kind, n(0), DsrConfig::default(), AodvConfig::default());
            let actions = r.originate(0, 0, n(9), 512, SimTime::ZERO);
            assert!(
                actions
                    .iter()
                    .any(|a| matches!(a, RouteAction::Broadcast { packet } if packet.kind() == "RREQ")),
                "{kind}: {actions:?}"
            );
        }
    }

    #[test]
    fn aodv_ignores_overheard_traffic() {
        let mut dsr = RouterNode::new(
            RoutingKind::Dsr,
            n(7),
            DsrConfig::default(),
            AodvConfig::default(),
        );
        let route =
            SourceRoute::new(vec![n(0), n(1), n(2)]).expect("valid route");
        let pkt = NetPacket::Dsr(DsrPacket::Data(rcast_dsr::DataPacket {
            flow: 0,
            seq: 0,
            route,
            payload_bytes: 512,
            generated_at: SimTime::ZERO,
            salvage_count: 0,
        }));
        // DSR learns silently (RouteCached actions are internal).
        let _ = dsr.overhear(&pkt, n(1), SimTime::ZERO);
        assert!(!dsr.cached_paths().is_empty(), "DSR must learn from overhearing");

        let mut aodv = RouterNode::new(
            RoutingKind::Aodv,
            n(7),
            DsrConfig::default(),
            AodvConfig::default(),
        );
        let apkt = NetPacket::Aodv(AodvPacket::Data(rcast_aodv::AodvData {
            flow: 0,
            seq: 0,
            src: n(0),
            dst: n(2),
            payload_bytes: 512,
            generated_at: SimTime::ZERO,
            hops: 1,
        }));
        assert!(aodv.overhear(&apkt, n(1), SimTime::ZERO).is_empty());
        assert!(aodv.cached_paths().is_empty());
    }

    #[test]
    #[should_panic]
    fn protocol_mismatch_is_a_bug() {
        let mut aodv = RouterNode::new(
            RoutingKind::Aodv,
            n(0),
            DsrConfig::default(),
            AodvConfig::default(),
        );
        let rerr = NetPacket::Dsr(DsrPacket::Rerr(rcast_dsr::Rerr {
            detector: n(1),
            broken_from: n(1),
            broken_to: n(2),
            path: SourceRoute::new(vec![n(1), n(0)]).expect("valid"),
        }));
        let _ = aodv.receive(rerr, n(1), SimTime::ZERO);
    }
}
