//! RandomCast (Rcast): the paper's contribution and the full simulation
//! assembly.
//!
//! This crate reproduces *Lim, Yu & Das, "Rcast: A Randomized
//! Communication Scheme for Improving Energy Efficiency in MANETs"*
//! (ICDCS 2005) on top of the substrate crates (`rcast-engine`,
//! `rcast-mobility`, `rcast-radio`, `rcast-mac`, `rcast-dsr`,
//! `rcast-traffic`, `rcast-metrics`):
//!
//! * [`Scheme`] — the compared power-management schemes: 802.11 without
//!   PSM, unmodified PSM (unconditional overhearing), PSM without
//!   overhearing, ODPM, and Rcast; with the per-packet-type overhearing
//!   levels of Section 3.3.
//! * [`RcastDecider`] / [`OverhearFactors`] — the randomized-overhearing
//!   decision with all four factors of Section 3.2 (neighbor count —
//!   the paper's `P_R = 1/#neighbors` default — plus sender ID,
//!   mobility and battery as the paper's future-work extensions).
//! * [`OdpmState`] — the On-Demand Power Management baseline.
//! * [`Simulation`] / [`SimConfig`] / [`SimReport`] — the end-to-end
//!   runner reproducing the testbed of Section 4.1.
//! * [`run_seeds`] / [`run_seeds_parallel`] — the multi-seed experiment
//!   runner (the paper repeats every scenario ten times). The parallel
//!   variant fans seeds across cores and is **byte-identical** to the
//!   serial one for any thread count.
//!
//! # Quickstart
//!
//! ```
//! use rcast_core::{run_sim, Scheme, SimConfig};
//!
//! let report = run_sim(SimConfig::smoke(Scheme::Rcast, 1))?;
//! println!("{}", report.summary());
//! assert!(report.delivery.delivery_ratio() > 0.0);
//! # Ok::<(), String>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod config;
mod faults;
mod odpm;
mod overhearing;
mod report;
mod routing;
mod scenario;
mod scheme;
mod sim;
mod trace;

pub use config::SimConfig;
pub use faults::{FaultCounters, FaultEvent, FaultPlan, FaultsConfig};
pub use odpm::{OdpmConfig, OdpmState};
pub use overhearing::{OverhearFactors, RcastDecider};
pub use report::{AggregateReport, SimReport, FIGURE_METRICS};
pub use routing::{
    DataInfo, NetPacket, PacketArena, PacketHandle, PacketHeader, PacketKind, RouteAction,
    RouterNode, RoutingKind,
};
pub use rcast_mobility::Area;
pub use scenario::{parse_scenario, write_scenario};
pub use trace::{PacketId, PacketTrace, TraceEvent, TraceRecord};
pub use rcast_obs::{
    render_jsonl, Event as ObsEvent, EventKind as ObsEventKind, Ledger, LedgerParams, ObsReport,
    PacketClass, TraceFilter, SERIES_COLUMNS,
};
pub use scheme::Scheme;
pub use sim::{run_seeds, run_seeds_parallel, run_sim, run_sim_with_width, Simulation};
