//! PHY data-rate and 802.11 timing constants.

use rcast_engine::SimDuration;

/// IEEE 802.11 (DSSS) inter-frame spacings and slot timing.
///
/// These default to the 1997 DSSS PHY values used by ns-2's 2 Mbps
/// WaveLAN model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhyTimings {
    /// Short inter-frame space.
    pub sifs: SimDuration,
    /// DCF inter-frame space.
    pub difs: SimDuration,
    /// Backoff slot length.
    pub slot: SimDuration,
    /// PLCP preamble + header transmission time (fixed, rate-independent).
    pub plcp: SimDuration,
}

impl Default for PhyTimings {
    fn default() -> Self {
        PhyTimings {
            sifs: SimDuration::from_micros(10),
            difs: SimDuration::from_micros(50),
            slot: SimDuration::from_micros(20),
            plcp: SimDuration::from_micros(192),
        }
    }
}

/// The physical layer: data rate plus timing, with airtime helpers.
///
/// # Example
///
/// ```
/// use rcast_radio::Phy;
///
/// let phy = Phy::default(); // 2 Mbps
/// // 512 bytes of payload take 2.048 ms on the air plus PLCP overhead.
/// let t = phy.airtime(512);
/// assert!(t.as_secs_f64() > 0.002 && t.as_secs_f64() < 0.003);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Phy {
    /// Payload bit rate, bits per second (paper: 2 Mbps).
    data_rate_bps: f64,
    /// Timing constants.
    pub timings: PhyTimings,
}

impl Default for Phy {
    /// The paper's 2 Mbps channel.
    fn default() -> Self {
        Phy::new(2_000_000.0)
    }
}

impl Phy {
    /// Creates a PHY with the given data rate.
    ///
    /// # Panics
    ///
    /// Panics if `data_rate_bps` is not positive and finite.
    pub fn new(data_rate_bps: f64) -> Self {
        assert!(
            data_rate_bps.is_finite() && data_rate_bps > 0.0,
            "invalid data rate {data_rate_bps}"
        );
        Phy {
            data_rate_bps,
            timings: PhyTimings::default(),
        }
    }

    /// The payload bit rate, bits per second.
    pub fn data_rate_bps(&self) -> f64 {
        self.data_rate_bps
    }

    /// Time on the air for `bytes` of frame (PLCP overhead included).
    pub fn airtime(&self, bytes: usize) -> SimDuration {
        let bits = bytes as f64 * 8.0;
        self.timings.plcp + SimDuration::from_secs_f64(bits / self.data_rate_bps)
    }

    /// Airtime of a complete acknowledged unicast exchange:
    /// `DIFS + DATA + SIFS + ACK`.
    ///
    /// `ack_bytes` is the MAC ACK frame length (14 octets in 802.11).
    pub fn unicast_exchange_time(&self, data_bytes: usize, ack_bytes: usize) -> SimDuration {
        self.timings.difs + self.airtime(data_bytes) + self.timings.sifs + self.airtime(ack_bytes)
    }

    /// Airtime of an unacknowledged broadcast: `DIFS + DATA`.
    pub fn broadcast_time(&self, data_bytes: usize) -> SimDuration {
        self.timings.difs + self.airtime(data_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn airtime_scales_linearly_with_size() {
        let phy = Phy::default();
        let t1 = phy.airtime(100);
        let t2 = phy.airtime(200);
        let delta = t2 - t1;
        // 100 extra bytes at 2 Mbps = 400 µs.
        assert_eq!(delta, SimDuration::from_micros(400));
    }

    #[test]
    fn airtime_includes_plcp() {
        let phy = Phy::default();
        assert_eq!(phy.airtime(0), phy.timings.plcp);
    }

    #[test]
    fn faster_phy_is_faster() {
        let slow = Phy::new(1_000_000.0);
        let fast = Phy::new(11_000_000.0);
        assert!(fast.airtime(512) < slow.airtime(512));
        assert_eq!(fast.data_rate_bps(), 11_000_000.0);
    }

    #[test]
    fn unicast_exchange_adds_overheads() {
        let phy = Phy::default();
        let t = phy.unicast_exchange_time(512, 14);
        let expect = phy.timings.difs
            + phy.airtime(512)
            + phy.timings.sifs
            + phy.airtime(14);
        assert_eq!(t, expect);
        assert!(t > phy.broadcast_time(512));
    }

    #[test]
    fn paper_scale_sanity() {
        // A 512-byte CBR packet at 2 Mbps occupies ~2.2 ms; hundreds fit
        // in a 200 ms data window — consistent with the paper's loads.
        let phy = Phy::default();
        let per_packet = phy.unicast_exchange_time(512 + 40, 14).as_secs_f64();
        assert!(per_packet < 0.004, "{per_packet}");
        assert!(0.2 / per_packet > 50.0);
    }

    #[test]
    #[should_panic]
    fn zero_rate_panics() {
        let _ = Phy::new(0.0);
    }
}
