//! Power states, the WaveLAN-II energy model, and per-node accounting.

use rcast_engine::{SimDuration, SimTime};

/// The radio's power state over an accounting interval.
///
/// The paper (Section 4.2) uses a two-level model: idle listening,
/// receiving and transmitting all draw essentially the same power on a
/// WaveLAN-II card (1.15–1.5 W), while the doze state draws 0.045 W. We
/// keep transmit/receive distinct so the model can also express
/// asymmetric radios (e.g. the TR 1000 used in Berkeley motes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PowerState {
    /// Awake: idle listening (also the paper's receive/transmit power).
    Awake,
    /// Actively transmitting.
    Transmit,
    /// Actively receiving.
    Receive,
    /// Low-power doze.
    Sleep,
    /// Radio powered off entirely (crashed or battery-dead node); draws
    /// nothing, regardless of the model.
    Off,
}

impl PowerState {
    /// Every state, in meter-slot order.
    pub const ALL: [PowerState; 5] = [
        PowerState::Awake,
        PowerState::Transmit,
        PowerState::Receive,
        PowerState::Sleep,
        PowerState::Off,
    ];

    /// Stable lowercase label, used by the trace exporter. Never
    /// changes: `rcast-trace/v1` output depends on it byte-for-byte.
    pub const fn label(self) -> &'static str {
        match self {
            PowerState::Awake => "awake",
            PowerState::Transmit => "tx",
            PowerState::Receive => "rx",
            PowerState::Sleep => "sleep",
            PowerState::Off => "off",
        }
    }
}

/// Power draw per state, watts.
///
/// # Example
///
/// ```
/// use rcast_radio::{EnergyModel, PowerState};
///
/// let m = EnergyModel::wavelan_ii();
/// assert_eq!(m.power_w(PowerState::Awake), 1.15);
/// assert_eq!(m.power_w(PowerState::Sleep), 0.045);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Idle-listening power, watts.
    pub idle_w: f64,
    /// Transmit power, watts.
    pub tx_w: f64,
    /// Receive power, watts.
    pub rx_w: f64,
    /// Doze power, watts.
    pub sleep_w: f64,
}

impl EnergyModel {
    /// The paper's Lucent WaveLAN-II profile: 1.15 W awake
    /// (idle = rx = tx, per Section 4.2), 0.045 W doze.
    pub fn wavelan_ii() -> Self {
        EnergyModel {
            idle_w: 1.15,
            tx_w: 1.15,
            rx_w: 1.15,
            sleep_w: 0.045,
        }
    }

    /// The RFM TR 1000 profile cited in the introduction: 13.5 mW receive
    /// /idle, 0.015 mW doze (transmit ~24.75 mW at full power).
    pub fn tr1000() -> Self {
        EnergyModel {
            idle_w: 0.0135,
            tx_w: 0.02475,
            rx_w: 0.0135,
            sleep_w: 0.000_015,
        }
    }

    /// Power draw in a given state, watts.
    pub fn power_w(&self, state: PowerState) -> f64 {
        match state {
            PowerState::Awake => self.idle_w,
            PowerState::Transmit => self.tx_w,
            PowerState::Receive => self.rx_w,
            PowerState::Sleep => self.sleep_w,
            PowerState::Off => 0.0,
        }
    }

    /// Awake-to-sleep power ratio (the paper quotes 25–900× across
    /// hardware).
    pub fn awake_sleep_ratio(&self) -> f64 {
        self.idle_w / self.sleep_w
    }

    /// Validates that every state draws positive finite power.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending value.
    pub fn validate(&self) -> Result<(), String> {
        for (name, v) in [
            ("idle", self.idle_w),
            ("tx", self.tx_w),
            ("rx", self.rx_w),
            ("sleep", self.sleep_w),
        ] {
            if !(v.is_finite() && v > 0.0) {
                return Err(format!("{name} power must be positive: {v}"));
            }
        }
        if self.sleep_w > self.idle_w {
            return Err("sleep power exceeds idle power".into());
        }
        Ok(())
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel::wavelan_ii()
    }
}

/// Integrates energy for one node: joules per power state.
///
/// The simulator calls [`accumulate`](EnergyMeter::accumulate) once per
/// accounting interval (a beacon interval, or an AM segment). The meter
/// keeps per-state time so reports can break consumption down.
#[derive(Debug, Clone)]
pub struct EnergyMeter {
    model: EnergyModel,
    /// Seconds spent per state: [awake, tx, rx, sleep, off].
    secs: [f64; 5],
}

impl EnergyMeter {
    /// A meter with nothing accumulated.
    pub fn new(model: EnergyModel) -> Self {
        EnergyMeter {
            model,
            secs: [0.0; 5],
        }
    }

    fn slot(state: PowerState) -> usize {
        match state {
            PowerState::Awake => 0,
            PowerState::Transmit => 1,
            PowerState::Receive => 2,
            PowerState::Sleep => 3,
            PowerState::Off => 4,
        }
    }

    /// Adds `dur` spent in `state`.
    pub fn accumulate(&mut self, state: PowerState, dur: SimDuration) {
        self.secs[Self::slot(state)] += dur.as_secs_f64();
    }

    /// Total energy consumed so far, joules.
    pub fn total_joules(&self) -> f64 {
        self.secs[0] * self.model.idle_w
            + self.secs[1] * self.model.tx_w
            + self.secs[2] * self.model.rx_w
            + self.secs[3] * self.model.sleep_w
    }

    /// Seconds spent in a state.
    pub fn seconds_in(&self, state: PowerState) -> f64 {
        self.secs[Self::slot(state)]
    }

    /// Total accounted wall-clock seconds (all states).
    pub fn total_seconds(&self) -> f64 {
        self.secs.iter().sum()
    }

    /// Fraction of accounted time spent asleep, in `[0, 1]`; zero when
    /// nothing has been accumulated.
    pub fn sleep_fraction(&self) -> f64 {
        let total = self.total_seconds();
        if total == 0.0 {
            0.0
        } else {
            self.secs[3] / total
        }
    }

    /// The model this meter integrates against.
    pub fn model(&self) -> EnergyModel {
        self.model
    }
}

/// A finite battery draining through an [`EnergyMeter`]-style feed.
///
/// The paper's energy-balance discussion motivates tracking *when* nodes
/// die; [`Battery::drain`] reports the depletion instant so network
/// lifetime can be measured.
///
/// # Example
///
/// ```
/// use rcast_engine::{SimDuration, SimTime};
/// use rcast_radio::Battery;
///
/// let mut b = Battery::new(10.0);
/// assert!(b
///     .drain(5.0, SimTime::from_secs(1))
///     .is_none());
/// let died = b.drain(6.0, SimTime::from_secs(2)).unwrap();
/// assert_eq!(died, SimTime::from_secs(2));
/// assert!(b.is_depleted());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Battery {
    capacity_j: f64,
    consumed_j: f64,
    depleted_at: Option<SimTime>,
}

impl Battery {
    /// A full battery of the given capacity (joules).
    ///
    /// # Panics
    ///
    /// Panics if `capacity_j` is not positive and finite.
    pub fn new(capacity_j: f64) -> Self {
        assert!(
            capacity_j.is_finite() && capacity_j > 0.0,
            "invalid capacity {capacity_j}"
        );
        Battery {
            capacity_j,
            consumed_j: 0.0,
            depleted_at: None,
        }
    }

    /// Consumes `joules`, recording `now` as the depletion instant if the
    /// battery empties. Returns the depletion instant if this drain
    /// crossed zero.
    pub fn drain(&mut self, joules: f64, now: SimTime) -> Option<SimTime> {
        if self.depleted_at.is_some() {
            return None;
        }
        self.consumed_j += joules.max(0.0);
        if self.consumed_j >= self.capacity_j {
            self.depleted_at = Some(now);
            return Some(now);
        }
        None
    }

    /// Remaining charge, joules (floored at zero).
    pub fn remaining_j(&self) -> f64 {
        (self.capacity_j - self.consumed_j).max(0.0)
    }

    /// Remaining charge as a fraction of capacity, in `[0, 1]`.
    pub fn remaining_fraction(&self) -> f64 {
        self.remaining_j() / self.capacity_j
    }

    /// `true` once the battery has fully drained.
    pub fn is_depleted(&self) -> bool {
        self.depleted_at.is_some()
    }

    /// When the battery drained, if it has.
    pub fn depleted_at(&self) -> Option<SimTime> {
        self.depleted_at
    }

    /// Total consumed, joules.
    pub fn consumed_j(&self) -> f64 {
        self.consumed_j
    }

    /// Rated capacity, joules.
    pub fn capacity_j(&self) -> f64 {
        self.capacity_j
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wavelan_matches_paper_numbers() {
        let m = EnergyModel::wavelan_ii();
        assert_eq!(m.power_w(PowerState::Awake), 1.15);
        assert_eq!(m.power_w(PowerState::Transmit), 1.15);
        assert_eq!(m.power_w(PowerState::Receive), 1.15);
        assert_eq!(m.power_w(PowerState::Sleep), 0.045);
        // 1.15 / 0.045 ≈ 25.6 — the paper's "25 times" lower bound.
        assert!((m.awake_sleep_ratio() - 25.56).abs() < 0.1);
        assert!(m.validate().is_ok());
    }

    #[test]
    fn tr1000_ratio_is_huge() {
        let m = EnergyModel::tr1000();
        // The paper quotes up to 900x; TR1000 is 13.5 mW / 0.015 mW = 900.
        assert!((m.awake_sleep_ratio() - 900.0).abs() < 1.0);
        assert!(m.validate().is_ok());
    }

    #[test]
    fn always_awake_node_energy_matches_paper_figure5() {
        // The paper: 1.15 W × 1125 s = 1293.75 J for every 802.11 node.
        let mut meter = EnergyMeter::new(EnergyModel::wavelan_ii());
        meter.accumulate(PowerState::Awake, SimDuration::from_secs(1125));
        assert!((meter.total_joules() - 1293.75).abs() < 1e-9);
    }

    #[test]
    fn psm_idle_node_energy_matches_paper_figure5d() {
        // The paper's fig 5(d) arithmetic for an idle PS node:
        // awake 1.15 W × 225 s (ATIM windows) + 0.045 W × 900 s = 299.25 J.
        let mut meter = EnergyMeter::new(EnergyModel::wavelan_ii());
        meter.accumulate(PowerState::Awake, SimDuration::from_secs(225));
        meter.accumulate(PowerState::Sleep, SimDuration::from_secs(900));
        assert!((meter.total_joules() - 299.25).abs() < 1e-9);
    }

    #[test]
    fn meter_tracks_states_separately() {
        let mut meter = EnergyMeter::new(EnergyModel::wavelan_ii());
        meter.accumulate(PowerState::Transmit, SimDuration::from_millis(500));
        meter.accumulate(PowerState::Sleep, SimDuration::from_millis(1500));
        assert_eq!(meter.seconds_in(PowerState::Transmit), 0.5);
        assert_eq!(meter.seconds_in(PowerState::Sleep), 1.5);
        assert_eq!(meter.seconds_in(PowerState::Awake), 0.0);
        assert_eq!(meter.total_seconds(), 2.0);
        assert!((meter.sleep_fraction() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn off_state_accounts_time_but_no_energy() {
        let mut meter = EnergyMeter::new(EnergyModel::wavelan_ii());
        meter.accumulate(PowerState::Off, SimDuration::from_secs(100));
        meter.accumulate(PowerState::Awake, SimDuration::from_secs(10));
        assert_eq!(meter.seconds_in(PowerState::Off), 100.0);
        assert_eq!(meter.total_seconds(), 110.0);
        assert!((meter.total_joules() - 11.5).abs() < 1e-12);
        assert_eq!(EnergyModel::wavelan_ii().power_w(PowerState::Off), 0.0);
    }

    #[test]
    fn empty_meter() {
        let meter = EnergyMeter::new(EnergyModel::default());
        assert_eq!(meter.total_joules(), 0.0);
        assert_eq!(meter.sleep_fraction(), 0.0);
    }

    #[test]
    fn battery_lifecycle() {
        let mut b = Battery::new(100.0);
        assert_eq!(b.capacity_j(), 100.0);
        assert_eq!(b.remaining_j(), 100.0);
        assert!(b.drain(40.0, SimTime::from_secs(10)).is_none());
        assert_eq!(b.remaining_j(), 60.0);
        assert!((b.remaining_fraction() - 0.6).abs() < 1e-12);
        let died = b.drain(60.0, SimTime::from_secs(20));
        assert_eq!(died, Some(SimTime::from_secs(20)));
        assert!(b.is_depleted());
        assert_eq!(b.depleted_at(), Some(SimTime::from_secs(20)));
        // Further drains are ignored.
        assert!(b.drain(1000.0, SimTime::from_secs(30)).is_none());
        assert_eq!(b.remaining_j(), 0.0);
    }

    #[test]
    fn negative_drain_is_ignored() {
        let mut b = Battery::new(10.0);
        b.drain(-5.0, SimTime::ZERO);
        assert_eq!(b.consumed_j(), 0.0);
    }

    #[test]
    fn invalid_model_rejected() {
        let m = EnergyModel {
            idle_w: 0.0,
            ..EnergyModel::wavelan_ii()
        };
        assert!(m.validate().is_err());
        let m2 = EnergyModel {
            sleep_w: 2.0,
            ..EnergyModel::wavelan_ii()
        };
        assert!(m2.validate().is_err());
    }
}
