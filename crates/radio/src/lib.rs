//! Radio layer: propagation, frame airtime, and energy accounting.
//!
//! The paper's testbed is an ns-2 two-ray-ground channel with a 250 m
//! nominal transmission range, 2 Mbps data rate, and the Lucent
//! WaveLAN-II power profile (1.15 W awake in idle/receive/transmit,
//! 0.045 W in the low-power doze state). This crate reproduces those
//! three ingredients:
//!
//! * [`Propagation`] — a two-ray-ground / Friis hybrid path-loss model
//!   whose reception threshold is calibrated so the reception disk is
//!   exactly the configured nominal range (matching how ns-2 scenarios
//!   are tuned),
//! * [`Phy`] — data-rate and 802.11 timing constants with frame airtime
//!   computation,
//! * [`EnergyModel`] / [`EnergyMeter`] / [`Battery`] — power-state
//!   bookkeeping that integrates watts over simulated state intervals.
//!
//! # Example
//!
//! ```
//! use rcast_engine::SimDuration;
//! use rcast_radio::{EnergyMeter, EnergyModel, PowerState};
//!
//! let model = EnergyModel::wavelan_ii();
//! let mut meter = EnergyMeter::new(model);
//! meter.accumulate(PowerState::Awake, SimDuration::from_secs(1));
//! meter.accumulate(PowerState::Sleep, SimDuration::from_secs(1));
//! assert!((meter.total_joules() - (1.15 + 0.045)).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod energy;
mod phy;
mod propagation;

pub use energy::{Battery, EnergyMeter, EnergyModel, PowerState};
pub use phy::{Phy, PhyTimings};
pub use propagation::Propagation;
