//! Path-loss model: Friis free-space near the transmitter, two-ray
//! ground beyond the crossover distance.
//!
//! ns-2's `TwoRayGround` model computes received power as
//!
//! * `Pr = Pt·Gt·Gr·λ² / ((4π)²·d²·L)` for `d < d_c` (Friis), and
//! * `Pr = Pt·Gt·Gr·ht²·hr² / d⁴` for `d ≥ d_c` (two-ray ground),
//!
//! with crossover `d_c = 4π·ht·hr / λ`. Reception succeeds when `Pr`
//! exceeds the receive threshold. ns-2 scenario files pick the threshold
//! so the nominal range is exactly 250 m; [`Propagation::with_range`]
//! performs the same calibration, which is why the resulting reception
//! region is a deterministic disk — exactly the behaviour the paper's
//! simulations exhibit.

/// A calibrated two-ray-ground propagation model.
///
/// # Example
///
/// ```
/// use rcast_radio::Propagation;
///
/// let prop = Propagation::with_range(250.0);
/// assert!(prop.receivable(249.9));
/// assert!(!prop.receivable(250.1));
/// assert_eq!(prop.range_m(), 250.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Propagation {
    /// Transmit power, watts (ns-2 default 0.2818 W for 250 m).
    tx_power_w: f64,
    /// Antenna heights, meters (ns-2 default 1.5 m).
    antenna_height_m: f64,
    /// Carrier wavelength, meters (914 MHz WaveLAN ⇒ ~0.328 m).
    wavelength_m: f64,
    /// Receive threshold, watts — calibrated from the nominal range.
    rx_threshold_w: f64,
    /// The nominal range the threshold was calibrated to.
    range_m: f64,
}

impl Propagation {
    /// ns-2 defaults: 0.2818 W transmit power, 1.5 m antennas, 914 MHz.
    const TX_POWER_W: f64 = 0.2818;
    const ANTENNA_HEIGHT_M: f64 = 1.5;
    const WAVELENGTH_M: f64 = 0.328_227;

    /// Builds the model calibrated so the reception disk has exactly the
    /// given nominal radius (the paper uses 250 m).
    ///
    /// # Panics
    ///
    /// Panics if `range_m` is not positive and finite.
    pub fn with_range(range_m: f64) -> Self {
        assert!(
            range_m.is_finite() && range_m > 0.0,
            "invalid range {range_m}"
        );
        let mut p = Propagation {
            tx_power_w: Self::TX_POWER_W,
            antenna_height_m: Self::ANTENNA_HEIGHT_M,
            wavelength_m: Self::WAVELENGTH_M,
            rx_threshold_w: 0.0,
            range_m,
        };
        p.rx_threshold_w = p.rx_power_w(range_m);
        p
    }

    /// The crossover distance between the Friis and two-ray regimes.
    pub fn crossover_m(&self) -> f64 {
        4.0 * std::f64::consts::PI * self.antenna_height_m * self.antenna_height_m
            / self.wavelength_m
    }

    /// Received power at distance `d` meters (unit antenna gains, no
    /// system loss).
    ///
    /// # Panics
    ///
    /// Panics if `d` is negative or not finite.
    pub fn rx_power_w(&self, d: f64) -> f64 {
        assert!(d.is_finite() && d >= 0.0, "invalid distance {d}");
        // Guard the singularity at d = 0: anything at the antenna hears
        // full transmit power.
        if d < 1e-3 {
            return self.tx_power_w;
        }
        let g = 1.0; // Gt = Gr = 1, L = 1 (ns-2 defaults)
        if d < self.crossover_m() {
            let denom = (4.0 * std::f64::consts::PI * d / self.wavelength_m).powi(2);
            self.tx_power_w * g / denom
        } else {
            let h2 = self.antenna_height_m * self.antenna_height_m;
            self.tx_power_w * g * h2 * h2 / d.powi(4)
        }
    }

    /// Received power at distance `d`, in dBm.
    pub fn rx_power_dbm(&self, d: f64) -> f64 {
        10.0 * (self.rx_power_w(d) * 1000.0).log10()
    }

    /// `true` when a frame transmitted at distance `d` is receivable.
    pub fn receivable(&self, d: f64) -> bool {
        self.rx_power_w(d) >= self.rx_threshold_w
    }

    /// The calibrated nominal range, meters.
    pub fn range_m(&self) -> f64 {
        self.range_m
    }

    /// The calibrated receive threshold, watts.
    pub fn rx_threshold_w(&self) -> f64 {
        self.rx_threshold_w
    }
}

impl Default for Propagation {
    /// The paper's 250 m range.
    fn default() -> Self {
        Propagation::with_range(250.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reception_boundary_is_the_nominal_range() {
        let p = Propagation::with_range(250.0);
        assert!(p.receivable(0.0));
        assert!(p.receivable(100.0));
        assert!(p.receivable(250.0));
        assert!(!p.receivable(250.5));
        assert!(!p.receivable(1000.0));
    }

    #[test]
    fn power_decreases_monotonically() {
        let p = Propagation::default();
        let mut prev = p.rx_power_w(0.5);
        for i in 1..600 {
            let d = i as f64;
            let cur = p.rx_power_w(d);
            assert!(cur <= prev + 1e-18, "at {d} m");
            prev = cur;
        }
    }

    #[test]
    fn regimes_meet_continuously_at_crossover() {
        let p = Propagation::default();
        let dc = p.crossover_m();
        // The two formulas coincide at d_c by construction of d_c.
        let just_below = p.rx_power_w(dc - 1e-6);
        let just_above = p.rx_power_w(dc + 1e-6);
        let rel = (just_below - just_above).abs() / just_below;
        assert!(rel < 1e-3, "discontinuity at crossover: {rel}");
    }

    #[test]
    fn crossover_near_86m_for_defaults() {
        // 4π·1.5²/0.328227 ≈ 86.1 m — the well-known ns-2 value.
        let p = Propagation::default();
        assert!((p.crossover_m() - 86.14).abs() < 0.5, "{}", p.crossover_m());
    }

    #[test]
    fn different_ranges_calibrate_different_thresholds() {
        let a = Propagation::with_range(100.0);
        let b = Propagation::with_range(250.0);
        assert!(a.rx_threshold_w() > b.rx_threshold_w());
        assert!(a.receivable(100.0));
        assert!(!a.receivable(150.0));
        assert!(b.receivable(150.0));
    }

    #[test]
    fn dbm_is_log_of_watts() {
        let p = Propagation::default();
        let w = p.rx_power_w(250.0);
        let dbm = p.rx_power_dbm(250.0);
        assert!((10f64.powf(dbm / 10.0) / 1000.0 - w).abs() < 1e-15);
    }

    #[test]
    #[should_panic]
    fn negative_distance_panics() {
        let _ = Propagation::default().rx_power_w(-1.0);
    }
}
