//! Property-based tests for mobility: trajectories stay in bounds,
//! speeds respect limits, and the spatial grid agrees with brute force.
//! On the in-tree `rcast-testkit` harness.

use rcast_engine::rng::StreamRng;
use rcast_engine::{NodeId, SimTime};
use rcast_mobility::{
    Area, MobilityField, NeighborIndex, NeighborTable, RandomWaypoint, Snapshot, Vec2,
    WaypointConfig,
};
use rcast_testkit::{prop_assert, prop_assert_eq, Check, Gen};

/// A trajectory never leaves its field, for arbitrary seeds, speeds,
/// pause times and query patterns.
#[test]
fn trajectory_stays_in_area() {
    Check::new("trajectory_stays_in_area").run(|g| {
        let seed = g.u64();
        let max_speed = g.f64_range(1.0, 50.0);
        let pause = g.f64_range(0.0, 100.0);
        let steps = g.vec(1, 50, |g| g.u64_range(1, 5_000));
        let area = Area::new(1_500.0, 300.0);
        let cfg = WaypointConfig {
            min_speed_mps: 0.1,
            max_speed_mps: max_speed,
            pause_secs: pause,
        };
        let mut rw = RandomWaypoint::new(area, cfg, StreamRng::from_seed(seed));
        let mut t = 0u64;
        for step in steps {
            t += step;
            let p = rw.position_at(SimTime::from_millis(t));
            prop_assert!(area.contains(p), "escaped to {p:?} at {t} ms");
        }
        Ok(())
    });
}

/// Observed speed between samples never exceeds the configured max.
#[test]
fn observed_speed_bounded() {
    Check::new("observed_speed_bounded").run(|g| {
        let seed = g.u64();
        let max_speed = g.f64_range(1.0, 40.0);
        let area = Area::new(1_000.0, 200.0);
        let cfg = WaypointConfig {
            min_speed_mps: 0.1,
            max_speed_mps: max_speed,
            pause_secs: 0.0,
        };
        let mut rw = RandomWaypoint::new(area, cfg, StreamRng::from_seed(seed));
        let dt = 0.5;
        let mut prev = rw.position_at(SimTime::ZERO);
        for i in 1..200u64 {
            let cur = rw.position_at(SimTime::from_millis(i * 500));
            let v = prev.distance_to(cur) / dt;
            prop_assert!(v <= max_speed + 1e-6, "speed {v} > {max_speed}");
            prev = cur;
        }
        Ok(())
    });
}

/// The grid-backed neighbor query equals the O(n^2) answer for
/// arbitrary point sets and ranges.
#[test]
fn grid_matches_brute_force() {
    Check::new("grid_matches_brute_force").run(|g| {
        let points = g.vec(1, 80, |g| {
            (g.f64_range(0.0, 2_000.0), g.f64_range(0.0, 400.0))
        });
        let range = g.f64_range(50.0, 400.0);
        let positions: Vec<Vec2> = points.iter().map(|&(x, y)| Vec2::new(x, y)).collect();
        let snap =
            Snapshot::from_positions(positions.clone(), Area::new(2_000.0, 400.0), SimTime::ZERO);
        let table = NeighborTable::build(&snap, range);
        for i in 0..positions.len() {
            let id = NodeId::new(i as u32);
            let mut brute: Vec<NodeId> = (0..positions.len())
                .filter(|&j| j != i && positions[i].distance_to(positions[j]) <= range)
                .map(|j| NodeId::new(j as u32))
                .collect();
            brute.sort_unstable();
            prop_assert_eq!(table.neighbors(id), &brute[..]);
        }
        Ok(())
    });
}

/// Neighbor relations are symmetric for arbitrary topologies.
#[test]
fn neighbor_symmetry() {
    Check::new("neighbor_symmetry").run(|g| {
        let points = g.vec(2, 40, |g| {
            (g.f64_range(0.0, 1_000.0), g.f64_range(0.0, 1_000.0))
        });
        let positions: Vec<Vec2> = points.iter().map(|&(x, y)| Vec2::new(x, y)).collect();
        let count = positions.len();
        let snap = Snapshot::from_positions(positions, Area::new(1_000.0, 1_000.0), SimTime::ZERO);
        let table = NeighborTable::build(&snap, 250.0);
        for a in 0..count {
            for b in 0..count {
                prop_assert_eq!(
                    table.are_neighbors(NodeId::new(a as u32), NodeId::new(b as u32)),
                    table.are_neighbors(NodeId::new(b as u32), NodeId::new(a as u32))
                );
            }
        }
        Ok(())
    });
}

/// The incremental [`NeighborIndex`] stays equal to a from-scratch
/// [`NeighborTable::build`] oracle under arbitrary interleavings of the
/// operations the simulator performs on it: mobility advances (of
/// arbitrary stride, including zero motion while paused), `isolate`
/// (node crash / blackout) and `cut_link` (corruption burst), followed
/// by more advances (crash rejoin: the fault layer re-isolates downed
/// nodes after every rebuild, so a post-mutation advance must restore
/// the pure geometric answer).
#[test]
fn incremental_index_matches_rebuilt_table() {
    Check::new("incremental_index_matches_rebuilt_table").run(|g| {
        let seed = g.u64();
        let n = g.u32_range(2, 40);
        let area = Area::new(g.f64_range(300.0, 2_000.0), g.f64_range(100.0, 600.0));
        let range = g.f64_range(50.0, 400.0);
        let cfg = WaypointConfig {
            min_speed_mps: 0.1,
            max_speed_mps: g.f64_range(1.0, 30.0),
            pause_secs: g.f64_range(0.0, 60.0),
        };
        let mut field = MobilityField::random_waypoint(n, area, cfg, StreamRng::from_seed(seed));
        let mut snap = field.snapshot(SimTime::ZERO);
        let mut index = NeighborIndex::new(&snap, range);
        let mut oracle = NeighborTable::build(&snap, range);
        let mut t_ms = 0u64;

        let ops = g.vec(1, 25, |g: &mut Gen| (g.u32_range(0, 3), g.u64(), g.u64()));
        for (op, x, y) in ops {
            match op {
                // Mobility advance: strides from 1 ms to 20 s, so runs
                // cross pause boundaries, tiny in-cell jitters and
                // multi-cell jumps alike.
                0 => {
                    t_ms += 1 + x % 20_000;
                    field.snapshot_into(SimTime::from_millis(t_ms), &mut snap);
                    index.advance(&snap);
                    oracle = NeighborTable::build(&snap, range);
                }
                // Node crash or blackout.
                1 => {
                    let id = NodeId::new((x % u64::from(n)) as u32);
                    index.isolate(id);
                    oracle.isolate(id);
                }
                // Corruption burst on one link (self-links are a no-op
                // the same way in both implementations).
                _ => {
                    let a = NodeId::new((x % u64::from(n)) as u32);
                    let b = NodeId::new((y % u64::from(n)) as u32);
                    index.cut_link(a, b);
                    oracle.cut_link(a, b);
                }
            }
            prop_assert_eq!(index.len(), oracle.len());
            for i in 0..n {
                let id = NodeId::new(i);
                prop_assert_eq!(
                    index.current().neighbors(id),
                    oracle.neighbors(id),
                    "node {i} after op {op} at {t_ms} ms"
                );
            }
        }
        Ok(())
    });
}

/// The grid-backed fan-out — the set the MAC's broadcast/overhearing
/// path visits via [`NeighborIndex`] — equals the brute-force pairwise
/// oracle when positions straddle grid-cell boundaries. Coordinates
/// are snapped to exact multiples of the cell size (the radio range)
/// and then nudged by "exactly on the line", "a hair off" or "clearly
/// inside" offsets: where an open/closed cell-assignment bug or a
/// missed ring of the 3×3 cell neighborhood would first show. Exact
/// distance == range pairs arise whenever two un-nudged points sit one
/// cell apart on the same line.
#[test]
fn boundary_straddling_fanout_matches_pairwise_oracle() {
    Check::new("boundary_straddling_fanout_matches_pairwise_oracle").run(|g| {
        let range = g.f64_range(60.0, 250.0);
        let area = Area::new(2_000.0, 600.0);
        let boundary_coord = |g: &mut Gen, cells: u32, base: f64| {
            let snapped = f64::from(g.u32_range(0, cells)) * base;
            let nudge = match g.u32_range(0, 2) {
                0 => 0.0,
                1 => g.f64_range(-1e-9, 1e-9),
                _ => g.f64_range(-2.0, 2.0),
            };
            snapped + nudge
        };
        let points = g.vec(2, 60, |g: &mut Gen| {
            (
                boundary_coord(g, 8, range),
                boundary_coord(g, 2, range),
            )
        });
        let positions: Vec<Vec2> = points
            .iter()
            .map(|&(x, y)| area.clamp(Vec2::new(x, y)))
            .collect();
        let brute = |positions: &[Vec2], i: usize| {
            let mut out: Vec<NodeId> = (0..positions.len())
                .filter(|&j| j != i && positions[i].distance_to(positions[j]) <= range)
                .map(|j| NodeId::new(j as u32))
                .collect();
            out.sort_unstable();
            out
        };
        let snap = Snapshot::from_positions(positions.clone(), area, SimTime::ZERO);
        let mut index = NeighborIndex::new(&snap, range);
        for i in 0..positions.len() {
            let id = NodeId::new(i as u32);
            prop_assert_eq!(
                index.current().neighbors(id),
                &brute(&positions, i)[..],
                "fan-out of node {i} at t=0"
            );
        }
        // Jitter every node across (or onto) a nearby boundary and
        // exercise the incremental advance path against the same oracle.
        let moved: Vec<Vec2> = positions
            .iter()
            .map(|p| {
                let dx = match g.u32_range(0, 2) {
                    0 => 0.0,
                    1 => g.f64_range(-1e-9, 1e-9),
                    _ => g.f64_range(-range, range),
                };
                let dy = g.f64_range(-3.0, 3.0);
                area.clamp(Vec2::new(p.x + dx, p.y + dy))
            })
            .collect();
        let snap2 = Snapshot::from_positions(moved.clone(), area, SimTime::from_secs(1));
        index.advance(&snap2);
        for i in 0..moved.len() {
            let id = NodeId::new(i as u32);
            prop_assert_eq!(
                index.current().neighbors(id),
                &brute(&moved, i)[..],
                "fan-out of node {i} after advance"
            );
        }
        Ok(())
    });
}

/// Link-change counting is zero against itself and symmetric in
/// total count between two arbitrary snapshots.
#[test]
fn link_changes_consistency() {
    Check::new("link_changes_consistency").run(|g| {
        let before = g.vec(3, 30, |g: &mut Gen| {
            (g.f64_range(0.0, 800.0), g.f64_range(0.0, 200.0))
        });
        let jitter = g.vec(3, 30, |g: &mut Gen| {
            (g.f64_range(-300.0, 300.0), g.f64_range(-100.0, 100.0))
        });
        let n = before.len().min(jitter.len());
        let area = Area::new(2_000.0, 600.0);
        let p1: Vec<Vec2> = before[..n].iter().map(|&(x, y)| Vec2::new(x, y)).collect();
        let p2: Vec<Vec2> = p1
            .iter()
            .zip(&jitter[..n])
            .map(|(p, &(dx, dy))| area.clamp(Vec2::new(p.x + dx + 300.0, p.y + dy + 100.0)))
            .collect();
        let s1 = Snapshot::from_positions(p1, area, SimTime::ZERO);
        let s2 = Snapshot::from_positions(p2, area, SimTime::from_secs(1));
        let t1 = NeighborTable::build(&s1, 250.0);
        let t2 = NeighborTable::build(&s2, 250.0);
        for i in 0..n {
            let id = NodeId::new(i as u32);
            prop_assert_eq!(t1.link_changes_since(&t1, id), 0);
            // Symmetric difference is direction-independent.
            prop_assert_eq!(t2.link_changes_since(&t1, id), t1.link_changes_since(&t2, id));
        }
        Ok(())
    });
}
