//! All-node mobility container and position snapshots.

use rcast_engine::rng::StreamRng;
use rcast_engine::{NodeId, SimTime};

use crate::geometry::{Area, Vec2};
use crate::grid::SpatialGrid;
use crate::waypoint::{MotionState, RandomWaypoint, WaypointConfig};

/// The positions of every node at one instant.
///
/// Produced by [`MobilityField::snapshot`]; consumed by the MAC layer
/// (link checks) and by [`SpatialGrid`] (neighbor queries).
#[derive(Debug, Clone)]
pub struct Snapshot {
    time: SimTime,
    area: Area,
    positions: Vec<Vec2>,
}

impl Snapshot {
    /// Builds a snapshot directly from positions (mainly for tests and
    /// hand-crafted topologies).
    pub fn from_positions(positions: Vec<Vec2>, area: Area, time: SimTime) -> Self {
        Snapshot {
            time,
            area,
            positions,
        }
    }

    /// The instant this snapshot describes.
    pub fn time(&self) -> SimTime {
        self.time
    }

    /// The field the nodes live in.
    pub fn area(&self) -> Area {
        self.area
    }

    /// Position of every node, indexed by [`NodeId::index`].
    pub fn positions(&self) -> &[Vec2] {
        &self.positions
    }

    /// Position of one node.
    pub fn position(&self, id: NodeId) -> Vec2 {
        self.positions[id.index()]
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// `true` when the snapshot holds no nodes.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Distance between two nodes at this instant.
    pub fn distance(&self, a: NodeId, b: NodeId) -> f64 {
        self.position(a).distance_to(self.position(b))
    }

    /// `true` when `a` and `b` are within `range` meters of each other.
    pub fn in_range(&self, a: NodeId, b: NodeId, range: f64) -> bool {
        self.position(a).distance_squared_to(self.position(b)) <= range * range
    }

    /// Builds a neighbor index with the given cell size.
    pub fn grid(&self, cell_size: f64) -> SpatialGrid {
        SpatialGrid::build(self, cell_size)
    }
}

/// The mobility state of an entire scenario: one trajectory per node.
///
/// # Example
///
/// ```
/// use rcast_engine::{SimTime, rng::StreamRng};
/// use rcast_mobility::{Area, MobilityField, WaypointConfig};
///
/// let mut field = MobilityField::random_waypoint(
///     10, Area::paper_default(), WaypointConfig::default(), StreamRng::from_seed(0));
/// assert_eq!(field.len(), 10);
/// let snap = field.snapshot(SimTime::from_secs(1));
/// assert_eq!(snap.len(), 10);
/// ```
#[derive(Debug, Clone)]
pub struct MobilityField {
    area: Area,
    nodes: Vec<RandomWaypoint>,
}

impl MobilityField {
    /// Creates `n` random-waypoint trajectories.
    ///
    /// Each node's motion derives from its own child stream of `rng`, so
    /// scenarios are reproducible and per-node independent.
    pub fn random_waypoint(n: u32, area: Area, cfg: WaypointConfig, rng: StreamRng) -> Self {
        let nodes = (0..n)
            .map(|i| RandomWaypoint::new(area, cfg, rng.child_indexed("waypoint", i as u64)))
            .collect();
        MobilityField { area, nodes }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when the field holds no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The field the nodes live in.
    pub fn area(&self) -> Area {
        self.area
    }

    /// Positions of every node at `t`.
    ///
    /// Queries must be monotonically non-decreasing in `t` (see
    /// [`RandomWaypoint::position_at`]).
    pub fn snapshot(&mut self, t: SimTime) -> Snapshot {
        let positions = self.nodes.iter_mut().map(|n| n.position_at(t)).collect();
        Snapshot {
            time: t,
            area: self.area,
            positions,
        }
    }

    /// Refreshes a caller-owned snapshot to the positions at `t`,
    /// reusing its buffer so the steady-state loop allocates nothing.
    /// Same monotonic constraint as [`snapshot`](Self::snapshot).
    pub fn snapshot_into(&mut self, t: SimTime, out: &mut Snapshot) {
        out.time = t;
        out.area = self.area;
        out.positions.clear();
        out.positions
            .extend(self.nodes.iter_mut().map(|n| n.position_at(t)));
    }

    /// Motion state of one node at `t` (same monotonic constraint).
    pub fn state_at(&mut self, id: NodeId, t: SimTime) -> MotionState {
        self.nodes[id.index()].state_at(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn field(n: u32, seed: u64) -> MobilityField {
        MobilityField::random_waypoint(
            n,
            Area::paper_default(),
            WaypointConfig::default(),
            StreamRng::from_seed(seed),
        )
    }

    #[test]
    fn snapshot_has_all_nodes_in_area() {
        let mut f = field(100, 1);
        let snap = f.snapshot(SimTime::from_secs(100));
        assert_eq!(snap.len(), 100);
        assert!(!snap.is_empty());
        for &p in snap.positions() {
            assert!(snap.area().contains(p));
        }
    }

    #[test]
    fn per_node_streams_are_independent() {
        // Node 0's trajectory is identical whether or not other nodes exist.
        let mut small = field(1, 77);
        let mut large = field(50, 77);
        for i in 0..100u64 {
            let t = SimTime::from_secs(i * 10);
            assert_eq!(
                small.snapshot(t).position(NodeId::new(0)),
                large.snapshot(t).position(NodeId::new(0))
            );
        }
    }

    #[test]
    fn in_range_is_symmetric() {
        let mut f = field(30, 5);
        let snap = f.snapshot(SimTime::from_secs(3));
        for a in 0..30u32 {
            for b in 0..30u32 {
                assert_eq!(
                    snap.in_range(NodeId::new(a), NodeId::new(b), 250.0),
                    snap.in_range(NodeId::new(b), NodeId::new(a), 250.0)
                );
            }
        }
    }

    #[test]
    fn distance_matches_positions() {
        let snap = Snapshot::from_positions(
            vec![Vec2::new(0.0, 0.0), Vec2::new(30.0, 40.0)],
            Area::new(100.0, 100.0),
            SimTime::ZERO,
        );
        assert_eq!(snap.distance(NodeId::new(0), NodeId::new(1)), 50.0);
        assert!(snap.in_range(NodeId::new(0), NodeId::new(1), 50.0));
        assert!(!snap.in_range(NodeId::new(0), NodeId::new(1), 49.0));
    }

    #[test]
    fn empty_field() {
        let mut f = MobilityField::random_waypoint(
            0,
            Area::paper_default(),
            WaypointConfig::default(),
            StreamRng::from_seed(0),
        );
        assert!(f.is_empty());
        assert!(f.snapshot(SimTime::ZERO).is_empty());
    }
}
