//! Node mobility for the RandomCast reproduction.
//!
//! The paper evaluates Rcast under the **random waypoint** model
//! (Johnson & Maltz): each node repeatedly picks a uniformly random
//! destination in the field, travels there in a straight line at a
//! uniformly random speed in `(0, v_max]`, pauses for a fixed
//! `T_pause`, and repeats. `T_pause` equal to the simulation length
//! yields the paper's "static" scenario.
//!
//! This crate provides:
//!
//! * [`Vec2`] / [`Area`] — 2-D geometry over the 1500 × 300 m field,
//! * [`RandomWaypoint`] — per-node motion with analytic position
//!   interpolation (no per-tick integration error),
//! * [`MobilityField`] — all-node container producing position
//!   [`Snapshot`]s,
//! * [`SpatialGrid`] — a uniform-grid neighbor index answering
//!   "who is within radio range of node *i*" in O(neighbors).
//!
//! # Example
//!
//! ```
//! use rcast_engine::{SimTime, rng::StreamRng};
//! use rcast_mobility::{Area, MobilityField, WaypointConfig};
//!
//! let area = Area::new(1500.0, 300.0);
//! let cfg = WaypointConfig { max_speed_mps: 20.0, pause_secs: 600.0, ..WaypointConfig::default() };
//! let mut field = MobilityField::random_waypoint(100, area, cfg, StreamRng::from_seed(1));
//! let snap = field.snapshot(SimTime::from_secs(10));
//! let grid = snap.grid(250.0);
//! let neighbors = grid.neighbors_of(rcast_engine::NodeId::new(0), &snap, 250.0);
//! assert!(neighbors.len() < 100);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod field;
mod geometry;
mod grid;
mod incremental;
mod neighbors;
mod waypoint;

pub use field::{MobilityField, Snapshot};
pub use geometry::{Area, Vec2};
pub use grid::SpatialGrid;
pub use incremental::NeighborIndex;
pub use neighbors::NeighborTable;
pub use waypoint::{MotionState, RandomWaypoint, WaypointConfig};
