//! Per-interval neighbor table.
//!
//! The simulator recomputes who-hears-whom once per beacon interval.
//! [`NeighborTable`] materializes those lists for every node so the MAC
//! layer (wake/overhear bookkeeping) and the Rcast decision engine
//! (`P_R = 1 / #neighbors`) can query them repeatedly at zero cost.

use rcast_engine::NodeId;

use crate::field::Snapshot;

/// Materialized neighbor lists for every node at one instant.
///
/// # Example
///
/// ```
/// use rcast_engine::{NodeId, SimTime};
/// use rcast_mobility::{Area, NeighborTable, Snapshot, Vec2};
///
/// let snap = Snapshot::from_positions(
///     vec![Vec2::new(0.0, 0.0), Vec2::new(100.0, 0.0), Vec2::new(600.0, 0.0)],
///     Area::new(1000.0, 10.0),
///     SimTime::ZERO,
/// );
/// let table = NeighborTable::build(&snap, 250.0);
/// assert_eq!(table.neighbors(NodeId::new(0)), &[NodeId::new(1)]);
/// assert_eq!(table.degree(NodeId::new(2)), 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct NeighborTable {
    range_m: f64,
    lists: Vec<Vec<NodeId>>,
}

impl NeighborTable {
    /// Builds the table from a snapshot with the given radio range.
    pub fn build(snapshot: &Snapshot, range_m: f64) -> Self {
        let grid = snapshot.grid(range_m);
        let lists = (0..snapshot.len())
            .map(|i| grid.neighbors_of(NodeId::new(i as u32), snapshot, range_m))
            .collect();
        NeighborTable { range_m, lists }
    }

    /// An all-empty table over `n` nodes — the starting point for
    /// incremental maintenance (see [`crate::NeighborIndex`]).
    pub(crate) fn with_nodes(n: usize, range_m: f64) -> Self {
        NeighborTable {
            range_m,
            lists: vec![Vec::new(); n],
        }
    }

    /// Mutable access to the per-node lists for in-place maintenance.
    pub(crate) fn lists_mut(&mut self) -> &mut [Vec<NodeId>] {
        &mut self.lists
    }

    /// Shared access to the per-node lists.
    pub(crate) fn lists(&self) -> &[Vec<NodeId>] {
        &self.lists
    }

    /// The radio range this table was built with.
    pub fn range_m(&self) -> f64 {
        self.range_m
    }

    /// Number of nodes covered.
    pub fn len(&self) -> usize {
        self.lists.len()
    }

    /// `true` when the table covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.lists.is_empty()
    }

    /// The sorted neighbor list of `id`.
    pub fn neighbors(&self, id: NodeId) -> &[NodeId] {
        &self.lists[id.index()]
    }

    /// Number of neighbors of `id`.
    pub fn degree(&self, id: NodeId) -> usize {
        self.lists[id.index()].len()
    }

    /// `true` when `b` is in `a`'s neighbor list.
    pub fn are_neighbors(&self, a: NodeId, b: NodeId) -> bool {
        self.lists[a.index()].binary_search(&b).is_ok()
    }

    /// Mean node degree over the whole network.
    pub fn mean_degree(&self) -> f64 {
        if self.lists.is_empty() {
            return 0.0;
        }
        self.lists.iter().map(|l| l.len()).sum::<usize>() as f64 / self.lists.len() as f64
    }

    /// Removes `node` from every neighbor list and empties its own —
    /// radio silence, as if the node left the field. Used by fault
    /// injection for crashed nodes. Removal preserves sort order, so
    /// [`are_neighbors`](Self::are_neighbors) stays valid.
    pub fn isolate(&mut self, node: NodeId) {
        for list in &mut self.lists {
            if let Ok(pos) = list.binary_search(&node) {
                list.remove(pos);
            }
        }
        self.lists[node.index()].clear();
    }

    /// Removes the (symmetric) link between `a` and `b`, leaving both
    /// nodes otherwise connected. Used by fault injection for link
    /// blackouts.
    pub fn cut_link(&mut self, a: NodeId, b: NodeId) {
        if let Ok(pos) = self.lists[a.index()].binary_search(&b) {
            self.lists[a.index()].remove(pos);
        }
        if let Ok(pos) = self.lists[b.index()].binary_search(&a) {
            self.lists[b.index()].remove(pos);
        }
    }

    /// Number of neighbor-set changes for `id` between `prev` and `self`
    /// (symmetric difference size). The Rcast mobility factor uses this
    /// as a local mobility estimate.
    pub fn link_changes_since(&self, prev: &NeighborTable, id: NodeId) -> usize {
        let a = &prev.lists[id.index()];
        let b = &self.lists[id.index()];
        // Both sorted: merge-count the symmetric difference.
        let (mut i, mut j, mut changes) = (0usize, 0usize, 0usize);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => {
                    changes += 1;
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    changes += 1;
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    i += 1;
                    j += 1;
                }
            }
        }
        changes + (a.len() - i) + (b.len() - j)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::{Area, Vec2};
    use rcast_engine::SimTime;

    fn table(positions: Vec<Vec2>) -> NeighborTable {
        let snap = Snapshot::from_positions(positions, Area::new(2000.0, 400.0), SimTime::ZERO);
        NeighborTable::build(&snap, 250.0)
    }

    #[test]
    fn chain_topology() {
        // 0 -- 1 -- 2, with 0 and 2 out of mutual range.
        let t = table(vec![
            Vec2::new(0.0, 0.0),
            Vec2::new(200.0, 0.0),
            Vec2::new(400.0, 0.0),
        ]);
        assert_eq!(t.neighbors(NodeId::new(0)), &[NodeId::new(1)]);
        assert_eq!(
            t.neighbors(NodeId::new(1)),
            &[NodeId::new(0), NodeId::new(2)]
        );
        assert_eq!(t.degree(NodeId::new(1)), 2);
        assert!(t.are_neighbors(NodeId::new(0), NodeId::new(1)));
        assert!(!t.are_neighbors(NodeId::new(0), NodeId::new(2)));
        assert!((t.mean_degree() - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn symmetry() {
        let t = table(vec![
            Vec2::new(0.0, 0.0),
            Vec2::new(100.0, 100.0),
            Vec2::new(90.0, 10.0),
            Vec2::new(800.0, 0.0),
        ]);
        for a in 0..4u32 {
            for b in 0..4u32 {
                if a == b {
                    continue;
                }
                assert_eq!(
                    t.are_neighbors(NodeId::new(a), NodeId::new(b)),
                    t.are_neighbors(NodeId::new(b), NodeId::new(a))
                );
            }
        }
    }

    #[test]
    fn link_change_counting() {
        let before = table(vec![
            Vec2::new(0.0, 0.0),
            Vec2::new(100.0, 0.0),
            Vec2::new(200.0, 0.0),
        ]);
        // Node 1 walks away from node 0 but stays near node 2.
        let after = table(vec![
            Vec2::new(0.0, 0.0),
            Vec2::new(300.0, 0.0),
            Vec2::new(200.0, 0.0),
        ]);
        // Node 0 lost both neighbors (1 moved off; 2 was in range at 200 m
        // before but still is — wait, 0..2 distance unchanged at 200).
        assert_eq!(after.link_changes_since(&before, NodeId::new(0)), 1);
        // Node 1: lost 0, kept 2.
        assert_eq!(after.link_changes_since(&before, NodeId::new(1)), 1);
        // Node 2 kept both.
        assert_eq!(after.link_changes_since(&before, NodeId::new(2)), 0);
        // No movement → no changes.
        assert_eq!(before.link_changes_since(&before, NodeId::new(0)), 0);
    }

    #[test]
    fn isolate_silences_a_node_both_ways() {
        let mut t = table(vec![
            Vec2::new(0.0, 0.0),
            Vec2::new(100.0, 0.0),
            Vec2::new(200.0, 0.0),
        ]);
        t.isolate(NodeId::new(1));
        assert_eq!(t.degree(NodeId::new(1)), 0);
        assert!(!t.are_neighbors(NodeId::new(0), NodeId::new(1)));
        assert!(!t.are_neighbors(NodeId::new(1), NodeId::new(0)));
        // Unrelated links survive.
        assert!(t.are_neighbors(NodeId::new(0), NodeId::new(2)));
    }

    #[test]
    fn cut_link_is_symmetric_and_local() {
        // Chain: 0 -- 1 -- 2, with 0 and 2 out of mutual range.
        let mut t = table(vec![
            Vec2::new(0.0, 0.0),
            Vec2::new(200.0, 0.0),
            Vec2::new(400.0, 0.0),
        ]);
        t.cut_link(NodeId::new(0), NodeId::new(1));
        assert!(!t.are_neighbors(NodeId::new(0), NodeId::new(1)));
        assert!(!t.are_neighbors(NodeId::new(1), NodeId::new(0)));
        assert!(t.are_neighbors(NodeId::new(1), NodeId::new(2)));
        // Cutting an absent link is a no-op.
        t.cut_link(NodeId::new(0), NodeId::new(2));
        assert!(t.are_neighbors(NodeId::new(1), NodeId::new(2)));
    }

    #[test]
    fn empty_table() {
        let t = table(vec![]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.mean_degree(), 0.0);
    }
}
