//! 2-D geometry primitives: points/vectors and the rectangular field.

use std::fmt;
use std::ops::{Add, AddAssign, Mul, Sub};

/// A 2-D point or displacement in meters.
///
/// # Example
///
/// ```
/// use rcast_mobility::Vec2;
///
/// let a = Vec2::new(0.0, 3.0);
/// let b = Vec2::new(4.0, 0.0);
/// assert_eq!(a.distance_to(b), 5.0);
/// ```
#[derive(Clone, Copy, Default, PartialEq)]
pub struct Vec2 {
    /// East–west coordinate, meters.
    pub x: f64,
    /// North–south coordinate, meters.
    pub y: f64,
}

impl Vec2 {
    /// The origin.
    pub const ZERO: Vec2 = Vec2 { x: 0.0, y: 0.0 };

    /// Creates a point from coordinates.
    pub const fn new(x: f64, y: f64) -> Self {
        Vec2 { x, y }
    }

    /// Euclidean length of this vector.
    pub fn length(self) -> f64 {
        self.x.hypot(self.y)
    }

    /// Squared Euclidean length (avoids the square root).
    pub fn length_squared(self) -> f64 {
        self.x * self.x + self.y * self.y
    }

    /// Euclidean distance to `other`.
    pub fn distance_to(self, other: Vec2) -> f64 {
        (other - self).length()
    }

    /// Squared distance to `other` (for threshold comparisons).
    pub fn distance_squared_to(self, other: Vec2) -> f64 {
        (other - self).length_squared()
    }

    /// Unit vector in this direction, or zero for the zero vector.
    pub fn normalized(self) -> Vec2 {
        let len = self.length();
        if len == 0.0 {
            Vec2::ZERO
        } else {
            Vec2::new(self.x / len, self.y / len)
        }
    }

    /// Linear interpolation: `self` at `t = 0`, `other` at `t = 1`.
    pub fn lerp(self, other: Vec2, t: f64) -> Vec2 {
        Vec2::new(
            self.x + (other.x - self.x) * t,
            self.y + (other.y - self.y) * t,
        )
    }
}

impl Add for Vec2 {
    type Output = Vec2;
    fn add(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl AddAssign for Vec2 {
    fn add_assign(&mut self, rhs: Vec2) {
        self.x += rhs.x;
        self.y += rhs.y;
    }
}

impl Sub for Vec2 {
    type Output = Vec2;
    fn sub(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Mul<f64> for Vec2 {
    type Output = Vec2;
    fn mul(self, rhs: f64) -> Vec2 {
        Vec2::new(self.x * rhs, self.y * rhs)
    }
}

impl fmt::Debug for Vec2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.2}, {:.2})", self.x, self.y)
    }
}

impl fmt::Display for Vec2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.2} m, {:.2} m)", self.x, self.y)
    }
}

/// The rectangular simulation field, `[0, width] × [0, height]` meters.
///
/// The paper uses a 1500 × 300 m field for 100 nodes.
///
/// # Example
///
/// ```
/// use rcast_mobility::{Area, Vec2};
///
/// let area = Area::new(1500.0, 300.0);
/// assert!(area.contains(Vec2::new(750.0, 150.0)));
/// assert!(!area.contains(Vec2::new(-1.0, 0.0)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Area {
    width: f64,
    height: f64,
}

impl Area {
    /// Creates a field of the given dimensions.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is not positive and finite.
    pub fn new(width: f64, height: f64) -> Self {
        assert!(
            width.is_finite() && width > 0.0 && height.is_finite() && height > 0.0,
            "invalid area {width}x{height}"
        );
        Area { width, height }
    }

    /// The paper's testbed field: 1500 × 300 m.
    pub fn paper_default() -> Self {
        Area::new(1500.0, 300.0)
    }

    /// Field width (meters).
    pub fn width(self) -> f64 {
        self.width
    }

    /// Field height (meters).
    pub fn height(self) -> f64 {
        self.height
    }

    /// `true` when `p` lies inside the field (inclusive of edges).
    pub fn contains(self, p: Vec2) -> bool {
        (0.0..=self.width).contains(&p.x) && (0.0..=self.height).contains(&p.y)
    }

    /// Clamps `p` onto the field.
    pub fn clamp(self, p: Vec2) -> Vec2 {
        Vec2::new(p.x.clamp(0.0, self.width), p.y.clamp(0.0, self.height))
    }

    /// The field diagonal — the longest possible trip.
    pub fn diagonal(self) -> f64 {
        self.width.hypot(self.height)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vector_arithmetic() {
        let a = Vec2::new(1.0, 2.0);
        let b = Vec2::new(3.0, -1.0);
        assert_eq!(a + b, Vec2::new(4.0, 1.0));
        assert_eq!(b - a, Vec2::new(2.0, -3.0));
        assert_eq!(a * 2.0, Vec2::new(2.0, 4.0));
        let mut c = a;
        c += b;
        assert_eq!(c, a + b);
    }

    #[test]
    fn distances() {
        let a = Vec2::new(0.0, 0.0);
        let b = Vec2::new(3.0, 4.0);
        assert_eq!(a.distance_to(b), 5.0);
        assert_eq!(a.distance_squared_to(b), 25.0);
        assert_eq!(b.length(), 5.0);
        assert_eq!(b.length_squared(), 25.0);
    }

    #[test]
    fn normalization() {
        let v = Vec2::new(10.0, 0.0).normalized();
        assert!((v.length() - 1.0).abs() < 1e-12);
        assert_eq!(Vec2::ZERO.normalized(), Vec2::ZERO);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Vec2::new(0.0, 0.0);
        let b = Vec2::new(10.0, 20.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Vec2::new(5.0, 10.0));
    }

    #[test]
    fn area_contains_and_clamp() {
        let area = Area::paper_default();
        assert_eq!(area.width(), 1500.0);
        assert_eq!(area.height(), 300.0);
        assert!(area.contains(Vec2::new(0.0, 0.0)));
        assert!(area.contains(Vec2::new(1500.0, 300.0)));
        assert!(!area.contains(Vec2::new(1500.1, 0.0)));
        assert_eq!(
            area.clamp(Vec2::new(2000.0, -5.0)),
            Vec2::new(1500.0, 0.0)
        );
    }

    #[test]
    fn area_diagonal() {
        let area = Area::new(30.0, 40.0);
        assert_eq!(area.diagonal(), 50.0);
    }

    #[test]
    #[should_panic]
    fn zero_area_panics() {
        let _ = Area::new(0.0, 10.0);
    }
}
