//! The random waypoint mobility model.

use rcast_engine::rng::StreamRng;
use rcast_engine::SimTime;

use crate::geometry::{Area, Vec2};

/// Parameters of the random waypoint model.
///
/// The paper's scenarios use `max_speed_mps = 20`, a fixed pause time
/// swept from 0 to 1125 s, and `min_speed_mps` close to zero (classic
/// random waypoint; we use a small positive floor to avoid the known
/// "speed decay to zero" degeneracy of sampling speeds arbitrarily close
/// to 0).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WaypointConfig {
    /// Lower bound of the uniform speed draw, m/s. Must be positive.
    pub min_speed_mps: f64,
    /// Upper bound of the uniform speed draw, m/s.
    pub max_speed_mps: f64,
    /// Fixed pause duration at each waypoint, seconds.
    pub pause_secs: f64,
}

impl Default for WaypointConfig {
    /// The paper's mobile scenario: speeds in `(0, 20]` m/s.
    fn default() -> Self {
        WaypointConfig {
            min_speed_mps: 0.1,
            max_speed_mps: 20.0,
            pause_secs: 0.0,
        }
    }
}

impl WaypointConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.min_speed_mps.is_finite() && self.min_speed_mps > 0.0) {
            return Err(format!("min speed must be positive: {}", self.min_speed_mps));
        }
        if !(self.max_speed_mps.is_finite() && self.max_speed_mps >= self.min_speed_mps) {
            return Err(format!(
                "max speed {} must be >= min speed {}",
                self.max_speed_mps, self.min_speed_mps
            ));
        }
        if !(self.pause_secs.is_finite() && self.pause_secs >= 0.0) {
            return Err(format!("pause must be non-negative: {}", self.pause_secs));
        }
        Ok(())
    }
}

/// What a node is doing at a queried instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MotionState {
    /// Paused at a waypoint.
    Paused,
    /// Travelling at the given speed (m/s).
    Moving {
        /// Current scalar speed in meters per second.
        speed_mps: f64,
    },
}

/// One leg of motion: a pause at `from`, then a straight trip to `to`.
#[derive(Debug, Clone, Copy)]
struct Leg {
    /// When travel begins (leg start + pause).
    depart: f64,
    /// When the node arrives at `to`.
    arrive: f64,
    from: Vec2,
    to: Vec2,
    speed: f64,
}

/// A single node's random-waypoint trajectory.
///
/// Legs are generated lazily and deterministically from the node's own
/// random stream, so querying positions never perturbs other nodes.
/// Queries must be *monotonically non-decreasing* in time (the simulator
/// always advances), which lets the trajectory drop past legs.
///
/// # Example
///
/// ```
/// use rcast_engine::{SimTime, rng::StreamRng};
/// use rcast_mobility::{Area, RandomWaypoint, WaypointConfig};
///
/// let mut rw = RandomWaypoint::new(
///     Area::paper_default(),
///     WaypointConfig::default(),
///     StreamRng::from_seed(9),
/// );
/// let p0 = rw.position_at(SimTime::ZERO);
/// let p1 = rw.position_at(SimTime::from_secs(60));
/// assert!(Area::paper_default().contains(p0));
/// assert!(Area::paper_default().contains(p1));
/// ```
#[derive(Debug, Clone)]
pub struct RandomWaypoint {
    area: Area,
    cfg: WaypointConfig,
    rng: StreamRng,
    leg: Leg,
    last_query: f64,
}

impl RandomWaypoint {
    /// Creates a trajectory starting at a uniformly random position.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`WaypointConfig::validate`].
    pub fn new(area: Area, cfg: WaypointConfig, mut rng: StreamRng) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid waypoint config: {e}");
        }
        let start_pos = Vec2::new(
            rng.range_f64(0.0, area.width()),
            rng.range_f64(0.0, area.height()),
        );
        // ns-2 setdest semantics: each node pauses at its initial
        // position for T_pause before its first trip — which is exactly
        // why the paper's T_pause = 1125 s (the run length) is its
        // "static scenario".
        let leg = Self::make_leg(&mut rng, area, &cfg, 0.0, start_pos);
        RandomWaypoint {
            area,
            cfg,
            rng,
            leg,
            last_query: 0.0,
        }
    }

    fn make_leg(rng: &mut StreamRng, area: Area, cfg: &WaypointConfig, start: f64, from: Vec2) -> Leg {
        let to = Vec2::new(
            rng.range_f64(0.0, area.width()),
            rng.range_f64(0.0, area.height()),
        );
        let speed = rng.range_f64(cfg.min_speed_mps, cfg.max_speed_mps);
        let depart = start + cfg.pause_secs;
        let travel = from.distance_to(to) / speed;
        Leg {
            depart,
            arrive: depart + travel,
            from,
            to,
            speed,
        }
    }

    fn advance_to(&mut self, t: f64) {
        while t >= self.leg.arrive {
            let next_start = self.leg.arrive;
            let next_from = self.leg.to;
            self.leg = Self::make_leg(&mut self.rng, self.area, &self.cfg, next_start, next_from);
        }
    }

    /// The node's position at `t`.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `t` precedes an earlier query — the
    /// trajectory is forward-only.
    pub fn position_at(&mut self, t: SimTime) -> Vec2 {
        let t = t.as_secs_f64();
        debug_assert!(
            t + 1e-9 >= self.last_query,
            "mobility queried backwards: {t} < {}",
            self.last_query
        );
        self.last_query = t;
        self.advance_to(t);
        let leg = &self.leg;
        if t <= leg.depart {
            leg.from
        } else {
            let frac = (t - leg.depart) / (leg.arrive - leg.depart);
            leg.from.lerp(leg.to, frac.clamp(0.0, 1.0))
        }
    }

    /// Whether the node is paused or moving at `t` (same monotonic
    /// constraint as [`position_at`](Self::position_at)).
    pub fn state_at(&mut self, t: SimTime) -> MotionState {
        let ts = t.as_secs_f64();
        self.last_query = self.last_query.max(ts);
        self.advance_to(ts);
        if ts <= self.leg.depart {
            MotionState::Paused
        } else {
            MotionState::Moving {
                speed_mps: self.leg.speed,
            }
        }
    }

    /// The field this trajectory lives in.
    pub fn area(&self) -> Area {
        self.area
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcast_engine::SimDuration;

    fn make(seed: u64, pause: f64) -> RandomWaypoint {
        RandomWaypoint::new(
            Area::paper_default(),
            WaypointConfig {
                pause_secs: pause,
                ..WaypointConfig::default()
            },
            StreamRng::from_seed(seed),
        )
    }

    #[test]
    fn positions_stay_in_area() {
        let mut rw = make(3, 5.0);
        let area = Area::paper_default();
        let mut t = SimTime::ZERO;
        for _ in 0..5_000 {
            assert!(area.contains(rw.position_at(t)));
            t += SimDuration::from_millis(250);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = make(11, 2.0);
        let mut b = make(11, 2.0);
        for i in 0..1000 {
            let t = SimTime::from_millis(i * 500);
            assert_eq!(a.position_at(t), b.position_at(t));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = make(1, 0.0);
        let mut b = make(2, 0.0);
        let t = SimTime::from_secs(10);
        assert_ne!(a.position_at(t), b.position_at(t));
    }

    #[test]
    fn pause_holds_position() {
        let mut rw = make(7, 1_000_000.0); // effectively static
        let p0 = rw.position_at(SimTime::ZERO);
        let p1 = rw.position_at(SimTime::from_secs(1125));
        assert_eq!(p0, p1, "paused node must not move");
        assert_eq!(rw.state_at(SimTime::from_secs(1126)), MotionState::Paused);
    }

    #[test]
    fn moving_node_actually_moves() {
        let mut rw = make(5, 0.0);
        let p0 = rw.position_at(SimTime::ZERO);
        let p1 = rw.position_at(SimTime::from_secs(30));
        assert_ne!(p0, p1);
        match rw.state_at(SimTime::from_secs(30)) {
            MotionState::Moving { speed_mps } => {
                assert!(speed_mps > 0.0 && speed_mps <= 20.0)
            }
            MotionState::Paused => {
                // Possible only exactly at a waypoint with zero pause;
                // with fractional times this is vanishingly unlikely but
                // tolerated.
            }
        }
    }

    #[test]
    fn speed_between_samples_is_bounded() {
        let mut rw = make(13, 0.0);
        let dt = 0.25;
        let mut prev = rw.position_at(SimTime::ZERO);
        for i in 1..4000u64 {
            let t = SimTime::from_millis(i * 250);
            let cur = rw.position_at(t);
            let v = prev.distance_to(cur) / dt;
            assert!(v <= 20.0 + 1e-6, "speed {v} exceeds max");
            prev = cur;
        }
    }

    #[test]
    fn config_validation() {
        assert!(WaypointConfig::default().validate().is_ok());
        assert!(WaypointConfig {
            min_speed_mps: 0.0,
            ..WaypointConfig::default()
        }
        .validate()
        .is_err());
        assert!(WaypointConfig {
            max_speed_mps: 0.01,
            ..WaypointConfig::default()
        }
        .validate()
        .is_err());
        assert!(WaypointConfig {
            pause_secs: -1.0,
            ..WaypointConfig::default()
        }
        .validate()
        .is_err());
    }
}
