//! Incrementally maintained neighbor index.
//!
//! [`NeighborTable::build`] constructs a fresh grid and one `Vec` per
//! node on every call — fine for one-shot queries, allocator-bound when
//! the simulator calls it once per 250 ms beacon interval for the whole
//! run. [`NeighborIndex`] keeps the grid, the per-node lists and a
//! double-buffered previous table alive across intervals and updates
//! them in place from the mobility delta:
//!
//! * only nodes that crossed a cell boundary are re-bucketed;
//! * a node's list is recomputed only when its own position changed or
//!   some node in its 3 × 3 cell neighborhood moved (any node further
//!   away than one cell is beyond radio range before *and* after, so
//!   its motion cannot affect the list);
//! * untouched lists are copied forward from the previous interval
//!   without reallocation.
//!
//! Fault injection mutates the current table through
//! [`NeighborIndex::isolate`] / [`NeighborIndex::cut_link`]; a mutated
//! table disables the skip path for the next [`advance`]
//! (every list is then recomputed from pure geometry), reproducing the
//! rebuild-then-mutate semantics of the from-scratch path exactly.
//! `NeighborTable::build` stays as the differential oracle — the
//! property tests in this module and in `rcast-testkit` assert the
//! incremental table equals a from-scratch build after arbitrary
//! interleavings of motion and fault mutations.
//!
//! [`advance`]: NeighborIndex::advance
//!
//! # Example
//!
//! ```
//! use rcast_engine::{SimTime, rng::StreamRng};
//! use rcast_mobility::{Area, MobilityField, NeighborIndex, NeighborTable, WaypointConfig};
//!
//! let mut field = MobilityField::random_waypoint(
//!     40, Area::paper_default(), WaypointConfig::default(), StreamRng::from_seed(9));
//! let mut snap = field.snapshot(SimTime::ZERO);
//! let mut index = NeighborIndex::new(&snap, 250.0);
//! field.snapshot_into(SimTime::from_secs(1), &mut snap);
//! index.advance(&snap);
//! let oracle = NeighborTable::build(&snap, 250.0);
//! for i in (0..40).map(rcast_engine::NodeId::new) {
//!     assert_eq!(index.current().neighbors(i), oracle.neighbors(i));
//! }
//! ```

use rcast_engine::NodeId;

use crate::field::Snapshot;
use crate::geometry::Vec2;
use crate::grid::SpatialGrid;
use crate::neighbors::NeighborTable;

/// A neighbor table maintained in place across mobility snapshots.
/// See the [module docs](self).
#[derive(Debug, Clone, Default)]
pub struct NeighborIndex {
    range_m: f64,
    grid: Option<SpatialGrid>,
    /// Bucket index of each node, mirroring `grid`.
    cell_of: Vec<usize>,
    /// Last seen position of each node (exact-compare motion detector).
    last_pos: Vec<Vec2>,
    /// Scratch: whether each node moved since the last advance.
    moved: Vec<bool>,
    /// Scratch: whether each grid cell saw motion since the last advance.
    dirty_cells: Vec<bool>,
    current: NeighborTable,
    previous: NeighborTable,
    /// Whether the last [`advance`](Self::advance) recomputed each
    /// node's list from geometry (`true`) or carried it forward
    /// verbatim from the previous table (`false`). A carried-forward
    /// list is byte-equal to the previous interval's, so its link
    /// churn is zero by construction — consumers can skip the
    /// symmetric-difference scan entirely (see
    /// [`carried_forward`](Self::carried_forward)).
    refilled: Vec<bool>,
    /// Set by [`isolate`](Self::isolate) / [`cut_link`](Self::cut_link);
    /// forces a full geometric refill on the next advance.
    mutated: bool,
}

impl NeighborIndex {
    /// Builds the index from an initial snapshot.
    ///
    /// # Panics
    ///
    /// Panics if `range_m` is not positive and finite (grid invariant).
    pub fn new(snapshot: &Snapshot, range_m: f64) -> Self {
        let grid = snapshot.grid(range_m);
        let n = snapshot.len();
        let cell_of: Vec<usize> = snapshot
            .positions()
            .iter()
            .map(|&p| grid.bucket_index(p))
            .collect();
        let mut current = NeighborTable::with_nodes(n, range_m);
        for (i, list) in current.lists_mut().iter_mut().enumerate() {
            grid.neighbors_into(NodeId::new(i as u32), snapshot, range_m, list);
        }
        NeighborIndex {
            range_m,
            dirty_cells: vec![false; grid.cell_count()],
            grid: Some(grid),
            cell_of,
            last_pos: snapshot.positions().to_vec(),
            moved: vec![false; n],
            previous: current.clone(),
            current,
            refilled: vec![true; n],
            mutated: false,
        }
    }

    /// Advances to a new snapshot: the table that was current becomes
    /// [`previous`](Self::previous) and the current one is refreshed in
    /// place from the new positions.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot's node count differs from the one the
    /// index was built with.
    pub fn advance(&mut self, snapshot: &Snapshot) {
        let Some(grid) = self.grid.as_mut() else {
            assert_eq!(snapshot.len(), 0, "index not initialised");
            return;
        };
        let n = self.last_pos.len();
        assert_eq!(snapshot.len(), n, "node count changed across advance");

        std::mem::swap(&mut self.current, &mut self.previous);

        self.dirty_cells.fill(false);
        for (i, (&p, last)) in snapshot
            .positions()
            .iter()
            .zip(self.last_pos.iter_mut())
            .enumerate()
        {
            let moved = p != *last;
            self.moved[i] = moved;
            if moved {
                *last = p;
                let from = self.cell_of[i];
                let to = grid.bucket_index(p);
                if to != from {
                    grid.move_between_buckets(NodeId::new(i as u32), from, to);
                    self.cell_of[i] = to;
                }
                self.dirty_cells[from] = true;
                self.dirty_cells[to] = true;
            }
        }

        let refill_all = self.mutated;
        let cols = grid.cols() as i64;
        let cells = self.dirty_cells.len() as i64;
        let rows = cells / cols;
        for (i, list) in self.current.lists_mut().iter_mut().enumerate() {
            let cell = self.cell_of[i] as i64;
            let (row, col) = (cell / cols, cell % cols);
            let mut refill = refill_all || self.moved[i];
            if !refill {
                'scan: for dr in -1i64..=1 {
                    for dc in -1i64..=1 {
                        let (rr, cc) = (row + dr, col + dc);
                        if rr < 0 || cc < 0 || rr >= rows || cc >= cols {
                            continue;
                        }
                        if self.dirty_cells[(rr * cols + cc) as usize] {
                            refill = true;
                            break 'scan;
                        }
                    }
                }
            }
            self.refilled[i] = refill;
            if refill {
                grid.neighbors_into(NodeId::new(i as u32), snapshot, self.range_m, list);
            } else {
                // Nothing within one cell of this node changed, so the
                // list is exactly last interval's; copy it forward
                // without reallocating.
                list.clone_from(&self.previous.lists()[i]);
            }
        }
        self.mutated = false;
    }

    /// `true` when `node`'s current list is a verbatim carry-forward of
    /// the previous interval's — i.e. the last [`advance`](Self::advance)
    /// skipped the geometric refill for it and no fault mutation has
    /// touched the table since. In that case
    /// [`NeighborTable::link_changes_since`] against
    /// [`previous`](Self::previous) is zero by construction, so callers
    /// can skip the per-node symmetric-difference merge: churn scanning
    /// becomes proportional to the number of lists that actually
    /// changed, not to n.
    pub fn carried_forward(&self, node: NodeId) -> bool {
        !self.mutated && !self.refilled[node.index()]
    }

    /// The maintained table for the current snapshot.
    pub fn current(&self) -> &NeighborTable {
        &self.current
    }

    /// The table as it stood at the previous advance (after any fault
    /// mutations applied then) — the baseline for
    /// [`NeighborTable::link_changes_since`].
    pub fn previous(&self) -> &NeighborTable {
        &self.previous
    }

    /// Silences `node` in the current table (see
    /// [`NeighborTable::isolate`]); the next advance recomputes every
    /// list from geometry.
    pub fn isolate(&mut self, node: NodeId) {
        self.mutated = true;
        self.current.isolate(node);
    }

    /// Cuts the `a`–`b` link in the current table (see
    /// [`NeighborTable::cut_link`]); the next advance recomputes every
    /// list from geometry.
    pub fn cut_link(&mut self, a: NodeId, b: NodeId) {
        self.mutated = true;
        self.current.cut_link(a, b);
    }

    /// Number of nodes covered.
    pub fn len(&self) -> usize {
        self.last_pos.len()
    }

    /// `true` when the index covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.last_pos.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::MobilityField;
    use crate::geometry::Area;
    use crate::waypoint::WaypointConfig;
    use rcast_engine::rng::StreamRng;
    use rcast_engine::SimTime;

    fn assert_tables_equal(index: &NeighborIndex, oracle: &NeighborTable, ctx: &str) {
        assert_eq!(index.current().len(), oracle.len(), "{ctx}");
        for i in 0..oracle.len() {
            let id = NodeId::new(i as u32);
            assert_eq!(
                index.current().neighbors(id),
                oracle.neighbors(id),
                "{ctx}: node {i}"
            );
        }
    }

    #[test]
    fn tracks_from_scratch_build_over_many_intervals() {
        let mut field = MobilityField::random_waypoint(
            80,
            Area::paper_default(),
            WaypointConfig::default(),
            StreamRng::from_seed(3),
        );
        let mut snap = field.snapshot(SimTime::ZERO);
        let mut index = NeighborIndex::new(&snap, 250.0);
        assert_tables_equal(&index, &NeighborTable::build(&snap, 250.0), "t=0");
        for k in 1..200u64 {
            let t = SimTime::from_millis(k * 250);
            field.snapshot_into(t, &mut snap);
            index.advance(&snap);
            assert_tables_equal(&index, &NeighborTable::build(&snap, 250.0), "interval");
        }
    }

    #[test]
    fn static_field_skips_but_stays_correct() {
        let cfg = WaypointConfig {
            pause_secs: 1e9,
            ..WaypointConfig::default()
        };
        let mut field =
            MobilityField::random_waypoint(40, Area::paper_default(), cfg, StreamRng::from_seed(8));
        let mut snap = field.snapshot(SimTime::ZERO);
        let mut index = NeighborIndex::new(&snap, 250.0);
        for k in 1..20u64 {
            field.snapshot_into(SimTime::from_millis(k * 250), &mut snap);
            index.advance(&snap);
            assert_tables_equal(&index, &NeighborTable::build(&snap, 250.0), "static");
        }
    }

    #[test]
    fn fault_mutations_wash_out_on_the_next_advance() {
        let mut field = MobilityField::random_waypoint(
            50,
            Area::paper_default(),
            WaypointConfig::default(),
            StreamRng::from_seed(5),
        );
        let mut snap = field.snapshot(SimTime::ZERO);
        let mut index = NeighborIndex::new(&snap, 250.0);
        for k in 1..60u64 {
            field.snapshot_into(SimTime::from_millis(k * 250), &mut snap);
            index.advance(&snap);
            let mut oracle = NeighborTable::build(&snap, 250.0);
            assert_tables_equal(&index, &oracle, "pre-mutation");
            if k % 3 == 0 {
                let down = NodeId::new((k % 50) as u32);
                index.isolate(down);
                oracle.isolate(down);
            }
            if k % 4 == 0 {
                let (a, b) = (NodeId::new(1), NodeId::new(2));
                index.cut_link(a, b);
                oracle.cut_link(a, b);
            }
            assert_tables_equal(&index, &oracle, "post-mutation");
            // `previous` carries the post-mutation table, exactly like
            // the from-scratch path's `prev_nt`.
            for i in 0..50 {
                let id = NodeId::new(i as u32);
                assert_eq!(oracle.link_changes_since(&oracle, id), 0);
            }
        }
    }

    #[test]
    fn carried_forward_implies_zero_link_churn() {
        // Long pauses give a mixed population: paused nodes whose 3×3
        // neighborhoods are quiet carry their lists forward, movers
        // refill — both paths must agree with the churn oracle.
        let cfg = WaypointConfig {
            pause_secs: 20.0,
            ..WaypointConfig::default()
        };
        let mut field = MobilityField::random_waypoint(
            60,
            Area::paper_default(),
            cfg,
            StreamRng::from_seed(12),
        );
        let mut snap = field.snapshot(SimTime::ZERO);
        let mut index = NeighborIndex::new(&snap, 250.0);
        let mut skipped = 0usize;
        for k in 1..120u64 {
            field.snapshot_into(SimTime::from_millis(k * 250), &mut snap);
            index.advance(&snap);
            for i in 0..60 {
                let id = NodeId::new(i as u32);
                if index.carried_forward(id) {
                    skipped += 1;
                    assert_eq!(
                        index.current().link_changes_since(index.previous(), id),
                        0,
                        "carried-forward node {i} reported churn"
                    );
                }
            }
            if k % 10 == 0 {
                index.isolate(NodeId::new((k % 60) as u32));
                // A mutated table must disable the skip for every node.
                for i in 0..60 {
                    assert!(!index.carried_forward(NodeId::new(i as u32)));
                }
            }
        }
        assert!(skipped > 0, "skip path never exercised");
    }

    #[test]
    fn empty_index_is_harmless() {
        let area = Area::new(100.0, 100.0);
        let snap = Snapshot::from_positions(vec![], area, SimTime::ZERO);
        let mut index = NeighborIndex::new(&snap, 50.0);
        assert!(index.is_empty());
        assert_eq!(index.len(), 0);
        index.advance(&snap);
        assert!(index.current().is_empty());
    }
}
