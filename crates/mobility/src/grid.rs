//! Uniform-grid spatial index for neighbor queries.

use rcast_engine::NodeId;

use crate::field::Snapshot;
use crate::geometry::Vec2;

/// A uniform bucket grid over node positions.
///
/// Cells are `cell_size` meters square; a range query of radius
/// `r <= cell_size` only needs to inspect the 3 × 3 cell neighborhood.
/// Rebuilt from each mobility [`Snapshot`] (cheap: O(n)).
///
/// # Example
///
/// ```
/// use rcast_engine::{NodeId, SimTime, rng::StreamRng};
/// use rcast_mobility::{Area, MobilityField, WaypointConfig};
///
/// let mut field = MobilityField::random_waypoint(
///     50, Area::paper_default(), WaypointConfig::default(), StreamRng::from_seed(4));
/// let snap = field.snapshot(SimTime::ZERO);
/// let grid = snap.grid(250.0);
/// for id in (0..50).map(NodeId::new) {
///     // A node is never its own neighbor.
///     assert!(!grid.neighbors_of(id, &snap, 250.0).contains(&id));
/// }
/// ```
#[derive(Debug, Clone)]
pub struct SpatialGrid {
    cell_size: f64,
    cols: usize,
    rows: usize,
    /// `buckets[row * cols + col]` lists the nodes in that cell.
    buckets: Vec<Vec<NodeId>>,
}

impl SpatialGrid {
    /// Builds a grid from a snapshot with the given cell size (typically
    /// the radio range).
    ///
    /// # Panics
    ///
    /// Panics if `cell_size` is not positive and finite.
    pub fn build(snapshot: &Snapshot, cell_size: f64) -> Self {
        assert!(
            cell_size.is_finite() && cell_size > 0.0,
            "invalid cell size {cell_size}"
        );
        let area = snapshot.area();
        let cols = (area.width() / cell_size).ceil().max(1.0) as usize;
        let rows = (area.height() / cell_size).ceil().max(1.0) as usize;
        let mut buckets = vec![Vec::new(); cols * rows];
        for (i, p) in snapshot.positions().iter().enumerate() {
            let col = ((p.x / cell_size) as usize).min(cols - 1);
            let row = ((p.y / cell_size) as usize).min(rows - 1);
            buckets[row * cols + col].push(NodeId::new(i as u32));
        }
        SpatialGrid {
            cell_size,
            cols,
            rows,
            buckets,
        }
    }

    /// All nodes strictly within `radius` meters of node `of`
    /// (excluding `of` itself), in ascending id order.
    ///
    /// # Panics
    ///
    /// Panics if `radius > cell_size` (the 3×3 scan would miss nodes) or
    /// if `of` is out of range for the snapshot.
    pub fn neighbors_of(&self, of: NodeId, snapshot: &Snapshot, radius: f64) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.neighbors_into(of, snapshot, radius, &mut out);
        out
    }

    /// [`neighbors_of`](Self::neighbors_of) writing into a caller-owned
    /// buffer (cleared first) so steady-state queries allocate nothing.
    ///
    /// # Panics
    ///
    /// Same conditions as [`neighbors_of`](Self::neighbors_of).
    pub fn neighbors_into(
        &self,
        of: NodeId,
        snapshot: &Snapshot,
        radius: f64,
        out: &mut Vec<NodeId>,
    ) {
        assert!(
            radius <= self.cell_size + 1e-9,
            "radius {radius} exceeds cell size {}",
            self.cell_size
        );
        out.clear();
        let p = snapshot.positions()[of.index()];
        let r2 = radius * radius;
        let col = ((p.x / self.cell_size) as usize).min(self.cols - 1);
        let row = ((p.y / self.cell_size) as usize).min(self.rows - 1);
        for dr in -1i64..=1 {
            for dc in -1i64..=1 {
                let rr = row as i64 + dr;
                let cc = col as i64 + dc;
                if rr < 0 || cc < 0 || rr >= self.rows as i64 || cc >= self.cols as i64 {
                    continue;
                }
                for &other in &self.buckets[rr as usize * self.cols + cc as usize] {
                    if other == of {
                        continue;
                    }
                    let q = snapshot.positions()[other.index()];
                    if p.distance_squared_to(q) <= r2 {
                        out.push(other);
                    }
                }
            }
        }
        out.sort_unstable();
    }

    /// The number of grid cells.
    pub fn cell_count(&self) -> usize {
        self.buckets.len()
    }

    /// The grid's column count.
    pub(crate) fn cols(&self) -> usize {
        self.cols
    }

    /// The bucket a position falls into.
    pub(crate) fn bucket_index(&self, p: Vec2) -> usize {
        let col = ((p.x / self.cell_size) as usize).min(self.cols - 1);
        let row = ((p.y / self.cell_size) as usize).min(self.rows - 1);
        row * self.cols + col
    }

    /// Moves `id` from bucket `from` to bucket `to`, keeping both
    /// buckets sorted by id (build order is ascending id, and
    /// incremental maintenance preserves that invariant).
    pub(crate) fn move_between_buckets(&mut self, id: NodeId, from: usize, to: usize) {
        if let Ok(pos) = self.buckets[from].binary_search(&id) {
            self.buckets[from].remove(pos);
        }
        if let Err(pos) = self.buckets[to].binary_search(&id) {
            self.buckets[to].insert(pos, id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::MobilityField;
    use crate::geometry::{Area, Vec2};
    use crate::waypoint::WaypointConfig;
    use rcast_engine::rng::StreamRng;
    use rcast_engine::SimTime;

    fn snapshot_with(positions: Vec<Vec2>, area: Area) -> Snapshot {
        Snapshot::from_positions(positions, area, SimTime::ZERO)
    }

    #[test]
    fn matches_brute_force() {
        let mut field = MobilityField::random_waypoint(
            120,
            Area::paper_default(),
            WaypointConfig::default(),
            StreamRng::from_seed(42),
        );
        let snap = field.snapshot(SimTime::from_secs(17));
        let grid = snap.grid(250.0);
        for i in 0..120u32 {
            let id = NodeId::new(i);
            let got = grid.neighbors_of(id, &snap, 250.0);
            let p = snap.positions()[id.index()];
            let mut want: Vec<NodeId> = (0..120u32)
                .map(NodeId::new)
                .filter(|&j| j != id && p.distance_to(snap.positions()[j.index()]) <= 250.0)
                .collect();
            want.sort_unstable();
            assert_eq!(got, want, "node {i}");
        }
    }

    #[test]
    fn empty_and_singleton() {
        let area = Area::new(100.0, 100.0);
        let snap = snapshot_with(vec![Vec2::new(50.0, 50.0)], area);
        let grid = snap.grid(30.0);
        assert!(grid
            .neighbors_of(NodeId::new(0), &snap, 30.0)
            .is_empty());
    }

    #[test]
    fn boundary_positions_bucket_safely() {
        let area = Area::new(1000.0, 1000.0);
        // Nodes exactly on the far corner must not index out of bounds.
        let snap = snapshot_with(
            vec![Vec2::new(1000.0, 1000.0), Vec2::new(999.0, 999.0)],
            area,
        );
        let grid = snap.grid(250.0);
        let n = grid.neighbors_of(NodeId::new(0), &snap, 250.0);
        assert_eq!(n, vec![NodeId::new(1)]);
    }

    #[test]
    fn radius_on_the_dot_is_inclusive() {
        let area = Area::new(1000.0, 10.0);
        let snap = snapshot_with(vec![Vec2::new(0.0, 0.0), Vec2::new(250.0, 0.0)], area);
        let grid = snap.grid(250.0);
        assert_eq!(
            grid.neighbors_of(NodeId::new(0), &snap, 250.0),
            vec![NodeId::new(1)]
        );
    }

    #[test]
    #[should_panic]
    fn radius_larger_than_cell_panics() {
        let area = Area::new(100.0, 100.0);
        let snap = snapshot_with(vec![Vec2::ZERO], area);
        let grid = snap.grid(50.0);
        let _ = grid.neighbors_of(NodeId::new(0), &snap, 60.0);
    }

    #[test]
    fn cell_count_covers_area() {
        let area = Area::paper_default();
        let snap = snapshot_with(vec![Vec2::ZERO], area);
        let grid = snap.grid(250.0);
        // 1500/250 = 6 cols, 300/250 -> 2 rows
        assert_eq!(grid.cell_count(), 12);
    }
}
