//! Property tests for the event ledger (DESIGN.md §11), on the
//! workspace's hermetic [`rcast_testkit`] harness: arbitrary
//! interleavings of interval advances, in-interval events, energy
//! spans and fault markers must always come out of
//! [`Ledger::into_report`] in the strict `(at, node, seq)` total
//! order, with exact overflow accounting. Failures shrink to the
//! smallest still-failing interleaving via the harness's size dial.

use rcast_engine::{NodeId, SimDuration, SimTime};
use rcast_obs::{Event, EventKind, Ledger, LedgerParams, ObsReport, PacketClass};
use rcast_testkit::{prop_assert, prop_assert_eq, Check, Gen};

const BEACON_NS: u64 = 250_000_000;

/// Draws one ordinary event kind, spanning MAC, routing and fault
/// markers so the ordering property sees every record path.
fn arbitrary_kind(g: &mut Gen, nodes: u32) -> EventKind {
    let peer = NodeId::new(g.u32_range(0, nodes));
    match g.u32_range(0, 10) {
        0 => EventKind::AtimUnicast { to: peer },
        1 => EventKind::AtimBroadcast,
        2 => EventKind::AtimNoAck { to: peer },
        3 => EventKind::Overheard { sender: peer },
        4 => EventKind::Airtime {
            nanos: g.u64_range(1, 2_000_000),
        },
        5 => EventKind::ControlTx {
            class: PacketClass::Rreq,
        },
        6 => EventKind::Originated {
            flow: g.u32_range(0, 4),
            seq: g.u64_range(0, 100),
            dst: peer,
        },
        7 => EventKind::PacketDropped {
            flow: g.u32_range(0, 4),
            seq: g.u64_range(0, 100),
        },
        8 => EventKind::Crash,
        _ => EventKind::Rejoin,
    }
}

/// Runs one random interleaving and returns the report plus the count
/// of *attempted* ordinary events and of spans.
fn run_interleaving(g: &mut Gen) -> (ObsReport, u64, u64, LedgerParams) {
    let params = LedgerParams {
        nodes: g.u32_range(2, 9),
        intervals: g.u64_range(1, 2 + g.size() as u64 / 8),
        beacon_nanos: BEACON_NS,
    };
    let mut ledger = Ledger::new(params);
    let (mut attempted, mut spans) = (0u64, 0u64);
    for k in 0..params.intervals {
        let start = SimTime::from_nanos(k * BEACON_NS);
        // Faults and packet events land at arbitrary in-interval
        // offsets, in arbitrary node order.
        let n_events = g.len(0, 40);
        for _ in 0..n_events {
            let at = start + SimDuration::from_nanos(g.u64_range(0, BEACON_NS));
            let node = if g.u32_range(0, 8) == 0 {
                ledger.network_node()
            } else {
                NodeId::new(g.u32_range(0, params.nodes))
            };
            let kind = if node == ledger.network_node() {
                EventKind::Blackouts {
                    newly: g.u32_range(1, 4),
                }
            } else {
                arbitrary_kind(g, params.nodes)
            };
            ledger.record_event(at, node, kind);
            attempted += 1;
        }
        // Spans mirror the simulator: recorded at the interval start,
        // after the interval's events, at most two per node.
        for i in 0..params.nodes {
            let id = NodeId::new(i);
            if g.bool() {
                ledger.record_span(
                    start,
                    id,
                    rcast_radio::PowerState::Off,
                    SimDuration::from_nanos(BEACON_NS),
                );
                spans += 1;
            } else {
                let awake = g.u64_range(1, BEACON_NS);
                ledger.record_span(
                    start,
                    id,
                    rcast_radio::PowerState::Awake,
                    SimDuration::from_nanos(awake),
                );
                ledger.record_span(
                    start,
                    id,
                    rcast_radio::PowerState::Sleep,
                    SimDuration::from_nanos(BEACON_NS - awake),
                );
                spans += 2;
            }
        }
        ledger.end_interval();
    }
    (ledger.into_report(), attempted, spans, params)
}

#[test]
fn ledger_order_is_a_strict_total_order_consistent_with_sim_time() {
    Check::new("ledger_total_order").cases(96).run(|g: &mut Gen| {
        let (report, _, _, params) = run_interleaving(g);
        prop_assert_eq!(report.intervals(), params.intervals);
        let events = report.events();
        for w in events.windows(2) {
            let (a, b) = (&w[0], &w[1]);
            prop_assert!(
                a.key() < b.key(),
                "strict (at, node, seq) order violated: {a:?} !< {b:?}"
            );
            prop_assert!(a.at <= b.at, "time must never run backwards");
            // Within one (at, node) group, seq preserves record order.
            if a.at == b.at && a.node == b.node {
                prop_assert!(a.seq < b.seq, "record order lost within a group");
            }
        }
        // seq values are unique across the whole run.
        let mut seqs: Vec<u32> = events.iter().map(|e| e.seq).collect();
        seqs.sort_unstable();
        seqs.dedup();
        prop_assert_eq!(seqs.len(), events.len());
        Ok(())
    });
}

#[test]
fn overflow_is_counted_exactly_and_spans_always_land() {
    Check::new("ledger_overflow_accounting")
        .cases(96)
        .run(|g: &mut Gen| {
            let (report, attempted, spans, _) = run_interleaving(g);
            let stored = report.events().len() as u64;
            prop_assert_eq!(
                stored + report.dropped(),
                attempted + spans,
                "every record attempt is stored or counted"
            );
            let stored_spans = report
                .events()
                .iter()
                .filter(|e| matches!(e.kind, EventKind::Span { .. }))
                .count() as u64;
            prop_assert_eq!(stored_spans, spans, "the span lane never drops");
            Ok(())
        });
}

#[test]
fn ordering_key_is_the_documented_triple() {
    // A unit-style anchor for the property above: the key must stay
    // `(at, node.as_u32(), seq)` — renames or reorderings of the tuple
    // break golden-trace stability.
    let e = Event {
        at: SimTime::from_nanos(5),
        node: NodeId::new(2),
        seq: 9,
        kind: EventKind::AtimBroadcast,
    };
    assert_eq!(e.key(), (SimTime::from_nanos(5), 2, 9));
}
