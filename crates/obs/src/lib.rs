//! Deterministic cross-layer observability for the RandomCast
//! reproduction: a structured event ledger plus energy audit.
//!
//! The simulation records one [`Event`] per protocol decision — MAC
//! interval phases, routing packet lifecycle, fault markers, and
//! per-interval energy spans — into a [`Ledger`] whose storage is fully
//! pre-sized at construction, so recording never touches the allocator
//! on the hot path (DESIGN.md §10 applies to this crate too).
//!
//! Two invariants make the ledger useful as ground truth:
//!
//! 1. **Total order.** Every event carries a `(SimTime, NodeId, seq)`
//!    key; [`Ledger::into_report`] sorts by that key, which is a
//!    *strict* total order (seq is unique per run).
//! 2. **Energy reconciliation.** `Span` events mirror every
//!    `EnergyMeter::accumulate` call the simulation makes, in the same
//!    per-node order, so [`ObsReport::replay_energy`] reproduces the
//!    report's per-node joule totals bit-for-bit.
//!
//! [`render_jsonl`] exports the ledger as stable `rcast-trace/v1`
//! JSONL, byte-identical across worker-thread counts.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod event;
mod export;
mod ledger;

pub use event::{Event, EventKind, PacketClass};
pub use export::{render_jsonl, TraceFilter};
pub use ledger::{Ledger, LedgerParams, ObsReport, SERIES_COLUMNS};
