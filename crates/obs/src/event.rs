//! The structured event model: one [`Event`] per protocol decision,
//! totally ordered by `(SimTime, NodeId, seq)`.

use rcast_engine::{NodeId, SimTime};
use rcast_radio::PowerState;

/// Routing-packet class, mirrored from the network layer so the ledger
/// does not depend on the routing crates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketClass {
    /// Route request.
    Rreq,
    /// Route reply.
    Rrep,
    /// Route error.
    Rerr,
    /// Data payload.
    Data,
    /// AODV hello beacon.
    Hello,
}

impl PacketClass {
    /// Stable lowercase label used by `rcast-trace/v1`.
    pub const fn label(self) -> &'static str {
        match self {
            PacketClass::Rreq => "rreq",
            PacketClass::Rrep => "rrep",
            PacketClass::Rerr => "rerr",
            PacketClass::Data => "data",
            PacketClass::Hello => "hello",
        }
    }
}

/// What happened. Each variant carries only `Copy` payload so events
/// can live in pre-sized buffers without per-event allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A unicast ATIM advertisement was acknowledged.
    AtimUnicast {
        /// The addressed receiver.
        to: NodeId,
    },
    /// A broadcast ATIM advertisement was sent.
    AtimBroadcast,
    /// A unicast ATIM drew no acknowledgment (receiver out of range).
    AtimNoAck {
        /// The silent receiver.
        to: NodeId,
    },
    /// An advertisement was deferred for lack of ATIM-window airtime.
    AtimDeferred,
    /// The MAC declared the link to `to` broken after repeated silent
    /// ATIMs.
    LinkBroken {
        /// The unreachable next hop.
        to: NodeId,
    },
    /// A randomized overhearer elected to stay awake for `sender`'s
    /// announced transfer (the Rcast decision itself).
    OverhearCommit {
        /// The announcing sender.
        sender: NodeId,
    },
    /// The node actually overheard a frame on the air.
    Overheard {
        /// The transmitting node.
        sender: NodeId,
    },
    /// The sender's data-window airtime reservation was granted.
    Airtime {
        /// Reserved airtime, nanoseconds.
        nanos: u64,
    },
    /// A unicast data frame was destroyed by injected channel loss.
    DataLost {
        /// The intended receiver.
        to: NodeId,
    },
    /// An announced transfer did not fit the data window.
    DataDeferred,
    /// Energy-accounting span: the node spent `nanos` in `state` during
    /// the interval that starts at the event time. Summing spans per
    /// `(node, state)` reproduces the report's meters bit-exactly.
    Span {
        /// The power state charged.
        state: PowerState,
        /// Span length, nanoseconds.
        nanos: u64,
    },
    /// A routing-control transmission completed on the air.
    ControlTx {
        /// RREQ / RREP / RERR / HELLO.
        class: PacketClass,
    },
    /// A data packet entered the network at its source.
    Originated {
        /// Flow id.
        flow: u32,
        /// Packet sequence number within the flow.
        seq: u64,
        /// Final destination.
        dst: NodeId,
    },
    /// A data packet advanced one on-air hop.
    Forwarded {
        /// Flow id.
        flow: u32,
        /// Packet sequence number within the flow.
        seq: u64,
        /// The next hop it reached.
        to: NodeId,
    },
    /// A data packet reached its destination.
    PacketDelivered {
        /// Flow id.
        flow: u32,
        /// Packet sequence number within the flow.
        seq: u64,
    },
    /// A data packet was dropped (routing gave up, a queue overflowed,
    /// or a fault destroyed it).
    PacketDropped {
        /// Flow id.
        flow: u32,
        /// Packet sequence number within the flow.
        seq: u64,
    },
    /// The node crashed (fault injection).
    Crash,
    /// The node rejoined after a crash.
    Rejoin,
    /// The node's battery depleted.
    BatteryDead,
    /// Link blackouts activated this interval (network-scoped; recorded
    /// against the pseudo-node one past the last real node).
    Blackouts {
        /// Newly activated blackout count.
        newly: u32,
    },
    /// Corruption bursts activated this interval (network-scoped).
    Bursts {
        /// Newly activated burst count.
        newly: u32,
    },
}

impl EventKind {
    /// Stable lowercase label used by `rcast-trace/v1` and the
    /// `--filter kind=` selector.
    pub const fn name(self) -> &'static str {
        match self {
            EventKind::AtimUnicast { .. } => "atim_unicast",
            EventKind::AtimBroadcast => "atim_broadcast",
            EventKind::AtimNoAck { .. } => "atim_no_ack",
            EventKind::AtimDeferred => "atim_deferred",
            EventKind::LinkBroken { .. } => "link_broken",
            EventKind::OverhearCommit { .. } => "overhear_commit",
            EventKind::Overheard { .. } => "overheard",
            EventKind::Airtime { .. } => "airtime",
            EventKind::DataLost { .. } => "data_lost",
            EventKind::DataDeferred => "data_deferred",
            EventKind::Span { .. } => "span",
            EventKind::ControlTx { .. } => "control_tx",
            EventKind::Originated { .. } => "originated",
            EventKind::Forwarded { .. } => "forwarded",
            EventKind::PacketDelivered { .. } => "packet_delivered",
            EventKind::PacketDropped { .. } => "packet_dropped",
            EventKind::Crash => "crash",
            EventKind::Rejoin => "rejoin",
            EventKind::BatteryDead => "battery_dead",
            EventKind::Blackouts { .. } => "blackouts",
            EventKind::Bursts { .. } => "bursts",
        }
    }

    /// The flow id this event belongs to, for `--filter flow=`.
    pub const fn flow(self) -> Option<u32> {
        match self {
            EventKind::Originated { flow, .. }
            | EventKind::Forwarded { flow, .. }
            | EventKind::PacketDelivered { flow, .. }
            | EventKind::PacketDropped { flow, .. } => Some(flow),
            _ => None,
        }
    }
}

/// One ledger entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// When it happened.
    pub at: SimTime,
    /// The node it happened at (or the network pseudo-node for
    /// network-scoped fault markers).
    pub node: NodeId,
    /// Global sequence number, assigned in record order. Unique per
    /// run, so `(at, node, seq)` is a *strict* total order.
    pub seq: u32,
    /// What happened.
    pub kind: EventKind,
}

impl Event {
    /// The total-ordering key: `(at, node, seq)`.
    pub fn key(&self) -> (SimTime, u32, u32) {
        (self.at, self.node.as_u32(), self.seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable() {
        assert_eq!(EventKind::AtimBroadcast.name(), "atim_broadcast");
        assert_eq!(
            EventKind::Span {
                state: PowerState::Sleep,
                nanos: 1
            }
            .name(),
            "span"
        );
        assert_eq!(PacketClass::Rerr.label(), "rerr");
    }

    #[test]
    fn flow_is_exposed_only_by_packet_lifecycle_events() {
        assert_eq!(
            EventKind::Originated {
                flow: 3,
                seq: 9,
                dst: NodeId::new(1)
            }
            .flow(),
            Some(3)
        );
        assert_eq!(EventKind::Crash.flow(), None);
        assert_eq!(
            EventKind::Airtime { nanos: 5 }.flow(),
            None,
            "MAC events carry no flow id"
        );
    }

    #[test]
    fn key_orders_by_time_then_node_then_seq() {
        let a = Event {
            at: SimTime::from_millis(1),
            node: NodeId::new(9),
            seq: 0,
            kind: EventKind::Crash,
        };
        let b = Event {
            at: SimTime::from_millis(2),
            node: NodeId::new(0),
            seq: 1,
            kind: EventKind::Rejoin,
        };
        assert!(a.key() < b.key());
    }
}
